"""Shared configuration for the benchmark harness.

Every table/figure of the paper has a bench here.  By default the
benches run the QUICK budget on a small-to-medium circuit subset so
``pytest benchmarks/ --benchmark-only`` finishes in minutes; set

    REPRO_BENCH_BUDGET=paper

to use the paper's Section 4 budget (5 runs, 500-generation
stagnation), and

    REPRO_BENCH_FULL_TABLES=1

to run every row of both tables (slow; intended for record runs, or
use ``python -m repro table1 --full --budget paper``).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import PAPER, QUICK, ExperimentBudget


def selected_budget() -> ExperimentBudget:
    """The EA budget selected through the environment."""
    if os.environ.get("REPRO_BENCH_BUDGET", "quick").lower() == "paper":
        return PAPER
    return QUICK


def full_tables() -> bool:
    """Whether to bench every table row instead of the quick subset."""
    return os.environ.get("REPRO_BENCH_FULL_TABLES", "0") == "1"


@pytest.fixture
def budget() -> ExperimentBudget:
    return selected_budget()

"""Benchmark: Figure 1 — the evolutionary algorithm itself.

Figure 1 is the paper's pseudocode for the EA main loop.  This bench
measures a complete engine run on a calibrated test set and records
the convergence trace statistics (generations, evaluations, rate), so
changes to the engine's control flow are caught both in time and in
search quality.
"""

from __future__ import annotations

import pytest

from repro.core.config import CompressionConfig, EAParameters
from repro.core.optimizer import EAMVOptimizer
from repro.testdata.calibration import calibrate_spec
from repro.testdata.registry import TABLE1_STUCK_AT, row_by_name
from repro.testdata.synthetic import SyntheticSpec


@pytest.fixture(scope="module")
def calibrated_s298():
    row = row_by_name(TABLE1_STUCK_AT, "s298")
    spec = SyntheticSpec(
        name=row.circuit,
        n_patterns=row.n_patterns,
        pattern_bits=row.pattern_bits,
        care_density=0.5,
        seed=2005,
    )
    return calibrate_spec(spec, row.published["9C"]).test_set


def test_figure1_engine_run(benchmark, calibrated_s298):
    """One full Figure-1 loop with the paper's S/C/operator settings."""
    config = CompressionConfig(
        block_length=12,
        n_vectors=64,
        runs=1,
        ea=EAParameters(stagnation_limit=50, max_evaluations=2500),
    )
    blocks = calibrated_s298.blocks(12)

    def run():
        return EAMVOptimizer(config, seed=1).optimize(blocks)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    run_result = result.runs[0].ea_result
    benchmark.extra_info["generations"] = run_result.generations
    benchmark.extra_info["evaluations"] = run_result.evaluations
    benchmark.extra_info["best_rate"] = round(result.best_rate, 2)
    benchmark.extra_info["terminated_by"] = run_result.terminated_by

    # Figure 1 semantics: monotone best fitness, S+C bookkeeping.
    best_so_far = float("-inf")
    for stats in run_result.history:
        assert stats.best_fitness >= best_so_far
        best_so_far = stats.best_fitness
    assert run_result.evaluations >= 10  # initial population evaluated

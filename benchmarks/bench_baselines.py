"""Benchmark: the EA against the cited code-based baseline families.

The paper compares directly against 9C [20]; its related-work section
also cites run-length schemes — Golomb [3] and FDR [4].  This bench
runs all five methods on the same calibrated test sets so the
cross-family picture is recorded: run-length codes excel on extremely
X-rich data, fixed-length input-block codes on structured data, and
the EA adapts its matching vectors to both.
"""

from __future__ import annotations

import pytest

from repro.core.baselines import compress_fdr, compress_golomb
from repro.core.config import CompressionConfig, EAParameters
from repro.core.nine_c import compress_nine_c
from repro.core.optimizer import EAMVOptimizer
from repro.testdata.calibration import calibrate_spec
from repro.testdata.registry import TABLE1_STUCK_AT, row_by_name
from repro.testdata.synthetic import SyntheticSpec

_CIRCUITS = ("s349", "s386", "s953")


@pytest.mark.parametrize("circuit", _CIRCUITS)
def test_baseline_comparison(benchmark, circuit):
    row = row_by_name(TABLE1_STUCK_AT, circuit)
    spec = SyntheticSpec(
        name=row.circuit,
        n_patterns=row.n_patterns,
        pattern_bits=row.pattern_bits,
        care_density=0.5,
        seed=2005,
    )
    test_set = calibrate_spec(spec, row.published["9C"]).test_set

    def run_all():
        from repro.core.selective_huffman import compress_selective_huffman

        flat = test_set.flatten()
        rates = {
            "golomb": compress_golomb(flat).rate,
            "fdr": compress_fdr(flat).rate,
            "selective-huffman": compress_selective_huffman(
                test_set.blocks(8), n_coded=8
            ).rate,
            "9C": compress_nine_c(test_set.blocks(8)).rate,
            "9C+HC": compress_nine_c(test_set.blocks(8), use_huffman=True).rate,
        }
        config = CompressionConfig(
            block_length=12,
            n_vectors=64,
            runs=2,
            ea=EAParameters(stagnation_limit=25, max_evaluations=1200),
        )
        ea = EAMVOptimizer(config, seed=7).optimize(test_set.blocks(12))
        rates["EA"] = ea.best_rate
        return rates

    rates = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for method, rate in rates.items():
        benchmark.extra_info[method] = round(rate, 2)
    # The EA must beat the fixed nine-vector code on its home turf.
    assert rates["EA"] > rates["9C"]
    assert rates["9C+HC"] >= rates["9C"]

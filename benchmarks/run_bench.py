#!/usr/bin/env python
"""Emit benchmark trajectory artifacts (``BENCH_*.json``).

Two artifacts, both small and diffable so future PRs re-run this
script and catch regressions:

* ``BENCH_fitness.json`` — times the three pricing paths of
  ``bench_batch.py`` (pinned pre-batching reference, batch-of-one
  scalar wrapper, batched generation kernel) on the
  small/medium/large synthetic workloads: genomes/second plus
  batched-over-reference and batched-over-scalar speedups.  A
  ``kernel_comparison`` section times the batched pipeline under
  every registered covering kernel (gemm, bitpack, scalar) on the
  same workloads plus the ``wide`` K = 96 one, recording the
  bitpack-over-gemm speedup and what ``auto`` would pick.
* ``BENCH_parallel.json`` — runs/second of the multi-run EA fan-out
  through the serial, thread, and process backends at jobs ∈
  {1, 2, 4, 8} (``bench_parallel.scaling_report``), with ``cpu_count``
  recorded so scaling is judged against the machine's ceiling.

::

    PYTHONPATH=src python benchmarks/run_bench.py \\
        [--output BENCH_fitness.json] [--parallel-output BENCH_parallel.json] \\
        [--fitness-only | --parallel-only]

The artifacts intentionally avoid pytest-benchmark's statistics; use
``pytest benchmarks/bench_batch.py --benchmark-only`` (or
``bench_parallel.py``) for full distributions.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402

from bench_batch import (  # noqa: E402
    KERNEL_WORKLOADS,
    KERNELS,
    WORKLOADS,
    build_kernel_workload,
    reference_scalar_fitness,
)
from repro.core.fitness import (  # noqa: E402
    BatchCompressionRateFitness,
    CompressionRateFitness,
)
from repro.core.kernels import select_kernel_name  # noqa: E402
from repro.ea.genome import random_genome  # noqa: E402
from repro.testdata.synthetic import synthetic_test_set  # noqa: E402


def best_seconds(function, repeats: int) -> float:
    """Best-of-N wall time — robust to noisy shared machines."""
    function()  # warm caches and allocations
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def bench_workload(name: str, repeats: int) -> dict:
    spec, block_length, n_vectors, batch_size = WORKLOADS[name]
    blocks = synthetic_test_set(spec).blocks(block_length)
    rng = np.random.default_rng(spec.seed)
    genomes = np.stack(
        [random_genome(n_vectors * block_length, rng) for _ in range(batch_size)]
    )
    genomes[:, -block_length:] = 2

    reference = reference_scalar_fitness(blocks, n_vectors, block_length)
    scalar = CompressionRateFitness(
        blocks, n_vectors=n_vectors, block_length=block_length
    )
    batch = BatchCompressionRateFitness(
        blocks, n_vectors=n_vectors, block_length=block_length
    )
    assert np.allclose(
        batch.evaluate_batch(genomes[:8]),
        [reference(genome) for genome in genomes[:8]],
    ), "pricing paths disagree; refusing to benchmark"

    seconds = {
        "reference_scalar": best_seconds(
            lambda: [reference(genome) for genome in genomes], repeats
        ),
        "scalar_wrapper": best_seconds(
            lambda: [scalar(genome) for genome in genomes], repeats
        ),
        "batched": best_seconds(lambda: batch.evaluate_batch(genomes), repeats),
    }
    throughput = {
        path: batch_size / elapsed for path, elapsed in seconds.items()
    }
    return {
        "workload": name,
        "n_patterns": spec.n_patterns,
        "pattern_bits": spec.pattern_bits,
        "block_length": block_length,
        "n_vectors": n_vectors,
        "batch_size": batch_size,
        "n_distinct_blocks": blocks.n_distinct,
        "genomes_per_second": {
            path: round(value, 1) for path, value in throughput.items()
        },
        "speedup_batched_vs_reference": round(
            throughput["batched"] / throughput["reference_scalar"], 2
        ),
        "speedup_batched_vs_scalar_wrapper": round(
            throughput["batched"] / throughput["scalar_wrapper"], 2
        ),
    }


def bench_kernels(name: str, repeats: int) -> dict:
    """Per-kernel throughput of the batched pipeline on one workload."""
    blocks, block_length, n_vectors, genomes = build_kernel_workload(name)
    batch_size = len(genomes)
    fitnesses = {
        kernel: BatchCompressionRateFitness(
            blocks,
            n_vectors=n_vectors,
            block_length=block_length,
            kernel=kernel,
        )
        for kernel in KERNELS
    }
    sample_rates = [
        fitness.evaluate_batch(genomes[:8]) for fitness in fitnesses.values()
    ]
    assert all(
        (rates == sample_rates[0]).all() for rates in sample_rates
    ), "kernels disagree; refusing to benchmark"

    throughput = {
        kernel: batch_size
        / best_seconds(lambda f=fitness: f.evaluate_batch(genomes), repeats)
        for kernel, fitness in fitnesses.items()
    }
    return {
        "workload": name,
        "block_length": block_length,
        "n_vectors": n_vectors,
        "batch_size": batch_size,
        "n_distinct_blocks": blocks.n_distinct,
        "genomes_per_second": {
            kernel: round(value, 1) for kernel, value in throughput.items()
        },
        "speedup_bitpack_vs_gemm": round(
            throughput["bitpack"] / throughput["gemm"], 2
        ),
        "auto_selects": select_kernel_name(
            batch_size, blocks.n_distinct, n_vectors, block_length
        ),
    }


def emit_fitness_artifact(output: Path, repeats: int) -> None:
    document = {
        "benchmark": "batched fitness engine (cover + Huffman + price)",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "workloads": [
            bench_workload(name, repeats) for name in sorted(WORKLOADS)
        ],
        "kernel_comparison": [
            bench_kernels(name, repeats) for name in sorted(KERNEL_WORKLOADS)
        ],
    }
    output.write_text(json.dumps(document, indent=2) + "\n")
    for row in document["workloads"]:
        print(
            f"{row['workload']:>7}: batched {row['genomes_per_second']['batched']:>9}/s  "
            f"vs reference ×{row['speedup_batched_vs_reference']}  "
            f"vs wrapper ×{row['speedup_batched_vs_scalar_wrapper']}"
        )
    for row in document["kernel_comparison"]:
        rates = row["genomes_per_second"]
        print(
            f"{row['workload']:>7} kernels: "
            + "  ".join(f"{kernel}={rates[kernel]}/s" for kernel in sorted(rates))
            + f"  bitpack/gemm ×{row['speedup_bitpack_vs_gemm']}"
            + f"  (auto → {row['auto_selects']})"
        )
    print(f"wrote {output}")


def emit_parallel_artifact(output: Path, repeats: int) -> None:
    from bench_parallel import scaling_report

    document = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        **scaling_report(repeats=repeats),
    }
    output.write_text(json.dumps(document, indent=2) + "\n")
    for row in document["results"]:
        print(
            f"{row['backend']:>8} jobs={row['jobs']}: "
            f"{row['runs_per_second']:>6}/s  ×{row['speedup_vs_serial']} vs serial"
        )
    print(
        f"wrote {output} (cpu_count={document['cpu_count']}; speedups are "
        "bounded by available cores)"
    )


def main() -> None:
    root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=root / "BENCH_fitness.json",
        help="where to write the fitness JSON artifact",
    )
    parser.add_argument(
        "--parallel-output",
        type=Path,
        default=root / "BENCH_parallel.json",
        help="where to write the parallel-scaling JSON artifact",
    )
    parser.add_argument(
        "--repeats", type=int, default=7, help="best-of-N timing repeats"
    )
    only = parser.add_mutually_exclusive_group()
    only.add_argument(
        "--fitness-only", action="store_true", help="skip the parallel artifact"
    )
    only.add_argument(
        "--parallel-only", action="store_true", help="skip the fitness artifact"
    )
    args = parser.parse_args()

    if not args.parallel_only:
        emit_fitness_artifact(args.output, args.repeats)
    if not args.fitness_only:
        # Multi-run EA timings are much coarser than single-kernel ones;
        # cap the repeats so a refresh stays in minutes.
        emit_parallel_artifact(args.parallel_output, min(args.repeats, 3))


if __name__ == "__main__":
    main()

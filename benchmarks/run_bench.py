#!/usr/bin/env python
"""Emit benchmark trajectory artifacts (``BENCH_*.json``).

Two artifacts, both small and diffable so future PRs re-run this
script and catch regressions:

* ``BENCH_fitness.json`` — times the three pricing paths of
  ``bench_batch.py`` (pinned pre-batching reference, batch-of-one
  scalar wrapper, batched generation kernel) on the
  small/medium/large synthetic workloads: genomes/second plus
  batched-over-reference and batched-over-scalar speedups.  A
  ``kernel_comparison`` section times the batched pipeline under
  every registered covering kernel (gemm, bitpack, scalar) on the
  same workloads plus the ``wide`` K = 96 one, recording the
  bitpack-over-gemm speedup and what ``auto`` would pick.  A
  ``stage_breakdown`` section splits one batched call into its
  pack / match / cover / huffman stages (so a future regression can
  be localized, not just detected) and an ``mv_cache`` section prices
  the unique-MV match-column cache against the fused kernels on
  convergent (high-duplicate) and cold uniform-random batches, with
  hit rates and dedup ratios recorded.  An ``eviction_policy``
  section compares every registered cache policy (lru, lfu, 2q,
  segmented) under real eviction pressure — hit rates and genomes/s
  on convergent and cold-uniform traffic — and a ``warm_start``
  section measures the cold-vs-warm first-generation speedup from a
  persisted cache (written to a throwaway directory, never the real
  ``$REPRO_CACHE_DIR``).  ``cpu_count`` and the resolved cache
  directory are recorded as provenance.
* ``BENCH_parallel.json`` — runs/second of the multi-run EA fan-out
  through the serial, thread, and process backends at jobs ∈
  {1, 2, 4, 8} (``bench_parallel.scaling_report``), with ``cpu_count``
  recorded so scaling is judged against the machine's ceiling, plus a
  ``bitpack_shard_scaling`` section timing
  ``BitpackKernel(shard_backend=ThreadBackend)`` at jobs ∈ {1, 2, 4}.

::

    PYTHONPATH=src python benchmarks/run_bench.py \\
        [--output BENCH_fitness.json] [--parallel-output BENCH_parallel.json] \\
        [--fitness-only | --parallel-only]
    PYTHONPATH=src python benchmarks/run_bench.py --check \\
        [--check-tolerance 0.30]

``--check`` is the regression gate: it re-measures every workload
and compares the *hardware-normalized* batched-vs-reference speedup
against the committed ``BENCH_fitness.json``, exiting nonzero if any
workload's speedup fell by more than ``--check-tolerance`` (default
30%).  Both paths run in the same process, so the gate is meaningful
on any machine — including CI's bench lane, which runs it on every
push; raw genomes/second are printed for context only.  The gated
fitnesses pin cache persistence *off*, so a leftover persisted cache
can never warm-start a measurement the gate depends on.  ``--profile
PATH`` applies a ``repro tune`` profile to every in-process fitness
(CI tunes first, then gates against the tuned profile, so the gate
and the tuner agree on kernel and cache-engagement decisions); the
artifacts record which profile governed the run.

The artifacts intentionally avoid pytest-benchmark's statistics; use
``pytest benchmarks/bench_batch.py --benchmark-only`` (or
``bench_parallel.py``) for full distributions.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402

from bench_batch import (  # noqa: E402
    KERNEL_WORKLOADS,
    KERNELS,
    WORKLOADS,
    build_convergent_workload,
    build_kernel_workload,
    reference_scalar_fitness,
    stage_timings,
)
from repro.core.cache import POLICY_CHOICES, mv_cache_dir  # noqa: E402
from repro.core.fitness import (  # noqa: E402
    DEFAULT_MV_CACHE_SIZE,
    BatchCompressionRateFitness,
    CompressionRateFitness,
)
from repro.core.kernels import select_kernel_name  # noqa: E402
from repro.ea.genome import random_genome  # noqa: E402
from repro.io_utils import atomic_write_json  # noqa: E402
from repro.testdata.synthetic import synthetic_test_set  # noqa: E402
from repro.tuning.profile import (  # noqa: E402
    get_active_profile,
    load_profile_or_none,
    set_active_profile,
)

# Workloads priced by the mv_cache section; small's table sits below
# the dedup engagement floor, so it has nothing to measure.
MV_CACHE_WORKLOADS = ("medium", "large", "wide")

# Workloads for the eviction_policy and warm_start sections — one per
# kind is enough (the parity suites pin that results never differ; the
# bench only records *speed*, and the shapes repeat across workloads).
POLICY_BENCH_WORKLOADS = ("medium",)
WARM_START_WORKLOADS = ("medium", "large")


def best_seconds(function, repeats: int) -> float:
    """Best-of-N wall time — robust to noisy shared machines."""
    function()  # warm caches and allocations
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def bench_workload(name: str, repeats: int) -> dict:
    """Reference / wrapper / batched throughput on one workload.

    The batched contender pins ``mv_cache_size=0``: best-of-N repeats
    of one fixed batch would otherwise hit a ~100% warm MV cache and
    stop exercising the covering kernels — and this row feeds the
    ``--check`` regression gate, which exists to guard exactly those
    kernels.  The cached path is measured in the ``mv_cache`` section
    against both convergent and cold batches.
    """
    spec, block_length, n_vectors, batch_size = WORKLOADS[name]
    blocks = synthetic_test_set(spec).blocks(block_length)
    rng = np.random.default_rng(spec.seed)
    genomes = np.stack(
        [random_genome(n_vectors * block_length, rng) for _ in range(batch_size)]
    )
    genomes[:, -block_length:] = 2

    reference = reference_scalar_fitness(blocks, n_vectors, block_length)
    # Persistence is pinned off alongside the cache itself: the
    # ``--check`` gate times these exact rows, and a warm-started cache
    # (for example a leftover ``$REPRO_CACHE_DIR`` from a previous lane)
    # would make the measurement depend on disk state instead of code.
    scalar = CompressionRateFitness(
        blocks,
        n_vectors=n_vectors,
        block_length=block_length,
        mv_cache_size=0,
        mv_cache_persist=False,
    )
    batch = BatchCompressionRateFitness(
        blocks,
        n_vectors=n_vectors,
        block_length=block_length,
        mv_cache_size=0,
        mv_cache_persist=False,
    )
    assert np.allclose(
        batch.evaluate_batch(genomes[:8]),
        [reference(genome) for genome in genomes[:8]],
    ), "pricing paths disagree; refusing to benchmark"

    seconds = {
        "reference_scalar": best_seconds(
            lambda: [reference(genome) for genome in genomes], repeats
        ),
        "scalar_wrapper": best_seconds(
            lambda: [scalar(genome) for genome in genomes], repeats
        ),
        "batched": best_seconds(lambda: batch.evaluate_batch(genomes), repeats),
    }
    throughput = {
        path: batch_size / elapsed for path, elapsed in seconds.items()
    }
    return {
        "workload": name,
        "n_patterns": spec.n_patterns,
        "pattern_bits": spec.pattern_bits,
        "block_length": block_length,
        "n_vectors": n_vectors,
        "batch_size": batch_size,
        "n_distinct_blocks": blocks.n_distinct,
        "genomes_per_second": {
            path: round(value, 1) for path, value in throughput.items()
        },
        "speedup_batched_vs_reference": round(
            throughput["batched"] / throughput["reference_scalar"], 2
        ),
        "speedup_batched_vs_scalar_wrapper": round(
            throughput["batched"] / throughput["scalar_wrapper"], 2
        ),
    }


def bench_kernels(name: str, repeats: int) -> dict:
    """Per-kernel throughput of the batched pipeline on one workload.

    The MV cache is disabled so repeats keep timing the kernels
    themselves (the cached path has its own ``mv_cache`` section).
    """
    blocks, block_length, n_vectors, genomes = build_kernel_workload(name)
    batch_size = len(genomes)
    fitnesses = {
        kernel: BatchCompressionRateFitness(
            blocks,
            n_vectors=n_vectors,
            block_length=block_length,
            kernel=kernel,
            mv_cache_size=0,
        )
        for kernel in KERNELS
    }
    sample_rates = [
        fitness.evaluate_batch(genomes[:8]) for fitness in fitnesses.values()
    ]
    assert all(
        (rates == sample_rates[0]).all() for rates in sample_rates
    ), "kernels disagree; refusing to benchmark"

    throughput = {
        kernel: batch_size
        / best_seconds(lambda f=fitness: f.evaluate_batch(genomes), repeats)
        for kernel, fitness in fitnesses.items()
    }
    row = {
        "workload": name,
        "block_length": block_length,
        "n_vectors": n_vectors,
        "batch_size": batch_size,
        "n_distinct_blocks": blocks.n_distinct,
        "genomes_per_second": {
            kernel: round(value, 1) for kernel, value in throughput.items()
        },
        "speedup_bitpack_vs_gemm": round(
            throughput["bitpack"] / throughput["gemm"], 2
        ),
        "auto_selects": select_kernel_name(
            batch_size, blocks.n_distinct, n_vectors, block_length
        ),
    }
    if "native" in throughput:
        row["speedup_native_vs_bitpack"] = round(
            throughput["native"] / throughput["bitpack"], 2
        )
    return row


def bench_stages(name: str, repeats: int, kernel: str = "auto") -> dict:
    """Per-stage seconds of one batched call under one kernel choice.

    The default row uses ``auto`` (the shipped configuration — with a
    toolchain that resolves to ``native``); explicit rows pin a named
    kernel so the breakdown records what ``auto`` replaced.
    """
    blocks, block_length, n_vectors, genomes = build_kernel_workload(name)
    fitness = BatchCompressionRateFitness(
        blocks, n_vectors=n_vectors, block_length=block_length, kernel=kernel
    )
    timings = stage_timings(fitness, genomes, repeats)
    total = sum(timings.values())
    return {
        "workload": name,
        "kernel": fitness.kernel_name,
        "batch_size": len(genomes),
        "seconds": {stage: round(value, 6) for stage, value in timings.items()},
        "fraction": {
            stage: round(value / total, 3) for stage, value in timings.items()
        },
    }


def bench_mv_cache(name: str, repeats: int) -> dict:
    """MV match-column cache vs the fused kernels on one workload.

    Two batch compositions bracket the cache's operating range:

    * ``convergent`` — copy+mutate offspring of a few parents, warmed
      by one prior generation: the late-run steady state the cache is
      built for (the PR-4 acceptance target is ≥1.5× here);
    * ``uniform_cold`` — freshly drawn random batches never seen
      before: the worst case, every MV row unique and cold.  Recorded
      honestly so the dedup path's overhead on cache-hostile batches
      stays visible.
    """
    blocks, block_length, n_vectors, convergent = build_convergent_workload(
        name
    )
    batch_size = len(convergent)

    def fitness(mv_cache_size):
        return BatchCompressionRateFitness(
            blocks,
            n_vectors=n_vectors,
            block_length=block_length,
            mv_cache_size=mv_cache_size,
        )

    fused = fitness(0)
    cached = fitness(DEFAULT_MV_CACHE_SIZE)
    fused_seconds = best_seconds(
        lambda: fused.evaluate_batch(convergent), repeats
    )
    cached.evaluate_batch(convergent)  # warm generation
    cached_seconds = best_seconds(
        lambda: cached.evaluate_batch(convergent), repeats
    )
    stats = cached.mv_cache_stats

    # Cold uniform batches: fresh genomes per measurement, median-of-N.
    spec = KERNEL_WORKLOADS[name][0]
    rng = np.random.default_rng(spec.seed + 2)
    def fresh_batch():
        genomes = np.stack(
            [
                random_genome(n_vectors * block_length, rng)
                for _ in range(batch_size)
            ]
        )
        genomes[:, -block_length:] = 2
        return genomes

    def cold_seconds(target):
        target.evaluate_batch(fresh_batch())  # warm allocations only
        samples = []
        for _ in range(max(3, repeats)):
            batch = fresh_batch()
            start = time.perf_counter()
            target.evaluate_batch(batch)
            samples.append(time.perf_counter() - start)
        return float(np.median(samples))

    fused_cold = cold_seconds(fitness(0))
    cached_cold = cold_seconds(fitness(DEFAULT_MV_CACHE_SIZE))

    return {
        "workload": f"convergent-{name}",
        "block_length": block_length,
        "n_vectors": n_vectors,
        "batch_size": batch_size,
        "n_distinct_blocks": blocks.n_distinct,
        "genomes_per_second": {
            "fused": round(batch_size / fused_seconds, 1),
            "cached_steady_state": round(batch_size / cached_seconds, 1),
            "fused_uniform_cold": round(batch_size / fused_cold, 1),
            "cached_uniform_cold": round(batch_size / cached_cold, 1),
        },
        "speedup_cached_vs_fused_convergent": round(
            fused_seconds / cached_seconds, 2
        ),
        "speedup_cached_vs_fused_uniform_cold": round(
            fused_cold / cached_cold, 2
        ),
        "mv_cache": {
            "capacity": stats.capacity,
            "hit_rate": round(stats.hit_rate, 3),
            "rows_total": stats.rows_total,
            "rows_unique": stats.rows_unique,
            "rows_saved_rate": round(stats.rows_saved_rate, 3),
        },
    }


def _fresh_batch_maker(name, n_vectors, block_length, batch_size):
    """Generator of never-seen uniform-random batches for one workload."""
    spec = KERNEL_WORKLOADS[name][0]
    rng = np.random.default_rng(spec.seed + 3)

    def fresh_batch():
        genomes = np.stack(
            [
                random_genome(n_vectors * block_length, rng)
                for _ in range(batch_size)
            ]
        )
        genomes[:, -block_length:] = 2
        return genomes

    return fresh_batch


def bench_eviction_policies(name: str, repeats: int) -> dict:
    """Throughput and hit rate of every eviction policy on one workload.

    Capacity is pinned to *half* the convergent batch's unique-MV-row
    count so eviction pressure is real and the policies can actually
    diverge — at the default capacity the whole working set fits and
    every policy is trivially identical.  Two traffic shapes:

    * ``convergent`` — repeated generations of the same high-duplicate
      offspring batch (steady state; what retention quality buys);
    * ``uniform_cold`` — a stream of never-repeated random batches
      (pure scan; what admission/eviction overhead costs when nothing
      is reusable).

    Rates are pinned byte-identical across policies by the parity
    suites; only speed and hit rate may differ here.
    """
    blocks, block_length, n_vectors, convergent = build_convergent_workload(
        name
    )
    batch_size = len(convergent)

    probe = BatchCompressionRateFitness(
        blocks, n_vectors=n_vectors, block_length=block_length
    )
    probe.evaluate_batch(convergent)
    rows_unique = probe.mv_cache_stats.rows_unique
    capacity = max(64, rows_unique // 2)

    fresh_batch = _fresh_batch_maker(name, n_vectors, block_length, batch_size)
    policies = {}
    for policy in POLICY_CHOICES:

        def fitness():
            return BatchCompressionRateFitness(
                blocks,
                n_vectors=n_vectors,
                block_length=block_length,
                mv_cache_size=capacity,
                mv_cache_policy=policy,
            )

        steady = fitness()
        steady.evaluate_batch(convergent)  # warm generation
        steady_seconds = best_seconds(
            lambda: steady.evaluate_batch(convergent), repeats
        )
        steady_stats = steady.mv_cache_stats

        cold = fitness()
        cold.evaluate_batch(fresh_batch())  # warm allocations only
        samples = []
        for _ in range(max(3, repeats)):
            batch = fresh_batch()
            start = time.perf_counter()
            cold.evaluate_batch(batch)
            samples.append(time.perf_counter() - start)
        cold_seconds = float(np.median(samples))
        cold_stats = cold.mv_cache_stats

        policies[policy] = {
            "genomes_per_second": {
                "convergent_steady_state": round(
                    batch_size / steady_seconds, 1
                ),
                "uniform_cold": round(batch_size / cold_seconds, 1),
            },
            "hit_rate": {
                "convergent": round(steady_stats.hit_rate, 3),
                "uniform_cold": round(cold_stats.hit_rate, 3),
            },
            "evictions_convergent": steady_stats.evictions,
        }

    return {
        "workload": f"convergent-{name}",
        "batch_size": batch_size,
        "rows_unique_per_batch": rows_unique,
        "capacity": capacity,
        "policies": policies,
    }


def bench_warm_start(name: str, repeats: int) -> dict:
    """Cold vs persisted-warm *first generation* on one workload.

    Times the complete first ``evaluate_batch`` of a freshly built
    fitness — kernel resolution, persisted-cache probe, pricing —
    first against an empty cache directory, then against the file a
    previous run persisted, in a throwaway ``$REPRO_CACHE_DIR`` so the
    bench never touches (or is warmed by) the user's real cache.
    """
    blocks, block_length, n_vectors, convergent = build_convergent_workload(
        name
    )
    batch_size = len(convergent)

    with tempfile.TemporaryDirectory(prefix="repro-bench-mvcache-") as tmp:
        cache_dir = Path(tmp)

        def fitness():
            return BatchCompressionRateFitness(
                blocks,
                n_vectors=n_vectors,
                block_length=block_length,
                mv_cache_persist=True,
                mv_cache_dir=cache_dir,
            )

        def first_generation():
            samples = []
            for _ in range(max(3, repeats)):
                target = fitness()
                start = time.perf_counter()
                target.evaluate_batch(convergent)
                samples.append(time.perf_counter() - start)
            return float(np.median(samples)), target.mv_cache_stats

        # Cold: the directory is empty, every probe misses silently.
        cold_seconds, _ = first_generation()
        # Persist one generation's columns, then re-measure first
        # generations that warm-load them.
        seeding = fitness()
        seeding.evaluate_batch(convergent)
        seeding.persist_mv_cache()
        warm_seconds, warm_stats = first_generation()

    return {
        "workload": f"convergent-{name}",
        "batch_size": batch_size,
        "first_generation_genomes_per_second": {
            "cold": round(batch_size / cold_seconds, 1),
            "warm": round(batch_size / warm_seconds, 1),
        },
        "speedup_warm_vs_cold_first_generation": round(
            cold_seconds / warm_seconds, 2
        ),
        "warm_loaded_entries": warm_stats.warm_loaded,
        "warm_first_generation_hit_rate": round(warm_stats.hit_rate, 3),
    }


def _profile_note() -> dict | None:
    """What tuning profile governed this run (None = shipped defaults)."""
    profile = get_active_profile()
    if profile is None:
        return None
    return {"source": profile.source, "created": profile.created}


def emit_fitness_artifact(output: Path, repeats: int) -> None:
    document = {
        "benchmark": "batched fitness engine (cover + Huffman + price)",
        "python": platform.python_version(),
        "numpy": np.__version__,
        # Provenance: throughput scales with the machine, and the
        # warm_start section depends on where persisted caches live
        # (the bench itself always uses a throwaway directory).
        "cpu_count": os.cpu_count(),
        "repro_cache_dir": {
            "env": os.environ.get("REPRO_CACHE_DIR"),
            "resolved": str(mv_cache_dir()),
        },
        "tuning_profile": _profile_note(),
        "workloads": [
            bench_workload(name, repeats) for name in sorted(WORKLOADS)
        ],
        "kernel_comparison": [
            bench_kernels(name, repeats) for name in sorted(KERNEL_WORKLOADS)
        ],
        "stage_breakdown": [
            bench_stages(name, repeats, kernel=kernel)
            for name in sorted(KERNEL_WORKLOADS)
            # With a toolchain, auto resolves to native; a pinned
            # bitpack row records what the compiled loop replaced.
            for kernel in (
                ("auto", "bitpack") if "native" in KERNELS else ("auto",)
            )
        ],
        "mv_cache": [
            bench_mv_cache(name, repeats) for name in MV_CACHE_WORKLOADS
        ],
        "eviction_policy": [
            bench_eviction_policies(name, repeats)
            for name in POLICY_BENCH_WORKLOADS
        ],
        "warm_start": [
            bench_warm_start(name, repeats) for name in WARM_START_WORKLOADS
        ],
    }
    atomic_write_json(output, document)
    for row in document["workloads"]:
        print(
            f"{row['workload']:>7}: batched {row['genomes_per_second']['batched']:>9}/s  "
            f"vs reference ×{row['speedup_batched_vs_reference']}  "
            f"vs wrapper ×{row['speedup_batched_vs_scalar_wrapper']}"
        )
    for row in document["kernel_comparison"]:
        rates = row["genomes_per_second"]
        print(
            f"{row['workload']:>7} kernels: "
            + "  ".join(f"{kernel}={rates[kernel]}/s" for kernel in sorted(rates))
            + f"  bitpack/gemm ×{row['speedup_bitpack_vs_gemm']}"
            + (
                f"  native/bitpack ×{row['speedup_native_vs_bitpack']}"
                if "speedup_native_vs_bitpack" in row
                else ""
            )
            + f"  (auto → {row['auto_selects']})"
        )
    for row in document["stage_breakdown"]:
        fractions = row["fraction"]
        print(
            f"{row['workload']:>7} stages ({row['kernel']}): "
            + "  ".join(
                f"{stage}={fractions[stage]:.0%}" for stage in fractions
            )
        )
    for row in document["mv_cache"]:
        rates = row["genomes_per_second"]
        print(
            f"{row['workload']:>18}: cached {rates['cached_steady_state']}/s "
            f"vs fused {rates['fused']}/s "
            f"×{row['speedup_cached_vs_fused_convergent']}  "
            f"(hit {row['mv_cache']['hit_rate']:.0%}; uniform-cold "
            f"×{row['speedup_cached_vs_fused_uniform_cold']})"
        )
    for row in document["eviction_policy"]:
        for policy, entry in row["policies"].items():
            rates = entry["genomes_per_second"]
            hits = entry["hit_rate"]
            print(
                f"{row['workload']:>18} policy {policy:>9}: "
                f"steady {rates['convergent_steady_state']}/s "
                f"(hit {hits['convergent']:.0%})  "
                f"cold {rates['uniform_cold']}/s "
                f"(hit {hits['uniform_cold']:.0%})"
            )
    for row in document["warm_start"]:
        rates = row["first_generation_genomes_per_second"]
        print(
            f"{row['workload']:>18} first gen: warm {rates['warm']}/s "
            f"vs cold {rates['cold']}/s "
            f"×{row['speedup_warm_vs_cold_first_generation']}  "
            f"({row['warm_loaded_entries']} entries loaded, "
            f"hit {row['warm_first_generation_hit_rate']:.0%})"
        )
    print(f"wrote {output}")


def check_against_committed(
    committed_path: Path, repeats: int, tolerance: float
) -> int:
    """Regression gate: fresh batched speed vs the committed artifact.

    The gated metric is ``speedup_batched_vs_reference`` — the batched
    path against the pinned pre-batching reference, both measured *in
    this process on this machine* — so the comparison with the
    committed artifact is hardware-normalized: a slower CI runner
    slows numerator and denominator alike, and only a genuine change
    in the batched path's relative speed moves the ratio.  Raw
    genomes/second are printed for context but never gate (they track
    the machine, not the code).  A workload that lands below tolerance
    is re-measured once before being declared regressed, so a single
    noisy-runner spike (another job stealing the cores mid-measurement)
    cannot fail the build spuriously.  Returns a process exit code —
    nonzero when any workload's speedup fell more than ``tolerance``
    below the committed one on both measurements.
    """
    committed = json.loads(committed_path.read_text())
    failures = []
    profile = _profile_note()
    print(
        f"checking against {committed_path} (tolerance {tolerance:.0%}, "
        "metric: batched-vs-reference speedup, tuning: "
        f"{profile['source'] if profile else 'shipped defaults'})"
    )
    for row in committed["workloads"]:
        name = row["workload"]
        old = row["speedup_batched_vs_reference"]
        fresh = bench_workload(name, repeats)
        new = fresh["speedup_batched_vs_reference"]
        ratio = new / old
        retried = ""
        if ratio < 1.0 - tolerance:
            fresh = bench_workload(name, repeats)
            new = fresh["speedup_batched_vs_reference"]
            ratio = new / old
            retried = " [re-measured]"
        verdict = "ok" if ratio >= 1.0 - tolerance else "REGRESSED"
        print(
            f"{name:>7}: speedup committed ×{old}  fresh ×{new}  "
            f"(ratio {ratio:.2f}; fresh batched "
            f"{fresh['genomes_per_second']['batched']}/s)  {verdict}{retried}"
        )
        if verdict != "ok":
            failures.append(name)
    if failures:
        print(f"regression gate FAILED for: {', '.join(failures)}")
        return 1
    print("regression gate passed")
    return 0


def emit_parallel_artifact(output: Path, repeats: int) -> None:
    from bench_parallel import bitpack_shard_report, scaling_report

    document = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "tuning_profile": _profile_note(),
        **scaling_report(repeats=repeats),
        "bitpack_shard_scaling": bitpack_shard_report(repeats=repeats),
    }
    atomic_write_json(output, document)
    for row in document["results"]:
        print(
            f"{row['backend']:>8} jobs={row['jobs']}: "
            f"{row['runs_per_second']:>6}/s  ×{row['speedup_vs_serial']} vs serial"
        )
    for row in document["bitpack_shard_scaling"]["results"]:
        print(
            f"bitpack shards jobs={row['jobs']}: "
            f"{row['genomes_per_second']:>8}/s  "
            f"×{row['speedup_vs_serial']} vs serial"
        )
    print(
        f"wrote {output} (cpu_count={document['cpu_count']}; speedups are "
        "bounded by available cores)"
    )


def emit_serve_artifact(output: Path) -> None:
    from bench_serve import serve_report

    document = {
        "benchmark": "serve daemon (warm state + cross-request batching)",
        "python": platform.python_version(),
        "numpy": np.__version__,
        # One process, one machine: daemon throughput is bounded by
        # cpu_count — on a single core the win is warm state and
        # fewer kernel passes, not parallelism.
        "cpu_count": os.cpu_count(),
        "tuning_profile": _profile_note(),
        **serve_report(),
    }
    atomic_write_json(output, document)
    cold = document["cold_per_request"]["requests_per_second"]
    print(f"cold per-request: {cold}/s")
    print(
        f"warm serial: {document['warm_serial']['requests_per_second']}/s  "
        f"×{document['warm_serial']['speedup_vs_cold']} vs cold"
    )
    for row in document["daemon"]:
        print(
            f"daemon c={row['concurrency']:>2}: "
            f"{row['requests_per_second']:>7}/s  "
            f"mean occupancy {row['mean_batch_occupancy']}"
        )
    print(
        f"wrote {output} (cpu_count={document['cpu_count']}; "
        f"warm+batched@64 ×{document['speedup_warm_batched_64_vs_cold']} "
        "vs cold)"
    )


def main() -> None:
    root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=root / "BENCH_fitness.json",
        help="where to write the fitness JSON artifact",
    )
    parser.add_argument(
        "--parallel-output",
        type=Path,
        default=root / "BENCH_parallel.json",
        help="where to write the parallel-scaling JSON artifact",
    )
    parser.add_argument(
        "--serve-output",
        type=Path,
        default=root / "BENCH_serve.json",
        help="where to write the serve-daemon JSON artifact",
    )
    parser.add_argument(
        "--repeats", type=int, default=7, help="best-of-N timing repeats"
    )
    only = parser.add_mutually_exclusive_group()
    only.add_argument(
        "--fitness-only",
        action="store_true",
        help="emit only the fitness artifact",
    )
    only.add_argument(
        "--parallel-only",
        action="store_true",
        help="emit only the parallel artifact",
    )
    only.add_argument(
        "--serve-only",
        action="store_true",
        help="emit only the serve-daemon artifact",
    )
    only.add_argument(
        "--check",
        action="store_true",
        help=(
            "regression mode: re-measure batched genomes/s and exit "
            "nonzero if any workload is slower than the committed "
            "artifact by more than --check-tolerance"
        ),
    )
    parser.add_argument(
        "--check-tolerance",
        type=float,
        default=0.30,
        help="allowed fractional slowdown before --check fails (default 0.30)",
    )
    parser.add_argument(
        "--profile",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "tuning profile written by `repro tune`; applied to every "
            "in-process fitness so the regression gate and the tuner "
            "agree on kernel and cache-engagement decisions (the gated "
            "metric stays hardware-normalized; a mismatched profile is "
            "ignored with a warning)"
        ),
    )
    args = parser.parse_args()

    if args.profile is not None:
        profile = load_profile_or_none(
            args.profile,
            warn=lambda reason: print(
                f"warning: ignoring tuning profile: {reason}", file=sys.stderr
            ),
        )
        set_active_profile(profile)

    if args.check:
        raise SystemExit(
            check_against_committed(
                args.output, args.repeats, args.check_tolerance
            )
        )
    if not args.parallel_only and not args.serve_only:
        emit_fitness_artifact(args.output, args.repeats)
    if not args.fitness_only and not args.serve_only:
        # Multi-run EA timings are much coarser than single-kernel ones;
        # cap the repeats so a refresh stays in minutes.
        emit_parallel_artifact(args.parallel_output, min(args.repeats, 3))
    if not args.fitness_only and not args.parallel_only:
        # Whole-request timings over HTTP: repeats would re-measure
        # connection jitter, so the serve bench times one full sweep.
        emit_serve_artifact(args.serve_output)


if __name__ == "__main__":
    main()

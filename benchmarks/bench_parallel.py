"""Runs/second scaling of the parallel execution subsystem.

The workload is the paper's multi-run protocol at the QUICK budget:
one :class:`EAMVOptimizer` fanning ``RUNS`` independent EA runs over a
medium synthetic test set (the same spec as ``bench_batch``'s
``medium``).  Contenders are the serial backend and thread/process
pools at several job counts; since every run is self-seeded, all
contenders produce bit-identical results and the only thing measured
is scheduling.

Run ``pytest benchmarks/bench_parallel.py --benchmark-only`` for
distributions, or ``python benchmarks/run_bench.py`` to (re)generate
the ``BENCH_parallel.json`` trajectory artifact.  Speedups are bounded
by the machine — the artifact records ``cpu_count`` so a 1-core CI
container's ~1× is read as the hardware ceiling, not a regression.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.config import CompressionConfig, EAParameters
from repro.core.optimizer import EAMVOptimizer
from repro.parallel import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set

RUNS = 8  # independent EA runs per optimize() call — the fan-out width
JOB_COUNTS = (1, 2, 4, 8)

SPEC = SyntheticSpec(
    "bench-parallel", n_patterns=200, pattern_bits=64, care_density=0.4, seed=12
)
CONFIG = CompressionConfig(
    block_length=12,
    n_vectors=64,
    runs=RUNS,
    # QUICK-budget termination: the per-row effort of a default table run.
    ea=EAParameters(stagnation_limit=30, max_evaluations=1500),
)


def _blocks():
    return synthetic_test_set(SPEC).blocks(CONFIG.block_length)


def _backends() -> dict[str, ExecutionBackend]:
    contenders: dict[str, ExecutionBackend] = {"serial": SerialBackend()}
    for jobs in JOB_COUNTS[1:]:
        contenders[f"thread-{jobs}"] = ThreadBackend(jobs)
        contenders[f"process-{jobs}"] = ProcessBackend(jobs)
    return contenders


@pytest.mark.parametrize("name", list(_backends()))
def test_multi_run_scaling(benchmark, name):
    backend = _backends()[name]
    blocks = _blocks()

    def optimize():
        return EAMVOptimizer(CONFIG, seed=2005, backend=backend).optimize(blocks)

    result = benchmark.pedantic(optimize, rounds=1, iterations=1)
    benchmark.extra_info["backend"] = name
    benchmark.extra_info["runs"] = RUNS
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["mean_rate"] = round(result.mean_rate, 3)


def scaling_report(repeats: int = 3, kinds: tuple[str, ...] = ("thread", "process")) -> dict:
    """Measure runs/second per backend and job count (for run_bench).

    Returns the ``BENCH_parallel.json`` document body.  Every
    contender's result is checked for bit-identical rates against the
    serial reference before its timing is recorded.
    """
    blocks = _blocks()

    def best_seconds(backend: ExecutionBackend) -> tuple[float, list[float]]:
        best, rates = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            result = EAMVOptimizer(CONFIG, seed=2005, backend=backend).optimize(
                blocks
            )
            best = min(best, time.perf_counter() - start)
            rates = [run.rate for run in result.runs]
        return best, rates

    serial_seconds, serial_rates = best_seconds(SerialBackend())
    results = [
        {
            "backend": "serial",
            "jobs": 1,
            "seconds": round(serial_seconds, 3),
            "runs_per_second": round(RUNS / serial_seconds, 2),
            "speedup_vs_serial": 1.0,
        }
    ]
    for jobs in JOB_COUNTS[1:]:
        for kind in kinds:
            backend = (
                ThreadBackend(jobs) if kind == "thread" else ProcessBackend(jobs)
            )
            seconds, rates = best_seconds(backend)
            assert rates == serial_rates, (
                f"{kind}-{jobs} diverged from the serial reference; "
                "refusing to benchmark"
            )
            results.append(
                {
                    "backend": kind,
                    "jobs": jobs,
                    "seconds": round(seconds, 3),
                    "runs_per_second": round(RUNS / seconds, 2),
                    "speedup_vs_serial": round(serial_seconds / seconds, 2),
                }
            )
    return {
        "benchmark": "parallel multi-run fan-out (EAMVOptimizer.optimize)",
        "workload": {
            "n_patterns": SPEC.n_patterns,
            "pattern_bits": SPEC.pattern_bits,
            "block_length": CONFIG.block_length,
            "n_vectors": CONFIG.n_vectors,
            "runs": RUNS,
            "stagnation_limit": CONFIG.ea.stagnation_limit,
            "max_evaluations": CONFIG.ea.max_evaluations,
        },
        "cpu_count": os.cpu_count(),
        "results": results,
    }


def bitpack_shard_report(repeats: int = 3) -> dict:
    """Shard-level thread scaling of the bitpack covering kernel.

    Times ``BitpackKernel(shard_backend=ThreadBackend(jobs))`` on the
    bandwidth-bound ``large`` batch workload at jobs ∈ {1, 2, 4}, with
    ``shard_size`` forced small enough that every job count has shards
    to fan out.  The integer ufuncs release the GIL, so on multi-core
    hardware threads are an honest parallel axis *inside* one fitness
    call; on a single-core container the artifact records the ~1×
    ceiling (judge against ``cpu_count``).  Every contender's rates
    are checked against the serial kernel before timing is recorded.
    """
    from bench_batch import build_kernel_workload

    from repro.core.fitness import BatchCompressionRateFitness
    from repro.core.kernels import BitpackKernel

    blocks, block_length, n_vectors, genomes = build_kernel_workload("large")
    shard_size = 512  # D≈3.3k → 7 shards: enough fan-out for 4 workers
    batch_size = len(genomes)

    def contender(jobs: int) -> BatchCompressionRateFitness:
        backend = None if jobs == 1 else ThreadBackend(jobs)
        kernel = BitpackKernel(shard_size=shard_size, shard_backend=backend)
        # The MV cache would absorb the kernel pass after the first
        # call; disable it so repeats keep timing the kernel itself.
        return BatchCompressionRateFitness(
            blocks,
            n_vectors=n_vectors,
            block_length=block_length,
            kernel=kernel,
            mv_cache_size=0,
        )

    def best_seconds(fitness) -> tuple[float, list[float]]:
        rates = fitness.evaluate_batch(genomes)  # warm caches
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            rates = fitness.evaluate_batch(genomes)
            best = min(best, time.perf_counter() - start)
        return best, [float(rate) for rate in rates]

    serial_seconds, serial_rates = best_seconds(contender(1))
    results = [
        {
            "jobs": 1,
            "seconds": round(serial_seconds, 3),
            "genomes_per_second": round(batch_size / serial_seconds, 1),
            "speedup_vs_serial": 1.0,
        }
    ]
    for jobs in (2, 4):
        seconds, rates = best_seconds(contender(jobs))
        assert rates == serial_rates, (
            f"thread-{jobs} shards diverged from serial; refusing to benchmark"
        )
        results.append(
            {
                "jobs": jobs,
                "seconds": round(seconds, 3),
                "genomes_per_second": round(batch_size / seconds, 1),
                "speedup_vs_serial": round(serial_seconds / seconds, 2),
            }
        )
    return {
        "benchmark": "bitpack kernel shard fan-out (ThreadBackend)",
        "workload": "large",
        "batch_size": batch_size,
        "n_distinct_blocks": blocks.n_distinct,
        "shard_size": shard_size,
        "cpu_count": os.cpu_count(),
        "results": results,
    }

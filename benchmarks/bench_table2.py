"""Benchmark: reproduce Table 2 (path-delay compression rates).

Table 2 compares 9C, 9C+HC, EA1 (K=8, L=9) and EA2 (K=12, L=64) on
path-delay test sets (vector pairs).  One benchmark per circuit row
plus a subset-average shape check: EA2 > EA1 ≳ 9C+HC > 9C.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_row
from repro.experiments.tables import DEFAULT_QUICK_TABLE2
from repro.testdata.registry import TABLE2_PATH_DELAY

from .conftest import full_tables, selected_budget

_ROWS = [
    row
    for row in TABLE2_PATH_DELAY
    if full_tables() or row.circuit in DEFAULT_QUICK_TABLE2
]


@pytest.mark.parametrize("row", _ROWS, ids=lambda row: row.circuit)
def test_table2_row(benchmark, row):
    budget = selected_budget()

    result = benchmark.pedantic(
        run_row,
        args=(row, "path-delay"),
        kwargs={"budget": budget, "seed": 2005},
        rounds=1,
        iterations=1,
    )

    benchmark.extra_info["circuit"] = row.circuit
    benchmark.extra_info["test_set_bits"] = row.test_set_bits
    for column in ("9C", "9C+HC", "EA1", "EA2"):
        benchmark.extra_info[f"measured_{column}"] = round(
            result.measured[column], 2
        )
        benchmark.extra_info[f"published_{column}"] = row.published[column]

    assert abs(result.measured["9C"] - row.published["9C"]) <= 1.5
    assert result.measured["9C+HC"] >= result.measured["9C"] - 1e-9


def test_table2_average_shape(benchmark):
    """EA2 beats EA1 and 9C+HC on the benched subset average."""
    budget = selected_budget()

    def build():
        from repro.experiments.tables import build_table2

        circuits = None if full_tables() else ("s27", "s298", "s444")
        return build_table2(circuits=circuits, budget=budget, seed=2005)

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    averages = {c: table.measured_average(c) for c in table.columns}
    benchmark.extra_info.update(
        {f"avg_{k}": round(v, 2) for k, v in averages.items()}
    )
    assert averages["9C"] < averages["9C+HC"]
    assert averages["EA2"] > averages["9C+HC"]

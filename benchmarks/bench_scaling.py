"""Benchmark: how the pipeline scales with test-set size.

Both tables sort their rows by test-set size, and the paper's largest
row is 81 M bits.  This bench measures the two size-critical
operations — 9C compression (9 vectorized covering passes) and a
single EA fitness evaluation — across three decades of test-set size,
so regressions in the distinct-block fast path show up immediately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fitness import CompressionRateFitness
from repro.core.nine_c import compress_nine_c
from repro.ea.genome import random_genome
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set

_SIZES = {
    "1k": (50, 20),
    "10k": (250, 40),
    "100k": (1250, 80),
    "1M": (6250, 160),
}


@pytest.mark.parametrize("label", list(_SIZES), ids=list(_SIZES))
def test_scaling_nine_c(benchmark, label):
    n_patterns, pattern_bits = _SIZES[label]
    test_set = synthetic_test_set(
        SyntheticSpec(
            f"scale-{label}",
            n_patterns=n_patterns,
            pattern_bits=pattern_bits,
            care_density=0.4,
            seed=7,
        )
    )
    blocks = test_set.blocks(8)
    benchmark.extra_info["total_bits"] = test_set.total_bits
    benchmark.extra_info["distinct_blocks"] = blocks.n_distinct
    result = benchmark.pedantic(
        compress_nine_c, args=(blocks,), rounds=3, iterations=1
    )
    assert result.payload_bits > 0


@pytest.mark.parametrize("label", list(_SIZES), ids=list(_SIZES))
def test_scaling_fitness_evaluation(benchmark, label):
    n_patterns, pattern_bits = _SIZES[label]
    test_set = synthetic_test_set(
        SyntheticSpec(
            f"scale-{label}",
            n_patterns=n_patterns,
            pattern_bits=pattern_bits,
            care_density=0.4,
            seed=7,
        )
    )
    blocks = test_set.blocks(12)
    fitness = CompressionRateFitness(blocks, n_vectors=64, block_length=12)
    genome = random_genome(64 * 12, np.random.default_rng(1))
    genome[-12:] = 2
    benchmark.extra_info["total_bits"] = test_set.total_bits
    benchmark.extra_info["distinct_blocks"] = blocks.n_distinct
    rate = benchmark.pedantic(fitness, args=(genome,), rounds=3, iterations=1)
    assert rate > -1000.0

"""Benchmarks of the ATPG substrate (the test-set source).

Not a paper table by itself, but the paper's inputs come from ATPG
flows ([30] for stuck-at, TIP for path delay); these benches track the
cost of producing a test set from a netlist with our from-scratch
stack and record coverage/X-density in ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.atpg.path_delay import generate_path_delay_tests
from repro.atpg.stuck_at import generate_stuck_at_tests
from repro.circuits.generator import random_netlist
from repro.circuits.library import load_circuit


@pytest.mark.parametrize("name", ["c17", "s27", "gen_small"])
def test_stuck_at_generation(benchmark, name):
    netlist = load_circuit(name)
    result = benchmark.pedantic(
        generate_stuck_at_tests, args=(netlist,), rounds=1, iterations=1
    )
    benchmark.extra_info["patterns"] = result.test_set.n_patterns
    benchmark.extra_info["x_density"] = round(result.test_set.x_density(), 3)
    benchmark.extra_info["coverage"] = round(result.fault_coverage, 4)
    assert result.fault_coverage > 0.9


@pytest.mark.parametrize("name", ["c17", "s27"])
def test_path_delay_generation(benchmark, name):
    netlist = load_circuit(name)
    result = benchmark.pedantic(
        generate_path_delay_tests,
        args=(netlist,),
        kwargs={"max_paths": 60},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["tests"] = len(result.tests)
    benchmark.extra_info["robust_coverage"] = round(result.robust_coverage, 3)
    assert result.tests


def test_medium_generated_circuit_flow(benchmark):
    """End to end: generate circuit -> ATPG -> 9C vs EA compression."""
    from repro.core.config import CompressionConfig, EAParameters
    from repro.core.nine_c import compress_nine_c
    from repro.core.optimizer import EAMVOptimizer

    def flow():
        netlist = random_netlist(24, 150, seed=42)
        atpg = generate_stuck_at_tests(netlist, max_backtracks=300)
        test_set = atpg.test_set
        nine_c = compress_nine_c(test_set.blocks(8)).rate
        config = CompressionConfig(
            block_length=12,
            n_vectors=32,
            runs=1,
            ea=EAParameters(stagnation_limit=15, max_evaluations=500),
        )
        ea = EAMVOptimizer(config, seed=1).optimize(test_set.blocks(12))
        return nine_c, ea.best_rate, test_set

    nine_c_rate, ea_rate, test_set = benchmark.pedantic(
        flow, rounds=1, iterations=1
    )
    benchmark.extra_info["nine_c_rate"] = round(nine_c_rate, 2)
    benchmark.extra_info["ea_rate"] = round(ea_rate, 2)
    benchmark.extra_info["x_density"] = round(test_set.x_density(), 3)
    # On genuine ATPG cubes the EA must beat the fixed 9C code.
    assert ea_rate > nine_c_rate

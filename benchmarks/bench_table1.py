"""Benchmark: reproduce Table 1 (stuck-at compression rates).

One benchmark per circuit row.  Each run calibrates a synthetic test
set to the paper's 9C column and measures all four methods; the
measured and published rates land in ``extra_info`` so the benchmark
JSON doubles as the reproduction record.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_row
from repro.experiments.tables import DEFAULT_QUICK_TABLE1
from repro.testdata.registry import TABLE1_STUCK_AT

from .conftest import full_tables, selected_budget

_ROWS = [
    row
    for row in TABLE1_STUCK_AT
    if full_tables() or row.circuit in DEFAULT_QUICK_TABLE1
]


@pytest.mark.parametrize("row", _ROWS, ids=lambda row: row.circuit)
def test_table1_row(benchmark, row):
    budget = selected_budget()

    result = benchmark.pedantic(
        run_row,
        args=(row, "stuck-at"),
        kwargs={"budget": budget, "seed": 2005},
        rounds=1,
        iterations=1,
    )

    benchmark.extra_info["circuit"] = row.circuit
    benchmark.extra_info["test_set_bits"] = row.test_set_bits
    for column in ("9C", "9C+HC", "EA", "EA-Best"):
        benchmark.extra_info[f"measured_{column}"] = round(
            result.measured[column], 2
        )
        benchmark.extra_info[f"published_{column}"] = row.published[column]

    # The anchored baseline must land on the paper's value ...
    assert abs(result.measured["9C"] - row.published["9C"]) <= 1.5
    # ... re-coding the same covering with Huffman never hurts ...
    assert result.measured["9C+HC"] >= result.measured["9C"] - 1e-9
    # ... and the best EA configuration is at least the default's mean.
    assert result.measured["EA-Best"] >= result.measured["EA"] - 1e-9


def test_table1_average_shape(benchmark):
    """The headline claim on a four-row subset: EA > 9C+HC > 9C."""
    budget = selected_budget()

    def build():
        from repro.experiments.tables import build_table1

        circuits = None if full_tables() else ("s349", "s298", "s386", "s953")
        return build_table1(circuits=circuits, budget=budget, seed=2005)

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    averages = {c: table.measured_average(c) for c in table.columns}
    benchmark.extra_info.update(
        {f"avg_{k}": round(v, 2) for k, v in averages.items()}
    )
    assert averages["9C"] < averages["9C+HC"] < averages["EA"]
    assert averages["EA-Best"] >= averages["EA"]

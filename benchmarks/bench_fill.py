"""Benchmark: what filling don't-cares costs every compression method.

The paper's formulation exploits X positions via matching; a tester
flow that fills X before compression throws that freedom away.  This
bench compresses the same calibrated test set unfilled and under each
fill policy, for 9C, 9C+HC and the EA — quantifying the premise of
the paper's Section 1.
"""

from __future__ import annotations


from repro.core.config import CompressionConfig, EAParameters
from repro.core.nine_c import compress_nine_c
from repro.core.optimizer import EAMVOptimizer
from repro.testdata.calibration import calibrate_spec
from repro.testdata.fill import FILL_STRATEGIES, fill_test_set
from repro.testdata.registry import TABLE1_STUCK_AT, row_by_name
from repro.testdata.synthetic import SyntheticSpec


def test_fill_policy_cost(benchmark):
    row = row_by_name(TABLE1_STUCK_AT, "s953")
    spec = SyntheticSpec(
        name=row.circuit,
        n_patterns=row.n_patterns,
        pattern_bits=row.pattern_bits,
        care_density=0.5,
        seed=2005,
    )
    test_set = calibrate_spec(spec, row.published["9C"]).test_set
    config = CompressionConfig(
        block_length=12,
        n_vectors=32,
        runs=1,
        ea=EAParameters(stagnation_limit=20, max_evaluations=800),
    )

    def run():
        outcome = {}
        variants = {"unfilled": test_set}
        variants.update(
            {
                strategy: fill_test_set(test_set, strategy, seed=1)
                for strategy in FILL_STRATEGIES
            }
        )
        for label, variant in variants.items():
            nine_c = compress_nine_c(variant.blocks(8)).rate
            ea = EAMVOptimizer(config, seed=5).optimize(variant.blocks(12))
            outcome[label] = {
                "9C": round(nine_c, 2),
                "EA": round(ea.best_rate, 2),
            }
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(outcome)
    # Every fill policy must cost compression relative to the cubes.
    for strategy in FILL_STRATEGIES:
        assert outcome["unfilled"]["9C"] >= outcome[strategy]["9C"] - 1e-9
        assert outcome["unfilled"]["EA"] >= outcome[strategy]["EA"] - 2.0

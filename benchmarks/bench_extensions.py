"""Benchmarks of the paper-motivated extensions.

* **multi-scan** — Section 5: "application of our method in a
  multiple scan chain environment" (future work, implemented here);
* **compaction trade-off** — the paper compresses *uncompacted* test
  sets; this bench quantifies why: compaction shrinks T·n but
  destroys the don't-cares that code-based compression feeds on;
* **tournament selection** — selection-pressure variant of the
  paper's uniform parent choice.
"""

from __future__ import annotations

import pytest

from repro.atpg.compaction import compact_test_set
from repro.atpg.stuck_at import generate_stuck_at_tests
from repro.circuits.generator import random_netlist
from repro.core.config import CompressionConfig, EAParameters
from repro.core.multi_scan import compress_multi_scan
from repro.core.nine_c import compress_nine_c
from repro.core.optimizer import EAMVOptimizer
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set


@pytest.fixture(scope="module")
def synthetic_set():
    return synthetic_test_set(
        SyntheticSpec(
            "ext", n_patterns=60, pattern_bits=48, care_density=0.4, seed=11
        )
    )


def fast_config(k=8, l=16, runs=1) -> CompressionConfig:
    return CompressionConfig(
        block_length=k,
        n_vectors=l,
        runs=runs,
        ea=EAParameters(stagnation_limit=20, max_evaluations=800),
    )


@pytest.mark.parametrize("n_chains", [1, 2, 4])
def test_multi_scan_shared(benchmark, synthetic_set, n_chains):
    result = benchmark.pedantic(
        compress_multi_scan,
        args=(synthetic_set, n_chains),
        kwargs={"config": fast_config(), "mode": "shared", "seed": 3},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["n_chains"] = n_chains
    benchmark.extra_info["rate"] = round(result.rate, 2)
    assert result.original_bits == synthetic_set.total_bits


def test_multi_scan_independent_vs_shared(benchmark, synthetic_set):
    def run_both():
        shared = compress_multi_scan(
            synthetic_set, 4, config=fast_config(), mode="shared", seed=3
        )
        independent = compress_multi_scan(
            synthetic_set, 4, config=fast_config(), mode="independent", seed=3
        )
        return shared, independent

    shared, independent = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info["shared_rate"] = round(shared.rate, 2)
    benchmark.extra_info["independent_rate"] = round(independent.rate, 2)
    # Per-chain-tuned MV sets use 4x the decoder hardware; they should
    # at least not be dramatically worse than the shared decoder.
    assert independent.rate > shared.rate - 10.0


def test_compaction_tradeoff(benchmark):
    """Uncompacted vs compacted ATPG cubes under 9C and the EA."""

    def run():
        netlist = random_netlist(16, 90, seed=5)
        atpg = generate_stuck_at_tests(netlist, max_backtracks=300)
        uncompacted = atpg.test_set
        compacted = compact_test_set(uncompacted)
        outcome = {}
        for label, test_set in (
            ("uncompacted", uncompacted),
            ("compacted", compacted),
        ):
            nine_c = compress_nine_c(test_set.blocks(8)).rate
            ea = EAMVOptimizer(fast_config(), seed=9).optimize(
                test_set.blocks(8)
            )
            outcome[label] = {
                "patterns": test_set.n_patterns,
                "bits": test_set.total_bits,
                "x_density": round(test_set.x_density(), 3),
                "nine_c_rate": round(nine_c, 2),
                "ea_rate": round(ea.best_rate, 2),
                "ea_transferred_bits": round(
                    test_set.total_bits * (1 - ea.best_rate / 100.0)
                ),
            }
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(outcome)
    un, co = outcome["uncompacted"], outcome["compacted"]
    assert co["bits"] <= un["bits"]  # compaction shrinks the test set
    assert co["x_density"] <= un["x_density"]  # ... and its don't-cares
    assert un["ea_rate"] >= co["ea_rate"] - 5.0  # X-rich compresses better


def test_tournament_vs_uniform_selection(benchmark, synthetic_set):
    blocks = synthetic_set.blocks(8)

    def run_both():
        rates = {}
        for label, selection in (
            ("uniform", "uniform"),
            ("tournament", "tournament"),
        ):
            config = CompressionConfig(
                block_length=8,
                n_vectors=16,
                runs=2,
                ea=EAParameters(
                    stagnation_limit=20,
                    max_evaluations=800,
                    parent_selection=selection,
                ),
            )
            result = EAMVOptimizer(config, seed=13).optimize(blocks)
            rates[label] = result.mean_rate
        return rates

    rates = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 2) for k, v in rates.items()})
    assert all(rate > 0 for rate in rates.values())


def test_adaptive_vs_static_operators(benchmark, synthetic_set):
    """Adaptive pursuit over the operator mix vs the paper's static
    30/30/10 — automating the paper's 'fit the parameters' remark."""
    blocks = synthetic_set.blocks(8)

    def run_both():
        rates = {}
        for label, adaptive in (("static", False), ("adaptive", True)):
            config = CompressionConfig(
                block_length=8,
                n_vectors=16,
                runs=2,
                ea=EAParameters(
                    stagnation_limit=20,
                    max_evaluations=800,
                    adaptive_operators=adaptive,
                ),
            )
            result = EAMVOptimizer(config, seed=21).optimize(blocks)
            rates[label] = result.mean_rate
        return rates

    rates = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 2) for k, v in rates.items()})
    assert all(rate > 0 for rate in rates.values())

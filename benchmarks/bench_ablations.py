"""Benchmarks: the four ablation studies DESIGN.md calls out.

* K/L sweep — source of the paper's 'EA-Best' column;
* operator probabilities — the paper's "fitting the parameters";
* 9C seeding — the improvement the paper suggests but skips;
* subsumption-aware encoding — the Section 3.3 refinement.

Each study runs once (pedantic) on a calibrated s349-sized test set
and records the resulting rates in ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    decoder_cost_study,
    kl_sweep,
    operator_sweep,
    seeding_ablation,
    subsumption_ablation,
)
from repro.testdata.calibration import calibrate_spec
from repro.testdata.registry import TABLE1_STUCK_AT, row_by_name
from repro.testdata.synthetic import SyntheticSpec


@pytest.fixture(scope="module")
def calibrated_s349():
    row = row_by_name(TABLE1_STUCK_AT, "s349")
    spec = SyntheticSpec(
        name=row.circuit,
        n_patterns=row.n_patterns,
        pattern_bits=row.pattern_bits,
        care_density=0.5,
        seed=2005,
    )
    return calibrate_spec(spec, row.published["9C"]).test_set


def test_ablation_kl_sweep(benchmark, calibrated_s349):
    points = benchmark.pedantic(
        kl_sweep, args=(calibrated_s349,), rounds=1, iterations=1
    )
    for point in points:
        benchmark.extra_info[point.label] = round(point.best_rate, 2)
    # The paper's default (K=12, L=64) should be among the strongest.
    by_label = {p.label: p.best_rate for p in points}
    assert by_label["K=12,L=64"] >= max(by_label.values()) - 10.0


def test_ablation_operator_probabilities(benchmark, calibrated_s349):
    points = benchmark.pedantic(
        operator_sweep, args=(calibrated_s349,), rounds=1, iterations=1
    )
    for point in points:
        benchmark.extra_info[point.label] = round(point.mean_rate, 2)
    # The sweep itself is the result (the paper: "further improvements
    # are possible by fitting the parameters"); assert validity only.
    assert len(points) == 5
    for point in points:
        assert point.best_rate >= point.mean_rate - 1e-9
        assert point.mean_rate > 0.0  # every mix compresses this set


def test_ablation_nine_c_seeding(benchmark, calibrated_s349):
    points = benchmark.pedantic(
        seeding_ablation, args=(calibrated_s349,), rounds=1, iterations=1
    )
    random_init, seeded = points
    benchmark.extra_info["random_init"] = round(random_init.mean_rate, 2)
    benchmark.extra_info["nine_c_seeded"] = round(seeded.mean_rate, 2)
    # Seeding guarantees at least 9C+HC quality from generation zero.
    assert seeded.mean_rate >= random_init.mean_rate - 8.0


def test_ablation_subsumption_encoding(benchmark, calibrated_s349):
    points = benchmark.pedantic(
        subsumption_ablation, args=(calibrated_s349,), rounds=1, iterations=1
    )
    plain, refined = points
    benchmark.extra_info["huffman"] = round(plain.mean_rate, 2)
    benchmark.extra_info["huffman_subsume"] = round(refined.mean_rate, 2)
    assert refined.mean_rate >= plain.mean_rate - 1e-9


def test_ablation_decoder_cost(benchmark, calibrated_s349):
    costs = benchmark.pedantic(
        decoder_cost_study, args=(calibrated_s349,), rounds=1, iterations=1
    )
    for method, values in costs.items():
        benchmark.extra_info[f"{method}_payload"] = values["payload_bits"]
        benchmark.extra_info[f"{method}_table"] = values["code_table_bits"]
    # The EA's reconfigurable-decoder table is small next to the
    # payload it saves (Section 5 discussion).
    saving = costs["9C"]["payload_bits"] - costs["EA"]["payload_bits"]
    assert costs["EA"]["code_table_bits"] < max(saving, 1.0) * 5

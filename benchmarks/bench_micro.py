"""Micro-benchmarks of the substrates behind the EA's fitness budget.

The EA spends its entire budget in cover → Huffman → price, so these
kernels bound how many generations a run can afford.  These benches
use pytest-benchmark's statistical mode (they are fast and pure).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.huffman import huffman_code_lengths
from repro.core.blocks import BlockSet
from repro.core.compressor import compress_blocks
from repro.core.decompressor import decompress
from repro.core.fitness import BatchCompressionRateFitness, CompressionRateFitness
from repro.core.matching import MVSet
from repro.core.nine_c import compress_nine_c
from repro.ea.genome import random_genome
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set


@pytest.fixture(scope="module")
def medium_test_set():
    return synthetic_test_set(
        SyntheticSpec(
            "micro", n_patterns=200, pattern_bits=64, care_density=0.4, seed=1
        )
    )


@pytest.fixture(scope="module")
def medium_blocks(medium_test_set):
    return medium_test_set.blocks(12)


def test_blockset_construction(benchmark, medium_test_set):
    flat = medium_test_set.flatten()
    benchmark(BlockSet.from_trit_array, flat, 12)


def test_fitness_evaluation(benchmark, medium_blocks):
    """One EA fitness evaluation (cover + Huffman + price), L=64, K=12."""
    fitness = CompressionRateFitness(
        medium_blocks, n_vectors=64, block_length=12
    )
    genome = random_genome(64 * 12, np.random.default_rng(3))
    genome[-12:] = 2  # all-U tail, as the optimizer pins it
    rate = benchmark(fitness, genome)
    assert rate > -100.0


def test_fitness_generation_batch(benchmark, medium_blocks):
    """One generation priced in one batched call (C=64, L=64, K=12)."""
    fitness = BatchCompressionRateFitness(
        medium_blocks, n_vectors=64, block_length=12
    )
    rng = np.random.default_rng(3)
    genomes = rng.integers(0, 3, size=(64, 64 * 12), dtype=np.int8)
    genomes[:, -12:] = 2
    rates = benchmark(fitness.evaluate_batch, genomes)
    assert rates.shape == (64,)


def test_huffman_on_64_symbols(benchmark):
    rng = np.random.default_rng(5)
    frequencies = {i: int(f) for i, f in enumerate(rng.integers(1, 5000, 64))}
    lengths = benchmark(huffman_code_lengths, frequencies)
    assert len(lengths) == 64


def test_nine_c_compression(benchmark, medium_test_set):
    blocks = medium_test_set.blocks(8)
    result = benchmark(compress_nine_c, blocks)
    assert result.payload_bits > 0


def test_compress_and_decompress_roundtrip(benchmark, medium_blocks):
    mv_set = MVSet.from_genome(
        np.concatenate(
            [
                random_genome(15 * 12, np.random.default_rng(9)),
                np.full(12, 2, dtype=np.int8),
            ]
        ),
        12,
    )

    def roundtrip():
        compressed = compress_blocks(medium_blocks, mv_set)
        return decompress(compressed)

    decoded = benchmark(roundtrip)
    assert decoded.blocks_decoded == medium_blocks.n_blocks

"""Fitness pricing throughput: batching (PR 1) and covering kernels.

Three comparisons share the synthetic workloads:

* **Batching** — the pre-batching per-genome ``reference`` algorithm
  (dict/heap Huffman over a Python covering loop, pinned verbatim),
  the batch-of-one ``scalar`` wrapper, and the ``batched``
  generation path (PR 1's tentpole: ≥5× batched over reference on
  ``medium``).
* **Covering kernels** — the same batched pipeline under each
  registered kernel (``gemm``, ``bitpack``, ``scalar``;
  :mod:`repro.core.kernels`), including the ``wide`` K = 96 workload
  the single-word seed could not express.  The kernel acceptance
  target is bitpack beating gemm on the bandwidth-bound ``large``
  table.
* **MV match-column caching** — the unique-MV dedup path against the
  fused kernels, on both the uniform random batches (worst case:
  almost every MV row unique) and the ``convergent`` high-duplicate
  batch built by :func:`build_convergent_workload`, which mimics a
  converged population (copy/crossover offspring sharing most parent
  MVs).  :func:`stage_timings` splits one batched call into its
  pack / match / first-match+gather / Huffman stages so a future
  regression can be localized, not just detected.

Run with ``pytest benchmarks/bench_batch.py --benchmark-only`` and
compare the ``genomes_per_second`` extra-info columns, or use
``python benchmarks/run_bench.py`` for a JSON trajectory artifact
(``BENCH_fitness.json``) suitable for regression tracking.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.huffman import huffman_code_lengths
from repro.core.covering import cover_masks
from repro.core.fitness import (
    INVALID_FITNESS,
    BatchCompressionRateFitness,
    CompressionRateFitness,
)
from repro.core.kernels import select_kernel_name, usable_kernels
from repro.ea.genome import random_genome
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set

# (spec, K, L, genomes per batch) — "medium" is the paper's default
# EA configuration on the acceptance workload.
WORKLOADS = {
    "small": (
        SyntheticSpec("bench-small", n_patterns=50, pattern_bits=32,
                      care_density=0.4, seed=11),
        8, 16, 64,
    ),
    "medium": (
        SyntheticSpec("bench-medium", n_patterns=200, pattern_bits=64,
                      care_density=0.4, seed=12),
        12, 64, 256,
    ),
    "large": (
        SyntheticSpec("bench-large", n_patterns=500, pattern_bits=128,
                      care_density=0.35, seed=13),
        12, 64, 256,
    ),
}

# The kernel comparison adds a wide-block workload (two-word masks);
# the pinned reference path cannot price it — K > 64 was impossible
# before the multi-word refactor — so it lives outside WORKLOADS.
KERNEL_WORKLOADS = {
    **WORKLOADS,
    "wide": (
        SyntheticSpec("bench-wide", n_patterns=400, pattern_bits=192,
                      care_density=0.35, seed=14),
        96, 32, 128,
    ),
}

# Only kernels this machine can actually run: a toolchain-less
# container benches the array kernels, a full one adds `native`.
KERNELS = tuple(usable_kernels())


def reference_scalar_fitness(blocks, n_vectors, block_length):
    """The seed's per-genome pricing path, kept verbatim as baseline."""
    shifts = np.arange(block_length - 1, -1, -1, dtype=np.uint64)
    weights = np.left_shift(np.uint64(1), shifts)
    original = blocks.original_bits

    def evaluate(genome: np.ndarray) -> float:
        grid = genome.reshape(n_vectors, block_length)
        ones = ((grid == 1) * weights).sum(axis=1, dtype=np.uint64)
        zeros = ((grid == 0) * weights).sum(axis=1, dtype=np.uint64)
        n_unspecified = (grid == 2).sum(axis=1).astype(np.int64)
        order = np.argsort(n_unspecified, kind="stable")
        _, frequencies, uncovered = cover_masks(
            blocks.ones, blocks.zeros, blocks.counts, ones, zeros, order
        )
        if uncovered:
            return INVALID_FITNESS
        active = {int(i): int(f) for i, f in enumerate(frequencies) if f > 0}
        lengths = huffman_code_lengths(active)
        compressed = sum(
            frequency * (lengths[index] + int(n_unspecified[index]))
            for index, frequency in active.items()
        )
        return 100.0 * (original - compressed) / original

    return evaluate


@pytest.fixture(scope="module", params=sorted(WORKLOADS))
def workload(request):
    spec, block_length, n_vectors, batch_size = WORKLOADS[request.param]
    blocks = synthetic_test_set(spec).blocks(block_length)
    rng = np.random.default_rng(spec.seed)
    genomes = np.stack(
        [
            random_genome(n_vectors * block_length, rng)
            for _ in range(batch_size)
        ]
    )
    genomes[:, -block_length:] = 2  # all-U tail, as the optimizer pins it
    return request.param, blocks, block_length, n_vectors, genomes


def _report(benchmark, n_genomes):
    benchmark.extra_info["genomes"] = n_genomes
    benchmark.extra_info["genomes_per_second"] = (
        n_genomes / benchmark.stats.stats.mean
    )


def test_reference_scalar_path(benchmark, workload):
    name, blocks, block_length, n_vectors, genomes = workload
    evaluate = reference_scalar_fitness(blocks, n_vectors, block_length)
    benchmark.group = f"fitness-{name}"
    rates = benchmark(lambda: [evaluate(genome) for genome in genomes])
    _report(benchmark, len(genomes))
    assert len(rates) == len(genomes)


def test_scalar_wrapper_path(benchmark, workload):
    name, blocks, block_length, n_vectors, genomes = workload
    fitness = CompressionRateFitness(
        blocks, n_vectors=n_vectors, block_length=block_length
    )
    benchmark.group = f"fitness-{name}"
    rates = benchmark(lambda: [fitness(genome) for genome in genomes])
    _report(benchmark, len(genomes))
    assert len(rates) == len(genomes)


def test_batched_path(benchmark, workload):
    name, blocks, block_length, n_vectors, genomes = workload
    fitness = BatchCompressionRateFitness(
        blocks, n_vectors=n_vectors, block_length=block_length
    )
    benchmark.group = f"fitness-{name}"
    rates = benchmark(fitness.evaluate_batch, genomes)
    _report(benchmark, len(genomes))
    assert rates.shape == (len(genomes),)


def test_all_paths_agree(workload):
    """Not a benchmark: the three contenders must price identically."""
    _, blocks, block_length, n_vectors, genomes = workload
    evaluate = reference_scalar_fitness(blocks, n_vectors, block_length)
    scalar = CompressionRateFitness(
        blocks, n_vectors=n_vectors, block_length=block_length
    )
    batch = BatchCompressionRateFitness(
        blocks, n_vectors=n_vectors, block_length=block_length
    )
    sample = genomes[:16]
    batched_rates = batch.evaluate_batch(sample)
    for index, genome in enumerate(sample):
        assert batched_rates[index] == evaluate(genome) == scalar(genome)


def build_kernel_workload(name):
    """Blocks + genome batch for one kernel-comparison workload."""
    spec, block_length, n_vectors, batch_size = KERNEL_WORKLOADS[name]
    blocks = synthetic_test_set(spec).blocks(block_length)
    rng = np.random.default_rng(spec.seed)
    genomes = np.stack(
        [
            random_genome(n_vectors * block_length, rng)
            for _ in range(batch_size)
        ]
    )
    genomes[:, -block_length:] = 2  # all-U tail, as the optimizer pins it
    return blocks, block_length, n_vectors, genomes


def build_convergent_workload(name, n_parents=8, mutated_genes=3):
    """A high-duplicate batch: the late-run shape the MV cache targets.

    Every genome is a copy of one of ``n_parents`` parents with
    ``mutated_genes`` point mutations — so across the batch (and
    across repeated generations of it) the vast majority of MV rows
    repeat, exactly like copy/crossover offspring of a converged
    population.  Built on a kernel workload's blocks and batch size.
    """
    blocks, block_length, n_vectors, genomes = build_kernel_workload(name)
    batch_size = len(genomes)
    rng = np.random.default_rng(KERNEL_WORKLOADS[name][0].seed + 1)
    parents = genomes[:n_parents]
    children = parents[rng.integers(0, n_parents, size=batch_size)].copy()
    genome_length = n_vectors * block_length
    for row in range(batch_size):
        sites = rng.integers(0, genome_length - block_length, size=mutated_genes)
        children[row, sites] = rng.integers(0, 3, size=mutated_genes)
    return blocks, block_length, n_vectors, children


def stage_timings(fitness, genomes, repeats=3):
    """Per-stage wall seconds of ``evaluate_batch`` (best-of-N).

    Stages are ``pack`` (genome reshape, covering order, word packing
    + dedup), ``match`` (cache lookups + kernel match columns on the
    miss set), ``cover`` (first-match + gather; the fused
    ``mv_cache_size=0`` path reports its whole kernel pass here) and
    ``huffman`` (codeword + fill pricing).
    """
    fitness.evaluate_batch(genomes)  # warm caches and allocations
    best = None
    for _ in range(repeats):
        timings: dict[str, float] = {}
        fitness.evaluate_batch(genomes, timings=timings)
        if best is None or sum(timings.values()) < sum(best.values()):
            best = timings
    return best


@pytest.fixture(scope="module", params=sorted(KERNEL_WORKLOADS))
def kernel_workload(request):
    return (request.param, *build_kernel_workload(request.param))


@pytest.mark.parametrize("kernel", KERNELS)
def test_kernel_path(benchmark, kernel_workload, kernel):
    """The batched pipeline under each registered covering kernel.

    The MV cache is disabled here so repeats keep timing the kernel
    itself — the cached path is benchmarked separately.
    """
    name, blocks, block_length, n_vectors, genomes = kernel_workload
    fitness = BatchCompressionRateFitness(
        blocks, n_vectors=n_vectors, block_length=block_length, kernel=kernel,
        mv_cache_size=0,
    )
    benchmark.group = f"kernel-{name}"
    benchmark.extra_info["auto_pick"] = select_kernel_name(
        len(genomes), blocks.n_distinct, n_vectors, block_length
    )
    rates = benchmark(fitness.evaluate_batch, genomes)
    _report(benchmark, len(genomes))
    assert rates.shape == (len(genomes),)


def test_kernels_agree(kernel_workload):
    """Not a benchmark: every kernel must price bit-identically."""
    _, blocks, block_length, n_vectors, genomes = kernel_workload
    sample = genomes[:16]
    rates = {
        kernel: BatchCompressionRateFitness(
            blocks,
            n_vectors=n_vectors,
            block_length=block_length,
            kernel=kernel,
        ).evaluate_batch(sample)
        for kernel in KERNELS
    }
    reference = rates[KERNELS[0]]
    for kernel in KERNELS[1:]:
        assert (rates[kernel] == reference).all(), kernel


@pytest.mark.parametrize("mv_cache", ["cached", "fused"])
def test_convergent_mv_cache_path(benchmark, mv_cache):
    """Steady-state generation pricing on a high-duplicate batch.

    The ``cached`` contender is warmed by one prior generation, so the
    benchmark measures the convergent steady state the MV cache is
    built for; ``fused`` is the PR-3 per-generation kernel path.
    """
    blocks, block_length, n_vectors, genomes = build_convergent_workload(
        "medium"
    )
    fitness = BatchCompressionRateFitness(
        blocks,
        n_vectors=n_vectors,
        block_length=block_length,
        mv_cache_size=0 if mv_cache == "fused" else 16384,
    )
    fitness.evaluate_batch(genomes)  # warm-up generation
    benchmark.group = "mv-cache-convergent"
    rates = benchmark(fitness.evaluate_batch, genomes)
    _report(benchmark, len(genomes))
    stats = fitness.mv_cache_stats
    benchmark.extra_info["mv_cache_hit_rate"] = round(stats.hit_rate, 3)
    assert rates.shape == (len(genomes),)


def test_stage_timings_cover_the_whole_call():
    """Not a benchmark: the stage breakdown must account for the call."""
    blocks, block_length, n_vectors, genomes = build_kernel_workload("medium")
    for mv_cache_size in (0, 4096):
        fitness = BatchCompressionRateFitness(
            blocks,
            n_vectors=n_vectors,
            block_length=block_length,
            mv_cache_size=mv_cache_size,
        )
        timings = stage_timings(fitness, genomes, repeats=2)
        expected = (
            {"pack", "cover", "huffman"}
            if mv_cache_size == 0
            else {"pack", "match", "cover", "huffman"}
        )
        assert set(timings) == expected
        assert all(seconds >= 0.0 for seconds in timings.values())


def test_convergent_batches_price_identically():
    """Not a benchmark: cached and fused paths agree on duplicates."""
    blocks, block_length, n_vectors, genomes = build_convergent_workload(
        "medium"
    )
    fused = BatchCompressionRateFitness(
        blocks, n_vectors=n_vectors, block_length=block_length, mv_cache_size=0
    )
    cached = BatchCompressionRateFitness(
        blocks, n_vectors=n_vectors, block_length=block_length
    )
    expected = fused.evaluate_batch(genomes)
    assert (cached.evaluate_batch(genomes) == expected).all()
    assert (cached.evaluate_batch(genomes) == expected).all()  # warm pass
    stats = cached.mv_cache_stats
    assert stats.rows_unique < stats.rows_total  # the dedup actually bites
    assert stats.hits > 0

"""Serve-daemon throughput: cold per-request vs warm + batched.

What the serve tentpole claims to buy and this bench prices:

* **cold per-request** — the offline baseline: a one-shot request
  must ship the table inline, so every request pays trit parsing of
  all 500 patterns, block-table packing, kernel preparation and
  engine construction before a single genome is priced (what one
  ``repro request`` invocation does, minus interpreter startup,
  which would only make cold look worse);
* **warm serial** — one long-lived :class:`CompressionService` used
  as the protocol intends: the table registered once, every request
  referencing it by digest, the prepared engine and shared MV cache
  resident — but requests priced one at a time, no HTTP;
* **daemon** — the full ``repro serve`` stack over real HTTP at
  concurrency ∈ {1, 8, 64}: warm state *plus* the coalescer folding
  concurrent same-table requests into single ``evaluate_batch``
  passes, minus real socket and connection-thread overhead.

Before any timing, every daemon response is checked byte-identical
to the offline service's canonical rendering — and the inline-table
and digest-reference forms of the same request are checked to render
the same bytes, so the cold and warm contenders answer the *same*
question.

All numbers come from one process on however many cores the
container has (``cpu_count`` is recorded as provenance); on a single
core the daemon's win is warm state and fewer kernel passes, not
parallelism.
"""

from __future__ import annotations

import json
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.trits import format_trits
from repro.ea.genome import random_genome
from repro.serve import CompressionService, WarmRegistry, canonical_json
from repro.serve.daemon import ServeDaemon
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set

# The served workload: the paper's default L=64 EA shape on a large
# synthetic table.  Warm state pays off when per-request *setup* —
# parsing 500 trit patterns, packing the block table, preparing the
# kernel layout — dominates the evaluation itself; that is exactly
# the regime a long-lived test-compression service exists for, and
# exactly what every cold one-shot request re-pays.
SPEC = SyntheticSpec(
    "bench-serve", n_patterns=500, pattern_bits=128, care_density=0.35, seed=21
)
BLOCK_LENGTH = 12
N_VECTORS = 64
GENOMES_PER_REQUEST = 4

CONCURRENCIES = (1, 8, 64)
REQUESTS_PER_LEVEL = 64
COLD_REQUESTS = 8  # cold is slow; extrapolate from fewer requests


def build_workload() -> tuple[dict, list[dict], list[dict]]:
    """The `/tables` body plus inline-table and digest request forms."""
    test_set = synthetic_test_set(SPEC)
    patterns = [format_trits(row) for row in test_set.patterns]
    table = {
        "patterns": patterns,
        "block_length": BLOCK_LENGTH,
        "name": SPEC.name,
    }
    digest = CompressionService(WarmRegistry()).register_table(table)["digest"]
    rng = np.random.default_rng(SPEC.seed)
    genome_sets = [
        [
            format_trits(random_genome(N_VECTORS * BLOCK_LENGTH, rng))
            for _ in range(GENOMES_PER_REQUEST)
        ]
        for _ in range(REQUESTS_PER_LEVEL)
    ]
    inline_bodies = [
        {"table": table, "n_vectors": N_VECTORS, "genomes": genomes}
        for genomes in genome_sets
    ]
    digest_bodies = [
        {"table": digest, "n_vectors": N_VECTORS, "genomes": genomes}
        for genomes in genome_sets
    ]
    return table, inline_bodies, digest_bodies


def fresh_service() -> CompressionService:
    return CompressionService(WarmRegistry())


def post(address: tuple[str, int], path: str, body: dict) -> bytes:
    host, port = address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(body).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.read()


def time_cold(inline_bodies: list[dict]) -> float:
    """Seconds per request when every request rebuilds all state."""
    start = time.perf_counter()
    for body in inline_bodies[:COLD_REQUESTS]:
        fresh_service().run_fitness(body)
    return (time.perf_counter() - start) / COLD_REQUESTS


def time_warm_serial(table: dict, digest_bodies: list[dict]) -> float:
    """Seconds per request on one warm service, no batching, no HTTP."""
    service = fresh_service()
    service.register_table(table)
    service.run_fitness(digest_bodies[0])  # engine built outside the clock
    start = time.perf_counter()
    for body in digest_bodies:
        service.run_fitness(body)
    return (time.perf_counter() - start) / len(digest_bodies)


def time_daemon(
    table: dict,
    digest_bodies: list[dict],
    concurrency: int,
    expected: list[bytes],
) -> dict:
    """Req/s over HTTP at one concurrency level, parity-checked."""
    daemon = ServeDaemon(
        fresh_service(),
        port=0,
        batch_window_ms=5.0,
        max_batch=max(concurrency, 1),
        max_queue=4 * REQUESTS_PER_LEVEL,
    )
    daemon.start()
    try:
        post(daemon.address, "/tables", table)
        # One warm-up request builds the engine (cold-start cost is the
        # cold contender's story); its parity is still checked.
        warmup = post(daemon.address, "/fitness", digest_bodies[0])
        assert warmup == expected[0], "served bytes diverged from offline"

        mismatches = []

        def send(index: int) -> None:
            raw = post(daemon.address, "/fitness", digest_bodies[index])
            if raw != expected[index]:
                mismatches.append(index)

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            list(pool.map(send, range(len(digest_bodies))))
        elapsed = time.perf_counter() - start
        assert not mismatches, f"parity broke for requests {mismatches}"
        stats = daemon.stats()
    finally:
        daemon.shutdown(drain=True)
    batch = stats["batch"]
    return {
        "concurrency": concurrency,
        "requests": len(digest_bodies),
        "requests_per_second": round(len(digest_bodies) / elapsed, 1),
        "mean_batch_occupancy": round(batch["mean_occupancy"], 2),
        "max_batch_occupancy": batch["max_occupancy"],
        "flushes": batch["flushes"],
    }


def serve_report() -> dict:
    """The full cold/warm/batched comparison (BENCH_serve.json body)."""
    table, inline_bodies, digest_bodies = build_workload()

    # The offline reference bytes every daemon response must equal —
    # and the inline-table form must render the same bytes as the
    # digest form, so cold and warm price the same question.
    reference = fresh_service()
    reference.register_table(table)
    expected = [
        canonical_json(reference.run_fitness(body)) for body in digest_bodies
    ]
    for index in (0, len(digest_bodies) // 2, len(digest_bodies) - 1):
        inline = canonical_json(
            fresh_service().run_fitness(inline_bodies[index])
        )
        assert inline == expected[index], "inline/digest forms diverged"

    cold_s = time_cold(inline_bodies)
    warm_s = time_warm_serial(table, digest_bodies)
    daemon_rows = [
        time_daemon(table, digest_bodies, concurrency, expected)
        for concurrency in CONCURRENCIES
    ]

    cold_rps = 1.0 / cold_s
    warm_rps = 1.0 / warm_s
    best = max(row["requests_per_second"] for row in daemon_rows)
    at_64 = next(
        row for row in daemon_rows if row["concurrency"] == CONCURRENCIES[-1]
    )
    return {
        "workload": {
            "n_patterns": SPEC.n_patterns,
            "pattern_bits": SPEC.pattern_bits,
            "block_length": BLOCK_LENGTH,
            "n_vectors": N_VECTORS,
            "genomes_per_request": GENOMES_PER_REQUEST,
            "requests_per_level": REQUESTS_PER_LEVEL,
        },
        "parity": {
            "checked_requests": len(digest_bodies) * len(CONCURRENCIES)
            + len(CONCURRENCIES)
            + 3,
            "byte_identical": True,  # asserted above, or we never got here
        },
        "cold_per_request": {
            "requests_timed": COLD_REQUESTS,
            "requests_per_second": round(cold_rps, 1),
            "note": (
                "fresh service per request, table shipped inline — "
                "interpreter startup excluded, which flatters cold"
            ),
        },
        "warm_serial": {
            "requests_per_second": round(warm_rps, 1),
            "speedup_vs_cold": round(warm_rps / cold_rps, 2),
        },
        "daemon": daemon_rows,
        "speedup_warm_batched_64_vs_cold": round(
            at_64["requests_per_second"] / cold_rps, 2
        ),
        "speedup_best_daemon_vs_cold": round(best / cold_rps, 2),
    }


if __name__ == "__main__":
    print(json.dumps(serve_report(), indent=2))

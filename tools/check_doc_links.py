#!/usr/bin/env python3
"""Check that relative markdown links in the docs resolve.

Scans ``README.md`` plus every ``docs/*.md`` file for markdown links
and verifies that each *relative* target exists on disk (anchors are
stripped; external ``http(s)``/``mailto`` targets and intra-page
``#anchor`` links are skipped).  Prints every broken link and exits
non-zero if any is found.

Runs in the CI lint lane, which installs nothing beyond ruff — keep
this script standard-library only and independent of the package.

Run with::

    python tools/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# [text](target) — excluding images' leading "!" is unnecessary: image
# targets must resolve too.  Nested parentheses in targets do not occur
# in this repo's docs.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_doc_files(root: Path) -> list[Path]:
    """The markdown set under contract: README.md and docs/*.md."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in files if path.is_file()]


def broken_links(path: Path, root: Path) -> list[tuple[int, str]]:
    """(line number, target) pairs whose relative target does not exist."""
    problems = []
    for line_number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                problems.append((line_number, target))
            elif root.resolve() not in resolved.parents and resolved != root.resolve():
                problems.append((line_number, f"{target} (escapes the repo)"))
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    files = iter_doc_files(root)
    if not files:
        print("no markdown files found — wrong working tree?", file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        for line_number, target in broken_links(path, root):
            failures += 1
            print(
                f"{path.relative_to(root)}:{line_number}: broken link -> {target}",
                file=sys.stderr,
            )
    if failures:
        print(f"{failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Parameter study: where 'EA-Best' comes from.

Run with::

    python examples/parameter_sweep.py

The paper reports its default configuration (K=12, L=64) in the 'EA'
column and the best over "numerous values of K and L" in 'EA-Best'.
This example sweeps a K/L grid and the operator-probability mix on a
calibrated s349-sized test set and prints both studies side by side —
the repository's ablation API in action.
"""

from __future__ import annotations

from repro.experiments.ablations import kl_sweep, operator_sweep
from repro.testdata.calibration import calibrate_spec
from repro.testdata.registry import TABLE1_STUCK_AT, row_by_name
from repro.testdata.synthetic import SyntheticSpec


def main() -> None:
    row = row_by_name(TABLE1_STUCK_AT, "s349")
    spec = SyntheticSpec(
        name=row.circuit,
        n_patterns=row.n_patterns,
        pattern_bits=row.pattern_bits,
        care_density=0.5,
        seed=2005,
    )
    calibration = calibrate_spec(spec, row.published["9C"])
    test_set = calibration.test_set
    print(
        f"{row.circuit}: {test_set.total_bits} bits, care density "
        f"{calibration.spec.care_density:.3f} "
        f"(9C anchored at {calibration.achieved_nine_c_rate:.1f}%, "
        f"paper {row.published['9C']}%)"
    )

    print("\nK/L sweep (source of the paper's EA-Best column):")
    print(f"{'config':>12s} {'mean':>7s} {'best':>7s}")
    points = kl_sweep(test_set, seed=2005)
    for point in points:
        print(f"{point.label:>12s} {point.mean_rate:7.2f} {point.best_rate:7.2f}")
    best = max(points, key=lambda p: p.best_rate)
    print(
        f"EA-Best on this set: {best.best_rate:.2f}% at {best.label} "
        f"(paper: {row.published['EA-Best']}%)"
    )

    print("\noperator-probability sweep (crossover/mutation/inversion):")
    print(f"{'mix':>28s} {'mean':>7s} {'best':>7s}")
    for point in operator_sweep(test_set, seed=2005):
        print(
            f"{point.label:>28s} {point.mean_rate:7.2f} {point.best_rate:7.2f}"
        )
    print(
        "\nThe paper: 'further improvements are possible by fitting the "
        "parameters of the Evolutionary Optimization.'"
    )


if __name__ == "__main__":
    main()

"""The paper's Table 2 flow on a real circuit: path-delay tests.

Run with::

    python examples/path_delay_flow.py [circuit]

Path-delay tests are vector *pairs* (v1, v2): v1 initializes, v2
launches a transition down a target path.  This example enumerates
the structural paths of a circuit, generates robust two-vector tests
for each (rising and falling), aggregates them into the paper's
test-set string, and compares the compression methods — the Table 2
experiment in miniature, on genuine ATPG output rather than
calibrated synthetic data.
"""

from __future__ import annotations

import sys

import repro
from repro.atpg import generate_path_delay_tests, is_robust_test
from repro.circuits import count_paths, load_circuit


def main(circuit_name: str = "s27") -> None:
    netlist = load_circuit(circuit_name)
    print(f"circuit: {netlist!r}")
    print(f"structural PI->PO paths: {count_paths(netlist)}")

    # --- robust path-delay test generation ------------------------------
    result = generate_path_delay_tests(netlist, max_paths=200)
    print(
        f"robust tests: {len(result.tests)} "
        f"({result.robust_coverage:.1%} of targeted path/transition faults)"
    )
    assert all(is_robust_test(netlist, test) for test in result.tests)
    print("every test re-validated against the robust side-input conditions")

    test_set = result.test_set
    print(
        f"test set: {test_set.n_patterns} vector pairs, "
        f"{test_set.total_bits} bits, X density {test_set.x_density():.2f}"
    )
    sample = result.tests[0]
    print(f"example: path {sample.path}, {sample.transition.value} launch")

    # --- compression comparison (Table 2 columns) -----------------------
    blocks8 = test_set.blocks(8)
    print(f"9C    rate: {repro.compress_nine_c(blocks8).rate:6.2f}%")
    print(
        "9C+HC rate: "
        f"{repro.compress_nine_c(blocks8, use_huffman=True).rate:6.2f}%"
    )

    # EA1 configuration of the paper (K=8, L=9) and EA2 (K=12, L=64).
    for label, (k, l) in (("EA1", (8, 9)), ("EA2", (12, 64))):
        config = repro.CompressionConfig(
            block_length=k,
            n_vectors=l,
            runs=3,
            ea=repro.EAParameters(stagnation_limit=40, max_evaluations=1500),
        )
        ea = repro.optimize_mv_set(test_set.blocks(k), config, seed=2005)
        print(f"{label}   rate: {ea.mean_rate:6.2f}% mean / "
              f"{ea.best_rate:6.2f}% best  (K={k}, L={l})")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "s27")

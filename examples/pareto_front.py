"""Multi-objective compression: trade rate against decoder area and time.

Run with::

    python examples/pareto_front.py

The single-objective EA maximizes compression rate alone; this example
runs the NSGA-II mode on the same generate-then-batch-evaluate loop
with three objectives — rate (%), decoder area (storage bits) and test
application time (tester cycles) — and prints the merged Pareto front
with its hypervolume summary.  It then inspects one front point's
decoder model to show where the area number comes from.  See
``docs/multi-objective.md`` for the objective definitions and the
seeded-reproducibility contract.
"""

from __future__ import annotations

import repro
from repro.core.decoder_hw import decoder_model_for
from repro.experiments import OBJECTIVE_SETS, build_pareto_front, pareto_markdown


def main() -> None:
    text = (
        "11001100" * 10 + "111100XX" * 5 + "00000000" * 8 + "1100XXXX" * 4
    )
    blocks = repro.BlockSet.from_string(text, 8)

    config = repro.CompressionConfig(
        block_length=8,
        n_vectors=6,
        runs=3,
        ea=repro.EAParameters(stagnation_limit=20, max_evaluations=800),
    )

    # Same seeded-determinism contract as the single-objective
    # protocol: this front is byte-identical on every backend, at any
    # --jobs count, under every kernel.
    result = build_pareto_front(
        blocks, config, OBJECTIVE_SETS["rate+area+time"], seed=7
    )
    print(pareto_markdown(result))

    # Every front point carries its genome, so any trade-off the table
    # surfaces can be materialized as a full compression.
    best_rate = result.front[0]
    mv_set = repro.MVSet.from_genome(best_rate.genome, config.block_length)
    compressed = repro.compress_blocks(blocks, mv_set)
    model = decoder_model_for(compressed)
    print("best-rate point, decoded:")
    print(f"  rate {compressed.rate:.2f}% with {model.summary()}")
    print(f"  area objective = {model.area_units} storage bits")

    if len(result.front) > 1:
        smallest = min(result.front, key=lambda point: point.values[1])
        print(
            f"  cheapest decoder on the front: {smallest.values[1]:.0f} bits "
            f"at {smallest.values[0]:.2f}% rate — the trade-off the "
            "single-objective EA cannot express"
        )


if __name__ == "__main__":
    main()

"""Fault-tolerant sweeps: retries, chaos injection, and resume.

Run with::

    python examples/fault_tolerant_sweep.py

Long seeded sweeps meet transient faults — a worker OOM-killed, a
wedged filesystem call.  This script demonstrates the three layers
that keep a sweep alive without ever changing its results:

1. a :class:`repro.parallel.RetryPolicy` absorbing injected transient
   failures (the chaos harness makes the faults reproducible);
2. a checkpoint journal that lets an interrupted sweep resume instead
   of restarting, byte-identical to an uninterrupted run;
3. fault accounting (:class:`repro.parallel.FaultToleranceStats`)
   surfacing what was absorbed.

The CLI equivalent::

    python -m repro table1 --circuits s298 --seed 11 \\
        --jobs 4 --retries 2 --task-timeout 600 --resume
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.config import CompressionConfig, EAParameters
from repro.core.optimizer import EAMVOptimizer, execute_run_task
from repro.experiments.checkpoint import CheckpointStore
from repro.parallel import (
    Fault,
    FaultPlan,
    FaultToleranceStats,
    RetryPolicy,
    ThreadBackend,
    chaos_wrap,
    grouped_map,
)
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set


def main() -> None:
    scratch = Path(tempfile.mkdtemp())
    spec = SyntheticSpec(
        name="chaos-demo", n_patterns=64, pattern_bits=64,
        care_density=0.5, seed=7,
    )
    blocks = synthetic_test_set(spec).blocks(12)
    ea = EAParameters(stagnation_limit=20, max_evaluations=800)
    config = CompressionConfig(block_length=12, n_vectors=16, runs=3, ea=ea)

    # The clean reference: three seeded EA runs, no faults.
    baseline = EAMVOptimizer(config, seed=42).optimize(blocks)
    print(f"baseline: mean rate {baseline.mean_rate:.2f}%")

    # 1. Inject a reproducible fault: run 1 fails its first attempt
    #    with a retryable error.  A RetryPolicy absorbs it — same
    #    results, one extra attempt.
    plan = FaultPlan(
        state_dir=scratch / "chaos",
        faults={"K12L16r1": {0: Fault("raise")}},
    )
    tasks = EAMVOptimizer(config, seed=42).build_run_tasks(blocks)
    stats = FaultToleranceStats()
    outcomes = ThreadBackend(3).map(
        chaos_wrap(execute_run_task, plan),
        tasks,
        retry=RetryPolicy(max_attempts=3),
        stats=stats,
    )
    assert [o.rate for o in outcomes] == [r.rate for r in baseline.runs]
    print(f"chaos absorbed: {stats.summary()} — results identical")

    # 2. Checkpoint/resume: journal every completed run, then rerun —
    #    the journal serves all three runs instead of re-searching.
    store = CheckpointStore(root=scratch / "checkpoints")
    for attempt in ("cold", "resumed"):
        stats = FaultToleranceStats()
        cache = store.cache("demo:seed42", stats=stats)
        tasks = EAMVOptimizer(config, seed=42).build_run_tasks(blocks)
        grouped = grouped_map(
            ThreadBackend(3), execute_run_task, [("demo", tasks)],
            cache=cache, stats=stats,
        )
        rates = [outcome.rate for outcome in grouped[0]]
        assert rates == [run.rate for run in baseline.runs]
        print(
            f"{attempt} sweep: rates identical, "
            f"{stats.resumed}/{len(tasks)} runs served from the journal"
        )


if __name__ == "__main__":
    main()

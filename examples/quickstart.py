"""Quickstart: compress a small test set with 9C and the EA.

Run with::

    python examples/quickstart.py

Covers the public API end to end: build a test set, compress it with
the 9C baseline and with EA-optimized matching vectors, decode the
stream, and verify losslessness.
"""

from __future__ import annotations

import repro


def main() -> None:
    # A toy test set: 12 patterns of 16 bits with don't-cares (X).
    patterns = [
        "1100110011001100",
        "110011001100XXXX",
        "0000000000000000",
        "00000000XXXX0000",
        "1100XXXX11001100",
        "0000000011111111",
        "XXXXXXXX00000000",
        "1100110011001111",
        "000000001111XXXX",
        "1100110000000000",
        "XXXX110011001100",
        "0000000000001111",
    ]
    test_set = repro.BlockSet.from_string("".join(patterns), 8)
    print(f"test set: {test_set.n_blocks} blocks of K=8, "
          f"{test_set.original_bits} bits, "
          f"care density {test_set.care_density():.2f}")

    # --- 9C baseline (fixed nine matching vectors, fixed code) --------
    nine_c = repro.compress_nine_c(test_set)
    print(f"9C    : {nine_c.compressed_bits:4d} bits "
          f"(rate {nine_c.rate:5.1f}%)")

    # --- 9C with Huffman codewords ------------------------------------
    nine_c_hc = repro.compress_nine_c(test_set, use_huffman=True)
    print(f"9C+HC : {nine_c_hc.compressed_bits:4d} bits "
          f"(rate {nine_c_hc.rate:5.1f}%)")

    # --- EA-optimized matching vectors (the paper's contribution) -----
    config = repro.CompressionConfig(
        block_length=8,
        n_vectors=8,
        runs=3,
        ea=repro.EAParameters(stagnation_limit=40, max_evaluations=1500),
    )
    result = repro.optimize_mv_set(test_set, config, seed=2005)
    print(f"EA    : mean rate {result.mean_rate:5.1f}%, "
          f"best {result.best_rate:5.1f}% "
          f"({result.total_evaluations} fitness evaluations)")

    best = repro.compress_blocks(test_set, result.best_mv_set)
    print("best matching vectors and usage:")
    for mv, used in best.mv_usage().items():
        print(f"  {mv}  encodes {used} blocks")

    # --- decode and verify losslessness --------------------------------
    decoded = repro.verify_roundtrip(best)
    print(f"decoded {decoded.blocks_decoded} blocks; every specified bit "
          "reproduced exactly")


if __name__ == "__main__":
    main()

"""Tune-then-run: profile this machine once, reuse the profile everywhere.

Run with::

    python examples/tune_then_run.py

The shipped kernel/cache thresholds were measured on one reference
container; ``repro.tuning`` re-measures them on *your* machine and
persists them as a profile, so every later run dispatches with
thresholds that match your BLAS, cache sizes and core count.  The CLI
equivalent of this script::

    python -m repro tune --quick
    python -m repro table1 --circuits s298 --seed 1 \\
        --profile ~/.cache/repro/tuning_profile.json

Profiles are semantically inert: a seeded run is byte-identical with
or without one — only the wall clock moves (this script asserts it).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core.config import CompressionConfig, EAParameters
from repro.core.optimizer import EAMVOptimizer
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set
from repro.tuning import load_profile, run_probes, save_profile


def main() -> None:
    # 1. Probe the machine (quick mode: seconds).  `repro tune` runs
    #    exactly this and prints a before/after genomes/s summary.
    print("probing this machine (quick mode) ...")
    profile = run_probes(quick=True, repeats=2)
    path = Path(tempfile.mkdtemp()) / "tuning_profile.json"
    save_profile(profile, path)
    print(f"wrote {path}")
    print(
        f"  bitpack from D>={profile.bitpack_min_distinct}, "
        f"MV dedup from C>={profile.mv_dedup_min_genomes} at "
        f"D>={profile.mv_dedup_min_table}, "
        f"feedback break-even hit rate "
        f"{profile.mv_feedback_min_hit_rate:.2f}"
    )

    # 2. Load it back (version + machine fingerprint checked) and pin
    #    it inside the run configuration — the profile travels with
    #    the config, so process-pool workers tune identically.
    tuned = load_profile(path)
    spec = SyntheticSpec(
        name="tune-demo", n_patterns=64, pattern_bits=64,
        care_density=0.5, seed=7,
    )
    blocks = synthetic_test_set(spec).blocks(12)
    ea = EAParameters(stagnation_limit=20, max_evaluations=800)
    untuned_config = CompressionConfig(
        block_length=12, n_vectors=16, runs=2, ea=ea,
    )
    tuned_config = untuned_config.with_updates(tuning=tuned)

    # 3. Same seed, with and without the profile: identical results.
    baseline = EAMVOptimizer(untuned_config, seed=42).optimize(blocks)
    profiled = EAMVOptimizer(tuned_config, seed=42).optimize(blocks)
    assert np.isclose(baseline.mean_rate, profiled.mean_rate)
    assert (
        baseline.best_mv_set.to_genome() == profiled.best_mv_set.to_genome()
    ).all()
    print(
        f"EA rate {profiled.mean_rate:.2f}% mean / "
        f"{profiled.best_rate:.2f}% best — identical with and without "
        "the profile, as tuning only moves the wall clock"
    )


if __name__ == "__main__":
    main()

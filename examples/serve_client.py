"""Compression as a service: a complete `repro serve` client.

Run with::

    python examples/serve_client.py

The script starts a serve daemon in-process (so the example is
self-contained — against a real deployment, point ``ADDRESS`` at it
and drop the daemon setup), then walks the whole protocol:

1. register a block table once (``POST /tables``) and keep its
   digest — the key to all warm state;
2. fire concurrent ``/fitness`` requests referencing the digest and
   let the daemon coalesce them into shared ``evaluate_batch``
   passes;
3. run a seeded ``/compress`` twice and check the two responses are
   byte-identical (the serve determinism contract);
4. read ``/stats`` — batching occupancy and MV-cache hit rates, the
   operational story that never appears in response bodies.

The CLI equivalents::

    python -m repro serve --port 8477 --jobs 2
    python -m repro request body.json   # offline byte-parity reference
"""

from __future__ import annotations

import json
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.trits import format_trits
from repro.ea.genome import random_genome
from repro.serve import CompressionService, WarmRegistry
from repro.serve.daemon import ServeDaemon
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set

BLOCK_LENGTH = 12
N_VECTORS = 32
N_REQUESTS = 24
CONCURRENCY = 8


def call(address: tuple[str, int], path: str, body: dict | None = None):
    host, port = address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=None if body is None else json.dumps(body).encode(),
        method="GET" if body is None else "POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def main() -> None:
    daemon = ServeDaemon(
        CompressionService(WarmRegistry()),
        port=0,  # a free port; use --port 8477 for a real deployment
        jobs=2,
        batch_window_ms=5.0,
    )
    daemon.start()
    try:
        address = daemon.address
        print(f"daemon listening on http://{address[0]}:{address[1]}")

        # 1. Register the table once; every later request is a digest.
        spec = SyntheticSpec(
            "serve-example",
            n_patterns=200,
            pattern_bits=64,
            care_density=0.4,
            seed=5,
        )
        patterns = [
            format_trits(row) for row in synthetic_test_set(spec).patterns
        ]
        table = call(
            address,
            "/tables",
            {"patterns": patterns, "block_length": BLOCK_LENGTH},
        )
        digest = table["digest"]
        print(
            f"registered table {digest[:16]}… "
            f"({table['n_blocks']} blocks, {table['n_distinct']} distinct)"
        )

        # 2. Concurrent fitness pricing — the daemon coalesces these.
        rng = np.random.default_rng(5)

        def make_genome() -> str:
            genome = random_genome(N_VECTORS * BLOCK_LENGTH, rng)
            genome[-BLOCK_LENGTH:] = 2  # an all-U MV: covering never fails
            return format_trits(genome)

        bodies = [
            {
                "table": digest,
                "n_vectors": N_VECTORS,
                "genomes": [make_genome() for _ in range(4)],
            }
            for _ in range(N_REQUESTS)
        ]
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CONCURRENCY) as pool:
            responses = list(
                pool.map(lambda b: call(address, "/fitness", b), bodies)
            )
        elapsed = time.perf_counter() - start
        best = max(max(r["rates"]) for r in responses)
        print(
            f"priced {N_REQUESTS} fitness requests at concurrency "
            f"{CONCURRENCY} in {elapsed:.3f}s "
            f"({N_REQUESTS / elapsed:.0f} req/s); best rate {best:.2f}%"
        )

        # 3. Seeded compression — byte-reproducible across requests.
        compress = {
            "table": digest,
            "seed": 42,
            "config": {
                "n_vectors": N_VECTORS,
                "runs": 2,
                "ea": {"population_size": 16, "max_generations": 10},
            },
        }
        first = call(address, "/compress", compress)
        second = call(address, "/compress", compress)
        assert first == second, "seeded responses must be identical"
        print(
            f"compress seed=42: best rate {first['best_rate']:.2f}% "
            f"(run {first['best_run']}, "
            f"{first['total_evaluations']} evaluations; "
            "repeat request byte-identical)"
        )

        # 4. Operational counters — never part of response bodies.
        stats = call(address, "/stats")
        batch = stats["batch"]
        cache = stats["tables"][digest]["mv_cache"]
        print(
            f"batching: {batch['flushes']} flushes, "
            f"mean occupancy {batch['mean_occupancy']:.2f}, "
            f"max {batch['max_occupancy']}"
        )
        print(
            f"shared MV cache: {cache['hits']} hits / "
            f"{cache['misses']} misses "
            f"(hit rate {cache['hit_rate']:.1%}, policy {cache['policy']})"
        )
    finally:
        daemon.shutdown(drain=True)
        print("daemon drained and stopped")


if __name__ == "__main__":
    main()

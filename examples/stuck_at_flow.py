"""The paper's Table 1 flow on a real circuit, end to end.

Run with::

    python examples/stuck_at_flow.py [circuit]

Pipeline (all built in this repository, no external tools):

1. load a gate-level netlist (default: the generated 'gen_medium'),
2. run PODEM ATPG with fault dropping — an *uncompacted* stuck-at
   test set whose unassigned inputs stay X (the paper's input data),
3. optionally relax the cubes further (Kajihara/Miyase stand-in),
4. compress with 9C, 9C+HC and EA-optimized matching vectors,
5. decode and verify the stream bit-exactly.
"""

from __future__ import annotations

import sys

import repro
from repro.atpg import collapse_faults, generate_stuck_at_tests, relax_test_set
from repro.circuits import load_circuit


def main(circuit_name: str = "gen_medium") -> None:
    netlist = load_circuit(circuit_name)
    print(f"circuit: {netlist!r}, depth {netlist.depth()}")

    # --- ATPG: uncompacted, don't-care-rich stuck-at test set ---------
    atpg = generate_stuck_at_tests(netlist, max_backtracks=500)
    test_set = atpg.test_set
    print(
        f"ATPG: {test_set.n_patterns} cubes x {test_set.n_inputs} inputs "
        f"({test_set.total_bits} bits), X density "
        f"{test_set.x_density():.2f}, fault coverage "
        f"{atpg.fault_coverage:.1%}, {len(atpg.untestable)} redundant faults"
    )

    # --- optional relaxation pass (more Xs, same coverage) ------------
    relaxed = relax_test_set(netlist, test_set, collapse_faults(netlist))
    print(f"relaxed: X density {relaxed.x_density():.2f}")

    # --- compression comparison ---------------------------------------
    blocks8 = relaxed.blocks(8)
    nine_c = repro.compress_nine_c(blocks8)
    nine_c_hc = repro.compress_nine_c(blocks8, use_huffman=True)
    print(f"9C    rate: {nine_c.rate:6.2f}%")
    print(f"9C+HC rate: {nine_c_hc.rate:6.2f}%")

    config = repro.CompressionConfig(
        block_length=12,
        n_vectors=32,
        runs=3,
        ea=repro.EAParameters(stagnation_limit=40, max_evaluations=2000),
    )
    result = repro.optimize_mv_set(relaxed.blocks(12), config, seed=7)
    print(f"EA    rate: {result.mean_rate:6.2f}% mean / "
          f"{result.best_rate:6.2f}% best over {config.runs} runs")

    # --- verify the best stream decodes losslessly ---------------------
    compressed = repro.compress_blocks(relaxed.blocks(12), result.best_mv_set)
    repro.verify_roundtrip(compressed)
    print(
        f"round trip OK: {compressed.compressed_bits} compressed bits for "
        f"{compressed.original_bits} original bits"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "gen_medium")

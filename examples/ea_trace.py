"""Figure 1, live: trace the evolutionary algorithm generation by
generation.

Run with::

    python examples/ea_trace.py

The paper's Figure 1 is the EA pseudocode; this example runs the
engine on a calibrated test set and prints the per-generation best and
mean fitness, the improvement markers, and the termination cause — the
pseudocode's observable behaviour.
"""

from __future__ import annotations

from repro.core.blocks import BlockSet
from repro.core.config import EAParameters
from repro.core.fitness import CompressionRateFitness
from repro.core.matching import MVSet
from repro.core.trits import DC
from repro.ea.engine import EvolutionaryEngine
from repro.testdata.calibration import calibrate_spec
from repro.testdata.registry import TABLE1_STUCK_AT, row_by_name
from repro.testdata.synthetic import SyntheticSpec

K = 12
L = 16  # small L so the trace stays readable


def main() -> None:
    row = row_by_name(TABLE1_STUCK_AT, "s298")
    spec = SyntheticSpec(
        name=row.circuit,
        n_patterns=row.n_patterns,
        pattern_bits=row.pattern_bits,
        care_density=0.5,
        seed=1,
    )
    test_set = calibrate_spec(spec, row.published["9C"]).test_set
    blocks: BlockSet = test_set.blocks(K)
    print(
        f"{row.circuit}: {blocks.n_blocks} blocks (K={K}), "
        f"{blocks.n_distinct} distinct; paper 9C rate {row.published['9C']}%"
    )

    fitness = CompressionRateFitness(blocks, n_vectors=L, block_length=K)

    def pin_all_u(genome):
        repaired = genome.copy()
        repaired[-K:] = DC
        return repaired

    engine = EvolutionaryEngine(
        fitness=fitness,
        genome_length=K * L,
        params=EAParameters(stagnation_limit=25, max_evaluations=1500),
        seed=42,
        repair=pin_all_u,
    )
    result = engine.run()

    print(f"\n{'gen':>4s} {'best':>7s} {'mean':>7s} {'evals':>6s}  improved")
    for stats in result.history:
        marker = "  *" if stats.improved else ""
        print(
            f"{stats.generation:4d} {stats.best_fitness:7.2f} "
            f"{stats.mean_fitness:7.2f} {stats.evaluations:6d}{marker}"
        )
    print(
        f"\nterminated by {result.terminated_by} after "
        f"{result.generations} generations / {result.evaluations} evaluations"
    )
    print(f"best compression rate: {result.best_fitness:.2f}%")

    best_mvs = MVSet.from_genome(result.best_genome, K)
    print("\nbest matching vectors (by covering priority):")
    for index in best_mvs.covering_order():
        print(f"  {best_mvs[index]}")


if __name__ == "__main__":
    main()

"""Inside the on-chip decoder: code table, stream walk, hardware cost.

Run with::

    python examples/decoder_model.py

Code-based compression ships a prefix-coded stream to an on-chip
decoder that walks the code tree and splices in fill bits.  This
example compresses a small test set, dumps the code table the decoder
would be configured with, decodes the first few blocks step by step,
and compares payload vs code-table cost for 9C and the EA decoder —
the Section 5 discussion (reconfigurable decoders) made concrete.
"""

from __future__ import annotations

import repro
from repro.coding.bitstream import BitReader


def main() -> None:
    text = (
        "11001100" * 10 + "111100XX" * 5 + "00000000" * 8 + "1100XXXX" * 4
    )
    blocks = repro.BlockSet.from_string(text, 8)

    config = repro.CompressionConfig(
        block_length=8,
        n_vectors=6,
        runs=2,
        ea=repro.EAParameters(stagnation_limit=30, max_evaluations=1000),
    )
    result = repro.optimize_mv_set(blocks, config, seed=3)
    compressed = repro.compress_blocks(blocks, result.best_mv_set)

    print("decoder code table (codeword -> matching vector):")
    for mv_index, codeword in sorted(
        compressed.table.codewords.items(), key=lambda kv: kv[1]
    ):
        mv = compressed.mv_set[mv_index]
        print(f"  {codeword:>6s} -> {mv}  ({mv.n_unspecified} fill bits)")

    print(
        f"\npayload: {compressed.compressed_bits} bits for "
        f"{compressed.original_bits} original bits "
        f"(rate {compressed.rate:.1f}%)"
    )
    print(f"code table (decoder configuration): "
          f"{compressed.code_table_bits()} bits")

    # --- walk the stream like the decoder FSM would ---------------------
    tree = compressed.table.prefix_code().decode_tree()
    reader = BitReader(compressed.payload, compressed.payload_bits)
    print("\nfirst three decoded blocks:")
    for block_index in range(3):
        node, word = tree, ""
        while isinstance(node, dict):
            bit = "1" if reader.read_bit() else "0"
            word += bit
            node = node[bit]
        mv = compressed.mv_set[node]
        fills = [reader.read_bit() for _ in range(mv.n_unspecified)]
        rendered = []
        fill_iter = iter(fills)
        for trit in mv.trits:
            rendered.append(str(next(fill_iter)) if trit == 2 else str(trit))
        print(
            f"  block {block_index}: codeword {word} -> MV {mv}, "
            f"fills {fills} -> {''.join(rendered)}"
        )

    # --- verify the whole stream, then compare with 9C ------------------
    repro.verify_roundtrip(compressed)
    nine_c = repro.compress_nine_c(blocks)
    print(
        f"\n9C for comparison: payload {nine_c.compressed_bits} bits, "
        f"hard-wired decoder (code table {nine_c.code_table_bits()} bits "
        "if made reconfigurable)"
    )
    print(
        "EA decoder pays a small reconfiguration table for "
        f"{nine_c.compressed_bits - compressed.compressed_bits} bits of "
        "payload saving on this test set"
    )


if __name__ == "__main__":
    main()

"""Multiple scan chains: the paper's future-work section, implemented.

Run with::

    python examples/multi_scan_chains.py

Section 5 of the paper: "Another direction for further research is
the application of our method in a multiple scan chain environment."
This example distributes a calibrated test set over 1/2/4/8 scan
chains and compares two decoder organizations:

* shared      — one MV set for all chains (one decoder design),
* independent — per-chain MV sets (more hardware, tuned vectors).
"""

from __future__ import annotations

from repro.core.config import CompressionConfig, EAParameters
from repro.core.multi_scan import compress_multi_scan, split_into_chains
from repro.testdata.calibration import calibrate_spec
from repro.testdata.registry import TABLE1_STUCK_AT, row_by_name
from repro.testdata.synthetic import SyntheticSpec


def main() -> None:
    row = row_by_name(TABLE1_STUCK_AT, "s953")
    spec = SyntheticSpec(
        name=row.circuit,
        n_patterns=row.n_patterns,
        pattern_bits=row.pattern_bits,
        care_density=0.5,
        seed=17,
    )
    test_set = calibrate_spec(spec, row.published["9C"]).test_set
    print(
        f"{row.circuit}: {test_set.n_patterns} patterns x "
        f"{test_set.n_inputs} scan cells ({test_set.total_bits} bits)"
    )

    config = CompressionConfig(
        block_length=8,
        n_vectors=16,
        runs=2,
        ea=EAParameters(stagnation_limit=25, max_evaluations=1000),
    )

    print(f"\n{'chains':>7s} {'mode':>12s} {'rate':>8s}  per-chain rates")
    for n_chains in (1, 2, 4, 8):
        widths = [c.n_inputs for c in split_into_chains(test_set, n_chains)]
        for mode in ("shared", "independent"):
            if n_chains == 1 and mode == "independent":
                continue  # identical to shared with one chain
            result = compress_multi_scan(
                test_set, n_chains, config=config, mode=mode, seed=5
            )
            chain_rates = " ".join(
                f"{chain.rate:5.1f}" for chain in result.chains
            )
            print(
                f"{n_chains:>7d} {mode:>12s} {result.rate:7.2f}%  "
                f"[{chain_rates}]"
            )
    print(f"\nchain widths at M=4: {widths}")
    print(
        "shared mode reuses one decoder table across chains; independent "
        "mode tunes matching vectors per chain at the cost of per-chain "
        "decoder configuration."
    )


if __name__ == "__main__":
    main()

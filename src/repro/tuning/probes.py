"""The ``repro tune`` microbenchmarks: measure thresholds, not guess them.

Each probe times the two contenders behind one hot-path decision on
*this* machine and derives the threshold from where the measured
curves cross (FFTW-style measure-then-dispatch):

* :func:`probe_kernel_crossover` — the batched fitness under the
  ``gemm`` vs ``bitpack`` kernel across distinct-table sizes, for
  narrow (one fused lane word) and wide (K > 64) blocks → the
  ``bitpack_min_distinct`` / ``bitpack_wide_min_distinct`` auto
  cutovers;
* :func:`probe_native_crossover` — the batched fitness under the
  ``bitpack`` (incumbent array kernel) vs cc-compiled ``native``
  kernel across the same narrow + wide sweeps → the
  ``native_min_distinct`` / ``native_wide_min_distinct`` auto
  cutovers; skipped (shipped defaults kept) when this machine has no
  C toolchain;
* :func:`probe_mv_dedup` — the fused kernels vs the unique-MV dedup
  path on convergent (high-duplicate) batches across (C, D) → the
  ``mv_dedup_min_*`` engagement shapes, plus the feedback monitor's
  break-even hit rate from the measured fused / cold / warm timings;
* :func:`probe_shard_size` — the bitpack kernel across candidate
  D-axis shard sizes → ``bitpack_shard_size`` (``None`` when the
  kernel's cache-budget autosizing wins);
* :func:`probe_huffman_lockstep` — per-row vs lockstep two-queue
  Huffman totals across batch row counts → ``huffman_lockstep_min_rows``.

Every probe takes an injectable ``timer`` (default
:func:`time.perf_counter`); given the same timer readings the derived
profile is a pure function of them, which is how the test suite pins
probe determinism with a scripted clock.  Probe workloads are seeded,
so the *work* is identical run to run too.

All derived thresholds are semantically inert — they move the wall
clock, never a result — so a bad probe on a noisy machine can cost
speed but can never corrupt an experiment.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from datetime import datetime, timezone

import numpy as np

from ..core.blocks import BlockSet, pack_bits_to_words
from ..core.fitness import DEFAULT_MV_CACHE_SIZE, BatchCompressionRateFitness
from ..core.kernels import BitpackKernel, NativeKernel, kernel_unavailable_reason
from ..core.trits import DC
from ..ea.genome import random_genome
from .profile import TuningProfile, current_fingerprint

__all__ = [
    "crossover_point",
    "probe_huffman_lockstep",
    "probe_kernel_crossover",
    "probe_mv_dedup",
    "probe_native_crossover",
    "probe_shard_size",
    "run_probes",
    "tuning_summary",
]

Timer = Callable[[], float]

# Forces the dedup path on for any shape (for timing it below its
# default engagement floor); forces nothing semantically.
_DEDUP_ALWAYS = TuningProfile(
    mv_dedup_min_genomes=1, mv_dedup_min_table=1, mv_dedup_min_distinct=1
)
# Pins the shipped defaults regardless of any process-wide active
# profile, so probing is not skewed by the profile being replaced.
_BASELINE = TuningProfile()


def _probe_blocks(
    n_distinct: int, block_length: int, rng: np.random.Generator
) -> BlockSet:
    """A fully-specified distinct-block table of an exact size.

    Fully specified blocks make ``n_distinct`` exact (the probe's
    x-axis) and are timing-representative: kernel match work is dense
    integer/float arithmetic whose cost does not depend on block
    content, and the pinned all-U MV keeps every covering complete.
    """
    if block_length <= 20:
        if n_distinct > 1 << block_length:
            raise ValueError(
                f"cannot build {n_distinct} distinct K={block_length} blocks"
            )
        values = rng.choice(
            1 << block_length, size=n_distinct, replace=False
        ).astype(np.uint64)
        mask = np.uint64((1 << block_length) - 1)
        ones = values & mask
        zeros = ~values & mask
    else:
        bits = rng.integers(0, 2, size=(n_distinct, block_length), dtype=np.uint8)
        ones = pack_bits_to_words(bits == 1)
        zeros = pack_bits_to_words(bits == 0)
    counts = rng.integers(1, 5, size=n_distinct).astype(np.int64)
    return BlockSet(
        block_length=block_length,
        original_bits=int(counts.sum()) * block_length,
        ones=ones,
        zeros=zeros,
        counts=counts,
        sequence=np.repeat(
            np.arange(n_distinct, dtype=np.int32), counts
        ),
    )


def _probe_genomes(
    n_genomes: int, n_vectors: int, block_length: int, rng: np.random.Generator
) -> np.ndarray:
    genomes = np.stack(
        [random_genome(n_vectors * block_length, rng) for _ in range(n_genomes)]
    )
    genomes[:, -block_length:] = DC  # pinned all-U MV: coverings complete
    return genomes


def _convergent_genomes(
    n_genomes: int,
    n_vectors: int,
    block_length: int,
    rng: np.random.Generator,
    n_parents: int = 8,
    mutated_genes: int = 3,
) -> np.ndarray:
    """Copy+mutate offspring of a few parents — the late-run EA regime
    the MV dedup path is built for (mirrors the bench's convergent
    workload)."""
    parents = _probe_genomes(n_parents, n_vectors, block_length, rng)
    rows = []
    for index in range(n_genomes):
        child = parents[index % n_parents].copy()
        sites = rng.integers(0, (n_vectors - 1) * block_length, size=mutated_genes)
        child[sites] = rng.integers(0, 3, size=mutated_genes)
        rows.append(child)
    return np.stack(rows)


def _best_seconds(function, repeats: int, timer: Timer) -> float:
    """Best-of-N wall time through the injectable clock."""
    function()  # warm allocations, caches, lazy kernel resolution
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = timer()
        function()
        best = min(best, timer() - start)
    return best


def crossover_point(
    points: Sequence[tuple[int, float, float]],
) -> int | None:
    """Smallest x from which the challenger beats the incumbent *and
    keeps winning* through the largest probed x.

    ``points`` are ``(x, incumbent_seconds, challenger_seconds)``.
    Requiring the win to persist to the end of the probed range makes
    the decision robust to a single noisy point in the middle; a
    challenger that loses at the largest x yields ``None`` (no safe
    crossover was observed).
    """
    best = None
    for x, incumbent, challenger in sorted(points, reverse=True):
        if challenger <= incumbent:
            best = x
        else:
            break
    return best


def _fallback_threshold(max_probed: int) -> int:
    # The challenger never won inside the probed range; engage it only
    # well past the measured evidence.
    return 2 * max_probed


# -- probes -----------------------------------------------------------


def probe_kernel_crossover(
    quick: bool = False,
    repeats: int = 3,
    timer: Timer = time.perf_counter,
) -> tuple[int, int, dict[str, float]]:
    """(bitpack_min_distinct, bitpack_wide_min_distinct, measurements)."""
    measurements: dict[str, float] = {}

    def sweep(block_length, n_vectors, batch, d_values, tag):
        points = []
        for n_distinct in d_values:
            rng = np.random.default_rng(1000 + n_distinct + block_length)
            blocks = _probe_blocks(n_distinct, block_length, rng)
            genomes = _probe_genomes(batch, n_vectors, block_length, rng)
            seconds = {}
            for kernel in ("gemm", "bitpack"):
                fitness = BatchCompressionRateFitness(
                    blocks,
                    n_vectors=n_vectors,
                    block_length=block_length,
                    kernel=kernel,
                    mv_cache_size=0,
                    tuning=_BASELINE,
                )
                seconds[kernel] = _best_seconds(
                    lambda f=fitness: f.evaluate_batch(genomes), repeats, timer
                )
                measurements[f"{tag}/d{n_distinct}/{kernel}"] = seconds[kernel]
            points.append((n_distinct, seconds["gemm"], seconds["bitpack"]))
        crossover = crossover_point(points)
        return crossover if crossover is not None else _fallback_threshold(
            max(d_values)
        )

    narrow_ds = (128, 256, 512, 1024) if quick else (64, 128, 256, 512, 1024, 2048)
    wide_ds = (256, 512, 1024) if quick else (256, 512, 1024, 2048, 4096)
    narrow = sweep(12, 32, 32, narrow_ds, "kernel_narrow")
    wide = sweep(96, 16, 16, wide_ds, "kernel_wide")
    return narrow, wide, measurements


def probe_native_crossover(
    quick: bool = False,
    repeats: int = 3,
    timer: Timer = time.perf_counter,
) -> tuple[int, int, dict[str, float]]:
    """(native_min_distinct, native_wide_min_distinct, measurements).

    The incumbent is ``bitpack`` — the fastest array kernel on the
    shapes where the native kernel matters — and the challenger is the
    cc-compiled ``native`` kernel, over the same narrow/wide sweeps as
    :func:`probe_kernel_crossover`.  Only callable when the native
    kernel is available; :func:`run_probes` gates on availability and
    keeps the shipped defaults otherwise.
    """
    measurements: dict[str, float] = {}

    def sweep(block_length, n_vectors, batch, d_values, tag):
        points = []
        for n_distinct in d_values:
            rng = np.random.default_rng(1500 + n_distinct + block_length)
            blocks = _probe_blocks(n_distinct, block_length, rng)
            genomes = _probe_genomes(batch, n_vectors, block_length, rng)
            seconds = {}
            for kernel in ("bitpack", "native"):
                fitness = BatchCompressionRateFitness(
                    blocks,
                    n_vectors=n_vectors,
                    block_length=block_length,
                    kernel=kernel,
                    mv_cache_size=0,
                    tuning=_BASELINE,
                )
                seconds[kernel] = _best_seconds(
                    lambda f=fitness: f.evaluate_batch(genomes), repeats, timer
                )
                measurements[f"{tag}/d{n_distinct}/{kernel}"] = seconds[kernel]
            points.append((n_distinct, seconds["bitpack"], seconds["native"]))
        crossover = crossover_point(points)
        return crossover if crossover is not None else _fallback_threshold(
            max(d_values)
        )

    narrow_ds = (128, 256, 512, 1024) if quick else (64, 128, 256, 512, 1024, 2048)
    wide_ds = (256, 512, 1024) if quick else (256, 512, 1024, 2048, 4096)
    narrow = sweep(12, 32, 32, narrow_ds, "native_narrow")
    wide = sweep(96, 16, 16, wide_ds, "native_wide")
    return narrow, wide, measurements


def probe_mv_dedup(
    quick: bool = False,
    repeats: int = 3,
    timer: Timer = time.perf_counter,
) -> tuple[int, int, int, float, dict[str, float]]:
    """(min_genomes, min_table, min_distinct, feedback_min_hit_rate,
    measurements)."""
    measurements: dict[str, float] = {}
    block_length, n_vectors = 12, 32

    def fitness(blocks, mv_cache_size, tuning):
        return BatchCompressionRateFitness(
            blocks,
            n_vectors=n_vectors,
            block_length=block_length,
            mv_cache_size=mv_cache_size,
            tuning=tuning,
            mv_feedback=False,  # probe the paths, not the monitor
        )

    def contenders(n_distinct, batch, tag):
        rng = np.random.default_rng(2000 + n_distinct + batch)
        blocks = _probe_blocks(n_distinct, block_length, rng)
        genomes = _convergent_genomes(batch, n_vectors, block_length, rng)
        fused = fitness(blocks, 0, _BASELINE)
        deduped = fitness(blocks, DEFAULT_MV_CACHE_SIZE, _DEDUP_ALWAYS)
        deduped.evaluate_batch(genomes)  # warm the MV cache
        fused_s = _best_seconds(
            lambda: fused.evaluate_batch(genomes), repeats, timer
        )
        dedup_s = _best_seconds(
            lambda: deduped.evaluate_batch(genomes), repeats, timer
        )
        measurements[f"{tag}/fused"] = fused_s
        measurements[f"{tag}/dedup"] = dedup_s
        return fused_s, dedup_s

    # Table floor at generation scale (C = 32).
    d_values = (128, 256, 512, 1024) if quick else (128, 256, 512, 1024, 2048)
    table_points = []
    for n_distinct in d_values:
        fused_s, dedup_s = contenders(n_distinct, 32, f"dedup_table/d{n_distinct}")
        table_points.append((n_distinct, fused_s, dedup_s))
    min_table = crossover_point(table_points)
    min_table = (
        min_table if min_table is not None else _fallback_threshold(max(d_values))
    )

    # Generation floor at a mid-size table.
    c_values = (2, 4, 8, 16, 32)
    d_mid = 1024 if quick else 2048
    genome_points = []
    for batch in c_values:
        fused_s, dedup_s = contenders(d_mid, batch, f"dedup_genomes/c{batch}")
        genome_points.append((batch, fused_s, dedup_s))
    min_genomes = crossover_point(genome_points)
    min_genomes = (
        min_genomes
        if min_genomes is not None
        else _fallback_threshold(max(c_values))
    )

    # Any-batch floor: tiny post-memo batches (C = 2) across tables.
    tiny_points = []
    for n_distinct in d_values:
        fused_s, dedup_s = contenders(n_distinct, 2, f"dedup_tiny/d{n_distinct}")
        tiny_points.append((n_distinct, fused_s, dedup_s))
    min_distinct = crossover_point(tiny_points)
    min_distinct = (
        min_distinct
        if min_distinct is not None
        else _fallback_threshold(max(d_values))
    )

    # Feedback break-even: fused vs dedup at ~0% (cold) and at the
    # measured warm hit rate; linear interpolation in the hit rate
    # gives the rate at which dedup time equals fused time.
    rng = np.random.default_rng(3000)
    blocks = _probe_blocks(d_mid, block_length, rng)
    warm_batch = _convergent_genomes(32, n_vectors, block_length, rng)
    fused = fitness(blocks, 0, _BASELINE)
    fused_s = _best_seconds(
        lambda: fused.evaluate_batch(warm_batch), repeats, timer
    )
    warm = fitness(blocks, DEFAULT_MV_CACHE_SIZE, _DEDUP_ALWAYS)
    warm.evaluate_batch(warm_batch)  # cold fill, outside the timing
    hits_before, misses_before = warm.mv_cache.hits, warm.mv_cache.misses
    warm_s = _best_seconds(
        lambda: warm.evaluate_batch(warm_batch), repeats, timer
    )
    hits = warm.mv_cache.hits - hits_before
    misses = warm.mv_cache.misses - misses_before
    lookups = hits + misses
    warm_hit_rate = hits / lookups if lookups else 1.0

    cold = fitness(blocks, DEFAULT_MV_CACHE_SIZE, _DEDUP_ALWAYS)

    def cold_batch():
        cold.evaluate_batch(
            _probe_genomes(32, n_vectors, block_length, rng)
        )

    cold_s = _best_seconds(cold_batch, repeats, timer)
    measurements["dedup_feedback/fused"] = fused_s
    measurements["dedup_feedback/warm"] = warm_s
    measurements["dedup_feedback/cold"] = cold_s
    measurements["dedup_feedback/warm_hit_rate"] = warm_hit_rate
    if cold_s <= fused_s:
        min_hit_rate = 0.05  # dedup wins even stone-cold: barely ever veto
    elif warm_s >= fused_s:
        min_hit_rate = 0.95  # dedup loses even warm: veto aggressively
    else:
        min_hit_rate = (
            warm_hit_rate * (cold_s - fused_s) / (cold_s - warm_s)
        )
        min_hit_rate = float(min(0.95, max(0.05, min_hit_rate)))
    return min_genomes, min_table, min_distinct, min_hit_rate, measurements


def probe_shard_size(
    quick: bool = False,
    repeats: int = 3,
    timer: Timer = time.perf_counter,
) -> tuple[int | None, dict[str, float]]:
    """(bitpack_shard_size or None for autosizing, measurements)."""
    measurements: dict[str, float] = {}
    block_length, n_vectors, batch = 12, 32, 32
    n_distinct = 2048 if quick else 4096
    rng = np.random.default_rng(4000)
    blocks = _probe_blocks(n_distinct, block_length, rng)
    genomes = _probe_genomes(batch, n_vectors, block_length, rng)
    candidates: list[int | None] = [None, 256, 512, 1024, 2048]
    seconds: dict[int | None, float] = {}
    for shard_size in candidates:
        fitness = BatchCompressionRateFitness(
            blocks,
            n_vectors=n_vectors,
            block_length=block_length,
            kernel=BitpackKernel(shard_size=shard_size),
            mv_cache_size=0,
            tuning=_BASELINE,
        )
        seconds[shard_size] = _best_seconds(
            lambda f=fitness: f.evaluate_batch(genomes), repeats, timer
        )
        label = "auto" if shard_size is None else str(shard_size)
        measurements[f"shard/{label}"] = seconds[shard_size]
    best = min(candidates, key=lambda size: seconds[size])
    # Prefer autosizing unless an explicit shard is a real (>2%) win —
    # autosizing adapts to future table sizes, a pinned number cannot.
    if best is not None and seconds[best] > 0.98 * seconds[None]:
        best = None
    return best, measurements


def probe_huffman_lockstep(
    quick: bool = False,
    repeats: int = 3,
    timer: Timer = time.perf_counter,
) -> tuple[int, dict[str, float]]:
    """(huffman_lockstep_min_rows, measurements)."""
    from ..coding.huffman import huffman_total_bits_batch

    measurements: dict[str, float] = {}
    n_symbols = 64
    row_values = (16, 32, 64, 96, 128) if quick else (16, 32, 64, 96, 128, 192, 256)
    rng = np.random.default_rng(5000)
    points = []
    for n_rows in row_values:
        freqs = rng.integers(0, 50, size=(n_rows, n_symbols))
        per_row = _best_seconds(
            lambda f=freqs: huffman_total_bits_batch(
                f, lockstep_min_rows=1 << 30
            ),
            repeats,
            timer,
        )
        lockstep = _best_seconds(
            lambda f=freqs: huffman_total_bits_batch(f, lockstep_min_rows=1),
            repeats,
            timer,
        )
        measurements[f"huffman/r{n_rows}/per_row"] = per_row
        measurements[f"huffman/r{n_rows}/lockstep"] = lockstep
        points.append((n_rows, per_row, lockstep))
    crossover = crossover_point(points)
    return (
        crossover if crossover is not None else _fallback_threshold(max(row_values))
    ), measurements


def _timing_signature(timer: Timer) -> tuple[float, float]:
    """(gemm_us, bitand_us) — the fingerprint's dtype timing signature."""
    rng = np.random.default_rng(6000)
    a = rng.random((256, 256), dtype=np.float32)
    b = rng.random((256, 256), dtype=np.float32)
    gemm_s = _best_seconds(lambda: a @ b, 3, timer)
    words = rng.integers(0, 1 << 62, size=1 << 18, dtype=np.uint64)
    bitand_s = _best_seconds(lambda: words & words[0], 3, timer)
    return round(gemm_s * 1e6, 3), round(bitand_s * 1e6, 3)


def run_probes(
    quick: bool = False,
    repeats: int = 3,
    timer: Timer = time.perf_counter,
    progress: Callable[[str], None] | None = None,
    created: str | None = None,
) -> TuningProfile:
    """Run every probe and assemble the machine's :class:`TuningProfile`.

    Pure given the timer's readings and the fixed probe seeds: the
    same measurements produce the same profile (the determinism tests
    drive this with a scripted clock).  Unprobed thresholds
    (``scalar_max_work``, the feedback patience/reprobe cadence) keep
    the shipped defaults.
    """
    started = timer()
    measurements: dict[str, float] = {}

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    note("probing gemm-vs-bitpack crossover ...")
    narrow, wide, kernel_measured = probe_kernel_crossover(quick, repeats, timer)
    measurements.update(kernel_measured)
    note(f"  bitpack from D>={narrow} (narrow), D>={wide} (wide)")

    defaults = TuningProfile()
    native_reason = kernel_unavailable_reason(NativeKernel.name)
    if native_reason is None:
        note("probing bitpack-vs-native crossover ...")
        native_narrow, native_wide, native_measured = probe_native_crossover(
            quick, repeats, timer
        )
        measurements.update(native_measured)
        note(
            f"  native from D>={native_narrow} (narrow), "
            f"D>={native_wide} (wide)"
        )
    else:
        native_narrow = defaults.native_min_distinct
        native_wide = defaults.native_wide_min_distinct
        note(f"skipping native-kernel probe: {native_reason}")

    note("probing MV-dedup engagement break-even ...")
    (
        min_genomes,
        min_table,
        min_distinct,
        min_hit_rate,
        dedup_measured,
    ) = probe_mv_dedup(quick, repeats, timer)
    measurements.update(dedup_measured)
    note(
        f"  dedup from C>={min_genomes} at D>={min_table}, "
        f"any batch at D>={min_distinct}; break-even hit rate "
        f"{min_hit_rate:.2f}"
    )

    note("probing bitpack shard size ...")
    shard_size, shard_measured = probe_shard_size(quick, repeats, timer)
    measurements.update(shard_measured)
    note(f"  shard_size={'auto' if shard_size is None else shard_size}")

    note("probing Huffman lockstep cutover ...")
    lockstep_rows, huffman_measured = probe_huffman_lockstep(
        quick, repeats, timer
    )
    measurements.update(huffman_measured)
    note(f"  lockstep from {lockstep_rows} rows")

    gemm_us, bitand_us = _timing_signature(timer)
    return TuningProfile(
        fingerprint=current_fingerprint(gemm_us=gemm_us, bitand_us=bitand_us),
        bitpack_min_distinct=narrow,
        bitpack_wide_min_distinct=wide,
        native_min_distinct=native_narrow,
        native_wide_min_distinct=native_wide,
        scalar_max_work=defaults.scalar_max_work,
        mv_dedup_min_genomes=min_genomes,
        mv_dedup_min_table=min_table,
        mv_dedup_min_distinct=min_distinct,
        bitpack_shard_size=shard_size,
        huffman_lockstep_min_rows=lockstep_rows,
        mv_feedback_min_hit_rate=round(min_hit_rate, 3),
        mv_feedback_patience=defaults.mv_feedback_patience,
        mv_feedback_reprobe_period=defaults.mv_feedback_reprobe_period,
        source=f"repro tune ({'quick' if quick else 'full'}, repeats={repeats})",
        created=(
            created
            if created is not None
            else datetime.now(timezone.utc).isoformat(timespec="seconds")
        ),
        probe_seconds=round(timer() - started, 3),
        measurements=tuple(
            sorted((name, round(value, 9)) for name, value in measurements.items())
        ),
    )


def tuning_summary(
    profile: TuningProfile,
    quick: bool = False,
    repeats: int = 3,
    timer: Timer = time.perf_counter,
) -> list[dict]:
    """Before/after genomes/s of the full default pipeline.

    Prices one convergent generation batch end to end (``auto``
    kernel, MV cache and feedback at their defaults) under the shipped
    defaults and under ``profile`` — the number ``repro tune`` prints
    after writing, so the operator sees what the profile actually buys
    on this machine.  Results are asserted identical: tuning moves
    only the clock.
    """
    shapes = {
        "medium": (768 if quick else 860, 12, 32, 32),
        "large": (2048 if quick else 3300, 12, 64, 32),
    }
    rows = []
    for name, (n_distinct, block_length, n_vectors, batch) in shapes.items():
        rng = np.random.default_rng(7000 + n_distinct)
        blocks = _probe_blocks(n_distinct, block_length, rng)
        genomes = _convergent_genomes(batch, n_vectors, block_length, rng)

        def throughput(tuning):
            fitness = BatchCompressionRateFitness(
                blocks,
                n_vectors=n_vectors,
                block_length=block_length,
                tuning=tuning,
            )
            rates = fitness.evaluate_batch(genomes)  # warm cache + kernel
            seconds = _best_seconds(
                lambda: fitness.evaluate_batch(genomes), repeats, timer
            )
            return batch / seconds, rates

        default_gps, default_rates = throughput(_BASELINE)
        tuned_gps, tuned_rates = throughput(profile)
        assert (default_rates == tuned_rates).all(), (
            "tuning changed results; profiles must be semantically inert"
        )
        rows.append(
            {
                "workload": name,
                "n_distinct_blocks": n_distinct,
                "batch_size": batch,
                "default_genomes_per_second": round(default_gps, 1),
                "tuned_genomes_per_second": round(tuned_gps, 1),
                "speedup_tuned_vs_default": round(tuned_gps / default_gps, 2),
            }
        )
    return rows

"""Runtime feedback engagement for the MV match-column cache.

The static shape heuristic in ``repro.core.fitness`` decides *before*
a run whether the unique-MV dedup path should engage; this module adds
the runtime half the ROADMAP asked for: the cache already knows its
own hit rate, so a run whose batches keep missing (cache-hostile
operator mixes, eviction-thrashed tables) can stop paying the dedup
bookkeeping *mid-run*.  :class:`MVCacheFeedback` watches the per-batch
hit rate delivered by the fitness, disengages the dedup path after
``patience`` consecutive generations below ``min_hit_rate``, and
re-probes it every ``reprobe_period`` fused generations in case the
population has since converged (the usual late-run regime, where the
cache wins ×1.75–2).  The monitor is pure bookkeeping over a path that
is itself semantically inert, so engagement decisions can never change
a result — only the wall clock — which is what lets seeded runs stay
byte-identical with feedback forced on, forced off, or left adaptive.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MVCacheFeedback", "MVFeedbackStats"]


@dataclass(frozen=True)
class MVFeedbackStats:
    """Counters describing one monitor's decisions so far."""

    batches_observed: int = 0
    batches_fused: int = 0
    disengagements: int = 0
    reprobes: int = 0
    low_streak: int = 0
    engaged: bool = True


class MVCacheFeedback:
    """Hit-rate monitor that gates the MV-dedup path mid-run.

    Parameters mirror the ``mv_feedback_*`` fields of
    :class:`repro.tuning.profile.TuningProfile`:

    min_hit_rate:
        Break-even per-batch hit rate.  Below it, the dedup path is
        presumed slower than the fused kernels (the probe derives the
        value from measured fused / cold-dedup / warm-dedup timings).
    patience:
        Consecutive low-hit batches tolerated before disengaging —
        early generations legitimately run cold while the cache fills,
        so one bad batch must never flip the path.
    reprobe_period:
        Fused batches between re-probes once disengaged.  A re-probe
        re-engages the dedup path for one batch and lets its observed
        hit rate decide again (the low streak re-opens primed at
        ``patience − 1``, so that single batch is decisive).

    The monitor only ever *advises*; the fitness asks :attr:`engaged`
    before each batch, reports dedup batches through :meth:`observe`
    and fused-by-advice batches through :meth:`tick_fused`.
    """

    def __init__(
        self,
        min_hit_rate: float = 0.25,
        patience: int = 10,
        reprobe_period: int = 50,
    ) -> None:
        if not 0.0 <= min_hit_rate <= 1.0:
            raise ValueError(
                f"min_hit_rate must be within [0, 1], got {min_hit_rate}"
            )
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if reprobe_period < 1:
            raise ValueError(
                f"reprobe_period must be >= 1, got {reprobe_period}"
            )
        self._min_hit_rate = min_hit_rate
        self._patience = patience
        self._reprobe_period = reprobe_period
        self._low_streak = 0
        self._fused_remaining = 0  # > 0 ⇔ disengaged
        self._batches_observed = 0
        self._batches_fused = 0
        self._disengagements = 0
        self._reprobes = 0

    @property
    def engaged(self) -> bool:
        """Whether the next batch should take the dedup path."""
        return self._fused_remaining == 0

    @property
    def stats(self) -> MVFeedbackStats:
        """Decision counters (for `EAResult`/bench reporting)."""
        return MVFeedbackStats(
            batches_observed=self._batches_observed,
            batches_fused=self._batches_fused,
            disengagements=self._disengagements,
            reprobes=self._reprobes,
            low_streak=self._low_streak,
            engaged=self.engaged,
        )

    def observe(self, hits: int, misses: int) -> None:
        """Record one dedup batch's cache outcome.

        A batch with no lookups (every row already deduplicated away
        inside the batch) carries no signal and counts as healthy.
        """
        self._batches_observed += 1
        lookups = hits + misses
        rate = hits / lookups if lookups else 1.0
        if rate < self._min_hit_rate:
            self._low_streak += 1
            if self._low_streak >= self._patience:
                self._fused_remaining = self._reprobe_period
                self._low_streak = 0
                self._disengagements += 1
        else:
            self._low_streak = 0

    def tick_fused(self) -> None:
        """Record one batch priced fused because the monitor disengaged.

        When the fused window closes, the re-probe opens with the low
        streak primed at ``patience − 1``: the single probe batch
        decides alone — still cold disengages again immediately,
        healthy resets the streak and stays engaged — so a
        persistently hostile run pays one dedup batch per
        ``reprobe_period``, not ``patience`` of them.
        """
        if self._fused_remaining == 0:
            return
        self._batches_fused += 1
        self._fused_remaining -= 1
        if self._fused_remaining == 0:
            self._reprobes += 1
            self._low_streak = self._patience - 1

"""The persisted tuning profile: every hot-path threshold in one place.

PRs 1–4 made the fitness inner loop fast through *heuristics* — the
kernel auto-selection cutovers, the MV-dedup engagement shapes, the
bitpack shard size, the Huffman lockstep cutover — all calibrated on
one single-core container.  :class:`TuningProfile` turns those numbers
into data: a versioned JSON document under ``~/.cache/repro/`` (or an
explicit ``--profile PATH``) carrying a machine fingerprint (cpu
count, BLAS vendor, dtype timing signature) plus one field per
threshold.  ``repro tune`` measures them on the current machine
(:mod:`repro.tuning.probes`); consumers — ``select_kernel_name`` /
``resolve_kernel``, :class:`repro.core.fitness.BatchCompressionRateFitness`,
:class:`repro.core.kernels.BitpackKernel`, the Huffman batch pricer —
consult the profile *when one is set* and otherwise fall back to the
shipped measured defaults, so seeded output is byte-identical with or
without a profile (every threshold is semantically inert: it moves the
wall clock, never a result).

This module is import-light (stdlib + numpy only) so the core modules
can depend on it without cycles; the probes live separately in
:mod:`repro.tuning.probes`.
"""

from __future__ import annotations

import json
import os
import platform
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path

import numpy as np

from ..io_utils import atomic_write_json

__all__ = [
    "PROFILE_FORMAT",
    "PROFILE_VERSION",
    "MachineFingerprint",
    "ProfileLoadError",
    "TuningProfile",
    "current_fingerprint",
    "default_profile",
    "default_profile_path",
    "fingerprint_matches",
    "get_active_profile",
    "load_profile",
    "load_profile_or_none",
    "save_profile",
    "set_active_profile",
    "use_profile",
]

PROFILE_FORMAT = "repro-tuning-profile"
PROFILE_VERSION = 1


@dataclass(frozen=True)
class MachineFingerprint:
    """What the profile's numbers were measured on.

    ``cpu_count``, ``machine`` and ``blas_vendor`` gate profile reuse
    (:func:`fingerprint_matches` — a profile tuned on an AVX-512
    OpenBLAS box has nothing to say about an M-series Accelerate one);
    the dtype timing signature (``gemm_us``: one small float32 matrix
    product, ``bitand_us``: one uint64 AND sweep) is informational —
    wall-clock numbers are never compared across machines, only
    recorded so a human can judge how alike two runners really were.
    """

    cpu_count: int
    machine: str
    blas_vendor: str
    python: str
    numpy: str
    gemm_us: float = 0.0
    bitand_us: float = 0.0


@dataclass(frozen=True)
class TuningProfile:
    """Every measured threshold of the pricing hot path, as data.

    The field defaults ARE the shipped measured defaults — the same
    numbers the core modules fall back to when no profile is active —
    so ``TuningProfile()`` describes exactly the no-profile behavior.
    All thresholds are semantically inert: any values produce
    bit-identical results, only the wall clock moves.

    Kernel auto-selection (see ``repro.core.kernels``):

    * ``bitpack_min_distinct`` — distinct-block floor above which the
      fused-lane bitpack kernel beats GEMM for narrow blocks (2K bits
      in at most two uint64 words);
    * ``bitpack_wide_min_distinct`` — the same cutover for wide blocks
      (K > 64), where GEMM keeps its compute density longer;
    * ``native_min_distinct`` / ``native_wide_min_distinct`` —
      distinct-block floors above which the cc-compiled ``native``
      kernel takes precedence over both array kernels (narrow / wide
      lanes); only consulted when the native kernel is available on
      this machine, so a profile tuned with a compiler stays valid
      without one;
    * ``scalar_max_work`` — D·L ceiling under which a single uncached
      covering stays on the plain Python loop.

    MV-dedup engagement (see ``repro.core.fitness``):

    * ``mv_dedup_min_genomes`` / ``mv_dedup_min_table`` — the
      generation-scale shape (C, D) at which the unique-MV dedup path
      starts beating the fused kernels;
    * ``mv_dedup_min_distinct`` — the table size at which even tiny
      post-memo batches engage the dedup path.

    Feedback engagement (see :mod:`repro.tuning.feedback`):

    * ``mv_feedback_min_hit_rate`` — observed per-generation MV-cache
      hit rate below which the dedup path is presumed to be losing to
      the fused kernels (the probe derives it from the measured
      cold/warm/fused timings);
    * ``mv_feedback_patience`` — consecutive low-hit generations
      before the monitor disengages the dedup path mid-run;
    * ``mv_feedback_reprobe_period`` — fused generations between
      re-probes of the dedup path once disengaged.

    Kernel internals:

    * ``bitpack_shard_size`` — distinct blocks per bitpack D-axis
      shard (``None`` keeps the kernel's cache-budget autosizing);
    * ``huffman_lockstep_min_rows`` — frequency-matrix row count at
      which the lockstep-vectorized two-queue merge overtakes the
      per-row scalar merge.

    Cache retention (see :mod:`repro.core.cache`):

    * ``mv_cache_policy`` — the MV match-column cache's eviction
      policy (``lru``/``lfu``/``2q``/``segmented``; ``None`` keeps the
      shipped default).  Like every other field it is semantically
      inert — a policy decides which columns a full cache keeps, never
      what a column contains — so the tuner may pick whichever policy
      measured the best hit rate on this machine's workloads.
    """

    version: int = PROFILE_VERSION
    fingerprint: MachineFingerprint | None = None
    bitpack_min_distinct: int = 256
    bitpack_wide_min_distinct: int = 2048
    native_min_distinct: int = 1
    native_wide_min_distinct: int = 1
    scalar_max_work: int = 512
    mv_dedup_min_genomes: int = 16
    mv_dedup_min_table: int = 512
    mv_dedup_min_distinct: int = 2048
    bitpack_shard_size: int | None = None
    huffman_lockstep_min_rows: int = 96
    mv_feedback_min_hit_rate: float = 0.25
    mv_feedback_patience: int = 10
    mv_feedback_reprobe_period: int = 50
    mv_cache_policy: str | None = None
    source: str = "builtin-defaults"
    created: str = ""
    probe_seconds: float = 0.0
    measurements: tuple[tuple[str, float], ...] = field(default=(), repr=False)

    def __post_init__(self) -> None:
        positive = (
            "bitpack_min_distinct",
            "bitpack_wide_min_distinct",
            "native_min_distinct",
            "native_wide_min_distinct",
            "scalar_max_work",
            "mv_dedup_min_genomes",
            "mv_dedup_min_table",
            "mv_dedup_min_distinct",
            "huffman_lockstep_min_rows",
            "mv_feedback_patience",
            "mv_feedback_reprobe_period",
        )
        for name in positive:
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.bitpack_shard_size is not None and self.bitpack_shard_size < 1:
            raise ValueError(
                f"bitpack_shard_size must be >= 1 or None, "
                f"got {self.bitpack_shard_size}"
            )
        if not 0.0 <= self.mv_feedback_min_hit_rate <= 1.0:
            raise ValueError(
                "mv_feedback_min_hit_rate must be within [0, 1], "
                f"got {self.mv_feedback_min_hit_rate}"
            )
        if self.mv_cache_policy is not None:
            # Imported lazily: the core package imports this module at
            # load time, so a top-level import would be circular.
            from ..core.cache.policies import POLICY_CHOICES

            if self.mv_cache_policy not in POLICY_CHOICES:
                raise ValueError(
                    f"mv_cache_policy must be one of "
                    f"{', '.join(POLICY_CHOICES)} or None, "
                    f"got {self.mv_cache_policy!r}"
                )

    def with_updates(self, **changes) -> "TuningProfile":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # -- (de)serialization --------------------------------------------

    _THRESHOLD_FIELDS = (
        "bitpack_min_distinct",
        "bitpack_wide_min_distinct",
        "native_min_distinct",
        "native_wide_min_distinct",
        "scalar_max_work",
        "mv_dedup_min_genomes",
        "mv_dedup_min_table",
        "mv_dedup_min_distinct",
        "bitpack_shard_size",
        "huffman_lockstep_min_rows",
        "mv_feedback_min_hit_rate",
        "mv_feedback_patience",
        "mv_feedback_reprobe_period",
        "mv_cache_policy",
    )

    def to_dict(self) -> dict:
        """The profile as the JSON document structure."""
        return {
            "format": PROFILE_FORMAT,
            "version": self.version,
            "source": self.source,
            "created": self.created,
            "probe_seconds": self.probe_seconds,
            "fingerprint": (
                asdict(self.fingerprint) if self.fingerprint else None
            ),
            "thresholds": {
                name: getattr(self, name) for name in self._THRESHOLD_FIELDS
            },
            "measurements": dict(self.measurements),
        }

    @classmethod
    def from_dict(cls, document: dict) -> "TuningProfile":
        """Parse the JSON document structure (no version gating here)."""
        thresholds = dict(document.get("thresholds", {}))
        known = {f.name for f in fields(cls)}
        unknown = set(thresholds) - known
        if unknown:
            raise ProfileLoadError(
                f"unknown threshold fields: {', '.join(sorted(unknown))}"
            )
        raw_fingerprint = document.get("fingerprint")
        fingerprint = (
            MachineFingerprint(**raw_fingerprint) if raw_fingerprint else None
        )
        measurements = tuple(
            sorted((str(k), float(v)) for k, v in
                   dict(document.get("measurements", {})).items())
        )
        return cls(
            version=int(document.get("version", -1)),
            fingerprint=fingerprint,
            source=str(document.get("source", "unknown")),
            created=str(document.get("created", "")),
            probe_seconds=float(document.get("probe_seconds", 0.0)),
            measurements=measurements,
            **thresholds,
        )


class ProfileLoadError(ValueError):
    """A tuning profile could not be loaded (missing/invalid/mismatched)."""


def _blas_vendor() -> str:
    """Best-effort BLAS vendor name from numpy's build info."""
    try:
        config = np.show_config(mode="dicts")
        return str(
            config["Build Dependencies"]["blas"].get("name", "unknown")
        )
    except Exception:
        return "unknown"


def current_fingerprint(
    gemm_us: float = 0.0, bitand_us: float = 0.0
) -> MachineFingerprint:
    """Fingerprint of this machine (timing signature optional)."""
    return MachineFingerprint(
        cpu_count=os.cpu_count() or 1,
        machine=platform.machine(),
        blas_vendor=_blas_vendor(),
        python=platform.python_version(),
        numpy=np.__version__,
        gemm_us=gemm_us,
        bitand_us=bitand_us,
    )


def fingerprint_matches(
    profile: MachineFingerprint | None, machine: MachineFingerprint
) -> bool:
    """Whether a profile's fingerprint is valid for ``machine``.

    Gates on the fields that change which thresholds are right —
    cpu count, architecture, BLAS vendor.  The timing signature and
    interpreter versions are informational: they vary run to run
    without invalidating the thresholds.
    """
    if profile is None:
        return False
    return (
        profile.cpu_count == machine.cpu_count
        and profile.machine == machine.machine
        and profile.blas_vendor == machine.blas_vendor
    )


def default_profile() -> TuningProfile:
    """The shipped defaults stamped with this machine's fingerprint."""
    return TuningProfile(fingerprint=current_fingerprint())


def default_profile_path() -> Path:
    """``$REPRO_CACHE_DIR/tuning_profile.json`` (default ``~/.cache/repro``)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    base = Path(root) if root else Path.home() / ".cache" / "repro"
    return base / "tuning_profile.json"


def save_profile(profile: TuningProfile, path: Path | None = None) -> Path:
    """Write ``profile`` as JSON, creating parent directories.

    Goes through :func:`repro.io_utils.atomic_write_json` so a crash
    mid-save can never leave a truncated profile for the next run's
    loader to choke on.
    """
    path = Path(path) if path is not None else default_profile_path()
    return atomic_write_json(path, profile.to_dict())


def load_profile(path: Path | None = None, check_fingerprint: bool = True) -> TuningProfile:
    """Load and validate a profile; raise :class:`ProfileLoadError` if unusable.

    Rejects unreadable files, malformed JSON, wrong ``format`` tags,
    version mismatches, and (when ``check_fingerprint``) profiles
    measured on a different machine class — all with a reason a CLI
    can print before falling back to the shipped defaults.
    """
    path = Path(path) if path is not None else default_profile_path()
    try:
        document = json.loads(path.read_text())
    except OSError as error:
        raise ProfileLoadError(f"cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise ProfileLoadError(f"invalid JSON in {path}: {error}") from error
    if not isinstance(document, dict) or document.get("format") != PROFILE_FORMAT:
        raise ProfileLoadError(f"{path} is not a {PROFILE_FORMAT} document")
    if document.get("version") != PROFILE_VERSION:
        raise ProfileLoadError(
            f"{path} has profile version {document.get('version')!r}, "
            f"this build expects {PROFILE_VERSION} — re-run `repro tune`"
        )
    try:
        profile = TuningProfile.from_dict(document)
    except (TypeError, ValueError) as error:
        raise ProfileLoadError(f"{path} is malformed: {error}") from error
    if check_fingerprint:
        machine = current_fingerprint()
        if not fingerprint_matches(profile.fingerprint, machine):
            raise ProfileLoadError(
                f"{path} was tuned for a different machine "
                f"(profile: {profile.fingerprint}, "
                f"this machine: cpu_count={machine.cpu_count}, "
                f"machine={machine.machine!r}, "
                f"blas={machine.blas_vendor!r}) — re-run `repro tune`"
            )
    return profile


def load_profile_or_none(
    path: Path | None = None,
    check_fingerprint: bool = True,
    warn=None,
) -> TuningProfile | None:
    """:func:`load_profile` with mismatch-fallback instead of raising.

    Returns ``None`` (the caller keeps the shipped defaults) when the
    profile is missing, malformed, version-mismatched or tuned for a
    different machine; ``warn``, if given, receives the reason string.
    """
    try:
        return load_profile(path, check_fingerprint=check_fingerprint)
    except ProfileLoadError as error:
        if warn is not None:
            warn(str(error))
        return None


# -- the process-wide active profile ----------------------------------
#
# Consumers resolve thresholds as: explicit argument > active profile >
# shipped module defaults.  The active profile is how the CLI's
# `--profile` reaches code that never sees the argument parser (kernel
# auto-selection inside a fitness call, the bench harness); worker
# processes do NOT inherit it — anything crossing a ProcessBackend
# travels inside `CompressionConfig.tuning` instead.

_ACTIVE_PROFILE: TuningProfile | None = None


def set_active_profile(profile: TuningProfile | None) -> None:
    """Install (or with ``None`` clear) the process-wide profile."""
    global _ACTIVE_PROFILE
    _ACTIVE_PROFILE = profile


def get_active_profile() -> TuningProfile | None:
    """The process-wide profile, or ``None`` for shipped defaults."""
    return _ACTIVE_PROFILE


@contextmanager
def use_profile(profile: TuningProfile | None):
    """Temporarily install ``profile`` as the active one (tests, benches)."""
    previous = get_active_profile()
    set_active_profile(profile)
    try:
        yield profile
    finally:
        set_active_profile(previous)

"""Profile-guided autotuning: measure the machine, persist the thresholds.

Three pieces (see ROADMAP "Tuning architecture"):

* :mod:`repro.tuning.profile` — the versioned, fingerprinted
  :class:`TuningProfile` JSON that carries every hot-path threshold
  (kernel auto cutovers, MV-dedup engagement shapes, bitpack shard
  size, Huffman lockstep cutover, feedback-engagement parameters);
* :mod:`repro.tuning.probes` — the microbenchmarks behind
  ``repro tune`` that measure those thresholds on the current machine
  (imported lazily: probes depend on the core modules, which in turn
  import :mod:`repro.tuning.profile` — eager import here would cycle);
* :mod:`repro.tuning.feedback` — the runtime hit-rate monitor that
  can disengage the MV-dedup path mid-run and re-probe it later.

Every tuned threshold is semantically inert: profiles move the wall
clock, never a result, so seeded runs are byte-identical with or
without one.
"""

from __future__ import annotations

from .feedback import MVCacheFeedback, MVFeedbackStats
from .profile import (
    PROFILE_FORMAT,
    PROFILE_VERSION,
    MachineFingerprint,
    ProfileLoadError,
    TuningProfile,
    current_fingerprint,
    default_profile,
    default_profile_path,
    fingerprint_matches,
    get_active_profile,
    load_profile,
    load_profile_or_none,
    save_profile,
    set_active_profile,
    use_profile,
)

__all__ = [
    "PROFILE_FORMAT",
    "PROFILE_VERSION",
    "MVCacheFeedback",
    "MVFeedbackStats",
    "MachineFingerprint",
    "ProfileLoadError",
    "TuningProfile",
    "current_fingerprint",
    "default_profile",
    "default_profile_path",
    "fingerprint_matches",
    "get_active_profile",
    "load_profile",
    "load_profile_or_none",
    "run_probes",
    "save_profile",
    "set_active_profile",
    "tuning_summary",
    "use_profile",
]

_LAZY = {"run_probes": "probes", "tuning_summary": "probes"}


def __getattr__(name: str):
    """Lazy probe exports — probes import core, core imports us."""
    if name in _LAZY:
        from importlib import import_module

        module = import_module(f".{_LAZY[name]}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Core library: the paper's code-based test compression contribution."""

from .baselines import RunLengthResult, compress_fdr, compress_golomb
from .blocks import (
    WORD_BITS,
    BlockSet,
    mask_word_count,
    pack_trits,
    unpack_masks,
)
from .compressor import CompressedTestSet, compress_blocks, compression_rate
from .decoder_hw import DecoderModel, decoder_model, decoder_model_for
from .multi_scan import (
    ChainResult,
    MultiScanResult,
    compress_multi_scan,
    split_into_chains,
)
from .config import CompressionConfig, EAParameters
from .covering import (
    CoveringResult,
    UncoverableError,
    cover,
    cover_masks,
    cover_masks_batch,
)
from .kernels import (
    KERNEL_CHOICES,
    BitpackKernel,
    CoveringKernel,
    GemmKernel,
    ScalarKernel,
    available_kernels,
    get_kernel,
    register_kernel,
    resolve_kernel,
    select_kernel_name,
)
from .decompressor import DecodedTestSet, decompress, verify_roundtrip
from .encoding import (
    EncodingStrategy,
    EncodingTable,
    build_encoding_table,
    compressed_size,
    refine_subsumption,
)
from .fitness import (
    DEFAULT_MV_CACHE_SIZE,
    INVALID_FITNESS,
    BatchCompressionRateFitness,
    CompressionRateFitness,
    MVCacheStats,
    MVMatchCache,
)
from .matching import MatchingVector, MVSet
from .nine_c import (
    DEFAULT_NINE_C_BLOCK_LENGTH,
    NINE_C_CODEWORDS,
    compress_nine_c,
    nine_c_mv_set,
)
from .selective_huffman import SelectiveHuffmanResult, compress_selective_huffman
from .optimizer import (
    EAMVOptimizer,
    OptimizationResult,
    RunOutcome,
    RunTask,
    execute_run_task,
    optimize_mv_set,
)
from .trits import DC, ONE, ZERO, format_trits, parse_trits

__all__ = [
    "RunLengthResult",
    "compress_fdr",
    "compress_golomb",
    "DecoderModel",
    "decoder_model",
    "decoder_model_for",
    "ChainResult",
    "MultiScanResult",
    "compress_multi_scan",
    "split_into_chains",
    "WORD_BITS",
    "BlockSet",
    "mask_word_count",
    "pack_trits",
    "unpack_masks",
    "KERNEL_CHOICES",
    "BitpackKernel",
    "CoveringKernel",
    "GemmKernel",
    "ScalarKernel",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "resolve_kernel",
    "select_kernel_name",
    "CompressedTestSet",
    "compress_blocks",
    "compression_rate",
    "CompressionConfig",
    "EAParameters",
    "CoveringResult",
    "UncoverableError",
    "cover",
    "cover_masks",
    "cover_masks_batch",
    "DecodedTestSet",
    "decompress",
    "verify_roundtrip",
    "EncodingStrategy",
    "EncodingTable",
    "build_encoding_table",
    "compressed_size",
    "refine_subsumption",
    "DEFAULT_MV_CACHE_SIZE",
    "INVALID_FITNESS",
    "BatchCompressionRateFitness",
    "CompressionRateFitness",
    "MVCacheStats",
    "MVMatchCache",
    "MatchingVector",
    "MVSet",
    "DEFAULT_NINE_C_BLOCK_LENGTH",
    "NINE_C_CODEWORDS",
    "compress_nine_c",
    "nine_c_mv_set",
    "SelectiveHuffmanResult",
    "compress_selective_huffman",
    "EAMVOptimizer",
    "OptimizationResult",
    "RunOutcome",
    "RunTask",
    "execute_run_task",
    "optimize_mv_set",
    "DC",
    "ONE",
    "ZERO",
    "format_trits",
    "parse_trits",
]

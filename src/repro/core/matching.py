"""Matching vectors (MVs) and MV sets.

A matching vector ``v ∈ {0, 1, U}^K`` *matches* an input block ``b``
iff no position pairs a specified 0 with a specified 1 (paper,
Section 2): ``1`` matches ``1``, ``0`` matches ``0``, and ``X``/``U``
match anything.  An input block matched by ``v`` is encoded as the
codeword ``C(v)`` followed by the block's bits at the ``U`` positions
of ``v`` (the *fill bits*), so the encoding length is
``|C(v)| + NU(v)`` independent of the block.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from .blocks import (
    int_to_words,
    mask_word_count,
    masks_as_words,
    pack_trits,
)
from .trits import DC, format_trits, parse_trits, trits_to_array

__all__ = ["MatchingVector", "MVSet"]


@dataclass(frozen=True)
class MatchingVector:
    """One matching vector over ``{0, 1, U}``.

    >>> mv = MatchingVector.from_string("11U0")
    >>> mv.n_unspecified
    1
    >>> mv.matches_trits(parse_trits("1110"))
    True
    >>> mv.matches_trits(parse_trits("1111"))
    False
    """

    trits: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.trits) < 1:
            raise ValueError("matching vector needs at least one position")
        if any(trit not in (0, 1, 2) for trit in self.trits):
            raise ValueError(f"invalid trit values in {self.trits!r}")

    @classmethod
    def from_string(cls, text: str) -> "MatchingVector":
        """Parse an MV from a string such as ``"11U0"`` or ``"000 111"``."""
        return cls(parse_trits(text))

    @classmethod
    def all_unspecified(cls, length: int) -> "MatchingVector":
        """The all-U vector, which matches every input block."""
        return cls((DC,) * length)

    @property
    def length(self) -> int:
        """K, the number of positions."""
        return len(self.trits)

    @property
    def ones_mask(self) -> int:
        """Bitmask of positions specified 1 (leftmost position = MSB)."""
        return pack_trits(self.trits)[0]

    @property
    def zeros_mask(self) -> int:
        """Bitmask of positions specified 0."""
        return pack_trits(self.trits)[1]

    @property
    def word_count(self) -> int:
        """``W`` — uint64 words per mask (1 for ``K <= 64``)."""
        return mask_word_count(self.length)

    @property
    def ones_words(self) -> tuple[int, ...]:
        """Ones mask as little-endian uint64 words."""
        return int_to_words(self.ones_mask, self.word_count)

    @property
    def zeros_words(self) -> tuple[int, ...]:
        """Zeros mask as little-endian uint64 words."""
        return int_to_words(self.zeros_mask, self.word_count)

    @property
    def n_unspecified(self) -> int:
        """NU(v): number of U positions = number of fill bits."""
        return sum(1 for trit in self.trits if trit == DC)

    @property
    def u_positions(self) -> tuple[int, ...]:
        """0-based indices of the U positions, in transmission order."""
        return tuple(i for i, trit in enumerate(self.trits) if trit == DC)

    @property
    def is_all_unspecified(self) -> bool:
        """True iff every position is U (matches any block)."""
        return self.n_unspecified == self.length

    def matches_masks(self, block_ones: int, block_zeros: int) -> bool:
        """Match test against a block given as ``(ones, zeros)`` masks."""
        return (block_ones & self.zeros_mask) == 0 and (
            block_zeros & self.ones_mask
        ) == 0

    def matches_trits(self, block_trits: Sequence[int]) -> bool:
        """Match test against a block given as a trit sequence."""
        if len(block_trits) != self.length:
            raise ValueError(
                f"block length {len(block_trits)} != MV length {self.length}"
            )
        ones, zeros = pack_trits(block_trits)
        return self.matches_masks(ones, zeros)

    def matches_array(
        self, block_ones: np.ndarray, block_zeros: np.ndarray
    ) -> np.ndarray:
        """Vectorized match test over arrays of block masks.

        Accepts flat ``(D,)`` single-word masks or ``(D, W)`` word
        arrays; either way the result is one boolean per block.
        """
        mv_ones = np.asarray(self.ones_words, dtype=np.uint64)
        mv_zeros = np.asarray(self.zeros_words, dtype=np.uint64)
        conflicts = (masks_as_words(block_ones) & mv_zeros) | (
            masks_as_words(block_zeros) & mv_ones
        )
        return (conflicts == 0).all(axis=-1)

    def subsumes(self, other: "MatchingVector") -> bool:
        """True iff every block matched by ``other`` is matched by ``self``.

        Positionally: wherever ``self`` is specified, ``other`` must be
        specified with the same value (``other`` having a ``U`` under a
        specified position of ``self`` admits blocks ``self`` rejects).

        >>> MatchingVector.from_string("111U").subsumes(
        ...     MatchingVector.from_string("1110"))
        True
        """
        if other.length != self.length:
            raise ValueError("matching vectors must have equal length")
        for mine, theirs in zip(self.trits, other.trits):
            if mine != DC and mine != theirs:
                return False
        return True

    def fill_bits(self, block_trits: Sequence[int], fill_default: int = 0) -> list[int]:
        """Fill bits transmitted after the codeword for ``block_trits``.

        Don't-care block positions take ``fill_default`` (the value the
        tester is free to choose).
        """
        if fill_default not in (0, 1):
            raise ValueError("fill_default must be 0 or 1")
        fills = []
        for position in self.u_positions:
            trit = block_trits[position]
            fills.append(fill_default if trit == DC else trit)
        return fills

    def __str__(self) -> str:
        return format_trits(self.trits, unspecified="U")


class MVSet:
    """An ordered collection of ``L`` matching vectors of equal length.

    The order is the *declaration* order (an EA genome or the 9C list);
    :meth:`covering_order` yields indices sorted by increasing number
    of U values — the paper's covering priority — with declaration
    order breaking ties.

    >>> mvs = MVSet.from_strings(["UUU", "000", "1U1"])
    >>> mvs.covering_order()
    [1, 2, 0]
    """

    def __init__(self, vectors: Iterable[MatchingVector]) -> None:
        self._vectors = tuple(vectors)
        if not self._vectors:
            raise ValueError("an MV set needs at least one matching vector")
        length = self._vectors[0].length
        if any(mv.length != length for mv in self._vectors):
            raise ValueError("all matching vectors must have the same length")

    @classmethod
    def from_strings(cls, texts: Iterable[str]) -> "MVSet":
        """Build an MV set from strings such as ``["000", "1UU"]``."""
        return cls(MatchingVector.from_string(text) for text in texts)

    @classmethod
    def from_genome(cls, genome: np.ndarray, block_length: int) -> "MVSet":
        """Decode an EA genome (flat trit array of length L·K) into MVs."""
        array = trits_to_array(genome)
        if array.size == 0 or array.size % block_length:
            raise ValueError(
                f"genome length {array.size} is not a multiple of K={block_length}"
            )
        return cls(
            MatchingVector(tuple(int(t) for t in row))
            for row in array.reshape(-1, block_length)
        )

    def to_genome(self) -> np.ndarray:
        """Flatten the MV set back into a genome trit array."""
        return np.asarray(
            [trit for mv in self._vectors for trit in mv.trits], dtype=np.int8
        )

    @property
    def block_length(self) -> int:
        """K, the common MV length."""
        return self._vectors[0].length

    @property
    def has_all_unspecified(self) -> bool:
        """True iff some MV is all-U (covering can never fail)."""
        return any(mv.is_all_unspecified for mv in self._vectors)

    def mask_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-MV ``(ones, zeros)`` masks in canonical storage form.

        Flat ``(L,)`` uint64 arrays for ``K <= 64``, little-endian
        ``(L, W)`` word arrays for wider vectors — the same convention
        as :class:`repro.core.blocks.BlockSet`.
        """
        ones = np.asarray(
            [mv.ones_words for mv in self._vectors], dtype=np.uint64
        )
        zeros = np.asarray(
            [mv.zeros_words for mv in self._vectors], dtype=np.uint64
        )
        if mask_word_count(self.block_length) == 1:
            return ones[:, 0], zeros[:, 0]
        return ones, zeros

    def covering_order(self) -> list[int]:
        """MV indices sorted by increasing NU (stable; paper Section 3.2)."""
        return sorted(
            range(len(self._vectors)), key=lambda i: self._vectors[i].n_unspecified
        )

    def with_all_unspecified(self) -> "MVSet":
        """Return a set guaranteed to contain the all-U vector.

        If one is already present, self is returned; otherwise the
        *last* vector is replaced (the paper pins one MV to all-U so
        that no instance is unsolvable).
        """
        if self.has_all_unspecified:
            return self
        replaced = list(self._vectors)
        replaced[-1] = MatchingVector.all_unspecified(self.block_length)
        return MVSet(replaced)

    def __len__(self) -> int:
        return len(self._vectors)

    def __getitem__(self, index: int) -> MatchingVector:
        return self._vectors[index]

    def __iter__(self) -> Iterator[MatchingVector]:
        return iter(self._vectors)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MVSet):
            return NotImplemented
        return self._vectors == other._vectors

    def __repr__(self) -> str:
        shown = ", ".join(str(mv) for mv in self._vectors[:4])
        suffix = ", ..." if len(self._vectors) > 4 else ""
        return f"MVSet(L={len(self._vectors)}, K={self.block_length}: {shown}{suffix})"

"""Configuration dataclasses for the compression flow and the EA.

Defaults reproduce the paper's Section 4 settings: ``K = 12``,
``L = 64``, population size ``S = 10``, children per generation
``C = 5``, crossover probability 30%, mutation probability 30%,
inversion probability 10% (the remaining 30% reproduces a parent
unchanged), one MV pinned to all-U, averaged over 5 runs, and a
stagnation limit of 500 generations without improvement (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..tuning.profile import TuningProfile
from .cache import POLICY_CHOICES
from .encoding import EncodingStrategy
from .fitness import DEFAULT_MV_CACHE_SIZE
from .kernels import AUTO_KERNEL, CoveringKernel, available_kernels

__all__ = ["EAParameters", "CompressionConfig"]


@dataclass(frozen=True)
class EAParameters:
    """Evolutionary-algorithm parameters (paper Section 3.1 / 4).

    Attributes
    ----------
    population_size:
        ``S`` — survivors per generation.
    children_per_generation:
        ``C`` — offspring generated per generation.
    crossover_probability, mutation_probability, inversion_probability:
        Per-child operator selection weights; any remainder to 1.0
        copies a parent unchanged (GAME-style reproduction).
    stagnation_limit:
        Stop after this many consecutive generations without fitness
        improvement (the paper's main termination condition).
    max_evaluations:
        Hard cap on fitness evaluations ("number of generated legal
        solutions"); ``None`` disables the cap.
    max_generations:
        Hard cap on generations; ``None`` disables the cap.
    include_all_u:
        Pin one genome slot to the all-U MV so covering never fails.
    seed_nine_c:
        Inject the 9C matching vectors into one initial individual
        (the improvement the paper mentions but did not implement).
    parent_selection:
        ``"uniform"`` (the paper: "randomly selected individuals") or
        ``"tournament"`` — pick the fittest of ``tournament_size``
        uniform draws, a selection-pressure extension.
    """

    population_size: int = 10
    children_per_generation: int = 5
    crossover_probability: float = 0.30
    mutation_probability: float = 0.30
    inversion_probability: float = 0.10
    stagnation_limit: int = 500
    max_evaluations: int | None = None
    max_generations: int | None = None
    include_all_u: bool = True
    seed_nine_c: bool = False
    parent_selection: str = "uniform"
    tournament_size: int = 2
    adaptive_operators: bool = False  # adaptive-pursuit operator mix

    def __post_init__(self) -> None:
        if self.population_size < 1:
            raise ValueError("population_size must be >= 1")
        if self.children_per_generation < 1:
            raise ValueError("children_per_generation must be >= 1")
        if self.parent_selection not in ("uniform", "tournament"):
            raise ValueError(
                f"unknown parent_selection {self.parent_selection!r}"
            )
        if self.tournament_size < 2:
            raise ValueError("tournament_size must be >= 2")
        probabilities = (
            self.crossover_probability,
            self.mutation_probability,
            self.inversion_probability,
        )
        if any(p < 0 for p in probabilities):
            raise ValueError("operator probabilities must be non-negative")
        if sum(probabilities) > 1.0 + 1e-9:
            raise ValueError("operator probabilities must sum to at most 1")
        if self.stagnation_limit < 1:
            raise ValueError("stagnation_limit must be >= 1")

    @property
    def copy_probability(self) -> float:
        """Probability of plain reproduction (remainder to 1.0)."""
        return max(
            0.0,
            1.0
            - self.crossover_probability
            - self.mutation_probability
            - self.inversion_probability,
        )

    def with_updates(self, **changes) -> "EAParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class CompressionConfig:
    """Full configuration of one EA compression run (paper defaults).

    ``block_length`` is ``K``; ``n_vectors`` is ``L``.  The paper's
    default configuration (Table 1 'EA' column) is K=12, L=64; its
    Table 2 'EA1' column is K=8, L=9.  Any positive ``block_length``
    works — wide blocks (K > 64) pack into multi-word masks.

    ``kernel`` names the covering kernel pricing the EA's fitness
    (``auto``, ``gemm``, ``bitpack``, ``scalar`` — see
    :mod:`repro.core.kernels`); every kernel produces bit-identical
    results, so this knob only moves the wall clock.

    ``mv_cache_size`` bounds the per-run MV match-column cache behind
    the unique-MV dedup path of the batched fitness
    (:class:`repro.core.fitness.MVMatchCache`); ``0`` disables the
    factored path and prices through the fused per-generation kernels.
    Like ``kernel``, it never changes results — only the wall clock.
    ``mv_cache_policy`` selects that cache's eviction policy
    (``lru``/``lfu``/``2q``/``segmented``; ``None`` defers to the
    tuning profile, then the shipped LRU default) and
    ``mv_cache_persist`` saves the warm cache to
    ``$REPRO_CACHE_DIR/mv_cache/`` after each run and reloads it on
    the next run over the same block table — both semantically inert,
    both riding inside the picklable config so process-pool workers
    behave identically to the serial path.

    ``tuning`` pins a machine-measured
    :class:`repro.tuning.TuningProfile` for every run of this
    configuration (kernel auto cutovers, dedup engagement shapes,
    bitpack shard size, Huffman lockstep cutover).  The profile
    travels *inside* the config, so process-pool workers — which never
    see the CLI's process-wide active profile — tune identically to
    the serial path.  ``mv_feedback`` controls the runtime MV-cache
    engagement monitor: ``None`` leaves it on whenever the cache is
    on, ``False`` forces the static shape decision only.  Both are
    semantically inert — wall clock only, results byte-identical.
    """

    block_length: int = 12
    n_vectors: int = 64
    strategy: EncodingStrategy = EncodingStrategy.HUFFMAN
    fill_default: int = 0
    runs: int = 5
    kernel: str | CoveringKernel = "auto"
    mv_cache_size: int = DEFAULT_MV_CACHE_SIZE
    mv_cache_policy: str | None = None
    mv_cache_persist: bool = False
    tuning: TuningProfile | None = None
    mv_feedback: bool | None = None
    ea: EAParameters = field(default_factory=EAParameters)

    def __post_init__(self) -> None:
        if self.block_length < 1:
            raise ValueError(
                f"block_length must be >= 1, got {self.block_length}"
            )
        if not isinstance(self.kernel, CoveringKernel):
            valid = (AUTO_KERNEL, *available_kernels())
            if self.kernel not in valid:
                raise ValueError(
                    f"unknown covering kernel {self.kernel!r}; "
                    f"choose one of: {', '.join(valid)}"
                )
        if self.n_vectors < 1:
            raise ValueError("n_vectors must be >= 1")
        if self.mv_cache_size < 0:
            raise ValueError("mv_cache_size must be >= 0")
        if (
            self.mv_cache_policy is not None
            and self.mv_cache_policy not in POLICY_CHOICES
        ):
            raise ValueError(
                f"unknown MV cache policy {self.mv_cache_policy!r}; "
                f"choose one of: {', '.join(POLICY_CHOICES)}"
            )
        if self.tuning is not None and not isinstance(self.tuning, TuningProfile):
            raise ValueError(
                f"tuning must be a TuningProfile or None, got {self.tuning!r}"
            )
        if self.fill_default not in (0, 1):
            raise ValueError("fill_default must be 0 or 1")
        if self.runs < 1:
            raise ValueError("runs must be >= 1")

    @property
    def genome_length(self) -> int:
        """L·K — the number of genes in one individual."""
        return self.block_length * self.n_vectors

    def with_updates(self, **changes) -> "CompressionConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

"""Decoder hardware model: FSM size and configuration cost.

The paper's Section 5 argues that arbitrary-position ``U`` values
"enable the employment of compact on-chip decoders for arbitrary test
sets" and sketches a *reconfigurable* decoder into which the
codeword/matching-vector table is loaded per test set.  This module
quantifies that discussion:

* the decoder FSM walks the prefix tree one input bit per cycle —
  its state count is the number of internal tree nodes;
* on reaching a leaf it emits the MV's specified bits and splices in
  ``NU(v)`` streamed fill bits — needing a fill counter of
  ``ceil(log2(max NU + 1))`` bits and a K-bit output buffer;
* a reconfigurable decoder additionally stores the table itself:
  per MV its codeword and its K trits (2 bits each).

These are technology-independent proxies (states, flops, table bits),
suitable for comparing decoder variants — not a synthesis result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .compressor import CompressedTestSet
from .encoding import EncodingTable
from .matching import MVSet

__all__ = ["DecoderModel", "decoder_model"]


@dataclass(frozen=True)
class DecoderModel:
    """Hardware-cost proxy of one code-based decoder.

    Attributes
    ----------
    n_codewords:
        Leaves of the prefix tree (= MVs that receive a codeword).
    fsm_states:
        Internal prefix-tree nodes the FSM distinguishes.
    max_codeword_bits:
        Depth of the tree (worst-case cycles to resolve a codeword).
    fill_counter_bits:
        Width of the counter that streams fill bits.
    output_buffer_bits:
        K — the per-block output register.
    table_bits:
        Configuration bits for a reconfigurable decoder: per MV the
        codeword plus 2·K trit bits (0 for a hard-wired decoder only
        in the sense that no reload is possible; the figure is still
        reported for comparability).
    """

    n_codewords: int
    fsm_states: int
    max_codeword_bits: int
    fill_counter_bits: int
    output_buffer_bits: int
    table_bits: int

    @property
    def state_register_bits(self) -> int:
        """Flops needed to hold the FSM state."""
        return max(1, math.ceil(math.log2(max(self.fsm_states, 2))))

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.n_codewords} codewords, {self.fsm_states} FSM states "
            f"({self.state_register_bits} state bits), depth "
            f"{self.max_codeword_bits}, fill counter "
            f"{self.fill_counter_bits} bits, output buffer "
            f"{self.output_buffer_bits} bits, config table "
            f"{self.table_bits} bits"
        )


def _count_internal_nodes(tree: dict) -> int:
    count = 1  # this node
    for child in tree.values():
        if isinstance(child, dict):
            count += _count_internal_nodes(child)
    return count


def decoder_model(mv_set: MVSet, table: EncodingTable) -> DecoderModel:
    """Build the hardware model for one MV set + encoding table.

    >>> from .nine_c import nine_c_mv_set, NINE_C_CODEWORDS
    >>> from .encoding import build_encoding_table, EncodingStrategy
    >>> mvs = nine_c_mv_set(8)
    >>> tab = build_encoding_table(
    ...     mvs, {i: 1 for i in range(9)}, EncodingStrategy.FIXED,
    ...     fixed_codewords=NINE_C_CODEWORDS)
    >>> decoder_model(mvs, tab).n_codewords
    9
    """
    code = table.prefix_code()
    codewords = table.codewords
    if not codewords:
        return DecoderModel(
            n_codewords=0,
            fsm_states=0,
            max_codeword_bits=0,
            fill_counter_bits=0,
            output_buffer_bits=mv_set.block_length,
            table_bits=0,
        )
    tree = code.decode_tree()
    max_fills = max(
        mv_set[mv_index].n_unspecified for mv_index in codewords
    )
    fill_counter_bits = (
        0 if max_fills == 0 else max(1, math.ceil(math.log2(max_fills + 1)))
    )
    table_bits = sum(
        len(word) + 2 * mv_set.block_length for word in codewords.values()
    )
    return DecoderModel(
        n_codewords=len(codewords),
        fsm_states=_count_internal_nodes(tree),
        max_codeword_bits=max(len(word) for word in codewords.values()),
        fill_counter_bits=fill_counter_bits,
        output_buffer_bits=mv_set.block_length,
        table_bits=table_bits,
    )


def decoder_model_for(compressed: CompressedTestSet) -> DecoderModel:
    """Convenience: the decoder model of a compressed test set."""
    return decoder_model(compressed.mv_set, compressed.table)

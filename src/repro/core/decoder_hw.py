"""Decoder hardware model: FSM size and configuration cost.

The paper's Section 5 argues that arbitrary-position ``U`` values
"enable the employment of compact on-chip decoders for arbitrary test
sets" and sketches a *reconfigurable* decoder into which the
codeword/matching-vector table is loaded per test set.  This module
quantifies that discussion:

* the decoder FSM walks the prefix tree one input bit per cycle —
  its state count is the number of internal tree nodes;
* on reaching a leaf it emits the MV's specified bits and splices in
  ``NU(v)`` streamed fill bits — needing a fill counter of
  ``ceil(log2(max NU + 1))`` bits and a K-bit output buffer;
* a reconfigurable decoder additionally stores the table itself:
  per MV its codeword and its K trits (2 bits each).

These are technology-independent proxies (states, flops, table bits),
suitable for comparing decoder variants — not a synthesis result.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Mapping
from dataclasses import dataclass

import numpy as np

from .compressor import CompressedTestSet
from .encoding import EncodingTable
from .matching import MVSet

__all__ = [
    "DecoderModel",
    "decoder_model",
    "decoder_model_for",
    "decoder_area_units_batch",
    "test_application_cycles",
    "test_application_cycles_batch",
]


@dataclass(frozen=True)
class DecoderModel:
    """Hardware-cost proxy of one code-based decoder.

    Attributes
    ----------
    n_codewords:
        Leaves of the prefix tree (= MVs that receive a codeword).
    fsm_states:
        Internal prefix-tree nodes the FSM distinguishes.
    max_codeword_bits:
        Depth of the tree (worst-case cycles to resolve a codeword).
    fill_counter_bits:
        Width of the counter that streams fill bits.
    output_buffer_bits:
        K — the per-block output register.
    table_bits:
        Configuration bits for a reconfigurable decoder: per MV the
        codeword plus 2·K trit bits (0 for a hard-wired decoder only
        in the sense that no reload is possible; the figure is still
        reported for comparability).
    """

    n_codewords: int
    fsm_states: int
    max_codeword_bits: int
    fill_counter_bits: int
    output_buffer_bits: int
    table_bits: int

    @property
    def state_register_bits(self) -> int:
        """Flops needed to hold the FSM state."""
        return max(1, math.ceil(math.log2(max(self.fsm_states, 2))))

    @property
    def area_units(self) -> int:
        """Total storage-bit proxy for decoder area.

        The flop/bit count a reconfigurable decoder must provide: the
        FSM state register, the fill counter, the K-bit output buffer,
        and the configuration table.  This is the *area* objective of
        the multi-objective EA mode (see ``docs/multi-objective.md``).
        """
        return (
            self.state_register_bits
            + self.fill_counter_bits
            + self.output_buffer_bits
            + self.table_bits
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.n_codewords} codewords, {self.fsm_states} FSM states "
            f"({self.state_register_bits} state bits), depth "
            f"{self.max_codeword_bits}, fill counter "
            f"{self.fill_counter_bits} bits, output buffer "
            f"{self.output_buffer_bits} bits, config table "
            f"{self.table_bits} bits"
        )


def _count_internal_nodes(tree: dict) -> int:
    count = 1  # this node
    for child in tree.values():
        if isinstance(child, dict):
            count += _count_internal_nodes(child)
    return count


def decoder_model(mv_set: MVSet, table: EncodingTable) -> DecoderModel:
    """Build the hardware model for one MV set + encoding table.

    >>> from .nine_c import nine_c_mv_set, NINE_C_CODEWORDS
    >>> from .encoding import build_encoding_table, EncodingStrategy
    >>> mvs = nine_c_mv_set(8)
    >>> tab = build_encoding_table(
    ...     mvs, {i: 1 for i in range(9)}, EncodingStrategy.FIXED,
    ...     fixed_codewords=NINE_C_CODEWORDS)
    >>> decoder_model(mvs, tab).n_codewords
    9
    """
    code = table.prefix_code()
    codewords = table.codewords
    if not codewords:
        return DecoderModel(
            n_codewords=0,
            fsm_states=0,
            max_codeword_bits=0,
            fill_counter_bits=0,
            output_buffer_bits=mv_set.block_length,
            table_bits=0,
        )
    tree = code.decode_tree()
    max_fills = max(
        mv_set[mv_index].n_unspecified for mv_index in codewords
    )
    fill_counter_bits = (
        0 if max_fills == 0 else max(1, math.ceil(math.log2(max_fills + 1)))
    )
    table_bits = sum(
        len(word) + 2 * mv_set.block_length for word in codewords.values()
    )
    return DecoderModel(
        n_codewords=len(codewords),
        fsm_states=_count_internal_nodes(tree),
        max_codeword_bits=max(len(word) for word in codewords.values()),
        fill_counter_bits=fill_counter_bits,
        output_buffer_bits=mv_set.block_length,
        table_bits=table_bits,
    )


def decoder_model_for(compressed: CompressedTestSet) -> DecoderModel:
    """Convenience: the decoder model of a compressed test set."""
    return decoder_model(compressed.mv_set, compressed.table)


def _ceil_log2(values: np.ndarray) -> np.ndarray:
    """Exact element-wise ``ceil(log2(v))`` for positive integers.

    Uses pure integer bit-length arithmetic (``ceil(log2(v)) ==
    (v - 1).bit_length()`` for ``v ≥ 1``) so the result can never be
    perturbed by float rounding — these values feed byte-reproducible
    objective vectors.
    """
    flat = np.asarray(values, dtype=np.int64).ravel()
    out = np.fromiter(
        ((int(v) - 1).bit_length() for v in flat), dtype=np.int64, count=flat.size
    )
    return out.reshape(np.shape(values))


def decoder_area_units_batch(
    n_codewords: np.ndarray,
    sum_codeword_bits: np.ndarray,
    max_fills: np.ndarray,
    block_length: int,
) -> np.ndarray:
    """Vectorized :attr:`DecoderModel.area_units` from aggregate stats.

    Batched counterpart of building each row's :class:`DecoderModel`
    from its encoding table: ``n_codewords`` rows' codeword counts,
    ``sum_codeword_bits`` their ``Σ len`` (codeword storage), and
    ``max_fills`` the largest ``NU`` among *coded* MVs.  Huffman trees
    are full, so a row with ``n`` codewords has ``n − 1`` internal FSM
    states for ``n ≥ 2`` and one for the degenerate single-codeword
    tree — identical to counting the canonical decode tree's nodes.
    Returns ``int64`` area units per row; parity with the scalar model
    is pinned by ``tests/core/test_decoder_hw.py``.
    """
    n = np.asarray(n_codewords, dtype=np.int64)
    sum_bits = np.asarray(sum_codeword_bits, dtype=np.int64)
    fills = np.asarray(max_fills, dtype=np.int64)
    fsm_states = np.where(n >= 2, n - 1, np.where(n == 1, 1, 0))
    state_register_bits = np.maximum(1, _ceil_log2(np.maximum(fsm_states, 2)))
    fill_counter_bits = np.where(
        fills == 0, 0, np.maximum(1, _ceil_log2(np.maximum(fills, 1) + 1))
    )
    table_bits = sum_bits + 2 * block_length * n
    return state_register_bits + fill_counter_bits + block_length + table_bits


def test_application_cycles(
    frequencies: Mapping[Hashable, int],
    lengths: Mapping[Hashable, int],
    block_length: int,
) -> int:
    """Test-application-time proxy of one coded test set, in cycles.

    The decoder consumes one coded bit per cycle (``Σ freq·len``) and
    then shifts each decoded K-bit block out (``K`` cycles per block);
    fill bits are generated on chip and cost no tester cycles.  This is
    the *time* objective of the multi-objective EA mode.
    """
    coded_bits = sum(
        frequencies.get(symbol, 0) * length for symbol, length in lengths.items()
    )
    n_blocks = sum(
        frequency for symbol, frequency in frequencies.items() if symbol in lengths
    )
    return coded_bits + block_length * n_blocks


def test_application_cycles_batch(
    codeword_bits: np.ndarray,
    total_frequency: np.ndarray,
    block_length: int,
) -> np.ndarray:
    """Vectorized :func:`test_application_cycles` from aggregate stats.

    ``codeword_bits`` is each row's ``Σ freq·len`` and
    ``total_frequency`` its block count ``Σ freq``.
    """
    return np.asarray(codeword_bits, dtype=np.int64) + block_length * np.asarray(
        total_frequency, dtype=np.int64
    )

"""Multiple scan chain environment (the paper's future-work direction).

Section 5: "Another direction for further research is the application
of our method in a multiple scan chain environment."  This module
implements that extension.  With ``M`` scan chains, each pattern's
``n`` bits are split into ``M`` contiguous slices shifted in parallel;
per chain the test data forms its own string.  Two decoder
organizations are modeled:

* ``independent`` — one MV set (and decoder) per chain, each trained
  on its own chain's data.  More hardware, per-chain-tuned vectors.
* ``shared`` — one MV set trained on the concatenation of all chain
  strings, used by every chain's decoder (or one time-multiplexed
  decoder).  Less hardware, shared statistics.

Rates aggregate the paper's way: ``100·(Σorig − Σcomp)/Σorig``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..testdata.test_set import TestSet
from .compressor import compress_blocks, compression_rate
from .config import CompressionConfig
from .encoding import EncodingStrategy
from .optimizer import EAMVOptimizer

__all__ = ["ChainResult", "MultiScanResult", "split_into_chains", "compress_multi_scan"]


@dataclass(frozen=True)
class ChainResult:
    """Per-chain compression outcome."""

    chain_index: int
    original_bits: int
    compressed_bits: int

    @property
    def rate(self) -> float:
        return compression_rate(self.original_bits, self.compressed_bits)


@dataclass(frozen=True)
class MultiScanResult:
    """Aggregate outcome over all scan chains."""

    mode: str
    chains: tuple[ChainResult, ...]

    @property
    def original_bits(self) -> int:
        return sum(chain.original_bits for chain in self.chains)

    @property
    def compressed_bits(self) -> int:
        return sum(chain.compressed_bits for chain in self.chains)

    @property
    def rate(self) -> float:
        """Aggregate compression rate over all chains (percent)."""
        return compression_rate(self.original_bits, self.compressed_bits)


def split_into_chains(test_set: TestSet, n_chains: int) -> list[TestSet]:
    """Split each pattern into ``n_chains`` contiguous column slices.

    Chain lengths differ by at most one bit (the standard balanced
    scan partition).

    >>> ts = TestSet.from_strings("t", ["01X10", "11XX0"])
    >>> [c.n_inputs for c in split_into_chains(ts, 2)]
    [3, 2]
    """
    if n_chains < 1:
        raise ValueError("need at least one scan chain")
    if n_chains > test_set.n_inputs:
        raise ValueError(
            f"{n_chains} chains but only {test_set.n_inputs} scan cells"
        )
    base, extra = divmod(test_set.n_inputs, n_chains)
    widths = [base + (1 if index < extra else 0) for index in range(n_chains)]
    boundaries = np.concatenate([[0], np.cumsum(widths)])
    chains = []
    for index in range(n_chains):
        lo, hi = int(boundaries[index]), int(boundaries[index + 1])
        chains.append(
            TestSet(
                name=f"{test_set.name}-chain{index}",
                patterns=test_set.patterns[:, lo:hi],
            )
        )
    return chains


def compress_multi_scan(
    test_set: TestSet,
    n_chains: int,
    config: CompressionConfig | None = None,
    mode: str = "shared",
    seed: int = 0,
) -> MultiScanResult:
    """Compress a test set distributed over ``n_chains`` scan chains.

    ``mode='independent'`` trains one MV set per chain;
    ``mode='shared'`` trains a single MV set on all chain data and
    applies it per chain (codewords are still per-chain Huffman, as
    each chain's decoder sees its own frequencies).
    """
    if mode not in ("independent", "shared"):
        raise ValueError(f"unknown multi-scan mode {mode!r}")
    config = config or CompressionConfig()
    chains = split_into_chains(test_set, n_chains)

    shared_mv_set = None
    if mode == "shared":
        # Train once on the concatenation of all chain strings.
        combined = np.concatenate(
            [chain.flatten() for chain in chains]
        ).astype(np.int8)
        from .blocks import BlockSet

        blocks = BlockSet.from_trit_array(combined, config.block_length)
        shared_mv_set = (
            EAMVOptimizer(config, seed=seed).optimize(blocks).best_mv_set
        )

    results = []
    for chain in chains:
        blocks = chain.blocks(config.block_length)
        if mode == "independent":
            optimizer = EAMVOptimizer(config, seed=seed + chain.patterns.shape[1])
            mv_set = optimizer.optimize(blocks).best_mv_set
        else:
            mv_set = shared_mv_set
        compressed = compress_blocks(
            blocks, mv_set, EncodingStrategy.HUFFMAN, fill_default=config.fill_default
        )
        results.append(
            ChainResult(
                chain_index=len(results),
                original_bits=blocks.original_bits,
                compressed_bits=compressed.compressed_bits,
            )
        )
    return MultiScanResult(mode=mode, chains=tuple(results))

"""End-to-end compression: blocks → covering → encoding → bitstream.

This module glues the pipeline of Section 3 together and produces the
actual compressed bit stream a tester would ship to the on-chip
decoder: for every input block, the codeword of its matching vector
followed by the fill bits for the MV's ``U`` positions.

The reported ``compression_rate`` follows the paper exactly::

    100 * (original size - compressed size) / original size

with the original size being the *unpadded* test-set size ``T·n`` and
the compressed size counting codeword and fill bits (the code table
itself is decoder configuration, not test data, and is excluded — as
in the paper; :meth:`CompressedTestSet.code_table_bits` reports it
separately for decoder-cost studies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..coding.bitstream import BitWriter
from .blocks import BlockSet
from .covering import CoveringResult, cover
from .encoding import EncodingStrategy, EncodingTable, build_encoding_table
from .matching import MVSet

__all__ = ["CompressedTestSet", "compress_blocks", "compression_rate"]


def compression_rate(original_bits: int, compressed_bits: int) -> float:
    """The paper's rate: ``100·(original − compressed)/original`` (%).

    Negative when the "compressed" data is larger than the original —
    the paper's tables contain such entries (e.g. −1.0% for s1494
    under 9C).
    """
    if original_bits <= 0:
        raise ValueError("original size must be positive")
    return 100.0 * (original_bits - compressed_bits) / original_bits


@dataclass(frozen=True)
class CompressedTestSet:
    """A compressed test set plus everything needed to decode it.

    Attributes
    ----------
    blocks:
        The source :class:`BlockSet` (kept for verification flows).
    mv_set:
        The matching vectors used.
    table:
        Codeword assignment (including subsumption redirects).
    covering:
        The covering result (pre-redirect assignment + frequencies).
    payload:
        The compressed bit stream as packed bytes.
    payload_bits:
        Exact number of valid bits in ``payload``.
    fill_default:
        Value substituted for don't-care block bits at fill positions.
    """

    blocks: BlockSet
    mv_set: MVSet
    table: EncodingTable
    covering: CoveringResult = field(repr=False)
    payload: bytes = field(repr=False)
    payload_bits: int
    fill_default: int

    @property
    def original_bits(self) -> int:
        """Unpadded test-set size ``T·n`` (paper's "test set size")."""
        return self.blocks.original_bits

    @property
    def compressed_bits(self) -> int:
        """Payload size in bits (codewords + fills)."""
        return self.payload_bits

    @property
    def rate(self) -> float:
        """Compression rate in percent, as defined in the paper."""
        return compression_rate(self.original_bits, self.compressed_bits)

    def code_table_bits(self) -> int:
        """Bits needed to describe the code table to a reconfigurable
        decoder: per coded MV, its codeword plus its K trits (2 bits
        per trit).  Reported separately from the payload, mirroring
        the paper's decoder discussion in Section 5."""
        bits = 0
        for mv_index, codeword in self.table.codewords.items():
            bits += len(codeword) + 2 * self.mv_set[mv_index].length
        return bits

    def mv_usage(self) -> dict[str, int]:
        """Final ``{mv string: blocks encoded}`` usage map."""
        usage: dict[str, int] = {}
        for mv_index, frequency in self.table.frequencies.items():
            usage[str(self.mv_set[mv_index])] = frequency
        return usage


def compress_blocks(
    blocks: BlockSet,
    mv_set: MVSet,
    strategy: EncodingStrategy = EncodingStrategy.HUFFMAN,
    fixed_codewords: dict[int, str] | None = None,
    fill_default: int = 0,
) -> CompressedTestSet:
    """Compress a block set with the given MVs.

    Raises :class:`UncoverableError` if some block matches no MV
    (impossible once the MV set contains the all-U vector).

    >>> bs = BlockSet.from_string("111 000 111 10X", 3)
    >>> result = compress_blocks(bs, MVSet.from_strings(["111", "000", "UUU"]))
    >>> result.compressed_bits < bs.original_bits
    True
    """
    if blocks.block_length != mv_set.block_length:
        raise ValueError(
            f"block length {blocks.block_length} != MV length {mv_set.block_length}"
        )
    covering = cover(blocks, mv_set, require_complete=True)
    table = build_encoding_table(
        mv_set, covering.frequency_map(), strategy, fixed_codewords
    )

    # Emit the stream block by block, in test-set order.  Each distinct
    # block always produces the same bits (codeword + fills), so that
    # run is materialized once as a tuple and replayed per occurrence —
    # no per-block dict lookups, int() conversions or list building.
    writer = BitWriter()
    codeword_bits: dict[int, tuple[int, ...]] = {
        mv_index: tuple(1 if ch == "1" else 0 for ch in word)
        for mv_index, word in table.codewords.items()
    }
    emitted_bits: list[tuple[int, ...]] = []
    for distinct_index, mv_index in enumerate(covering.assignment.tolist()):
        final_mv = table.final_mv(mv_index)
        fills = mv_set[final_mv].fill_bits(
            blocks.block_trits(distinct_index), fill_default
        )
        emitted_bits.append(codeword_bits[final_mv] + tuple(fills))
    write_bits = writer.write_bits
    for distinct_index in blocks.sequence.tolist():
        write_bits(emitted_bits[distinct_index])

    if writer.bit_length != table.total_bits:
        raise AssertionError(
            f"emitted {writer.bit_length} bits but encoding table "
            f"predicted {table.total_bits}"
        )
    return CompressedTestSet(
        blocks=blocks,
        mv_set=mv_set,
        table=table,
        covering=covering,
        payload=writer.getvalue(),
        payload_bits=writer.bit_length,
        fill_default=fill_default,
    )

"""The 9C compression baseline (Tehranipour/Nourani/Chakrabarty, DATE'04).

9C compression is the special case of the paper's general formulation
with ``L = 9``, a hard-wired matching-vector set built from all-0,
all-1, half-0/half-1 patterns and their half-unspecified variants, and
a hard-wired prefix code.  For ``K = 6`` the vectors and codewords are
(paper, Sections 1 and 4):

======  =========  ==========
index   MV         codeword
======  =========  ==========
v(1)    000 000    ``0``
v(2)    111 111    ``10``
v(3)    000 111    ``11000``
v(4)    111 000    ``11001``
v(5)    111 UUU    ``11010``
v(6)    UUU 111    ``11011``
v(7)    000 UUU    ``11100``
v(8)    UUU 000    ``11101``
v(9)    UUU UUU    ``1111``
======  =========  ==========

The same construction applies to any even ``K``.  The paper evaluates
9C at ``K = 8`` (the best value reported in the original 9C paper) and
also runs a variant ("9C+HC") that keeps the nine MVs but replaces the
fixed code with Huffman coding over the measured frequencies.
"""

from __future__ import annotations

from .blocks import BlockSet
from .compressor import CompressedTestSet, compress_blocks
from .encoding import EncodingStrategy
from .matching import MVSet
from .trits import DC, ONE, ZERO

__all__ = [
    "NINE_C_CODEWORDS",
    "nine_c_mv_set",
    "compress_nine_c",
    "DEFAULT_NINE_C_BLOCK_LENGTH",
]

DEFAULT_NINE_C_BLOCK_LENGTH = 8  # K=8 gave the best results in [20]

# Fixed prefix code, independent of K (index i codes v(i+1) of the paper).
NINE_C_CODEWORDS: dict[int, str] = {
    0: "0",
    1: "10",
    2: "11000",
    3: "11001",
    4: "11010",
    5: "11011",
    6: "11100",
    7: "11101",
    8: "1111",
}


def nine_c_mv_set(block_length: int = DEFAULT_NINE_C_BLOCK_LENGTH) -> MVSet:
    """The nine matching vectors of 9C compression for an even ``K``.

    >>> [str(mv) for mv in nine_c_mv_set(6)][:4]
    ['000000', '111111', '000111', '111000']
    """
    if block_length < 2 or block_length % 2:
        raise ValueError(f"9C requires an even block length >= 2, got {block_length}")
    half = block_length // 2
    zeros = (ZERO,) * half
    ones = (ONE,) * half
    unspecified = (DC,) * half
    patterns = [
        zeros + zeros,  # v(1) all-0
        ones + ones,  # v(2) all-1
        zeros + ones,  # v(3) 0-half then 1-half
        ones + zeros,  # v(4) 1-half then 0-half
        ones + unspecified,  # v(5)
        unspecified + ones,  # v(6)
        zeros + unspecified,  # v(7)
        unspecified + zeros,  # v(8)
        unspecified + unspecified,  # v(9) all-U
    ]
    from .matching import MatchingVector

    return MVSet(MatchingVector(p) for p in patterns)


def compress_nine_c(
    blocks: BlockSet,
    use_huffman: bool = False,
    fill_default: int = 0,
) -> CompressedTestSet:
    """Run 9C compression (or the 9C+HC variant) on a block set.

    ``blocks.block_length`` must be even.  With ``use_huffman=True``
    the nine MVs keep their roles but codewords come from Huffman
    coding of the measured frequencies — the paper's '9C+HC' column.

    >>> bs = BlockSet.from_string("00000000" * 4 + "11110000" * 2, 8)
    >>> compress_nine_c(bs).rate > 0
    True
    """
    mv_set = nine_c_mv_set(blocks.block_length)
    if use_huffman:
        return compress_blocks(
            blocks, mv_set, EncodingStrategy.HUFFMAN, fill_default=fill_default
        )
    return compress_blocks(
        blocks,
        mv_set,
        EncodingStrategy.FIXED,
        fixed_codewords=NINE_C_CODEWORDS,
        fill_default=fill_default,
    )

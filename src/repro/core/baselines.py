"""Run-length compression baselines from the paper's related work.

The paper's Section 1 surveys code-based schemes; besides 9C (which
the paper compares against directly) the two most cited are Golomb
codes [3] and FDR codes [4].  Both fill don't-cares with 0 — X-rich
test sets become long runs of 0s — and code the run lengths.  They
give the comparison benches a second family of baselines with a very
different structure from fixed-length input blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..coding.fdr import fdr_decode, fdr_encode
from ..coding.golomb import (
    best_golomb_parameter,
    golomb_decode,
    golomb_encode,
    runs_of_zeros,
)
from ..core.trits import DC
from .compressor import compression_rate

__all__ = ["RunLengthResult", "compress_golomb", "compress_fdr"]


@dataclass(frozen=True)
class RunLengthResult:
    """Outcome of a run-length baseline on one test set.

    ``original_bits`` counts the unfilled test-set string (as the
    paper's tables do); ``encoded`` is the full code string.
    """

    method: str
    original_bits: int
    encoded: str
    parameter: int | None = None

    @property
    def compressed_bits(self) -> int:
        return len(self.encoded)

    @property
    def rate(self) -> float:
        """Compression rate in percent, the paper's definition."""
        return compression_rate(self.original_bits, self.compressed_bits)


def _zero_filled_bits(trits: np.ndarray) -> list[int]:
    """The test-set string with every don't-care set to 0 (the fill
    that maximizes run lengths, as [3] and [4] prescribe)."""
    array = np.asarray(trits, dtype=np.int8)
    return [0 if value in (0, DC) else 1 for value in array.tolist()]


def compress_golomb(
    trits: np.ndarray, parameter: int | None = None
) -> RunLengthResult:
    """Golomb-code a test-set string (don't-cares 0-filled).

    ``parameter`` is the Golomb ``m`` (power of two); by default the
    best of {1..64} for this data is chosen, mirroring how [3] picks
    ``m`` per test set.

    >>> import numpy as np
    >>> result = compress_golomb(np.asarray([2, 2, 2, 2, 1, 2, 2, 2], dtype=np.int8))
    >>> result.rate > 0
    True
    """
    bits = _zero_filled_bits(trits)
    runs, trailing = runs_of_zeros(bits)
    if parameter is None:
        parameter = best_golomb_parameter(runs)
    encoded = golomb_encode(runs, parameter)
    result = RunLengthResult(
        method="golomb",
        original_bits=len(bits),
        encoded=encoded,
        parameter=parameter,
    )
    # Self-check: decoding reproduces the runs (cheap, string-level).
    if golomb_decode(encoded, parameter) != runs:
        raise AssertionError("Golomb round-trip failed")
    return result


def compress_fdr(trits: np.ndarray) -> RunLengthResult:
    """FDR-code a test-set string (don't-cares 0-filled).

    >>> import numpy as np
    >>> result = compress_fdr(np.asarray([2, 2, 2, 2, 1, 2, 2, 2], dtype=np.int8))
    >>> result.method
    'fdr'
    """
    bits = _zero_filled_bits(trits)
    runs, trailing = runs_of_zeros(bits)
    encoded = fdr_encode(runs)
    if fdr_decode(encoded) != runs:
        raise AssertionError("FDR round-trip failed")
    return RunLengthResult(
        method="fdr", original_bits=len(bits), encoded=encoded
    )

"""Covering: assigning a matching vector to every input block.

Section 3.2 of the paper: the MVs are sorted by increasing number of
``U`` values and each input block takes the *first* MV in that order
that matches it (fewer ``U``s → fewer fill bits → shorter encoding).
The covering also collects the frequency-of-use ``F_i`` of every MV,
which drives the Huffman codeword assignment.

Covering runs on the distinct-block table of a :class:`BlockSet`, so
its cost is O(L × distinct blocks) vectorized numpy work — this is the
inner loop of the EA fitness evaluation.  The heavy lifting lives in
the pluggable kernel subsystem (:mod:`repro.core.kernels`): a float32
GEMM kernel, a bit-packed uint64 word-lane kernel with block-table
sharding, and the scalar reference loop, all returning bit-identical
results.  This module is the thin dispatcher over that registry:

* :func:`cover` covers one :class:`MVSet` (the compressor path) with
  the scalar reference kernel;
* :func:`cover_masks` is the single-genome mask-level primitive
  (re-exported from :mod:`repro.core.kernels.scalar`);
* :func:`cover_masks_batch` covers a whole *generation* at once,
  resolving ``kernel`` (``"auto"`` by default) through the registry;
* :func:`cover_bits_batch`/:func:`unpack_mask_bits` remain the GEMM
  kernel's bit-matrix core, re-exported for callers that manage their
  own unpacked representation;
* :func:`cover_from_match_columns`/:func:`cover_packed_columns` are
  the *factored* covering primitives behind the batched fitness's
  unique-MV dedup path (PR 4): given per-MV match columns — from
  ``CoveringKernel.match_columns`` or the fitness's persistent
  :class:`~repro.core.fitness.MVMatchCache` — they reassemble
  per-genome coverings without re-running any kernel, bit-identically
  to the fused entry points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .blocks import WORD_BITS, BlockSet
from .kernels import (
    cover_bits_batch,
    cover_from_match_columns,
    cover_masks,
    cover_packed_columns,
    resolve_kernel,
    unpack_mask_bits,
)
from .matching import MVSet

__all__ = [
    "CoveringResult",
    "UncoverableError",
    "cover",
    "cover_bits_batch",
    "cover_from_match_columns",
    "cover_masks",
    "cover_masks_batch",
    "cover_packed_columns",
    "unpack_mask_bits",
]


class UncoverableError(ValueError):
    """Raised when some input block matches none of the MVs.

    The paper rules this out by including an all-U matching vector;
    without one, encoding with the given MV set is impossible.
    """


@dataclass(frozen=True)
class CoveringResult:
    """Outcome of covering a block set with an MV set.

    Attributes
    ----------
    assignment:
        For each *distinct* block, the index of the covering MV
        (``-1`` if no MV matches).
    frequencies:
        ``F_i`` — number of input blocks (counted with multiplicity)
        covered by MV ``i``.
    covering_order:
        MV indices in the priority order used (increasing NU).
    uncovered:
        Number of input blocks (with multiplicity) left uncovered.
    """

    assignment: np.ndarray = field(repr=False)
    frequencies: np.ndarray = field(repr=False)
    covering_order: tuple[int, ...]
    uncovered: int

    @property
    def is_complete(self) -> bool:
        """True iff every input block found a matching MV."""
        return self.uncovered == 0

    def frequency_map(self) -> dict[int, int]:
        """Nonzero frequencies as ``{mv_index: F_i}``."""
        return {
            int(i): int(f) for i, f in enumerate(self.frequencies) if f > 0
        }


def cover_masks_batch(
    block_ones: np.ndarray,
    block_zeros: np.ndarray,
    block_counts: np.ndarray,
    mv_ones: np.ndarray,
    mv_zeros: np.ndarray,
    covering_order: np.ndarray,
    block_length: int | None = None,
    kernel: str = "auto",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cover the block set with ``C`` MV sets (genomes) in one pass.

    Batched counterpart of :func:`cover_masks`: ``mv_ones``,
    ``mv_zeros`` and ``covering_order`` are ``(C, L)`` arrays — one row
    per genome (``(C, L, W)`` word arrays for ``K > 64``) — and the
    return is ``(assignment, frequencies, uncovered)`` with shapes
    ``(C, D)``, ``(C, L)`` and ``(C,)``.

    ``block_length`` bounds the mask width (defaults to the widest bit
    used); ``kernel`` names a registered covering kernel or ``"auto"``
    to pick one from the workload shape.  Every kernel returns
    bit-identical results, so the choice only moves the wall clock.

    For every genome whose MVs cover all blocks, row ``c`` agrees
    element-for-element with ``cover_masks(..., mv_ones[c],
    mv_zeros[c], covering_order[c])``.  Genomes with uncovered blocks
    take an early exit: their ``uncovered`` count is exact, but their
    ``assignment`` row is all ``-1`` and their ``frequencies`` row all
    zero (the batched fitness prices such genomes as invalid without
    needing either).
    """
    mv_ones = np.asarray(mv_ones, dtype=np.uint64)
    mv_zeros = np.asarray(mv_zeros, dtype=np.uint64)
    order_input = np.asarray(covering_order, dtype=np.int64)
    # Promote single-genome inputs to a batch of one: flat masks are
    # 1-D, multi-word masks are (L, W) — the 1-D covering order is
    # what disambiguates the latter from a (C, L) flat batch.
    if mv_ones.ndim == 1 or (mv_ones.ndim == 2 and order_input.ndim == 1):
        mv_ones = mv_ones[None]
        mv_zeros = mv_zeros[None]
    orders = np.atleast_2d(order_input)
    n_genomes, n_vectors = mv_ones.shape[:2]

    if block_length is None:
        block_ones = np.asarray(block_ones, dtype=np.uint64)
        block_zeros = np.asarray(block_zeros, dtype=np.uint64)
        if mv_ones.ndim == 3 or block_ones.ndim == 2:
            # Word arrays: the mask width is the word count.
            words = max(
                block_ones.shape[-1] if block_ones.ndim == 2 else 1,
                mv_ones.shape[-1] if mv_ones.ndim == 3 else 1,
            )
            block_length = words * WORD_BITS
        else:
            widest = max(
                int(block_ones.max() | block_zeros.max()) if block_ones.size else 0,
                int(mv_ones.max() | mv_zeros.max()) if mv_ones.size else 0,
            )
            block_length = max(1, widest.bit_length())

    chosen = resolve_kernel(
        kernel,
        n_genomes=n_genomes,
        n_distinct=len(block_ones),
        n_vectors=n_vectors,
        block_length=block_length,
    )
    prepared = chosen.prepare_masks(
        block_ones, block_zeros, block_counts, block_length
    )
    return chosen.cover_masks(prepared, mv_ones, mv_zeros, orders)


def cover(blocks: BlockSet, mv_set: MVSet, require_complete: bool = False) -> CoveringResult:
    """Cover ``blocks`` with ``mv_set`` per the paper's first-match rule.

    >>> bs = BlockSet.from_string("111 000 11X", 3)
    >>> result = cover(bs, MVSet.from_strings(["111", "000", "UUU"]))
    >>> result.frequency_map()
    {0: 2, 1: 1}
    """
    if blocks.block_length != mv_set.block_length:
        raise ValueError(
            f"block length {blocks.block_length} != MV length {mv_set.block_length}"
        )
    mv_ones, mv_zeros = mv_set.mask_arrays()
    order = np.asarray(mv_set.covering_order(), dtype=np.int64)
    assignment, frequencies, uncovered = cover_masks(
        blocks.ones, blocks.zeros, blocks.counts, mv_ones, mv_zeros, order
    )
    if require_complete and uncovered:
        raise UncoverableError(
            f"{uncovered} input blocks match none of the {len(mv_set)} MVs"
        )
    return CoveringResult(
        assignment=assignment,
        frequencies=frequencies,
        covering_order=tuple(int(i) for i in order),
        uncovered=uncovered,
    )

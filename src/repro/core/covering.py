"""Covering: assigning a matching vector to every input block.

Section 3.2 of the paper: the MVs are sorted by increasing number of
``U`` values and each input block takes the *first* MV in that order
that matches it (fewer ``U``s → fewer fill bits → shorter encoding).
The covering also collects the frequency-of-use ``F_i`` of every MV,
which drives the Huffman codeword assignment.

Covering runs on the distinct-block table of a :class:`BlockSet`, so
its cost is O(L × distinct blocks) vectorized numpy work — this is the
inner loop of the EA fitness evaluation.

Two kernels serve that loop.  :func:`cover_masks` covers one MV set
(one genome) with a Python loop over MVs in priority order.
:func:`cover_masks_batch` covers a whole *generation* at once.  A
naive batched matcher broadcasts uint64 masks into ``(C, L, D)``
tensors and is memory-bandwidth bound on the 8-byte temporaries;
instead, the batch kernel unpacks masks into 0/1 *bit matrices* and
computes per-(block, MV) conflict counts with one float32 matrix
product — ``conflicts = [b₁|b₀] · [mvᴢ|mv₁]ᵀ`` is zero exactly when
the MV matches the block — so the heavy lifting runs inside BLAS.
The MV axis is pre-permuted into covering order, which turns
first-match-in-priority-order into a plain ``argmax`` over the
conflict-free booleans, and the block multiplicities are scatter-added
into a ``(C, L)`` frequency matrix.  Work is chunked over genomes to
bound the conflict matrix, and genomes that fail to cover every block
take an early exit: their ``uncovered`` count is exact but the
assignment/frequency work is skipped — their rows come back with
``assignment = -1`` and zero frequencies, which the batched fitness
prices as ``INVALID_FITNESS``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .blocks import BlockSet
from .matching import MVSet

__all__ = [
    "CoveringResult",
    "UncoverableError",
    "cover",
    "cover_bits_batch",
    "cover_masks",
    "cover_masks_batch",
    "unpack_mask_bits",
]

# Genome-chunk sizing for the batched kernel: keep each (D, chunk·L)
# float32 conflict matrix at or below this many elements (~4 MiB), so
# a chunk's conflict/match tensors stay cache-resident end to end.
_BATCH_TENSOR_ELEMENTS = 1 << 20


def unpack_mask_bits(masks: np.ndarray, block_length: int) -> np.ndarray:
    """Unpack uint64 masks into a float32 0/1 bit matrix.

    Output shape is ``masks.shape + (block_length,)`` with position 0
    (the MSB of the mask) first — the layout the GEMM covering kernel
    multiplies against.
    """
    shifts = np.arange(block_length - 1, -1, -1, dtype=np.uint64)
    return ((masks[..., None] >> shifts) & np.uint64(1)).astype(np.float32)


class UncoverableError(ValueError):
    """Raised when some input block matches none of the MVs.

    The paper rules this out by including an all-U matching vector;
    without one, encoding with the given MV set is impossible.
    """


@dataclass(frozen=True)
class CoveringResult:
    """Outcome of covering a block set with an MV set.

    Attributes
    ----------
    assignment:
        For each *distinct* block, the index of the covering MV
        (``-1`` if no MV matches).
    frequencies:
        ``F_i`` — number of input blocks (counted with multiplicity)
        covered by MV ``i``.
    covering_order:
        MV indices in the priority order used (increasing NU).
    uncovered:
        Number of input blocks (with multiplicity) left uncovered.
    """

    assignment: np.ndarray = field(repr=False)
    frequencies: np.ndarray = field(repr=False)
    covering_order: tuple[int, ...]
    uncovered: int

    @property
    def is_complete(self) -> bool:
        """True iff every input block found a matching MV."""
        return self.uncovered == 0

    def frequency_map(self) -> dict[int, int]:
        """Nonzero frequencies as ``{mv_index: F_i}``."""
        return {
            int(i): int(f) for i, f in enumerate(self.frequencies) if f > 0
        }


def cover_masks(
    block_ones: np.ndarray,
    block_zeros: np.ndarray,
    block_counts: np.ndarray,
    mv_ones: np.ndarray,
    mv_zeros: np.ndarray,
    covering_order: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Mask-level covering kernel shared by :func:`cover` and the EA fitness.

    Parameters are plain arrays so the EA can call this without building
    :class:`MVSet` objects.  Returns ``(assignment, frequencies,
    uncovered)`` with the same meaning as :class:`CoveringResult`.
    """
    n_distinct = block_ones.size
    n_vectors = mv_ones.size
    assignment = np.full(n_distinct, -1, dtype=np.int64)
    unassigned = np.ones(n_distinct, dtype=bool)
    for mv_index in covering_order:
        if not unassigned.any():
            break
        hits = (
            unassigned
            & ((block_ones & mv_zeros[mv_index]) == 0)
            & ((block_zeros & mv_ones[mv_index]) == 0)
        )
        assignment[hits] = mv_index
        unassigned &= ~hits
    frequencies = np.zeros(n_vectors, dtype=np.int64)
    covered = assignment >= 0
    np.add.at(frequencies, assignment[covered], block_counts[covered])
    uncovered = int(block_counts[~covered].sum())
    return assignment, frequencies, uncovered


def cover_masks_batch(
    block_ones: np.ndarray,
    block_zeros: np.ndarray,
    block_counts: np.ndarray,
    mv_ones: np.ndarray,
    mv_zeros: np.ndarray,
    covering_order: np.ndarray,
    block_length: int | None = None,
    block_bits: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cover the block set with ``C`` MV sets (genomes) in one pass.

    Batched counterpart of :func:`cover_masks`: ``mv_ones``,
    ``mv_zeros`` and ``covering_order`` are ``(C, L)`` arrays — one row
    per genome — and the return is ``(assignment, frequencies,
    uncovered)`` with shapes ``(C, D)``, ``(C, L)`` and ``(C,)``.

    ``block_length`` bounds the mask width (defaults to the widest bit
    used); repeat callers can pass ``block_bits`` — the cached result
    of ``unpack_mask_bits(block_ones, K)`` and
    ``unpack_mask_bits(block_zeros, K)`` stacked along the last axis
    into ``(D, 2K)`` — to skip re-unpacking the (fixed) block table on
    every generation, which is what the batched fitness does.

    For every genome whose MVs cover all blocks, row ``c`` agrees
    element-for-element with ``cover_masks(..., mv_ones[c],
    mv_zeros[c], covering_order[c])``.  Genomes with uncovered blocks
    take an early exit: their ``uncovered`` count is exact, but their
    ``assignment`` row is all ``-1`` and their ``frequencies`` row all
    zero (the batched fitness prices such genomes as invalid without
    needing either).
    """
    mv_ones = np.atleast_2d(mv_ones)
    mv_zeros = np.atleast_2d(mv_zeros)
    order = np.atleast_2d(covering_order)
    n_genomes, n_vectors = mv_ones.shape
    n_distinct = block_ones.size
    assignment = np.full((n_genomes, n_distinct), -1, dtype=np.int64)
    frequencies = np.zeros((n_genomes, n_vectors), dtype=np.int64)
    uncovered = np.zeros(n_genomes, dtype=np.int64)
    if n_distinct == 0 or n_genomes == 0:
        return assignment, frequencies, uncovered

    if block_length is None:
        widest = max(
            int(block_ones.max() | block_zeros.max()),
            int(mv_ones.max() | mv_zeros.max()),
        )
        block_length = max(1, widest.bit_length())
    if block_bits is None:
        block_bits = np.concatenate(
            [
                unpack_mask_bits(block_ones, block_length),
                unpack_mask_bits(block_zeros, block_length),
            ],
            axis=1,
        )

    # MV bit matrix with the L axis pre-permuted into covering order,
    # pairing [b₁|b₀] against [mvᴢ|mv₁]: the float32 product counts the
    # 1-vs-0 conflicts, and a zero count means "MV matches block".
    genome_rows = np.arange(n_genomes)[:, None]
    mv_bits = np.concatenate(
        [
            unpack_mask_bits(mv_zeros[genome_rows, order], block_length),
            unpack_mask_bits(mv_ones[genome_rows, order], block_length),
        ],
        axis=2,
    )  # (C, L, 2K)
    return cover_bits_batch(
        block_bits, block_counts, mv_bits, order, want_assignment=True
    )


def cover_bits_batch(
    block_bits: np.ndarray,
    block_counts: np.ndarray,
    mv_bits: np.ndarray,
    covering_order: np.ndarray,
    want_assignment: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """GEMM covering core over pre-unpacked bit matrices.

    ``block_bits`` is the fixed ``(D, 2K)`` ``[b₁|b₀]`` table;
    ``mv_bits`` is ``(C, L, 2K)`` ``[mvᴢ|mv₁]`` rows *already permuted
    into covering order* (row ``j`` of genome ``c`` is the MV tried
    ``j``-th); ``covering_order`` maps that rank back to MV indices.
    Returns ``(assignment, frequencies, uncovered)`` exactly like
    :func:`cover_masks_batch`; with ``want_assignment=False`` the
    ``(C, D)`` assignment matrix is skipped (all ``-1``) — the batched
    fitness only needs frequencies, which stay in MV index space.
    """
    n_genomes, n_vectors = mv_bits.shape[:2]
    n_distinct = block_bits.shape[0]
    order = np.atleast_2d(covering_order)
    assignment = np.full((n_genomes, n_distinct), -1, dtype=np.int64)
    frequencies = np.zeros((n_genomes, n_vectors), dtype=np.int64)
    uncovered = np.zeros(n_genomes, dtype=np.int64)
    if n_distinct == 0 or n_genomes == 0:
        return assignment, frequencies, uncovered

    counts_f = block_counts.astype(np.float64)  # exact to 2**53 in the dot
    total_count = int(block_counts.sum())
    chunk = max(1, _BATCH_TENSOR_ELEMENTS // max(1, n_vectors * n_distinct))
    for start in range(0, n_genomes, chunk):
        stop = min(start + chunk, n_genomes)
        span = stop - start
        conflicts = block_bits @ mv_bits[start:stop].reshape(
            span * n_vectors, -1
        ).T  # (D, span·L) GEMM — the kernel's hot loop lives in BLAS
        matches = (conflicts == 0).reshape(n_distinct, span, n_vectors)
        # argmax finds the first priority-ordered match; on an all-False
        # row it points at 0, so gathering the hit tells coverage too.
        first_rank = matches.argmax(axis=2)  # (D, span)
        covered = np.take_along_axis(matches, first_rank[:, :, None], axis=2)[
            :, :, 0
        ]
        uncovered[start:stop] = total_count - (counts_f @ covered).astype(
            np.int64
        )
        complete = uncovered[start:stop] == 0  # (span,)
        if not complete.any():
            continue
        # Early exit: frequency/assignment work only for complete genomes.
        sub = np.flatnonzero(complete)
        sub_rank = first_rank[:, sub].T  # (complete, D)
        # Scatter-add multiplicities per covering rank, then map ranks
        # back to MV indices through the order rows.
        flat = np.arange(sub.size)[:, None] * n_vectors + sub_rank
        counts_tiled = np.broadcast_to(block_counts, sub_rank.shape)
        rank_frequencies = np.bincount(
            flat.ravel(),
            weights=counts_tiled.ravel(),
            minlength=sub.size * n_vectors,
        ).reshape(sub.size, n_vectors)
        sub_order = order[start + sub]
        frequencies[start + sub[:, None], sub_order] = rank_frequencies.astype(
            np.int64
        )
        if want_assignment:
            assignment[start + sub] = sub_order[
                np.arange(sub.size)[:, None], sub_rank
            ]
    return assignment, frequencies, uncovered


def cover(blocks: BlockSet, mv_set: MVSet, require_complete: bool = False) -> CoveringResult:
    """Cover ``blocks`` with ``mv_set`` per the paper's first-match rule.

    >>> bs = BlockSet.from_string("111 000 11X", 3)
    >>> result = cover(bs, MVSet.from_strings(["111", "000", "UUU"]))
    >>> result.frequency_map()
    {0: 2, 1: 1}
    """
    if blocks.block_length != mv_set.block_length:
        raise ValueError(
            f"block length {blocks.block_length} != MV length {mv_set.block_length}"
        )
    mv_ones = np.asarray([mv.ones_mask for mv in mv_set], dtype=np.uint64)
    mv_zeros = np.asarray([mv.zeros_mask for mv in mv_set], dtype=np.uint64)
    order = np.asarray(mv_set.covering_order(), dtype=np.int64)
    assignment, frequencies, uncovered = cover_masks(
        blocks.ones, blocks.zeros, blocks.counts, mv_ones, mv_zeros, order
    )
    if require_complete and uncovered:
        raise UncoverableError(
            f"{uncovered} input blocks match none of the {len(mv_set)} MVs"
        )
    return CoveringResult(
        assignment=assignment,
        frequencies=frequencies,
        covering_order=tuple(int(i) for i in order),
        uncovered=uncovered,
    )

"""Covering: assigning a matching vector to every input block.

Section 3.2 of the paper: the MVs are sorted by increasing number of
``U`` values and each input block takes the *first* MV in that order
that matches it (fewer ``U``s → fewer fill bits → shorter encoding).
The covering also collects the frequency-of-use ``F_i`` of every MV,
which drives the Huffman codeword assignment.

Covering runs on the distinct-block table of a :class:`BlockSet`, so
its cost is O(L × distinct blocks) vectorized numpy work — this is the
inner loop of the EA fitness evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .blocks import BlockSet
from .matching import MVSet

__all__ = ["CoveringResult", "UncoverableError", "cover", "cover_masks"]


class UncoverableError(ValueError):
    """Raised when some input block matches none of the MVs.

    The paper rules this out by including an all-U matching vector;
    without one, encoding with the given MV set is impossible.
    """


@dataclass(frozen=True)
class CoveringResult:
    """Outcome of covering a block set with an MV set.

    Attributes
    ----------
    assignment:
        For each *distinct* block, the index of the covering MV
        (``-1`` if no MV matches).
    frequencies:
        ``F_i`` — number of input blocks (counted with multiplicity)
        covered by MV ``i``.
    covering_order:
        MV indices in the priority order used (increasing NU).
    uncovered:
        Number of input blocks (with multiplicity) left uncovered.
    """

    assignment: np.ndarray = field(repr=False)
    frequencies: np.ndarray = field(repr=False)
    covering_order: tuple[int, ...]
    uncovered: int

    @property
    def is_complete(self) -> bool:
        """True iff every input block found a matching MV."""
        return self.uncovered == 0

    def frequency_map(self) -> dict[int, int]:
        """Nonzero frequencies as ``{mv_index: F_i}``."""
        return {
            int(i): int(f) for i, f in enumerate(self.frequencies) if f > 0
        }


def cover_masks(
    block_ones: np.ndarray,
    block_zeros: np.ndarray,
    block_counts: np.ndarray,
    mv_ones: np.ndarray,
    mv_zeros: np.ndarray,
    covering_order: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Mask-level covering kernel shared by :func:`cover` and the EA fitness.

    Parameters are plain arrays so the EA can call this without building
    :class:`MVSet` objects.  Returns ``(assignment, frequencies,
    uncovered)`` with the same meaning as :class:`CoveringResult`.
    """
    n_distinct = block_ones.size
    n_vectors = mv_ones.size
    assignment = np.full(n_distinct, -1, dtype=np.int64)
    unassigned = np.ones(n_distinct, dtype=bool)
    for mv_index in covering_order:
        if not unassigned.any():
            break
        hits = (
            unassigned
            & ((block_ones & mv_zeros[mv_index]) == 0)
            & ((block_zeros & mv_ones[mv_index]) == 0)
        )
        assignment[hits] = mv_index
        unassigned &= ~hits
    frequencies = np.zeros(n_vectors, dtype=np.int64)
    covered = assignment >= 0
    np.add.at(frequencies, assignment[covered], block_counts[covered])
    uncovered = int(block_counts[~covered].sum())
    return assignment, frequencies, uncovered


def cover(blocks: BlockSet, mv_set: MVSet, require_complete: bool = False) -> CoveringResult:
    """Cover ``blocks`` with ``mv_set`` per the paper's first-match rule.

    >>> bs = BlockSet.from_string("111 000 11X", 3)
    >>> result = cover(bs, MVSet.from_strings(["111", "000", "UUU"]))
    >>> result.frequency_map()
    {0: 2, 1: 1}
    """
    if blocks.block_length != mv_set.block_length:
        raise ValueError(
            f"block length {blocks.block_length} != MV length {mv_set.block_length}"
        )
    mv_ones = np.asarray([mv.ones_mask for mv in mv_set], dtype=np.uint64)
    mv_zeros = np.asarray([mv.zeros_mask for mv in mv_set], dtype=np.uint64)
    order = np.asarray(mv_set.covering_order(), dtype=np.int64)
    assignment, frequencies, uncovered = cover_masks(
        blocks.ones, blocks.zeros, blocks.counts, mv_ones, mv_zeros, order
    )
    if require_complete and uncovered:
        raise UncoverableError(
            f"{uncovered} input blocks match none of the {len(mv_set)} MVs"
        )
    return CoveringResult(
        assignment=assignment,
        frequencies=frequencies,
        covering_order=tuple(int(i) for i in order),
        uncovered=uncovered,
    )

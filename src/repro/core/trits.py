"""The three-valued alphabets of code-based test compression.

Test data bits live in ``{0, 1, X}`` where ``X`` is a *don't-care*: the
ATPG left the bit unspecified and either value preserves fault
coverage.  Matching-vector positions live in ``{0, 1, U}`` where ``U``
is *unspecified*: the decoder substitutes a literal fill bit
transmitted after the codeword.  Both third values behave identically
for matching, so internally a single trit encoding is used:

====== ======= =====================================
value  integer meaning
====== ======= =====================================
``0``  0       specified zero
``1``  1       specified one
``X``  2       don't-care (test data) / unspecified
               fill position (matching vector, ``U``)
====== ======= =====================================
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "ZERO",
    "ONE",
    "DC",
    "TRIT_VALUES",
    "parse_trits",
    "format_trits",
    "trits_to_array",
    "random_trits",
]

ZERO = 0
ONE = 1
DC = 2  # don't-care (X) in test data, unspecified (U) in matching vectors

TRIT_VALUES = (ZERO, ONE, DC)

_CHAR_TO_TRIT = {
    "0": ZERO,
    "1": ONE,
    "X": DC,
    "x": DC,
    "U": DC,
    "u": DC,
    "-": DC,
}


def parse_trits(text: str) -> tuple[int, ...]:
    """Parse a trit string; ``X``/``U``/``-`` all denote the third value.

    Spaces and underscores are ignored so strings can be grouped for
    readability, matching the paper's ``000 111`` notation.

    >>> parse_trits("01X U1-")
    (0, 1, 2, 2, 1, 2)
    """
    trits = []
    for ch in text:
        if ch in " _":
            continue
        try:
            trits.append(_CHAR_TO_TRIT[ch])
        except KeyError:
            raise ValueError(f"invalid trit character {ch!r} in {text!r}") from None
    return tuple(trits)


def format_trits(trits: Iterable[int], unspecified: str = "U") -> str:
    """Render trits as a string, using ``unspecified`` for the third value.

    >>> format_trits((0, 1, 2))
    '01U'
    >>> format_trits((0, 1, 2), unspecified="X")
    '01X'
    """
    if unspecified not in ("U", "X", "-"):
        raise ValueError(f"unsupported unspecified character {unspecified!r}")
    chars = {ZERO: "0", ONE: "1", DC: unspecified}
    out = []
    for trit in trits:
        if trit not in chars:
            raise ValueError(f"invalid trit value {trit!r}")
        out.append(chars[trit])
    return "".join(out)


def trits_to_array(trits: Sequence[int]) -> np.ndarray:
    """Convert a trit sequence to a compact ``int8`` numpy array."""
    array = np.asarray(trits, dtype=np.int8)
    if array.ndim != 1:
        raise ValueError("trit sequence must be one-dimensional")
    if array.size and (array.min() < 0 or array.max() > 2):
        raise ValueError("trit values must be in {0, 1, 2}")
    return array


def random_trits(
    length: int,
    rng: np.random.Generator,
    probabilities: Sequence[float] = (1 / 3, 1 / 3, 1 / 3),
) -> np.ndarray:
    """Draw a random trit array with the given (p0, p1, pU) weights."""
    if length < 0:
        raise ValueError("length must be non-negative")
    weights = np.asarray(probabilities, dtype=float)
    if weights.shape != (3,) or weights.min() < 0 or not weights.sum() > 0:
        raise ValueError("probabilities must be three non-negative weights")
    return rng.choice(3, size=length, p=weights / weights.sum()).astype(np.int8)

"""Fitness evaluation: the compression rate of a genome's MV set.

This is the EA's inner loop.  The workhorse is
:class:`BatchCompressionRateFitness`, which prices an entire
generation of ``C`` genomes in a handful of numpy kernel calls:

1. the ``(C, L·K)`` genome matrix is packed into ``(C, L)`` mask and
   fill-count arrays in one vectorized pass (no ``MVSet`` objects);
2. the ``C·L`` MV rows are deduplicated (``np.unique`` over their
   packed uint64 word representation) and a pluggable covering kernel
   (:mod:`repro.core.kernels` — float32 GEMM, bit-packed uint64 lanes
   with block-table sharding, or the scalar reference; ``"auto"``
   picks per workload shape) computes *match columns* only for the
   unique MVs that miss the persistent :class:`MVMatchCache`; the
   per-genome coverings are then reassembled by gather + first-match
   (:func:`repro.core.kernels.cover_from_match_columns`), early-exiting
   genomes whose MVs cannot cover every block;
3. :func:`repro.coding.huffman.huffman_total_bits_batch` prices all
   frequency rows with a lockstep two-queue merge (no per-genome dict
   or heap), and the fill bits are one matrix dot away.

The decomposition in step 2 is sound because the match column of an MV
depends only on (MV, block table) — never on its neighbors or its
priority position — so deduplication and caching can never change a
result, only skip recomputing it.  Copy, crossover and late-run
convergence all preserve most of a parent's ``L`` matching vectors, so
on convergent workloads the kernel pass shrinks toward the handful of
genuinely new rows.  The factored path engages per batch shape
(generation-scale batches, or any batch against a very large distinct
table); tiny batches on small tables keep the fused per-generation
kernels, whose single pass undercuts the dedup bookkeeping there, and
``mv_cache_size=0`` forces the fused path everywhere — all of which is
bit-identical, pinned by the parity suite.

:class:`CompressionRateFitness` keeps the historical single-genome
callable API as a thin batch-of-one wrapper, so existing callers keep
working unchanged.  For a genome whose MVs cannot cover every block
the paper assigns "a sufficiently small number"; we use a large
negative constant, far below any reachable rate.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..coding.huffman import huffman_length_stats_batch, huffman_total_bits_batch
from ..tuning.feedback import MVCacheFeedback, MVFeedbackStats
from ..tuning.profile import TuningProfile, get_active_profile
from .blocks import BlockSet, mask_word_count, pack_bits_to_words
from .cache import (
    DEFAULT_POLICY,
    EvictionPolicy,
    block_table_digest,
    load_mv_cache,
    make_policy,
    save_mv_cache,
)
from .decoder_hw import decoder_area_units_batch, test_application_cycles_batch
from .encoding import EncodingStrategy, build_encoding_table
from .kernels import (
    AUTO_KERNEL,
    CoveringKernel,
    build_count_lut,
    cover_packed_columns,
    pack_match_columns,
    resolve_kernel,
)
from .matching import MVSet
from .trits import DC, ONE, ZERO

__all__ = [
    "DEFAULT_MV_CACHE_SIZE",
    "INVALID_FITNESS",
    "OBJECTIVE_COLUMNS",
    "BatchCompressionRateFitness",
    "CompressionRateFitness",
    "MVCacheStats",
    "MVMatchCache",
]

# Column order of ``BatchCompressionRateFitness.evaluate_objectives``:
# compression rate (%), decoder area (storage bits), test-application
# time (tester cycles).  Objective *subsets* are selected by name in
# ``repro.ea.multi_objective``; the adapter always emits all three.
OBJECTIVE_COLUMNS = ("rate", "area", "time")

INVALID_FITNESS = -1.0e6  # far below 100·(orig−comp)/orig for any valid encoding

# Unique MVs memoized per fitness.  An entry is the MV's packed key
# (2W uint64 words) plus its bit-packed match column (⌈D/8⌉ bytes) —
# ~0.5 KiB at the acceptance workloads' D≈3.3k — so the default is a
# few MiB while comfortably outliving a converged population (S·L is
# 640 MVs at the paper's settings).
DEFAULT_MV_CACHE_SIZE = 16384

# When the dedup path engages — the no-profile defaults, measured on
# the bench workloads and re-confirmed by the ``repro tune`` prober on
# the single-core CI-class container (results are bit-identical either
# way, so these only move the wall clock, exactly like kernel
# auto-selection):
# * generation-scale batches over a non-tiny table — the per-batch
#   dedup/lookup bookkeeping amortizes and the saved kernel work
#   dominates (×1.4–1.9 on the convergent bench batches at D≈0.9k–3.3k;
#   at D≈150 the kernel pass is too cheap to beat the bookkeeping even
#   with C=64, hence the table floor);
# * large distinct tables — kernel work per MV row is so heavy that
#   even the engine's 1–2 genome post-memo batches break even (parity
#   at D≈3.3k, ×0.94 wall clock by D≈8k on seeded EA runs).
# Below the thresholds (the paper's C=5 EA on a small circuit) the
# fused kernel pass is cheaper than the bookkeeping, so the factored
# path steps aside.  A :class:`repro.tuning.TuningProfile` (explicit
# ``tuning`` argument, or the process-wide active profile set by
# ``--profile``) overrides all three per machine; on top of the static
# decision, an :class:`repro.tuning.MVCacheFeedback` monitor can
# disengage the path mid-run when observed hit rates stay below
# break-even (see ``mv_feedback``).
# Recalibration (PR 5, `repro tune` full mode on the single-core
# CI-class container): the table floor (512) and the any-batch floor
# (2048) re-measured exactly; the genome floor measured C>=2 on the
# prober's fully-warmed convergent batches vs the 16 shipped from
# EA-realistic (partly cold) batches — the warm-case gap is now the
# feedback monitor's job, so the conservative static floor stands.
_MV_DEDUP_MIN_GENOMES = 16
_MV_DEDUP_MIN_TABLE = 512
_MV_DEDUP_MIN_DISTINCT = 2048


@dataclass(frozen=True)
class MVCacheStats:
    """Effectiveness counters of the MV-level match-column path.

    ``rows_total``/``rows_unique`` count MV rows before and after the
    per-batch dedup; ``hits``/``misses`` count unique rows served from
    (vs priced into) the persistent cache.  Only kernel work for
    misses is ever recomputed, so the saved fraction of match work is
    ``1 − misses/rows_total``.  ``policy`` names the cache's eviction
    policy (empty when the cache is disabled) and ``warm_loaded``
    counts entries hydrated from a persisted cache file before the
    first batch.  ``feedback`` carries the runtime engagement
    monitor's decision counters (``None`` when no monitor is
    attached).  Every ratio here is well-defined at zero activity:
    a run that never looks anything up reports 0.0, never NaN.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0
    rows_total: int = 0
    rows_unique: int = 0
    policy: str = ""
    warm_loaded: int = 0
    feedback: MVFeedbackStats | None = None

    @property
    def hit_rate(self) -> float:
        """Hits over unique-row lookups (0.0 when nothing was looked up)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    @property
    def rows_saved_rate(self) -> float:
        """Fraction of MV rows that needed no kernel work at all."""
        if not self.rows_total:
            return 0.0
        return 1.0 - self.misses / self.rows_total


class MVMatchCache:
    """Policy-bounded cache: packed MV key → bit-packed match column.

    Keys identify an MV's ``[ones|zeros]`` word representation — a
    plain ``int`` when the fused row fits one uint64 (``2K ≤ 64``),
    the row's ``tobytes()`` otherwise.  Values are the MV's match
    column over the distinct-block table, bit-packed along D
    (``np.packbits`` little-endian, ⌈D/8⌉ uint8) and stored as rows of
    one preallocated slot array, so whole-generation lookups resolve
    into a single vectorized gather (:meth:`columns_at`) instead of
    per-row array copies.

    Which entries a *full* cache keeps is delegated to a pluggable
    :class:`repro.core.cache.EvictionPolicy` (``"lru"`` — the
    historical behavior — ``"lfu"``, ``"2q"``, ``"segmented"``).  Any
    policy is semantically inert, exactly like the engine's genome
    memo cache: an eviction can only cost a recomputation, never
    change a result.  :meth:`export_state`/:meth:`load_state` move the
    retained entries to and from the persisted on-disk form
    (:mod:`repro.core.cache.persist`), coldest entry first so a reload
    into a smaller cache keeps the hottest columns.

    The cache is thread-safe: every public method holds one internal
    lock, so a single instance can back many concurrent fitness
    engines (the serve daemon shares one per block table).  Policies
    themselves stay lock-free — all mutation routes through these
    methods.  Concurrent readers must use :meth:`fetch`, which fuses
    lookup + column gather into one atomic step; the split
    :meth:`lookup`/:meth:`columns_at` pair is only safe when no other
    thread can insert between the two calls, because an insert may
    recycle an evicted slot out from under the gather.
    """

    def __init__(
        self, capacity: int, policy: str | EvictionPolicy = DEFAULT_POLICY
    ) -> None:
        if isinstance(policy, EvictionPolicy):
            self._policy = policy
            self._capacity = policy.capacity
        else:
            self._policy = make_policy(policy, capacity)
            self._capacity = capacity
        self._store: np.ndarray | None = None  # (capacity, ⌈D/8⌉) uint8
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.warm_loaded = 0

    @property
    def capacity(self) -> int:
        """Maximum number of match columns retained."""
        return self._capacity

    @property
    def policy_name(self) -> str:
        """Name of the eviction policy deciding retention."""
        return self._policy.name

    def __len__(self) -> int:
        with self._lock:
            return len(self._policy)

    def _ensure_store(self, column_width: int) -> None:
        if self._store is None:
            self._store = np.empty((self._capacity, column_width), np.uint8)
        elif self._store.shape[1] != column_width:
            raise ValueError(
                f"cache holds {self._store.shape[1]}-byte columns, "
                f"got {column_width} (one block table per cache)"
            )

    def _claim_slot(self, key: int | bytes) -> int:
        """The store row for a new ``key``, evicting a victim if full."""
        slot, evicted = self._policy.claim(key)
        if evicted:
            self.evictions += 1
        return slot

    def get(self, key: int | bytes) -> np.ndarray | None:
        """The cached packed column for ``key``, refreshing its priority.

        Returns a copy: a view into the slot store would be silently
        overwritten when a later insert recycles the slot.
        """
        with self._lock:
            slot = self._policy.lookup(key)
            if slot is None:
                self.misses += 1
                return None
            self.hits += 1
            return self._store[slot].copy()

    def put(self, key: int | bytes, column: np.ndarray) -> None:
        """Insert ``key``'s packed column, evicting the policy's victim."""
        column = np.asarray(column, dtype=np.uint8)
        with self._lock:
            self._ensure_store(column.shape[-1])
            slot = self._policy.lookup(key)  # overwrite refreshes priority
            if slot is None:
                slot = self._claim_slot(key)
            self._store[slot] = column

    def lookup(self, keys: list) -> np.ndarray:
        """Store slot per key (``-1`` for misses), counting and
        priority-refreshing hits — the batch counterpart of :meth:`get`.

        Single-threaded use only: the returned slots go stale as soon
        as any other thread inserts.  Concurrent callers want
        :meth:`fetch`.
        """
        with self._lock:
            return self._lookup_slots(keys)

    def _lookup_slots(self, keys: list) -> np.ndarray:
        """Slot per key under the caller's lock, updating counters."""
        policy = self._policy
        slots = np.empty(len(keys), dtype=np.int64)
        hits = 0
        for index, key in enumerate(keys):
            slot = policy.lookup(key)
            if slot is None:
                slots[index] = -1
            else:
                slots[index] = slot
                hits += 1
        self.hits += hits
        self.misses += len(keys) - hits
        return slots

    def columns_at(self, slots: np.ndarray) -> np.ndarray:
        """Gather the packed columns at ``slots`` in one vectorized read.

        Only valid for slots just returned by :meth:`lookup` and read
        *before* the next :meth:`insert` (an insert may recycle an
        evicted slot) — which also rules out any concurrent inserter.
        """
        with self._lock:
            return self._store[slots]

    def fetch(self, keys: list) -> tuple[np.ndarray, np.ndarray | None]:
        """Atomic batch lookup + gather: ``(hit_mask, hit_columns)``.

        One lock acquisition covers the slot lookup, the hit/miss
        counters *and* the column gather, so no concurrent insert can
        recycle a slot between lookup and read — the safe concurrent
        counterpart of the :meth:`lookup`/:meth:`columns_at` pair.
        ``hit_columns`` are the packed columns of the hit keys in key
        order (a copy, valid indefinitely), or ``None`` when nothing
        hit.
        """
        with self._lock:
            slots = self._lookup_slots(keys)
            hit = slots >= 0
            columns = self._store[slots[hit]].copy() if hit.any() else None
        return hit, columns

    def insert(self, keys: list, columns: np.ndarray) -> None:
        """Bulk :meth:`put` of freshly priced columns (one per key).

        Under eviction pressure inside one bulk insert, recycled slots
        may be claimed several times; only the *newest* claim still
        owns its slot, so duplicates are resolved to the last
        occurrence before the vectorized store write (numpy leaves
        repeated-index assignment order unspecified).  Concurrent
        inserts of the same key are harmless: the match column is a
        pure function of (key, block table), so both writers store the
        same bytes.
        """
        columns = np.asarray(columns, dtype=np.uint8)
        with self._lock:
            self._ensure_store(columns.shape[-1])
            policy = self._policy
            slots = np.empty(len(keys), dtype=np.int64)
            for index, key in enumerate(keys):
                slot = policy.lookup(key)
                if slot is None:
                    slot = self._claim_slot(key)
                slots[index] = slot
            unique_slots, reversed_first = np.unique(
                slots[::-1], return_index=True
            )
            last_rows = len(keys) - 1 - reversed_first
            self._store[unique_slots] = columns[last_rows]

    # -- persistence --------------------------------------------------

    def export_state(self) -> tuple[list, np.ndarray]:
        """Retained ``(keys, columns)`` in eviction order, coldest first.

        The on-disk form: replaying the pairs through
        :meth:`load_state` reproduces the retention priority under any
        policy, and under a smaller capacity the coldest entries are
        the ones dropped.
        """
        with self._lock:
            pairs = list(self._policy.items())
            if not pairs:
                return [], np.empty((0, 0), dtype=np.uint8)
            keys = [key for key, _ in pairs]
            slots = np.fromiter(
                (slot for _, slot in pairs), dtype=np.int64, count=len(pairs)
            )
            return keys, self._store[slots].copy()

    def load_state(self, keys: list, columns: np.ndarray) -> None:
        """Hydrate from persisted ``(keys, columns)``, coldest first.

        Counters stay untouched — a warm start is not a hit, and
        truncation to a smaller capacity is not run-time eviction
        pressure; :attr:`warm_loaded` records how many entries are
        resident after the load.
        """
        columns = np.asarray(columns, dtype=np.uint8)
        with self._lock:
            self._ensure_store(columns.shape[-1])
            policy = self._policy
            for index, key in enumerate(keys):
                slot = policy.lookup(key)
                if slot is None:
                    slot, _ = policy.claim(key)
                self._store[slot] = columns[index]
            self.warm_loaded = len(policy)


class _StageClock:
    """Accumulates per-stage wall time into a caller-owned dict."""

    def __init__(self, timings: dict) -> None:
        self._timings = timings
        self._last = time.perf_counter()

    def mark(self, stage: str) -> None:
        now = time.perf_counter()
        self._timings[stage] = self._timings.get(stage, 0.0) + now - self._last
        self._last = now


class BatchCompressionRateFitness:
    """Price a whole generation of genomes against a fixed block set.

    ``kernel`` selects the covering kernel by registry name
    (``"auto"``, ``"gemm"``, ``"bitpack"``, ``"scalar"``) or passes a
    :class:`~repro.core.kernels.CoveringKernel` instance directly;
    ``"auto"`` resolves from the workload shape (C, D, L, K) when the
    first batch arrives.  ``mv_cache_size`` bounds the persistent
    :class:`MVMatchCache` behind the unique-MV dedup path; ``0`` (or
    ``None``) prices through the fused per-generation kernels instead,
    and an explicit ``mv_cache`` instance overrides both — the route by
    which the serve daemon shares one warm thread-safe cache across
    every request touching the same block table.
    With the cache enabled, the dedup path engages per batch shape —
    generation-scale batches or very large distinct tables — and tiny
    batches on small tables keep the fused kernels, whose single pass
    is cheaper than the dedup bookkeeping there.

    ``tuning`` pins a :class:`repro.tuning.TuningProfile` whose
    machine-measured thresholds replace the shipped defaults for
    kernel auto-selection, dedup engagement, bitpack shard sizing and
    the Huffman lockstep cutover; when ``None``, the process-wide
    active profile applies, and without one the module constants do.
    ``mv_feedback`` controls the runtime engagement monitor
    (:class:`repro.tuning.MVCacheFeedback`): ``None``/``True`` attach
    one (default on whenever the cache is on), ``False`` forces the
    static shape decision only, and an explicit monitor instance is
    used as-is.  Every configuration prices bit-identically, so all
    of these knobs only move the wall clock.

    >>> blocks = BlockSet.from_string("111 000 111 111", 3)
    >>> fit = BatchCompressionRateFitness(blocks, n_vectors=2, block_length=3)
    >>> genomes = MVSet.from_strings(["111", "UUU"]).to_genome()[None, :]
    >>> [round(rate, 1) for rate in fit.evaluate_batch(genomes)]
    [41.7]
    """

    def __init__(
        self,
        blocks: BlockSet,
        n_vectors: int,
        block_length: int,
        strategy: EncodingStrategy = EncodingStrategy.HUFFMAN,
        invalid_fitness: float = INVALID_FITNESS,
        kernel: str | CoveringKernel = AUTO_KERNEL,
        mv_cache_size: int | None = DEFAULT_MV_CACHE_SIZE,
        tuning: TuningProfile | None = None,
        mv_feedback: bool | MVCacheFeedback | None = None,
        mv_cache_policy: str | None = None,
        mv_cache_persist: bool = False,
        mv_cache_dir: Path | None = None,
        mv_cache: MVMatchCache | None = None,
    ) -> None:
        if blocks.block_length != block_length:
            raise ValueError(
                f"block set has K={blocks.block_length}, expected {block_length}"
            )
        if n_vectors < 1:
            raise ValueError("n_vectors must be >= 1")
        if blocks.original_bits == 0:
            raise ValueError("cannot evaluate fitness on an empty test set")
        if strategy is EncodingStrategy.FIXED:
            raise ValueError("fitness evaluation requires a frequency-based strategy")
        mv_cache_size = int(mv_cache_size or 0)
        if mv_cache_size < 0:
            raise ValueError("mv_cache_size must be >= 0")
        self._blocks = blocks
        self._n_vectors = n_vectors
        self._block_length = block_length
        self._strategy = strategy
        self._invalid_fitness = invalid_fitness
        # Threshold resolution order: explicit profile > process-wide
        # active profile > shipped module defaults (profile absent).
        self._tuning = tuning if tuning is not None else get_active_profile()
        # Policy resolution mirrors the threshold order: explicit
        # argument > profile field > shipped default (LRU).
        if mv_cache_policy is None and self._tuning is not None:
            mv_cache_policy = self._tuning.mv_cache_policy
        if mv_cache_policy is None:
            mv_cache_policy = DEFAULT_POLICY
        if mv_cache is not None:
            # An injected (typically shared, e.g. the serve daemon's
            # warm registry) cache wins over size/policy construction.
            # Sharing is sound for the same reason persistence is: a
            # match column is a pure function of (MV, block table), so
            # a warmer cache can only skip kernel work, never change a
            # priced result.
            self._mv_cache = mv_cache
        else:
            self._mv_cache = (
                MVMatchCache(mv_cache_size, policy=mv_cache_policy)
                if mv_cache_size
                else None
            )
        self._mv_cache_persist = bool(mv_cache_persist) and self._mv_cache is not None
        self._mv_cache_dir = mv_cache_dir
        self._table_digest_memo: str | None = None
        self._mv_feedback = self._build_feedback(mv_feedback)
        self._mv_rows_total = 0
        self._mv_rows_unique = 0
        self._count_lut: np.ndarray | None = None  # built on first dedup pass
        # The kernel choice; "auto" resolves lazily on the first batch
        # (the heuristic wants the generation size C), concrete names
        # resolve and prepare the block table right away.
        self._kernel_choice = kernel
        self._kernel: CoveringKernel | None = None
        self._prepared = None
        if kernel != AUTO_KERNEL:
            self._resolve_kernel(n_genomes=1)
        self.evaluations = 0

    def _build_feedback(
        self, mv_feedback: bool | MVCacheFeedback | None
    ) -> MVCacheFeedback | None:
        """The runtime engagement monitor (``None`` when switched off).

        Without a cache there is nothing to monitor; with one, the
        default (``None``/``True``) attaches a monitor parameterized
        by the tuning profile's ``mv_feedback_*`` fields (or the
        monitor's own defaults when no profile is active).
        """
        if self._mv_cache is None or mv_feedback is False:
            return None
        if isinstance(mv_feedback, MVCacheFeedback):
            return mv_feedback
        profile = self._tuning
        if profile is None:
            return MVCacheFeedback()
        return MVCacheFeedback(
            min_hit_rate=profile.mv_feedback_min_hit_rate,
            patience=profile.mv_feedback_patience,
            reprobe_period=profile.mv_feedback_reprobe_period,
        )

    def _resolve_kernel(self, n_genomes: int) -> CoveringKernel:
        if self._kernel is None:
            self._kernel = resolve_kernel(
                self._kernel_choice,
                n_genomes=n_genomes,
                n_distinct=self._blocks.n_distinct,
                n_vectors=self._n_vectors,
                block_length=self._block_length,
                profile=self._tuning,
            )
            self._prepared = self._kernel.prepare(self._blocks)
            # The resolved kernel name is part of the persisted-cache
            # key (columns must replay against the same kernel family's
            # table layout assumptions), so warm-up can only happen
            # here — after "auto" has collapsed to a concrete kernel.
            if self._mv_cache_persist:
                self._load_persisted_cache()
        return self._kernel

    def _table_digest(self) -> str:
        if self._table_digest_memo is None:
            self._table_digest_memo = block_table_digest(self._blocks)
        return self._table_digest_memo

    def _load_persisted_cache(self) -> None:
        """Warm the MV cache from disk; any invalid file is a cold start."""
        load_mv_cache(
            self._mv_cache,
            self._table_digest(),
            self._kernel.name,
            self._block_length,
            column_width=-(-self._blocks.n_distinct // 8),
            directory=self._mv_cache_dir,
            warn=lambda message: warnings.warn(message, stacklevel=3),
        )

    def persist_mv_cache(self) -> Path | None:
        """Save the warm MV cache to disk; the path written, or ``None``.

        A no-op (``None``) when persistence is off, the cache is
        disabled or empty, or no batch was ever priced (an unresolved
        ``auto`` kernel has no cache key to save under).  Safe under
        concurrent callers — the atomic rename publishes one complete
        file and the last writer wins.
        """
        if not self._mv_cache_persist or self._kernel is None:
            return None
        return save_mv_cache(
            self._mv_cache,
            self._table_digest(),
            self._kernel.name,
            self._block_length,
            directory=self._mv_cache_dir,
        )

    @property
    def blocks(self) -> BlockSet:
        """The block set this fitness prices against."""
        return self._blocks

    @property
    def kernel_name(self) -> str:
        """The resolved covering kernel's name (``auto`` if unresolved)."""
        return self._kernel.name if self._kernel is not None else AUTO_KERNEL

    @property
    def genome_length(self) -> int:
        """L·K — expected gene count per genome."""
        return self._n_vectors * self._block_length

    @property
    def mv_cache(self) -> MVMatchCache | None:
        """The persistent match-column cache (``None`` when disabled)."""
        return self._mv_cache

    @property
    def mv_feedback(self) -> MVCacheFeedback | None:
        """The runtime engagement monitor (``None`` when switched off)."""
        return self._mv_feedback

    @property
    def tuning(self) -> TuningProfile | None:
        """The tuning profile resolved at construction (``None`` = defaults)."""
        return self._tuning

    @property
    def mv_cache_stats(self) -> MVCacheStats:
        """Dedup and cache effectiveness counters (all zero if disabled)."""
        # `is None` checks, not truthiness: an *empty* cache is falsy
        # (``__len__`` == 0) but must still report its policy.
        cache = self._mv_cache
        feedback = self._mv_feedback
        if cache is None:
            return MVCacheStats(
                rows_total=self._mv_rows_total,
                rows_unique=self._mv_rows_unique,
                feedback=feedback.stats if feedback else None,
            )
        return MVCacheStats(
            hits=cache.hits,
            misses=cache.misses,
            evictions=cache.evictions,
            size=len(cache),
            capacity=cache.capacity,
            rows_total=self._mv_rows_total,
            rows_unique=self._mv_rows_unique,
            policy=cache.policy_name,
            warm_loaded=cache.warm_loaded,
            feedback=feedback.stats if feedback else None,
        )

    def genome_masks_batch(
        self, genomes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pack a ``(C, L·K)`` genome matrix into per-MV mask arrays.

        Returns ``(ones, zeros, n_unspecified)``; the masks are
        ``(C, L)`` for ``K <= 64`` and ``(C, L, W)`` word arrays for
        wider blocks, one vectorized pass over the whole batch.
        """
        matrix = self._genome_matrix(genomes)
        grid = matrix.reshape(-1, self._n_vectors, self._block_length)
        ones = pack_bits_to_words(grid == ONE)
        zeros = pack_bits_to_words(grid == ZERO)
        if mask_word_count(self._block_length) == 1:
            ones = ones[..., 0]
            zeros = zeros[..., 0]
        n_unspecified = (grid == DC).sum(axis=2).astype(np.int64)
        return ones, zeros, n_unspecified

    def _genome_matrix(self, genomes: np.ndarray) -> np.ndarray:
        matrix = np.asarray(genomes, dtype=np.int8)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        if matrix.ndim != 2 or matrix.shape[1] != self.genome_length:
            raise ValueError(
                f"genome batch must be (C, {self.genome_length}), "
                f"got shape {matrix.shape}"
            )
        return matrix

    def _dedup_rows(
        self, grid: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Unique MV word rows of a generation, plus the row → unique map.

        Returns ``(unique_ones, unique_zeros, keys, inverse)``:
        ``(U, W)`` word masks of the unique rows, the ``(U, …)`` key
        array whose per-row ``tobytes()`` addresses the match cache,
        and the ``(C, L)`` index of each MV row into the unique set.
        When the fused ``[ones|zeros]`` representation fits one uint64
        (``2K ≤ 64`` — includes the paper's K = 12) the dedup is a
        numeric ``np.unique`` over scalar keys, ~30× faster at
        generation sizes than the void-dtype row sort a multi-word
        ``np.unique(axis=0)`` would run; wider rows fall back to a
        lexsort-based row dedup.
        """
        n_genomes, n_vectors = grid.shape[:2]
        n_rows = n_genomes * n_vectors
        if 2 * self._block_length <= 64:
            # One packing pass builds the fused [ones|zeros] key
            # directly; the word masks are recovered for the (few)
            # cache misses by shift/mask.
            fused_bits = np.concatenate([grid == ONE, grid == ZERO], axis=2)
            fused = pack_bits_to_words(fused_bits)[..., 0].reshape(n_rows)
            unique_fused, inverse = np.unique(fused, return_inverse=True)
            shift = np.uint64(self._block_length)
            mask = np.uint64((1 << self._block_length) - 1)
            unique_ones = (unique_fused >> shift)[:, None]
            unique_zeros = (unique_fused & mask)[:, None]
            keys = unique_fused.tolist()  # plain ints: cheap dict keys
        else:
            ones_words = pack_bits_to_words(grid == ONE)  # (C, L, W)
            zeros_words = pack_bits_to_words(grid == ZERO)
            word_count = ones_words.shape[-1]
            flat_ones = ones_words.reshape(n_rows, word_count)
            flat_zeros = zeros_words.reshape(n_rows, word_count)
            rows = np.concatenate([flat_ones, flat_zeros], axis=1)
            order = np.lexsort(rows.T[::-1])
            sorted_rows = rows[order]
            new_group = np.empty(n_rows, dtype=bool)
            new_group[0] = True
            np.any(
                sorted_rows[1:] != sorted_rows[:-1], axis=1, out=new_group[1:]
            )
            inverse = np.empty(n_rows, dtype=np.int64)
            inverse[order] = np.cumsum(new_group) - 1
            unique_rows = sorted_rows[new_group]  # (U, 2W)
            unique_ones = unique_rows[:, :word_count]
            unique_zeros = unique_rows[:, word_count:]
            keys = [row.tobytes() for row in unique_rows]
        return (
            unique_ones,
            unique_zeros,
            keys,
            inverse.reshape(n_genomes, n_vectors),
        )

    def _cover_deduped(
        self,
        grid: np.ndarray,
        orders: np.ndarray,
        kernel: CoveringKernel,
        clock: _StageClock | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Frequencies and uncovered counts via the unique-MV path.

        Reshapes the generation into ``C·L`` packed MV word rows,
        dedups them, asks the kernel for match columns only on the
        cache-miss set, and reassembles per-genome coverings from the
        bit-packed columns (:func:`~repro.core.kernels.cover_packed_columns`).
        Bit-identical to the fused ``cover_grid`` path because a match
        column depends only on (MV, block table).
        """
        unique_ones, unique_zeros, keys, inverse = self._dedup_rows(grid)
        n_unique = len(keys)
        self._mv_rows_total += inverse.size
        self._mv_rows_unique += n_unique
        if clock:
            clock.mark("pack")

        cache = self._mv_cache
        packed_width = -(-self._blocks.n_distinct // 8)
        packed_columns = np.empty((n_unique, packed_width), dtype=np.uint8)
        # fetch() is one atomic lookup + gather: safe when the cache is
        # shared across threads (a concurrent insert can recycle slots
        # between a split lookup/columns_at pair).
        hit, hit_columns = cache.fetch(keys)
        if hit_columns is not None:
            packed_columns[hit] = hit_columns
        if not hit.all():
            miss = np.flatnonzero(~hit)
            columns = kernel.match_columns(
                self._prepared, unique_ones[miss], unique_zeros[miss]
            )
            fresh = pack_match_columns(columns)
            packed_columns[miss] = fresh
            cache.insert([keys[index] for index in miss], fresh)
        if self._mv_feedback is not None:
            # This batch's own hit/miss counts are the monitor's signal
            # (counted from the fetch itself, not global counter deltas,
            # which concurrent sharers would pollute).
            n_hits = int(hit.sum())
            self._mv_feedback.observe(n_hits, len(keys) - n_hits)
        if clock:
            clock.mark("match")

        if self._count_lut is None:
            self._count_lut = build_count_lut(self._blocks.counts)
        ordered_mv_index = np.take_along_axis(inverse, orders, axis=1)
        _, frequencies, uncovered = cover_packed_columns(
            self._prepared,
            packed_columns,
            ordered_mv_index,
            orders,
            want_assignment=False,
            count_lut=self._count_lut,
        )
        if clock:
            clock.mark("cover")
        return frequencies, uncovered

    def _dedup_engages(self, n_genomes: int) -> bool:
        """Whether this batch takes the unique-MV dedup path.

        Two gates compose (both semantically inert — either path is
        bit-identical): the *static* shape decision — the tuning
        profile's ``mv_dedup_min_*`` thresholds, or the module-default
        constants when no profile is active — and the *runtime*
        feedback monitor, which can veto a shape-engaged batch after
        observing sustained below-break-even hit rates and counts the
        vetoed batch toward its next re-probe.
        """
        if self._mv_cache is None:
            return False
        profile = self._tuning
        if profile is None:
            min_genomes = _MV_DEDUP_MIN_GENOMES
            min_table = _MV_DEDUP_MIN_TABLE
            min_distinct = _MV_DEDUP_MIN_DISTINCT
        else:
            min_genomes = profile.mv_dedup_min_genomes
            min_table = profile.mv_dedup_min_table
            min_distinct = profile.mv_dedup_min_distinct
        n_distinct = self._blocks.n_distinct
        if not (
            (n_genomes >= min_genomes and n_distinct >= min_table)
            or n_distinct >= min_distinct
        ):
            return False
        feedback = self._mv_feedback
        if feedback is not None and not feedback.engaged:
            feedback.tick_fused()
            return False
        return True

    def _cover_generation(
        self, matrix: np.ndarray, clock: _StageClock | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cover every genome row of a ``(C, L·K)`` matrix in one pass.

        The shared covering front half of :meth:`evaluate_batch` and
        :meth:`evaluate_objectives`: returns per-genome MV use
        ``frequencies`` ``(C, L)``, ``uncovered`` block counts ``(C,)``
        and per-MV ``n_unspecified`` counts ``(C, L)``.
        """
        n_genomes = matrix.shape[0]
        grid = matrix.reshape(n_genomes, self._n_vectors, self._block_length)
        n_unspecified = (grid == DC).sum(axis=2).astype(np.int64)
        orders = np.argsort(n_unspecified, axis=1, kind="stable")
        kernel = self._resolve_kernel(n_genomes)
        if self._dedup_engages(n_genomes):
            frequencies, uncovered = self._cover_deduped(
                grid, orders, kernel, clock
            )
        else:
            # The covering kernel consumes the trit grid with the L
            # axis pre-permuted into covering order; each kernel
            # converts to its native representation (float bit rows,
            # uint64 word lanes).
            ordered_grid = grid[np.arange(n_genomes)[:, None], orders]
            if clock:
                clock.mark("pack")
            _, frequencies, uncovered = kernel.cover_grid(
                self._prepared,
                ordered_grid,
                orders,
                want_assignment=False,
            )
            if clock:
                clock.mark("cover")
        return frequencies, uncovered, n_unspecified

    def evaluate_batch(
        self, genomes: np.ndarray, timings: dict | None = None
    ) -> np.ndarray:
        """Compression rate (%) for every genome row; one kernel pass.

        Rows whose MVs cannot cover every input block come back as
        ``invalid_fitness``.  Identical, element for element, to
        calling the single-genome path on each row.  ``timings``, if a
        dict, accumulates per-stage wall seconds (``pack`` / ``match``
        / ``cover`` / ``huffman``; the fused ``mv_cache_size=0`` path
        reports its combined kernel pass under ``cover``).
        """
        matrix = self._genome_matrix(genomes)
        n_genomes = matrix.shape[0]
        self.evaluations += n_genomes
        if n_genomes == 0:
            return np.empty(0, dtype=np.float64)
        if self._strategy is EncodingStrategy.HUFFMAN_SUBSUME:
            return np.asarray(
                [self._evaluate_with_subsumption(row) for row in matrix],
                dtype=np.float64,
            )
        clock = _StageClock(timings) if timings is not None else None
        frequencies, uncovered, n_unspecified = self._cover_generation(
            matrix, clock
        )
        rates = np.full(n_genomes, self._invalid_fitness, dtype=np.float64)
        valid = uncovered == 0
        if valid.any():
            codeword_bits = huffman_total_bits_batch(
                frequencies[valid],
                lockstep_min_rows=(
                    None
                    if self._tuning is None
                    else self._tuning.huffman_lockstep_min_rows
                ),
            )
            fill_bits = (frequencies[valid] * n_unspecified[valid]).sum(axis=1)
            compressed = codeword_bits + fill_bits
            original = self._blocks.original_bits
            rates[valid] = 100.0 * (original - compressed) / original
        if clock:
            clock.mark("huffman")
        return rates

    def evaluate_objectives(self, genomes: np.ndarray) -> np.ndarray:
        """``(C, 3)`` objective matrix: rate (%), area (bits), time (cycles).

        The multi-objective adapter: ONE covering pass (the same shared
        :meth:`_cover_generation` front half as :meth:`evaluate_batch`,
        so the MV cache, dedup path and kernels amortize across
        objectives), then vectorized decoder-model columns from the
        batched Huffman length statistics.  Column order is
        :data:`OBJECTIVE_COLUMNS`; the rate column is bit-identical to
        :meth:`evaluate_batch` on the same rows.  Rows whose MVs cannot
        cover every block come back as ``(invalid_fitness, inf, inf)``.
        """
        matrix = self._genome_matrix(genomes)
        n_genomes = matrix.shape[0]
        self.evaluations += n_genomes
        if n_genomes == 0:
            return np.empty((0, 3), dtype=np.float64)
        if self._strategy is EncodingStrategy.HUFFMAN_SUBSUME:
            raise ValueError(
                "multi-objective evaluation does not support the "
                "HUFFMAN_SUBSUME strategy (no batched decoder model for "
                "subsumption-merged tables)"
            )
        frequencies, uncovered, n_unspecified = self._cover_generation(
            matrix, None
        )
        objectives = np.empty((n_genomes, 3), dtype=np.float64)
        objectives[:, 0] = self._invalid_fitness
        objectives[:, 1:] = np.inf
        valid = uncovered == 0
        if valid.any():
            valid_freqs = frequencies[valid]
            stats = huffman_length_stats_batch(valid_freqs)
            fill_bits = (valid_freqs * n_unspecified[valid]).sum(axis=1)
            compressed = stats.total_bits + fill_bits
            original = self._blocks.original_bits
            objectives[valid, 0] = 100.0 * (original - compressed) / original
            # The fill counter sizes to the largest NU among *coded*
            # MVs (frequency > 0), as in ``decoder_model``.
            max_fills = np.where(valid_freqs > 0, n_unspecified[valid], 0).max(
                axis=1
            )
            objectives[valid, 1] = decoder_area_units_batch(
                stats.n_active,
                stats.sum_lengths,
                max_fills,
                self._block_length,
            )
            objectives[valid, 2] = test_application_cycles_batch(
                stats.total_bits,
                valid_freqs.sum(axis=1),
                self._block_length,
            )
        return objectives

    def _evaluate_with_subsumption(self, genome: np.ndarray) -> float:
        """Slower path that applies the Section 3.3 subsumption merges."""
        from .covering import cover

        mv_set = MVSet.from_genome(genome, self._block_length)
        covering = cover(self._blocks, mv_set)
        if covering.uncovered:
            return self._invalid_fitness
        table = build_encoding_table(
            mv_set, covering.frequency_map(), EncodingStrategy.HUFFMAN_SUBSUME
        )
        original = self._blocks.original_bits
        return 100.0 * (original - table.total_bits) / original


class CompressionRateFitness:
    """Callable genome → compression rate (%) for a fixed block set.

    Thin batch-of-one wrapper over :class:`BatchCompressionRateFitness`
    — kept so single-genome callers (optimizer, examples, tests) see
    the historical API and exact historical values.

    >>> blocks = BlockSet.from_string("111 000 111 111", 3)
    >>> fit = CompressionRateFitness(blocks, n_vectors=2, block_length=3)
    >>> genome = MVSet.from_strings(["111", "UUU"]).to_genome()
    >>> round(fit(genome), 1)  # 3·1 + 1·(1+3) = 7 bits vs 12
    41.7
    """

    def __init__(
        self,
        blocks: BlockSet,
        n_vectors: int,
        block_length: int,
        strategy: EncodingStrategy = EncodingStrategy.HUFFMAN,
        invalid_fitness: float = INVALID_FITNESS,
        kernel: str | CoveringKernel = AUTO_KERNEL,
        mv_cache_size: int | None = DEFAULT_MV_CACHE_SIZE,
        tuning: TuningProfile | None = None,
        mv_feedback: bool | MVCacheFeedback | None = None,
        mv_cache_policy: str | None = None,
        mv_cache_persist: bool = False,
        mv_cache_dir: Path | None = None,
        mv_cache: MVMatchCache | None = None,
    ) -> None:
        self._batch = BatchCompressionRateFitness(
            blocks,
            n_vectors,
            block_length,
            strategy,
            invalid_fitness,
            kernel,
            mv_cache_size,
            tuning,
            mv_feedback,
            mv_cache_policy=mv_cache_policy,
            mv_cache_persist=mv_cache_persist,
            mv_cache_dir=mv_cache_dir,
            mv_cache=mv_cache,
        )
        self._n_vectors = n_vectors
        self._block_length = block_length
        self.evaluations = 0

    @property
    def blocks(self) -> BlockSet:
        """The block set this fitness prices against."""
        return self._batch.blocks

    @property
    def batch(self) -> BatchCompressionRateFitness:
        """The underlying batch engine (shared with ``evaluate_batch``)."""
        return self._batch

    @property
    def kernel_name(self) -> str:
        """The resolved covering kernel's name (``auto`` if unresolved)."""
        return self._batch.kernel_name

    @property
    def mv_cache_stats(self) -> MVCacheStats:
        """The underlying batch engine's MV-cache counters."""
        return self._batch.mv_cache_stats

    def persist_mv_cache(self) -> Path | None:
        """Save the batch engine's warm MV cache (see the batch API)."""
        return self._batch.persist_mv_cache()

    def genome_masks(
        self, genome: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pack a genome into per-MV ``(ones, zeros, n_unspecified)`` arrays."""
        ones, zeros, n_unspecified = self._batch.genome_masks_batch(genome)
        return ones[0], zeros[0], n_unspecified[0]

    def __call__(self, genome: np.ndarray) -> float:
        """Compression rate achieved by the genome's matching vectors."""
        self.evaluations += 1
        return float(self._batch.evaluate_batch(genome)[0])

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        """Batched evaluation; lets the EA engine batch this fitness."""
        rates = self._batch.evaluate_batch(genomes)
        self.evaluations += rates.size
        return rates

    def evaluate_mv_set(self, mv_set: MVSet) -> float:
        """Convenience: rate for an explicit :class:`MVSet`."""
        return self(mv_set.to_genome())

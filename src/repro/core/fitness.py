"""Fitness evaluation: the compression rate of a genome's MV set.

This is the EA's inner loop.  The workhorse is
:class:`BatchCompressionRateFitness`, which prices an entire
generation of ``C`` genomes in a handful of numpy kernel calls:

1. the ``(C, L·K)`` genome matrix is packed into ``(C, L)`` mask and
   fill-count arrays in one vectorized pass (no ``MVSet`` objects);
2. a pluggable covering kernel (:mod:`repro.core.kernels` — float32
   GEMM, bit-packed uint64 lanes with block-table sharding, or the
   scalar reference; ``"auto"`` picks per workload shape) matches the
   block table against every genome's MVs at once and returns
   per-genome MV frequencies, early-exiting genomes whose MVs cannot
   cover every block;
3. :func:`repro.coding.huffman.huffman_total_bits_batch` prices all
   frequency rows with a lockstep two-queue merge (no per-genome dict
   or heap), and the fill bits are one matrix dot away.

:class:`CompressionRateFitness` keeps the historical single-genome
callable API as a thin batch-of-one wrapper, so existing callers keep
working unchanged.  For a genome whose MVs cannot cover every block
the paper assigns "a sufficiently small number"; we use a large
negative constant, far below any reachable rate.
"""

from __future__ import annotations

import numpy as np

from ..coding.huffman import huffman_total_bits_batch
from .blocks import BlockSet, mask_word_count, pack_bits_to_words
from .encoding import EncodingStrategy, build_encoding_table
from .kernels import AUTO_KERNEL, CoveringKernel, resolve_kernel
from .matching import MVSet
from .trits import DC, ONE, ZERO

__all__ = [
    "INVALID_FITNESS",
    "BatchCompressionRateFitness",
    "CompressionRateFitness",
]

INVALID_FITNESS = -1.0e6  # far below 100·(orig−comp)/orig for any valid encoding


class BatchCompressionRateFitness:
    """Price a whole generation of genomes against a fixed block set.

    ``kernel`` selects the covering kernel by registry name
    (``"auto"``, ``"gemm"``, ``"bitpack"``, ``"scalar"``) or passes a
    :class:`~repro.core.kernels.CoveringKernel` instance directly;
    ``"auto"`` resolves from the workload shape (C, D, L, K) when the
    first batch arrives.  Every kernel prices bit-identically, so the
    choice only moves the wall clock.

    >>> blocks = BlockSet.from_string("111 000 111 111", 3)
    >>> fit = BatchCompressionRateFitness(blocks, n_vectors=2, block_length=3)
    >>> genomes = MVSet.from_strings(["111", "UUU"]).to_genome()[None, :]
    >>> [round(rate, 1) for rate in fit.evaluate_batch(genomes)]
    [41.7]
    """

    def __init__(
        self,
        blocks: BlockSet,
        n_vectors: int,
        block_length: int,
        strategy: EncodingStrategy = EncodingStrategy.HUFFMAN,
        invalid_fitness: float = INVALID_FITNESS,
        kernel: str | CoveringKernel = AUTO_KERNEL,
    ) -> None:
        if blocks.block_length != block_length:
            raise ValueError(
                f"block set has K={blocks.block_length}, expected {block_length}"
            )
        if n_vectors < 1:
            raise ValueError("n_vectors must be >= 1")
        if blocks.original_bits == 0:
            raise ValueError("cannot evaluate fitness on an empty test set")
        if strategy is EncodingStrategy.FIXED:
            raise ValueError("fitness evaluation requires a frequency-based strategy")
        self._blocks = blocks
        self._n_vectors = n_vectors
        self._block_length = block_length
        self._strategy = strategy
        self._invalid_fitness = invalid_fitness
        # The kernel choice; "auto" resolves lazily on the first batch
        # (the heuristic wants the generation size C), concrete names
        # resolve and prepare the block table right away.
        self._kernel_choice = kernel
        self._kernel: CoveringKernel | None = None
        self._prepared = None
        if kernel != AUTO_KERNEL:
            self._resolve_kernel(n_genomes=1)
        self.evaluations = 0

    def _resolve_kernel(self, n_genomes: int) -> CoveringKernel:
        if self._kernel is None:
            self._kernel = resolve_kernel(
                self._kernel_choice,
                n_genomes=n_genomes,
                n_distinct=self._blocks.n_distinct,
                n_vectors=self._n_vectors,
                block_length=self._block_length,
            )
            self._prepared = self._kernel.prepare(self._blocks)
        return self._kernel

    @property
    def blocks(self) -> BlockSet:
        """The block set this fitness prices against."""
        return self._blocks

    @property
    def kernel_name(self) -> str:
        """The resolved covering kernel's name (``auto`` if unresolved)."""
        return self._kernel.name if self._kernel is not None else AUTO_KERNEL

    @property
    def genome_length(self) -> int:
        """L·K — expected gene count per genome."""
        return self._n_vectors * self._block_length

    def genome_masks_batch(
        self, genomes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pack a ``(C, L·K)`` genome matrix into per-MV mask arrays.

        Returns ``(ones, zeros, n_unspecified)``; the masks are
        ``(C, L)`` for ``K <= 64`` and ``(C, L, W)`` word arrays for
        wider blocks, one vectorized pass over the whole batch.
        """
        matrix = self._genome_matrix(genomes)
        grid = matrix.reshape(-1, self._n_vectors, self._block_length)
        ones = pack_bits_to_words(grid == ONE)
        zeros = pack_bits_to_words(grid == ZERO)
        if mask_word_count(self._block_length) == 1:
            ones = ones[..., 0]
            zeros = zeros[..., 0]
        n_unspecified = (grid == DC).sum(axis=2).astype(np.int64)
        return ones, zeros, n_unspecified

    def _genome_matrix(self, genomes: np.ndarray) -> np.ndarray:
        matrix = np.asarray(genomes, dtype=np.int8)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        if matrix.ndim != 2 or matrix.shape[1] != self.genome_length:
            raise ValueError(
                f"genome batch must be (C, {self.genome_length}), "
                f"got shape {matrix.shape}"
            )
        return matrix

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        """Compression rate (%) for every genome row; one kernel pass.

        Rows whose MVs cannot cover every input block come back as
        ``invalid_fitness``.  Identical, element for element, to
        calling the single-genome path on each row.
        """
        matrix = self._genome_matrix(genomes)
        n_genomes = matrix.shape[0]
        self.evaluations += n_genomes
        if n_genomes == 0:
            return np.empty(0, dtype=np.float64)
        if self._strategy is EncodingStrategy.HUFFMAN_SUBSUME:
            return np.asarray(
                [self._evaluate_with_subsumption(row) for row in matrix],
                dtype=np.float64,
            )
        grid = matrix.reshape(n_genomes, self._n_vectors, self._block_length)
        n_unspecified = (grid == DC).sum(axis=2).astype(np.int64)
        orders = np.argsort(n_unspecified, axis=1, kind="stable")
        # The covering kernel consumes the trit grid with the L axis
        # pre-permuted into covering order; each kernel converts to its
        # native representation (float bit rows, uint64 word lanes).
        ordered_grid = grid[np.arange(n_genomes)[:, None], orders]
        kernel = self._resolve_kernel(n_genomes)
        _, frequencies, uncovered = kernel.cover_grid(
            self._prepared,
            ordered_grid,
            orders,
            want_assignment=False,
        )
        rates = np.full(n_genomes, self._invalid_fitness, dtype=np.float64)
        valid = uncovered == 0
        if valid.any():
            codeword_bits = huffman_total_bits_batch(frequencies[valid])
            fill_bits = (frequencies[valid] * n_unspecified[valid]).sum(axis=1)
            compressed = codeword_bits + fill_bits
            original = self._blocks.original_bits
            rates[valid] = 100.0 * (original - compressed) / original
        return rates

    def _evaluate_with_subsumption(self, genome: np.ndarray) -> float:
        """Slower path that applies the Section 3.3 subsumption merges."""
        from .covering import cover

        mv_set = MVSet.from_genome(genome, self._block_length)
        covering = cover(self._blocks, mv_set)
        if covering.uncovered:
            return self._invalid_fitness
        table = build_encoding_table(
            mv_set, covering.frequency_map(), EncodingStrategy.HUFFMAN_SUBSUME
        )
        original = self._blocks.original_bits
        return 100.0 * (original - table.total_bits) / original


class CompressionRateFitness:
    """Callable genome → compression rate (%) for a fixed block set.

    Thin batch-of-one wrapper over :class:`BatchCompressionRateFitness`
    — kept so single-genome callers (optimizer, examples, tests) see
    the historical API and exact historical values.

    >>> blocks = BlockSet.from_string("111 000 111 111", 3)
    >>> fit = CompressionRateFitness(blocks, n_vectors=2, block_length=3)
    >>> genome = MVSet.from_strings(["111", "UUU"]).to_genome()
    >>> round(fit(genome), 1)  # 3·1 + 1·(1+3) = 7 bits vs 12
    41.7
    """

    def __init__(
        self,
        blocks: BlockSet,
        n_vectors: int,
        block_length: int,
        strategy: EncodingStrategy = EncodingStrategy.HUFFMAN,
        invalid_fitness: float = INVALID_FITNESS,
        kernel: str | CoveringKernel = AUTO_KERNEL,
    ) -> None:
        self._batch = BatchCompressionRateFitness(
            blocks, n_vectors, block_length, strategy, invalid_fitness, kernel
        )
        self._n_vectors = n_vectors
        self._block_length = block_length
        self.evaluations = 0

    @property
    def blocks(self) -> BlockSet:
        """The block set this fitness prices against."""
        return self._batch.blocks

    @property
    def batch(self) -> BatchCompressionRateFitness:
        """The underlying batch engine (shared with ``evaluate_batch``)."""
        return self._batch

    @property
    def kernel_name(self) -> str:
        """The resolved covering kernel's name (``auto`` if unresolved)."""
        return self._batch.kernel_name

    def genome_masks(
        self, genome: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pack a genome into per-MV ``(ones, zeros, n_unspecified)`` arrays."""
        ones, zeros, n_unspecified = self._batch.genome_masks_batch(genome)
        return ones[0], zeros[0], n_unspecified[0]

    def __call__(self, genome: np.ndarray) -> float:
        """Compression rate achieved by the genome's matching vectors."""
        self.evaluations += 1
        return float(self._batch.evaluate_batch(genome)[0])

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        """Batched evaluation; lets the EA engine batch this fitness."""
        rates = self._batch.evaluate_batch(genomes)
        self.evaluations += rates.size
        return rates

    def evaluate_mv_set(self, mv_set: MVSet) -> float:
        """Convenience: rate for an explicit :class:`MVSet`."""
        return self(mv_set.to_genome())

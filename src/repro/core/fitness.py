"""Fitness evaluation: the compression rate of a genome's MV set.

This is the EA's inner loop, so it avoids object construction: a
genome is reshaped to ``(L, K)``, packed into mask arrays with
vectorized numpy, covered via :func:`repro.core.covering.cover_masks`,
and priced with Huffman code lengths.  For a genome whose MVs cannot
cover every block the paper assigns "a sufficiently small number";
we use a large negative constant, far below any reachable rate.
"""

from __future__ import annotations

import numpy as np

from ..coding.huffman import huffman_code_lengths
from .blocks import BlockSet
from .covering import cover_masks
from .encoding import EncodingStrategy, build_encoding_table
from .matching import MVSet
from .trits import DC, ONE, ZERO

__all__ = ["INVALID_FITNESS", "CompressionRateFitness"]

INVALID_FITNESS = -1.0e6  # far below 100·(orig−comp)/orig for any valid encoding


class CompressionRateFitness:
    """Callable genome → compression rate (%) for a fixed block set.

    >>> blocks = BlockSet.from_string("111 000 111 111", 3)
    >>> fit = CompressionRateFitness(blocks, n_vectors=2, block_length=3)
    >>> genome = MVSet.from_strings(["111", "UUU"]).to_genome()
    >>> round(fit(genome), 1)  # 3·1 + 1·(1+3) = 7 bits vs 12
    41.7
    """

    def __init__(
        self,
        blocks: BlockSet,
        n_vectors: int,
        block_length: int,
        strategy: EncodingStrategy = EncodingStrategy.HUFFMAN,
        invalid_fitness: float = INVALID_FITNESS,
    ) -> None:
        if blocks.block_length != block_length:
            raise ValueError(
                f"block set has K={blocks.block_length}, expected {block_length}"
            )
        if blocks.original_bits == 0:
            raise ValueError("cannot evaluate fitness on an empty test set")
        if strategy is EncodingStrategy.FIXED:
            raise ValueError("fitness evaluation requires a frequency-based strategy")
        self._blocks = blocks
        self._n_vectors = n_vectors
        self._block_length = block_length
        self._strategy = strategy
        self._invalid_fitness = invalid_fitness
        shifts = np.arange(block_length - 1, -1, -1, dtype=np.uint64)
        self._weights = np.left_shift(np.uint64(1), shifts)
        self.evaluations = 0

    @property
    def blocks(self) -> BlockSet:
        """The block set this fitness prices against."""
        return self._blocks

    def genome_masks(
        self, genome: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pack a genome into per-MV ``(ones, zeros, n_unspecified)`` arrays."""
        grid = np.asarray(genome, dtype=np.int8).reshape(
            self._n_vectors, self._block_length
        )
        ones = ((grid == ONE) * self._weights).sum(axis=1, dtype=np.uint64)
        zeros = ((grid == ZERO) * self._weights).sum(axis=1, dtype=np.uint64)
        n_unspecified = (grid == DC).sum(axis=1).astype(np.int64)
        return ones, zeros, n_unspecified

    def __call__(self, genome: np.ndarray) -> float:
        """Compression rate achieved by the genome's matching vectors."""
        self.evaluations += 1
        if self._strategy is EncodingStrategy.HUFFMAN_SUBSUME:
            return self._evaluate_with_subsumption(genome)
        mv_ones, mv_zeros, n_unspecified = self.genome_masks(genome)
        order = np.argsort(n_unspecified, kind="stable")
        _, frequencies, uncovered = cover_masks(
            self._blocks.ones,
            self._blocks.zeros,
            self._blocks.counts,
            mv_ones,
            mv_zeros,
            order,
        )
        if uncovered:
            return self._invalid_fitness
        active = {
            int(i): int(f) for i, f in enumerate(frequencies) if f > 0
        }
        lengths = huffman_code_lengths(active)
        compressed = sum(
            frequency * (lengths[index] + int(n_unspecified[index]))
            for index, frequency in active.items()
        )
        original = self._blocks.original_bits
        return 100.0 * (original - compressed) / original

    def _evaluate_with_subsumption(self, genome: np.ndarray) -> float:
        """Slower path that applies the Section 3.3 subsumption merges."""
        from .covering import cover

        mv_set = MVSet.from_genome(genome, self._block_length)
        covering = cover(self._blocks, mv_set)
        if covering.uncovered:
            return self._invalid_fitness
        table = build_encoding_table(
            mv_set, covering.frequency_map(), EncodingStrategy.HUFFMAN_SUBSUME
        )
        original = self._blocks.original_bits
        return 100.0 * (original - table.total_bits) / original

    def evaluate_mv_set(self, mv_set: MVSet) -> float:
        """Convenience: rate for an explicit :class:`MVSet`."""
        return self(mv_set.to_genome())

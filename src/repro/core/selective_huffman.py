"""Selective Huffman coding (Jas/Ghosh-Dastidar/Touba — ref [2]).

The statistical-coding ancestor of the paper's method: split the test
set into fixed K-bit blocks (don't-cares filled), Huffman-code only
the ``N`` most frequent distinct blocks, and escape every other block
as a raw literal:

* coded block   → ``1`` + Huffman codeword of the block pattern,
* uncoded block → ``0`` + the K raw bits.

Keeping ``N`` small keeps the decoder tiny (the original paper's
argument); the matching-vector formulation subsumes this scheme —
a fully-specified MV per frequent block plus the all-U escape — which
is why it makes a natural extra baseline for the comparison benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..coding.huffman import huffman_code
from .blocks import WORD_BITS, BlockSet, words_to_int
from .compressor import compression_rate

__all__ = ["SelectiveHuffmanResult", "compress_selective_huffman"]


@dataclass(frozen=True)
class SelectiveHuffmanResult:
    """Outcome of selective Huffman coding on one block set.

    ``coded_patterns`` maps the coded block bit-patterns (as ints) to
    their codewords; blocks outside the map were escaped raw.
    """

    block_length: int
    n_coded: int
    original_bits: int
    compressed_bits: int
    coded_patterns: dict[int, str]
    escaped_blocks: int

    @property
    def rate(self) -> float:
        """Compression rate in percent (paper definition)."""
        return compression_rate(self.original_bits, self.compressed_bits)


def _filled_block_values(blocks: BlockSet, fill_default: int) -> np.ndarray:
    """Distinct-block bit patterns with X positions filled.

    Returns ``(D, W)`` uint64 word arrays (one word per row for
    ``K <= 64``) so arbitrary block lengths work.
    """
    if fill_default not in (0, 1):
        raise ValueError("fill_default must be 0 or 1")
    ones = blocks.ones_words
    zeros = blocks.zeros_words
    # Per-word full masks: all words saturated except the top word,
    # which only carries K mod 64 bits (when K is not a multiple).
    full = np.full(blocks.word_count, ~np.uint64(0), dtype=np.uint64)
    top_bits = blocks.block_length - (blocks.word_count - 1) * WORD_BITS
    if top_bits < WORD_BITS:
        full[-1] = np.uint64((1 << top_bits) - 1)
    unspecified = full & ~(ones | zeros)
    if fill_default:
        return ones | unspecified
    return ones.copy()


def compress_selective_huffman(
    blocks: BlockSet,
    n_coded: int = 8,
    fill_default: int = 0,
) -> SelectiveHuffmanResult:
    """Selective Huffman coding with ``n_coded`` coded patterns.

    Blocks are made fully specified (X → ``fill_default``) first —
    the original scheme codes concrete vectors, not cubes.

    >>> blocks = BlockSet.from_string("1100" * 7 + "0110", 4)
    >>> result = compress_selective_huffman(blocks, n_coded=1)
    >>> result.rate > 0
    True
    """
    if n_coded < 1:
        raise ValueError("must code at least one pattern")
    if blocks.n_blocks == 0:
        raise ValueError("cannot compress an empty block set")

    values = _filled_block_values(blocks, fill_default)
    # Aggregate counts by *filled* pattern (distinct cubes may collapse);
    # word rows rebuild into arbitrary-precision pattern ints.
    totals: dict[int, int] = {}
    for row, count in zip(values.tolist(), blocks.counts.tolist()):
        value = words_to_int(row)
        totals[value] = totals.get(value, 0) + count
    ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    selected = dict(ranked[:n_coded])

    code = huffman_code(selected)
    coded_patterns = {
        pattern: code.codeword(pattern) for pattern in selected
    }
    compressed = 0
    escaped_blocks = 0
    for pattern, count in totals.items():
        if pattern in coded_patterns:
            compressed += count * (1 + len(coded_patterns[pattern]))
        else:
            compressed += count * (1 + blocks.block_length)
            escaped_blocks += count
    return SelectiveHuffmanResult(
        block_length=blocks.block_length,
        n_coded=len(coded_patterns),
        original_bits=blocks.original_bits,
        compressed_bits=compressed,
        coded_patterns=coded_patterns,
        escaped_blocks=escaped_blocks,
    )

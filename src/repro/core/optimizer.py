"""EA-driven matching-vector optimization (paper Section 3.1 / 4).

:class:`EAMVOptimizer` runs the evolutionary engine over MV-set
genomes for a given block set and configuration.  Following the
paper's experimental protocol it performs several independent runs
(default 5) and reports both the mean achieved compression rate (the
'EA' columns of Tables 1 and 2) and the best run (input to the
'EA-Best' column).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ea.engine import EAResult, EvolutionaryEngine
from .blocks import BlockSet
from .compressor import CompressedTestSet, compress_blocks
from .config import CompressionConfig
from .fitness import BatchCompressionRateFitness
from .matching import MVSet
from .nine_c import nine_c_mv_set
from .trits import DC

__all__ = ["RunOutcome", "OptimizationResult", "EAMVOptimizer", "optimize_mv_set"]


@dataclass(frozen=True)
class RunOutcome:
    """One independent EA run: its best MV set and achieved rate."""

    run_index: int
    mv_set: MVSet
    rate: float
    ea_result: EAResult = field(repr=False)


@dataclass(frozen=True)
class OptimizationResult:
    """Aggregate of all runs for one (test set, configuration) pair."""

    config: CompressionConfig
    runs: tuple[RunOutcome, ...]

    @property
    def mean_rate(self) -> float:
        """Average compression rate over runs (the paper's 'EA' value)."""
        return float(np.mean([run.rate for run in self.runs]))

    @property
    def best_run(self) -> RunOutcome:
        """The run with the highest compression rate."""
        return max(self.runs, key=lambda run: run.rate)

    @property
    def best_rate(self) -> float:
        """Best rate over runs."""
        return self.best_run.rate

    @property
    def best_mv_set(self) -> MVSet:
        """MV set of the best run."""
        return self.best_run.mv_set

    @property
    def total_evaluations(self) -> int:
        """Fitness evaluations spent across all runs."""
        return sum(run.ea_result.evaluations for run in self.runs)


class EAMVOptimizer:
    """Search for ``L`` matching vectors maximizing the compression rate.

    Parameters
    ----------
    config:
        Block length ``K``, vector count ``L``, encoding strategy, EA
        parameters and run count.
    seed:
        Master seed; run ``r`` uses an RNG stream derived from
        ``(seed, r)``, so results are reproducible and runs are
        independent.
    """

    def __init__(self, config: CompressionConfig | None = None, seed: int | None = None) -> None:
        self._config = config or CompressionConfig()
        self._seed_sequence = np.random.SeedSequence(seed)

    @property
    def config(self) -> CompressionConfig:
        """The configuration this optimizer runs with."""
        return self._config

    def _repair(self, genome: np.ndarray) -> np.ndarray:
        """Pin the last MV slot to all-U so covering can never fail."""
        repaired = genome.copy()
        repaired[-self._config.block_length :] = DC
        return repaired

    def _seed_genomes(self, rng: np.random.Generator) -> list[np.ndarray]:
        """Optional 9C-seeded individual for the initial population."""
        config = self._config
        if not config.ea.seed_nine_c:
            return []
        if config.block_length % 2 or config.n_vectors < 9:
            raise ValueError(
                "seeding 9C requires an even K and at least 9 matching vectors"
            )
        genome = rng.integers(0, 3, size=config.genome_length, dtype=np.int8)
        nine = nine_c_mv_set(config.block_length).to_genome()
        genome[: nine.size] = nine
        return [genome]

    def optimize(self, blocks: BlockSet) -> OptimizationResult:
        """Run the configured number of independent EA searches."""
        config = self._config
        child_seeds = self._seed_sequence.spawn(config.runs)
        outcomes = []
        for run_index, child_seed in enumerate(child_seeds):
            rng = np.random.default_rng(child_seed)
            fitness = BatchCompressionRateFitness(
                blocks,
                n_vectors=config.n_vectors,
                block_length=config.block_length,
                strategy=config.strategy,
            )
            engine = EvolutionaryEngine(
                fitness=fitness,
                genome_length=config.genome_length,
                params=config.ea,
                seed=rng.integers(0, 2**63 - 1),
                repair=self._repair if config.ea.include_all_u else None,
                initial_genomes=self._seed_genomes(rng),
            )
            result = engine.run()
            mv_set = MVSet.from_genome(result.best_genome, config.block_length)
            outcomes.append(
                RunOutcome(
                    run_index=run_index,
                    mv_set=mv_set,
                    rate=result.best_fitness,
                    ea_result=result,
                )
            )
        return OptimizationResult(config=config, runs=tuple(outcomes))

    def compress_best(self, blocks: BlockSet) -> CompressedTestSet:
        """Optimize, then materialize the best run's compressed stream."""
        result = self.optimize(blocks)
        return compress_blocks(
            blocks,
            result.best_mv_set,
            self._config.strategy,
            fill_default=self._config.fill_default,
        )


def optimize_mv_set(
    blocks: BlockSet,
    config: CompressionConfig | None = None,
    seed: int | None = None,
) -> OptimizationResult:
    """Functional convenience wrapper around :class:`EAMVOptimizer`."""
    return EAMVOptimizer(config, seed).optimize(blocks)

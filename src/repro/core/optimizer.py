"""EA-driven matching-vector optimization (paper Section 3.1 / 4).

:class:`EAMVOptimizer` runs the evolutionary engine over MV-set
genomes for a given block set and configuration.  Following the
paper's experimental protocol it performs several independent runs
(default 5) and reports both the mean achieved compression rate (the
'EA' columns of Tables 1 and 2) and the best run (input to the
'EA-Best' column).

Parallel architecture
---------------------
The independent runs are the paper's natural fan-out axis, so the
optimizer builds one picklable :class:`RunTask` per run up front —
each carrying its own :class:`numpy.random.SeedSequence` child — and
submits them through an :class:`repro.parallel.ExecutionBackend`
(serial by default).  :func:`execute_run_task` is the module-level
work unit, so callers like :mod:`repro.experiments.runner` can flatten
several optimizers' tasks (e.g. every run of every K/L grid point of a
table row) into one backend submission.  Because every task is
self-seeded and results are reassembled in run-index order, a given
``(seed, blocks, config)`` produces bit-identical results on every
backend and at every job count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ea.engine import EAResult, EvolutionaryEngine
from ..parallel import (
    ExecutionBackend,
    FaultToleranceStats,
    RetryPolicy,
    SerialBackend,
)
from .blocks import BlockSet
from .compressor import CompressedTestSet, compress_blocks
from .config import CompressionConfig
from .fitness import BatchCompressionRateFitness, MVMatchCache
from .matching import MVSet
from .nine_c import nine_c_mv_set
from .trits import DC

__all__ = [
    "RunOutcome",
    "OptimizationResult",
    "RunTask",
    "execute_run_task",
    "EAMVOptimizer",
    "optimize_mv_set",
]


@dataclass(frozen=True)
class RunOutcome:
    """One independent EA run: its best MV set and achieved rate."""

    run_index: int
    mv_set: MVSet
    rate: float
    ea_result: EAResult = field(repr=False)


@dataclass(frozen=True)
class OptimizationResult:
    """Aggregate of all runs for one (test set, configuration) pair."""

    config: CompressionConfig
    runs: tuple[RunOutcome, ...]

    @property
    def mean_rate(self) -> float:
        """Average compression rate over runs (the paper's 'EA' value)."""
        return float(np.mean([run.rate for run in self.runs]))

    @property
    def best_run(self) -> RunOutcome:
        """The run with the highest compression rate."""
        return max(self.runs, key=lambda run: run.rate)

    @property
    def best_rate(self) -> float:
        """Best rate over runs."""
        return self.best_run.rate

    @property
    def best_mv_set(self) -> MVSet:
        """MV set of the best run."""
        return self.best_run.mv_set

    @property
    def total_evaluations(self) -> int:
        """Fitness evaluations spent across all runs."""
        return sum(run.ea_result.evaluations for run in self.runs)


@dataclass(frozen=True)
class RunTask:
    """One independent EA run as a picklable, self-seeded work unit.

    Everything a worker needs travels with the task: the block set,
    the full configuration, and a dedicated seed-sequence child, so
    executing the task is a pure function of its fields — the property
    the serial-vs-parallel parity tests rely on.
    """

    run_index: int
    blocks: BlockSet
    config: CompressionConfig
    seed_sequence: np.random.SeedSequence


class _PinAllU:
    """Repair callable pinning the last MV slot to all-U (picklable)."""

    def __init__(self, block_length: int) -> None:
        self._block_length = block_length

    def __call__(self, genome: np.ndarray) -> np.ndarray:
        repaired = genome.copy()
        repaired[-self._block_length :] = DC
        return repaired


def _seed_genomes(
    config: CompressionConfig, rng: np.random.Generator
) -> list[np.ndarray]:
    """Optional 9C-seeded individual for the initial population."""
    if not config.ea.seed_nine_c:
        return []
    if config.block_length % 2 or config.n_vectors < 9:
        raise ValueError(
            "seeding 9C requires an even K and at least 9 matching vectors"
        )
    genome = rng.integers(0, 3, size=config.genome_length, dtype=np.int8)
    nine = nine_c_mv_set(config.block_length).to_genome()
    genome[: nine.size] = nine
    return [genome]


def execute_run_task(
    task: RunTask, mv_cache: "MVMatchCache | None" = None
) -> RunOutcome:
    """Run one independent EA search — the backend work unit.

    Module-level (hence picklable for :class:`ProcessBackend`) and
    deterministic: the outcome depends only on the task's fields,
    never on global state, worker identity, or completion order.

    ``mv_cache`` optionally injects a shared (thread-safe) match-column
    cache instead of the per-run one the config would build — the serve
    daemon's warm-state path.  Semantically inert: a warmer cache can
    only skip kernel work, so the outcome is byte-identical with or
    without it (thread backends only; a lock-bearing cache cannot
    cross a process boundary).
    """
    config = task.config
    rng = np.random.default_rng(task.seed_sequence)
    fitness = BatchCompressionRateFitness(
        task.blocks,
        n_vectors=config.n_vectors,
        block_length=config.block_length,
        strategy=config.strategy,
        kernel=config.kernel,
        mv_cache_size=config.mv_cache_size,
        mv_cache=mv_cache,
        # The profile rides in the config so process workers (which
        # never inherit the CLI's process-wide active profile) tune
        # identically to the serial path; likewise the cache policy
        # and persistence flag, so a ProcessBackend run warms from and
        # refreshes the same persisted caches as a serial one.
        tuning=config.tuning,
        mv_feedback=config.mv_feedback,
        mv_cache_policy=config.mv_cache_policy,
        mv_cache_persist=config.mv_cache_persist,
    )
    engine = EvolutionaryEngine(
        fitness=fitness,
        genome_length=config.genome_length,
        params=config.ea,
        seed=rng.integers(0, 2**63 - 1),
        repair=_PinAllU(config.block_length) if config.ea.include_all_u else None,
        initial_genomes=_seed_genomes(config, rng),
    )
    result = engine.run()
    if config.mv_cache_persist:
        # Refresh the persisted cache with this run's warm state; the
        # atomic rename makes concurrent runs of one sweep race
        # harmlessly (last complete file wins, results unaffected).
        fitness.persist_mv_cache()
    return RunOutcome(
        run_index=task.run_index,
        mv_set=MVSet.from_genome(result.best_genome, config.block_length),
        rate=result.best_fitness,
        ea_result=result,
    )


class EAMVOptimizer:
    """Search for ``L`` matching vectors maximizing the compression rate.

    Parameters
    ----------
    config:
        Block length ``K``, vector count ``L``, encoding strategy, EA
        parameters and run count.
    seed:
        Master seed (``int``) or an already-spawned
        :class:`~numpy.random.SeedSequence` child; run ``r`` uses the
        ``r``-th spawned child stream, so results are reproducible and
        runs are independent — regardless of execution backend.
    backend:
        Where the independent runs execute; default
        :class:`~repro.parallel.SerialBackend`.  Results are
        reassembled in run-index order, so the backend never changes
        the outcome, only the wall clock.
    """

    def __init__(
        self,
        config: CompressionConfig | None = None,
        seed: int | np.random.SeedSequence | None = None,
        backend: ExecutionBackend | None = None,
    ) -> None:
        self._config = config or CompressionConfig()
        self._seed_sequence = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        # Spawned once and cached: SeedSequence.spawn advances spawn
        # state, so caching keeps build_run_tasks/optimize idempotent
        # — building tasks never perturbs a later optimize().
        self._run_seeds: tuple[np.random.SeedSequence, ...] | None = None
        self._backend = backend or SerialBackend()

    @property
    def config(self) -> CompressionConfig:
        """The configuration this optimizer runs with."""
        return self._config

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend runs are submitted through."""
        return self._backend

    def build_run_tasks(self, blocks: BlockSet) -> tuple[RunTask, ...]:
        """The independent runs as self-seeded work units.

        Exposed so higher layers (the experiment runner's K/L grid,
        ablation sweeps) can flatten many optimizers' runs into one
        backend submission; plain :meth:`optimize` is equivalent to
        executing these tasks and assembling the outcomes.  The per-run
        seed children are spawned once per optimizer, so repeated calls
        (or building tasks before calling :meth:`optimize`) always
        describe the same runs.
        """
        config = self._config
        if self._run_seeds is None:
            self._run_seeds = tuple(self._seed_sequence.spawn(config.runs))
        return tuple(
            RunTask(
                run_index=run_index,
                blocks=blocks,
                config=config,
                seed_sequence=child,
            )
            for run_index, child in enumerate(self._run_seeds)
        )

    def optimize(
        self,
        blocks: BlockSet,
        *,
        retry: "RetryPolicy | None" = None,
        timeout: float | None = None,
        stats: "FaultToleranceStats | None" = None,
    ) -> OptimizationResult:
        """Run the configured number of independent EA searches.

        ``retry``/``timeout``/``stats`` engage the backend's
        fault-tolerance layer (see :mod:`repro.parallel.retry`); they
        are forwarded only when set, so duck-typed backends with the
        bare ``map`` signature keep working.  Because every task is
        self-seeded, retried runs return bit-identical outcomes.
        """
        map_kwargs: dict = {}
        if retry is not None:
            map_kwargs["retry"] = retry
        if timeout is not None:
            map_kwargs["timeout"] = timeout
        if stats is not None:
            map_kwargs["stats"] = stats
        outcomes = self._backend.map(
            execute_run_task, self.build_run_tasks(blocks), **map_kwargs
        )
        return OptimizationResult(config=self._config, runs=tuple(outcomes))

    def compress_best(self, blocks: BlockSet) -> CompressedTestSet:
        """Optimize, then materialize the best run's compressed stream."""
        result = self.optimize(blocks)
        return compress_blocks(
            blocks,
            result.best_mv_set,
            self._config.strategy,
            fill_default=self._config.fill_default,
        )


def optimize_mv_set(
    blocks: BlockSet,
    config: CompressionConfig | None = None,
    seed: int | np.random.SeedSequence | None = None,
    backend: ExecutionBackend | None = None,
) -> OptimizationResult:
    """Functional convenience wrapper around :class:`EAMVOptimizer`."""
    return EAMVOptimizer(config, seed, backend).optimize(blocks)

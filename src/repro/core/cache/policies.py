"""Pluggable eviction policies behind :class:`repro.core.fitness.MVMatchCache`.

The MV match-column cache is semantically inert — an eviction can only
cost a recomputation, never change a result — so *which* entries a
full cache keeps is purely a wall-clock decision.  This module factors
that decision out of the cache: an :class:`EvictionPolicy` owns the
key → slot mapping of one cache and answers two questions — "where is
this key?" (:meth:`EvictionPolicy.lookup`, recording the access) and
"which slot does a new key get?" (:meth:`EvictionPolicy.claim`,
evicting a victim when no free slot remains).  The slot *store* (the
preallocated packed-column array), the hit/miss/eviction counters and
the batch API stay with the cache itself, so every policy prices
byte-identically and only the retention pattern differs.

Four policies ship:

* ``lru`` — least recently used; the historical behavior and the
  default.  Best when the EA's working set drifts slowly (convergent
  populations revisit their parents' MVs).
* ``lfu`` — least frequently used with LRU tie-breaking inside each
  frequency class (the classic O(1) frequency-bucket scheme).  Keeps
  long-lived hot MVs (the all-U row, popular parents) through scan
  bursts that would flush an LRU.
* ``2q`` — the simplified 2Q of Johnson & Shasha: new keys enter a
  FIFO probation queue (≈¼ capacity), re-accessed keys promote to the
  protected LRU main queue, and a ghost list of recently evicted
  probation keys (≈½ capacity, keys only — no columns) fast-tracks
  readmitted keys straight to the main queue.  Scan-resistant: a
  one-shot sweep of cold MVs cycles through probation without
  touching the protected set.
* ``segmented`` — frequency-segmented LRU (SLRU): a probationary and
  a protected LRU segment (protected ≈½ capacity); first touch lands
  in probation, a second promotes, protected overflow demotes back to
  probation's hot end.  Victims always come from probation first.

All four are exercised by the byte-parity suites in
``tests/core/test_mv_cache.py`` — same seeded results, entry for
entry, as the fused no-cache path.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Iterator

__all__ = [
    "DEFAULT_POLICY",
    "POLICY_CHOICES",
    "EvictionPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "TwoQueuePolicy",
    "SegmentedPolicy",
    "make_policy",
]


class EvictionPolicy(abc.ABC):
    """Key → slot bookkeeping of one bounded cache.

    Subclasses own the retention order; the shared base owns the free
    slot pool and the claim protocol.  ``capacity`` is the number of
    slots (matching the cache's preallocated store rows).
    """

    name: str = "abstract"

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        # Popped from the end: slot 0 is handed out first, matching
        # the historical allocation order.
        self._free: list[int] = list(range(capacity - 1, -1, -1))

    @property
    def capacity(self) -> int:
        """Maximum number of retained keys."""
        return self._capacity

    # -- access protocol ----------------------------------------------

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of keys currently retained."""

    @abc.abstractmethod
    def __contains__(self, key) -> bool:
        """Whether ``key`` is retained (no access recorded)."""

    @abc.abstractmethod
    def lookup(self, key) -> int | None:
        """The slot of ``key`` (``None`` if absent), recording the access."""

    def claim(self, key) -> tuple[int, bool]:
        """The slot for a new ``key``; ``(slot, evicted_existing)``.

        ``key`` must be absent.  A free slot is preferred; otherwise
        the policy's victim is dropped and its slot recycled.
        """
        if self._free:
            slot = self._free.pop()
            evicted = False
        else:
            slot = self._evict()
            evicted = True
        self._admit(key, slot)
        return slot, evicted

    @abc.abstractmethod
    def _admit(self, key, slot: int) -> None:
        """Record a new ``key`` at ``slot`` (key known absent)."""

    @abc.abstractmethod
    def _evict(self) -> int:
        """Drop the policy's victim key; return its freed slot."""

    @abc.abstractmethod
    def items(self) -> Iterator[tuple]:
        """``(key, slot)`` pairs, coldest first.

        The persistence order: replaying ``items()`` through a fresh
        cache's inserts reproduces the retention priority, and under a
        *smaller* capacity the coldest entries are the ones evicted.
        """


class LRUPolicy(EvictionPolicy):
    """Least recently used — the historical default."""

    name = "lru"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def lookup(self, key) -> int | None:
        slot = self._entries.get(key)
        if slot is not None:
            self._entries.move_to_end(key)
        return slot

    def _admit(self, key, slot: int) -> None:
        self._entries[key] = slot

    def _evict(self) -> int:
        _, slot = self._entries.popitem(last=False)
        return slot

    def items(self) -> Iterator[tuple]:
        return iter(self._entries.items())


class LFUPolicy(EvictionPolicy):
    """Least frequently used, LRU tie-break within a frequency class.

    O(1) per operation via frequency buckets: ``_buckets[f]`` is the
    insertion-ordered set of keys accessed exactly ``f`` times, and
    the victim is the least recent key of the lowest populated
    frequency.
    """

    name = "lfu"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._entries: dict = {}  # key -> (slot, frequency)
        self._buckets: dict[int, OrderedDict] = {}
        self._min_frequency = 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def _bump(self, key, slot: int, frequency: int) -> None:
        bucket = self._buckets[frequency]
        del bucket[key]
        if not bucket:
            del self._buckets[frequency]
            if self._min_frequency == frequency:
                self._min_frequency = frequency + 1
        self._entries[key] = (slot, frequency + 1)
        self._buckets.setdefault(frequency + 1, OrderedDict())[key] = None

    def lookup(self, key) -> int | None:
        entry = self._entries.get(key)
        if entry is None:
            return None
        slot, frequency = entry
        self._bump(key, slot, frequency)
        return slot

    def _admit(self, key, slot: int) -> None:
        self._entries[key] = (slot, 1)
        self._buckets.setdefault(1, OrderedDict())[key] = None
        self._min_frequency = 1

    def _evict(self) -> int:
        while self._min_frequency not in self._buckets:
            self._min_frequency += 1
        bucket = self._buckets[self._min_frequency]
        key, _ = bucket.popitem(last=False)
        if not bucket:
            del self._buckets[self._min_frequency]
        slot, _ = self._entries.pop(key)
        return slot

    def items(self) -> Iterator[tuple]:
        for frequency in sorted(self._buckets):
            for key in self._buckets[frequency]:
                yield key, self._entries[key][0]


class TwoQueuePolicy(EvictionPolicy):
    """Simplified 2Q: FIFO probation + LRU main + ghost readmission."""

    name = "2q"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._in_target = max(1, capacity // 4)  # probation size target
        self._ghost_capacity = max(1, capacity // 2)
        self._probation: OrderedDict = OrderedDict()  # FIFO, key -> slot
        self._main: OrderedDict = OrderedDict()  # LRU, key -> slot
        self._ghost: OrderedDict = OrderedDict()  # keys only, no columns

    def __len__(self) -> int:
        return len(self._probation) + len(self._main)

    def __contains__(self, key) -> bool:
        return key in self._probation or key in self._main

    def lookup(self, key) -> int | None:
        slot = self._main.get(key)
        if slot is not None:
            self._main.move_to_end(key)
            return slot
        slot = self._probation.get(key)
        if slot is not None:
            # A second access while on probation proves the key hot.
            del self._probation[key]
            self._main[key] = slot
            return slot
        return None

    def _admit(self, key, slot: int) -> None:
        if key in self._ghost:
            del self._ghost[key]
            self._main[key] = slot
        else:
            self._probation[key] = slot

    def _evict(self) -> int:
        if self._probation and (
            len(self._probation) >= self._in_target or not self._main
        ):
            key, slot = self._probation.popitem(last=False)
            self._ghost[key] = None
            while len(self._ghost) > self._ghost_capacity:
                self._ghost.popitem(last=False)
        else:
            _, slot = self._main.popitem(last=False)
        return slot

    def items(self) -> Iterator[tuple]:
        yield from self._probation.items()
        yield from self._main.items()


class SegmentedPolicy(EvictionPolicy):
    """Frequency-segmented LRU (SLRU): probation + protected segments."""

    name = "segmented"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._protected_capacity = max(1, capacity // 2)
        self._probation: OrderedDict = OrderedDict()  # key -> slot, LRU
        self._protected: OrderedDict = OrderedDict()  # key -> slot, LRU

    def __len__(self) -> int:
        return len(self._probation) + len(self._protected)

    def __contains__(self, key) -> bool:
        return key in self._probation or key in self._protected

    def lookup(self, key) -> int | None:
        slot = self._protected.get(key)
        if slot is not None:
            self._protected.move_to_end(key)
            return slot
        slot = self._probation.get(key)
        if slot is not None:
            del self._probation[key]
            self._protected[key] = slot
            if len(self._protected) > self._protected_capacity:
                # Demote the protected LRU to probation's hot end —
                # it keeps its slot, only its eviction priority drops.
                demoted, demoted_slot = self._protected.popitem(last=False)
                self._probation[demoted] = demoted_slot
            return slot
        return None

    def _admit(self, key, slot: int) -> None:
        self._probation[key] = slot

    def _evict(self) -> int:
        if self._probation:
            _, slot = self._probation.popitem(last=False)
        else:
            _, slot = self._protected.popitem(last=False)
        return slot

    def items(self) -> Iterator[tuple]:
        yield from self._probation.items()
        yield from self._protected.items()


_POLICIES = {
    policy.name: policy
    for policy in (LRUPolicy, LFUPolicy, TwoQueuePolicy, SegmentedPolicy)
}

POLICY_CHOICES: tuple[str, ...] = tuple(_POLICIES)
DEFAULT_POLICY = LRUPolicy.name


def make_policy(policy: str, capacity: int) -> EvictionPolicy:
    """Instantiate the named eviction policy at the given capacity."""
    try:
        policy_class = _POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {policy!r}; "
            f"choose one of: {', '.join(POLICY_CHOICES)}"
        ) from None
    return policy_class(capacity)

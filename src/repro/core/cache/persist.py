"""On-disk persistence of MV match-column caches.

A warm MV cache is pure wall-clock state: match columns depend only on
(MV, block table), so a column computed by yesterday's run over the
same circuit is exactly as valid today.  This module saves a cache's
packed slot array + keys to ``$REPRO_CACHE_DIR/mv_cache/`` and loads
it back on the next run, keyed by

    (block-table digest, kernel name, block length K, format version)

so a file can only ever be replayed against the exact distinct-block
table it was computed from.  The failure contract is asymmetric by
design: a corrupt, truncated, version-mismatched or wrong-table file
is discarded with a warning — the cost is a cold start, never a wrong
rate.  Writes go through :func:`repro.io_utils.atomic_write_bytes`
(temp file + ``os.replace``), so concurrent writers of the same key —
e.g. the independent EA runs of one ``ProcessBackend`` sweep — race
harmlessly: the last rename wins and every load observes one complete
file.

File format (documented in ``docs/cache-format.md``): a ``.npz``
archive (``allow_pickle=False`` on load) with

* ``meta`` — a JSON string (0-d unicode array) carrying format tag,
  version, table digest, kernel, K, column width and entry count;
* ``columns`` — ``(N, ⌈D/8⌉)`` uint8 bit-packed match columns,
  coldest entry first (the eviction-priority order exported by the
  cache's policy), so a load into a *smaller* cache keeps the hottest
  entries;
* ``keys_int`` — ``(N,)`` uint64 fused ``[ones|zeros]`` keys
  (``2K <= 64``), or ``keys_bytes`` — ``(N, key_bytes)`` uint8 rows
  whose ``tobytes()`` are the cache keys (wide blocks).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zipfile
from pathlib import Path

import numpy as np

from ...io_utils import atomic_write_bytes

__all__ = [
    "CACHE_FORMAT",
    "CACHE_VERSION",
    "block_table_digest",
    "cache_file_name",
    "cache_file_path",
    "describe_cache_file",
    "load_mv_cache",
    "mv_cache_dir",
    "save_mv_cache",
]

CACHE_FORMAT = "repro-mv-cache"
CACHE_VERSION = 1


def mv_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR/mv_cache`` (default ``~/.cache/repro/mv_cache``)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    base = Path(root) if root else Path.home() / ".cache" / "repro"
    return base / "mv_cache"


def block_table_digest(blocks) -> str:
    """SHA-256 content digest of a block set (dtype/shape-qualified).

    The same recipe the checkpoint journal uses for its run
    fingerprints: K and original bit count, then every distinct-table
    array with its dtype and shape, so two tables collide only if they
    are byte-identical in every semantic respect.
    """
    digest = hashlib.sha256()
    digest.update(
        f"K={blocks.block_length};bits={blocks.original_bits};".encode()
    )
    for name in ("ones", "zeros", "counts", "sequence"):
        array = np.ascontiguousarray(getattr(blocks, name))
        digest.update(f"{name}:{array.dtype}:{array.shape}:".encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def cache_file_name(digest: str, kernel: str, block_length: int) -> str:
    """File name for one cache key (digest prefix keeps names short)."""
    return f"{digest[:16]}-{kernel}-K{block_length}-v{CACHE_VERSION}.npz"


def cache_file_path(
    digest: str, kernel: str, block_length: int, directory: Path | None = None
) -> Path:
    """Full path of one cache key's file under the cache directory."""
    base = Path(directory) if directory is not None else mv_cache_dir()
    return base / cache_file_name(digest, kernel, block_length)


def _encode_keys(keys: list) -> tuple[str, np.ndarray]:
    """Keys as one homogeneous array: uint64 scalars or uint8 byte rows.

    Plain byte-string dtypes (``S``) are unusable here — numpy strips
    trailing NUL bytes on round-trip, and packed-word keys end in NULs
    routinely — so bytes keys are stored as fixed-width uint8 rows.
    """
    if isinstance(keys[0], bytes):
        width = len(keys[0])
        rows = np.frombuffer(b"".join(keys), dtype=np.uint8)
        return "keys_bytes", rows.reshape(len(keys), width)
    return "keys_int", np.asarray(keys, dtype=np.uint64)


def save_mv_cache(
    cache,
    digest: str,
    kernel: str,
    block_length: int,
    directory: Path | None = None,
) -> Path | None:
    """Persist ``cache`` for (``digest``, ``kernel``, ``block_length``).

    Returns the written path, or ``None`` when the cache holds nothing
    (an empty file would buy the next run nothing).  The write is
    atomic; concurrent savers of the same key leave whichever complete
    file renamed last.
    """
    keys, columns = cache.export_state()
    if not keys:
        return None
    key_field, key_array = _encode_keys(keys)
    meta = json.dumps(
        {
            "format": CACHE_FORMAT,
            "version": CACHE_VERSION,
            "digest": digest,
            "kernel": kernel,
            "block_length": int(block_length),
            "column_width": int(columns.shape[1]),
            "entries": len(keys),
            "policy": cache.policy_name,
        }
    )
    buffer = io.BytesIO()
    np.savez(
        buffer,
        meta=np.asarray(meta),
        columns=columns,
        **{key_field: key_array},
    )
    path = cache_file_path(digest, kernel, block_length, directory)
    return atomic_write_bytes(path, buffer.getvalue())


def _decode_keys(archive) -> list:
    if "keys_int" in archive:
        return [int(value) for value in archive["keys_int"]]
    rows = np.ascontiguousarray(archive["keys_bytes"], dtype=np.uint8)
    return [bytes(row.tobytes()) for row in rows]


def load_mv_cache(
    cache,
    digest: str,
    kernel: str,
    block_length: int,
    column_width: int,
    directory: Path | None = None,
    warn=None,
) -> int:
    """Warm ``cache`` from the persisted file for this key, if valid.

    Returns the number of entries loaded (0 on a cold start).  Any
    defect — unreadable file, truncated archive, foreign format,
    version/digest/width mismatch — discards the file with a ``warn``
    message and leaves the cache cold; persistence can never poison a
    result, only skip a warm start.
    """
    path = cache_file_path(digest, kernel, block_length, directory)
    if not path.exists():
        return 0

    def _reject(reason: str) -> int:
        if warn is not None:
            warn(f"ignoring persisted MV cache {path.name}: {reason}")
        return 0

    try:
        with np.load(io.BytesIO(path.read_bytes()), allow_pickle=False) as archive:
            if "meta" not in archive or "columns" not in archive:
                return _reject("missing required arrays")
            meta = json.loads(str(archive["meta"]))
            if meta.get("format") != CACHE_FORMAT:
                return _reject("not a repro MV cache file")
            if meta.get("version") != CACHE_VERSION:
                return _reject(
                    f"format version {meta.get('version')!r}, "
                    f"expected {CACHE_VERSION}"
                )
            if meta.get("digest") != digest:
                return _reject("block-table digest mismatch")
            if meta.get("kernel") != kernel:
                return _reject("kernel mismatch")
            if meta.get("block_length") != block_length:
                return _reject("block length mismatch")
            columns = np.asarray(archive["columns"], dtype=np.uint8)
            if columns.ndim != 2 or columns.shape[1] != column_width:
                return _reject(
                    f"column width {columns.shape[-1] if columns.ndim else '?'}, "
                    f"expected {column_width}"
                )
            keys = _decode_keys(archive)
            if len(keys) != columns.shape[0]:
                return _reject("key/column count mismatch")
    except (
        OSError,
        ValueError,
        KeyError,
        EOFError,
        zipfile.BadZipFile,
        json.JSONDecodeError,
    ) as error:
        return _reject(f"unreadable ({error})")
    # Coldest-first replay: under a smaller capacity the hottest
    # persisted entries are the ones that survive.
    cache.load_state(keys, columns)
    return len(cache)


def describe_cache_file(path: Path) -> dict:
    """Metadata of one persisted cache file (for ``repro cache``).

    Returns the embedded ``meta`` document plus file size, or an
    ``{"error": ...}`` record for undecodable files — the inspection
    tool must not crash on exactly the corrupt files it exists to
    find.
    """
    info: dict = {"file": path.name, "bytes": path.stat().st_size}
    try:
        with np.load(io.BytesIO(path.read_bytes()), allow_pickle=False) as archive:
            if "meta" not in archive:
                info["error"] = "missing meta"
                return info
            info.update(json.loads(str(archive["meta"])))
    except (
        OSError,
        ValueError,
        KeyError,
        EOFError,
        zipfile.BadZipFile,
        json.JSONDecodeError,
    ) as error:
        info["error"] = str(error)
    return info

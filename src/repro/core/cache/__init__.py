"""The MV match-column cache subsystem: policies + persistence.

Split out of :mod:`repro.core.fitness` when the cache grew from an
inlined LRU dict into a first-class subsystem:

* :mod:`repro.core.cache.policies` — the pluggable
  :class:`EvictionPolicy` protocol and the four shipped policies
  (``lru`` — the default and historical behavior — ``lfu``, ``2q``,
  ``segmented``).  All semantically inert: the policy decides which
  columns a full cache keeps, never what a column contains.
* :mod:`repro.core.cache.persist` — save/load of the packed slot
  array + keys under ``$REPRO_CACHE_DIR/mv_cache/``, keyed by
  (block-table digest, kernel, K, format version), with atomic writes
  and a discard-with-warning contract for anything invalid.

The cache class itself (:class:`repro.core.fitness.MVMatchCache`)
stays in the fitness module next to its one consumer; it delegates
retention decisions to a policy from here and (de)hydrates through
the persistence helpers.
"""

from .persist import (
    CACHE_FORMAT,
    CACHE_VERSION,
    block_table_digest,
    cache_file_name,
    cache_file_path,
    describe_cache_file,
    load_mv_cache,
    mv_cache_dir,
    save_mv_cache,
)
from .policies import (
    DEFAULT_POLICY,
    POLICY_CHOICES,
    EvictionPolicy,
    LFUPolicy,
    LRUPolicy,
    SegmentedPolicy,
    TwoQueuePolicy,
    make_policy,
)

__all__ = [
    "CACHE_FORMAT",
    "CACHE_VERSION",
    "DEFAULT_POLICY",
    "POLICY_CHOICES",
    "EvictionPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "SegmentedPolicy",
    "TwoQueuePolicy",
    "block_table_digest",
    "cache_file_name",
    "cache_file_path",
    "describe_cache_file",
    "load_mv_cache",
    "make_policy",
    "mv_cache_dir",
    "save_mv_cache",
]

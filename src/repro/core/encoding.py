"""Codeword assignment for matching vectors (paper Section 3.3).

Given covering frequencies ``F_i``, the optimal prefix code is produced
by Huffman's algorithm over the MVs with ``F_i > 0`` (zero-frequency
MVs get no codeword).  The encoding length of every block covered by
``v_i`` is ``|C(v_i)| + NU(v_i)``.

The paper's Section 3.3 example shows that greedy covering plus plain
Huffman can be suboptimal when one MV *subsumes* another: merging the
subsumed MV's blocks into the subsuming MV shortens the code tree by
more than the extra fill bits cost.  :func:`refine_subsumption`
implements that improvement as a greedy best-merge loop.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass, field

from ..coding.huffman import huffman_code_lengths
from ..coding.prefix import PrefixCode, canonical_code_from_lengths
from .matching import MVSet

__all__ = [
    "EncodingStrategy",
    "EncodingTable",
    "build_encoding_table",
    "refine_subsumption",
    "compressed_size",
]


class EncodingStrategy(enum.Enum):
    """How codewords are assigned to matching vectors."""

    FIXED = "fixed"  # caller-supplied codewords (the original 9C scheme)
    HUFFMAN = "huffman"  # Huffman over covering frequencies (paper default)
    HUFFMAN_SUBSUME = "huffman-subsume"  # Huffman + subsumption merges (Sec. 3.3)


@dataclass(frozen=True)
class EncodingTable:
    """Result of codeword assignment.

    Attributes
    ----------
    codewords:
        ``{mv_index: codeword}`` for every MV that encodes at least one
        block after redirection.
    redirect:
        ``{mv_index: final_mv_index}`` — where subsumption merged MV
        ``i`` into MV ``j``, blocks covered by ``i`` are encoded with
        ``j``'s codeword and fills.  Identity for unmerged MVs.
    frequencies:
        Final per-MV frequencies after redirection.
    total_bits:
        Compressed payload size: ``Σ F_i · (|C(v_i)| + NU(v_i))``.
    """

    codewords: dict[int, str]
    redirect: dict[int, int]
    frequencies: dict[int, int]
    total_bits: int
    strategy: EncodingStrategy = field(default=EncodingStrategy.HUFFMAN)

    def prefix_code(self) -> PrefixCode:
        """The codeword table as a checked :class:`PrefixCode`."""
        return PrefixCode(self.codewords)

    def codeword_for(self, mv_index: int) -> str:
        """Codeword used for blocks covered by ``mv_index`` (post-redirect)."""
        return self.codewords[self.redirect.get(mv_index, mv_index)]

    def final_mv(self, mv_index: int) -> int:
        """MV actually used to encode blocks covered by ``mv_index``."""
        return self.redirect.get(mv_index, mv_index)


def compressed_size(
    mv_set: MVSet,
    frequencies: Mapping[int, int],
    codeword_lengths: Mapping[int, int],
) -> int:
    """Payload bits: ``Σ F_i · (|C(v_i)| + NU(v_i))`` over coded MVs."""
    total = 0
    for mv_index, frequency in frequencies.items():
        if frequency <= 0:
            continue
        total += frequency * (
            codeword_lengths[mv_index] + mv_set[mv_index].n_unspecified
        )
    return total


def _huffman_size(mv_set: MVSet, frequencies: Mapping[int, int]) -> int:
    """Huffman payload size for the given frequency assignment."""
    active = {i: f for i, f in frequencies.items() if f > 0}
    lengths = huffman_code_lengths(active)
    return compressed_size(mv_set, active, lengths)


def refine_subsumption(
    mv_set: MVSet, frequencies: Mapping[int, int]
) -> tuple[dict[int, int], dict[int, int]]:
    """Greedy subsumption merging (paper Section 3.3 example).

    Repeatedly find the single merge "fold MV *j* into a subsuming MV
    *i*" that reduces the Huffman payload the most, apply it, and stop
    when no merge improves.  Returns ``(frequencies, redirect)`` where
    ``redirect`` maps every merged MV to its final representative.

    >>> mvs = MVSet.from_strings(["111U", "1110", "0000"])
    >>> freqs, redirect = refine_subsumption(mvs, {0: 5, 1: 3, 2: 2})
    >>> freqs[0], redirect[1]
    (8, 0)
    """
    current = {i: int(f) for i, f in frequencies.items() if f > 0}
    redirect: dict[int, int] = {}
    # Precompute the subsumption relation once over the used MVs; merging
    # into an *unused* subsumer can never help (it has at least as many
    # U positions, so it only lengthens the fills), so unused MVs are
    # excluded up front.
    indices = sorted(current)
    subsumers: dict[int, list[int]] = {
        j: [
            i
            for i in indices
            if i != j and mv_set[i].subsumes(mv_set[j])
        ]
        for j in indices
    }
    best_size = _huffman_size(mv_set, current)
    while True:
        best_merge: tuple[int, int] | None = None
        best_merge_size = best_size
        for j in sorted(current):
            if current.get(j, 0) <= 0:
                continue
            for i in subsumers[j]:
                if i not in current:
                    continue
                trial = dict(current)
                trial[i] = trial.get(i, 0) + trial[j]
                del trial[j]
                trial_size = _huffman_size(mv_set, trial)
                if trial_size < best_merge_size:
                    best_merge_size = trial_size
                    best_merge = (i, j)
        if best_merge is None:
            break
        target, source = best_merge
        current[target] = current.get(target, 0) + current[source]
        del current[source]
        # Re-route everything previously merged into `source` as well.
        for merged, representative in list(redirect.items()):
            if representative == source:
                redirect[merged] = target
        redirect[source] = target
        best_size = best_merge_size
    return current, redirect


def build_encoding_table(
    mv_set: MVSet,
    frequencies: Mapping[int, int],
    strategy: EncodingStrategy = EncodingStrategy.HUFFMAN,
    fixed_codewords: Mapping[int, str] | None = None,
) -> EncodingTable:
    """Assign codewords to the MVs of a covering.

    ``frequencies`` maps MV index → blocks covered (zero entries are
    dropped).  With ``EncodingStrategy.FIXED`` the caller supplies
    ``fixed_codewords`` for at least every used MV (the original 9C
    scheme's hard-wired code).
    """
    active = {int(i): int(f) for i, f in frequencies.items() if f > 0}
    redirect: dict[int, int] = {}

    if strategy is EncodingStrategy.FIXED:
        if fixed_codewords is None:
            raise ValueError("FIXED strategy requires fixed_codewords")
        missing = [i for i in active if i not in fixed_codewords]
        if missing:
            raise ValueError(f"no fixed codeword for used MVs {missing}")
        codewords = {i: fixed_codewords[i] for i in active}
        lengths = {i: len(w) for i, w in codewords.items()}
        total = compressed_size(mv_set, active, lengths)
        return EncodingTable(
            codewords=codewords,
            redirect=redirect,
            frequencies=active,
            total_bits=total,
            strategy=strategy,
        )

    if strategy is EncodingStrategy.HUFFMAN_SUBSUME:
        active, redirect = refine_subsumption(mv_set, active)

    lengths = huffman_code_lengths(active)
    codewords = canonical_code_from_lengths(lengths)
    total = compressed_size(mv_set, active, lengths)
    return EncodingTable(
        codewords=codewords,
        redirect=redirect,
        frequencies=active,
        total_bits=total,
        strategy=strategy,
    )

"""The on-chip decoder model: prefix-tree walk plus fill substitution.

A code-based decompressor receives the compressed stream serially,
walks the prefix-code tree until it hits a matching vector, emits the
MV's specified bits, and splices in one streamed fill bit per ``U``
position.  This module models that behaviour bit-exactly, which gives
us the round-trip (losslessness) oracle used throughout the tests:

    every *specified* bit of the original test set is reproduced
    exactly; every don't-care position receives the transmitted fill.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..coding.bitstream import BitReader
from .blocks import BlockSet
from .compressor import CompressedTestSet
from .matching import MatchingVector
from .trits import DC, format_trits

__all__ = ["DecodedTestSet", "decompress", "verify_roundtrip"]


@dataclass(frozen=True)
class DecodedTestSet:
    """Fully-specified test data reconstructed by the decoder.

    ``bits`` is the padded, fully specified test string (a 0/1 string
    of ``n_blocks · K`` characters); ``blocks_decoded`` counts decoded
    input blocks.
    """

    bits: str
    block_length: int
    blocks_decoded: int

    def block(self, index: int) -> str:
        """The ``index``-th decoded K-bit block."""
        start = index * self.block_length
        return self.bits[start : start + self.block_length]


def decompress(compressed: CompressedTestSet) -> DecodedTestSet:
    """Decode a compressed stream back into fully-specified test data.

    >>> from .compressor import compress_blocks
    >>> from .matching import MVSet
    >>> bs = BlockSet.from_string("111 000 1X1", 3)
    >>> c = compress_blocks(bs, MVSet.from_strings(["111", "000", "UUU"]))
    >>> decompress(c).bits
    '111000111'
    """
    tree = compressed.table.prefix_code().decode_tree()
    mv_by_index = {
        mv_index: compressed.mv_set[mv_index]
        for mv_index in compressed.table.codewords
    }
    reader = BitReader(compressed.payload, compressed.payload_bits)
    n_blocks = compressed.blocks.n_blocks
    out: list[str] = []
    for _ in range(n_blocks):
        mv = _decode_one_mv(reader, tree, mv_by_index)
        out.append(_emit_block(reader, mv))
    if not reader.exhausted:
        raise ValueError(
            f"{reader.remaining} trailing bits left after decoding "
            f"{n_blocks} blocks"
        )
    return DecodedTestSet(
        bits="".join(out),
        block_length=compressed.blocks.block_length,
        blocks_decoded=n_blocks,
    )


def _decode_one_mv(
    reader: BitReader, tree: dict, mv_by_index: dict[int, MatchingVector]
) -> MatchingVector:
    """Walk the prefix tree bit by bit until a codeword completes."""
    node = tree
    while True:
        bit = "1" if reader.read_bit() else "0"
        try:
            node = node[bit]
        except KeyError:
            raise ValueError("invalid codeword in compressed stream") from None
        if not isinstance(node, dict):
            return mv_by_index[node]


def _emit_block(reader: BitReader, mv: MatchingVector) -> str:
    """Emit one block: MV's specified bits with streamed fills at Us."""
    bits = []
    for trit in mv.trits:
        if trit == DC:
            bits.append("1" if reader.read_bit() else "0")
        else:
            bits.append("1" if trit else "0")
    return "".join(bits)


def verify_roundtrip(compressed: CompressedTestSet) -> DecodedTestSet:
    """Decode and check losslessness against the source block set.

    Every specified bit of the original test set must be reproduced
    exactly (don't-cares may be filled either way).  Returns the
    decoded data on success; raises ``AssertionError`` with a precise
    location on the first mismatch.
    """
    decoded = decompress(compressed)
    blocks: BlockSet = compressed.blocks
    for position, distinct_index in enumerate(blocks.sequence):
        original = blocks.block_trits(int(distinct_index))
        reconstructed = decoded.block(position)
        for offset, trit in enumerate(original):
            if trit == DC:
                continue
            expected = "1" if trit else "0"
            if reconstructed[offset] != expected:
                raise AssertionError(
                    f"block {position}, position {offset}: original "
                    f"{format_trits(original, unspecified='X')} vs decoded "
                    f"{reconstructed}"
                )
    return decoded

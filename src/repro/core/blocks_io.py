"""Out-of-core block tables: on-disk `.npy` arrays behind ``BlockSet``.

:meth:`BlockSet.from_trit_array` materializes the whole trit string in
RAM before deduplicating — fine for the paper's circuits (kilobits),
hopeless for synthetic D≈10⁵-scale stress workloads whose *unpacked*
form runs to hundreds of megabytes.  This module keeps such tables on
disk end to end:

* :func:`save_block_table` / :func:`load_block_table` persist a block
  set as a directory of plain ``.npy`` arrays plus a ``meta.json``;
  loading memory-maps every array (``np.load(..., mmap_mode="r")``),
  so the returned :class:`~repro.core.blocks.BlockSet` is a drop-in
  read-only view whose resident footprint is whatever the OS pages in.
  ``np.memmap`` is an ``ndarray`` subclass, so every consumer of the
  existing ``prepare()`` contract works unchanged — and the bitpack
  kernel's D-axis shard loop then *streams* the table from disk one
  cache-sized shard at a time (see ``kernels/bitpack.py``).
* :class:`StreamingBlockTableBuilder` builds such a table from trit
  chunks without ever holding the full string: each ``feed()`` chunk
  is packed, deduplicated locally and merged into a D-bounded global
  index, while the sequence streams to a temporary file.  Peak RAM is
  O(D + chunk), not O(n_blocks·K).

The builder's :meth:`~StreamingBlockTableBuilder.finalize` sorts the
distinct table exactly the way ``np.unique(axis=0)`` would, so a
streamed build is *array-for-array identical* to
``BlockSet.from_trit_array`` on the same trits — pinned by test, and
the property that makes out-of-core pricing trivially byte-parity with
in-memory pricing.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np

from ..io_utils import atomic_write_json
from .blocks import BlockSet, mask_word_count, pack_bits_to_words
from .trits import DC, ONE, ZERO

__all__ = [
    "BLOCK_TABLE_FORMAT",
    "BLOCK_TABLE_VERSION",
    "StreamingBlockTableBuilder",
    "load_block_table",
    "save_block_table",
]

BLOCK_TABLE_FORMAT = "repro-block-table"
BLOCK_TABLE_VERSION = 1

_ARRAY_NAMES = ("ones", "zeros", "counts", "sequence")

# Trit elements per streamed sequence-rewrite chunk in finalize();
# bounds the resident slice of the (possibly huge) sequence array.
_SEQUENCE_CHUNK = 1 << 20


def save_block_table(blocks: BlockSet, directory: Path | str) -> Path:
    """Persist ``blocks`` as ``directory/{meta.json, *.npy}``.

    The arrays are written with :func:`np.save` (one file each) so
    :func:`load_block_table` can hand them back as memory maps.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name in _ARRAY_NAMES:
        np.save(directory / f"{name}.npy", np.asarray(getattr(blocks, name)))
    atomic_write_json(
        directory / "meta.json",
        {
            "format": BLOCK_TABLE_FORMAT,
            "version": BLOCK_TABLE_VERSION,
            "block_length": blocks.block_length,
            "original_bits": blocks.original_bits,
            "n_distinct": blocks.n_distinct,
            "n_blocks": blocks.n_blocks,
        },
    )
    return directory


def load_block_table(directory: Path | str, mmap: bool = True) -> BlockSet:
    """Load a persisted block table, memory-mapped by default.

    With ``mmap=True`` the mask/count/sequence arrays are read-only
    ``np.memmap`` views — the table's resident footprint is bounded by
    what consumers actually touch, not by its size.  ``mmap=False``
    reads everything into RAM (small tables, or writable copies).
    """
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    if meta.get("format") != BLOCK_TABLE_FORMAT:
        raise ValueError(f"{directory} is not a {BLOCK_TABLE_FORMAT} directory")
    if meta.get("version") != BLOCK_TABLE_VERSION:
        raise ValueError(
            f"block table version {meta.get('version')!r}, "
            f"expected {BLOCK_TABLE_VERSION}"
        )
    mode = "r" if mmap else None
    arrays = {
        name: np.load(directory / f"{name}.npy", mmap_mode=mode)
        for name in _ARRAY_NAMES
    }
    return BlockSet(
        block_length=int(meta["block_length"]),
        original_bits=int(meta["original_bits"]),
        **arrays,
    )


class StreamingBlockTableBuilder:
    """Build an on-disk block table from trit chunks, RAM-bounded by D.

    Feed the test-set string in arbitrary-length chunks (values
    0/1/2); each chunk is packed and deduplicated against a global
    distinct index, and the block sequence streams to a temporary
    file.  ``finalize()`` writes the table under ``directory`` in
    canonical (``np.unique``) order and returns the memory-mapped
    :class:`BlockSet` — identical, array for array, to what
    ``BlockSet.from_trit_array`` would build from the concatenated
    chunks.
    """

    def __init__(self, block_length: int, directory: Path | str) -> None:
        self._word_count = mask_word_count(block_length)  # validates K
        self._block_length = block_length
        self._directory = Path(directory)
        self._index: dict[bytes, int] = {}  # packed row -> first-seen id
        self._rows: list[np.ndarray] = []  # (2W,) uint64 per distinct
        self._counts: list[int] = []
        self._original_bits = 0
        self._n_blocks = 0
        self._remainder = np.empty(0, dtype=np.int8)
        self._sequence_spool = tempfile.TemporaryFile()
        self._finalized = False

    @property
    def n_distinct(self) -> int:
        """Distinct blocks seen so far — the builder's RAM bound."""
        return len(self._rows)

    def feed(self, trits) -> None:
        """Ingest the next chunk of the test-set trit string."""
        if self._finalized:
            raise RuntimeError("builder already finalized")
        array = np.asarray(trits, dtype=np.int8).ravel()
        self._original_bits += int(array.size)
        self._ingest(array)

    def _ingest(self, array: np.ndarray) -> None:
        if self._remainder.size:
            array = np.concatenate([self._remainder, array])
        usable = (array.size // self._block_length) * self._block_length
        self._remainder = array[usable:].copy()
        if not usable:
            return
        grid = array[:usable].reshape(-1, self._block_length)
        ones = pack_bits_to_words(grid == ONE)
        zeros = pack_bits_to_words(grid == ZERO)
        pairs = np.concatenate([ones, zeros], axis=1)  # (C, 2W)
        local_rows, local_inverse = np.unique(
            pairs, axis=0, return_inverse=True
        )
        # Merge chunk-local uniques into the global first-seen index;
        # the loop runs over chunk-*distinct* rows only.
        global_ids = np.empty(len(local_rows), dtype=np.int64)
        for local_id, row in enumerate(local_rows):
            key = row.tobytes()
            global_id = self._index.get(key)
            if global_id is None:
                global_id = len(self._rows)
                self._index[key] = global_id
                self._rows.append(row)
                self._counts.append(0)
            global_ids[local_id] = global_id
        chunk_sequence = global_ids[local_inverse]
        chunk_counts = np.bincount(chunk_sequence)
        for global_id in np.flatnonzero(chunk_counts):
            self._counts[global_id] += int(chunk_counts[global_id])
        self._sequence_spool.write(
            np.ascontiguousarray(chunk_sequence, dtype=np.int64).tobytes()
        )
        self._n_blocks += len(chunk_sequence)

    def finalize(self) -> BlockSet:
        """Write the table under ``directory``; the memory-mapped result."""
        if self._finalized:
            raise RuntimeError("builder already finalized")
        # X-pad the tail exactly like BlockSet.from_trit_array (padding
        # is not part of original_bits).
        if self._remainder.size:
            padding = self._block_length - self._remainder.size
            self._ingest(np.full(padding, DC, dtype=np.int8))
        self._finalized = True

        n_distinct = len(self._rows)
        words = self._word_count
        if n_distinct:
            rows = np.vstack(self._rows)  # (D, 2W), first-seen order
        else:
            rows = np.empty((0, 2 * words), dtype=np.uint64)
        # Canonical order: np.unique itself sorts the (already
        # distinct) rows, so streamed and in-memory builds of the same
        # trits are array-identical by construction; the inverse map is
        # each first-seen id's new position.
        sorted_rows, new_id_of_old = np.unique(
            rows, axis=0, return_inverse=True
        )
        new_id_of_old = new_id_of_old.reshape(-1)
        old_id_of_new = np.empty(n_distinct, dtype=np.int64)
        old_id_of_new[new_id_of_old] = np.arange(n_distinct)
        counts = np.asarray(self._counts, dtype=np.int64)[old_id_of_new]
        ones = np.ascontiguousarray(sorted_rows[:, :words])
        zeros = np.ascontiguousarray(sorted_rows[:, words:])
        if words == 1:
            ones = ones[:, 0]
            zeros = zeros[:, 0]

        directory = self._directory
        directory.mkdir(parents=True, exist_ok=True)
        np.save(directory / "ones.npy", ones)
        np.save(directory / "zeros.npy", zeros)
        np.save(directory / "counts.npy", counts)
        # Rewrite the spooled first-seen sequence through the id remap
        # in bounded chunks, straight into the final .npy memmap.
        sequence = np.lib.format.open_memmap(
            directory / "sequence.npy",
            mode="w+",
            dtype=np.int32,
            shape=(self._n_blocks,),
        )
        self._sequence_spool.seek(0)
        position = 0
        while True:
            raw = self._sequence_spool.read(_SEQUENCE_CHUNK * 8)
            if not raw:
                break
            chunk = np.frombuffer(raw, dtype=np.int64)
            sequence[position : position + chunk.size] = new_id_of_old[chunk]
            position += chunk.size
        sequence.flush()
        del sequence
        self._sequence_spool.close()

        atomic_write_json(
            directory / "meta.json",
            {
                "format": BLOCK_TABLE_FORMAT,
                "version": BLOCK_TABLE_VERSION,
                "block_length": self._block_length,
                "original_bits": self._original_bits,
                "n_distinct": n_distinct,
                "n_blocks": self._n_blocks,
            },
        )
        return load_block_table(directory)

"""Input blocks: partitioning the test-set string into K-bit pieces.

The paper concatenates all test patterns into one string
``t1 t2 ... t_{T·n}`` over ``{0, 1, X}`` and splits it into fixed-length
*input blocks* of ``K`` trits (padding the tail with ``X``).  Matching
and covering only ever ask "does MV *v* match block *b*", so blocks are
stored as a pair of bitmasks:

* ``ones``  — bit set where the block has a specified 1,
* ``zeros`` — bit set where the block has a specified 0,

with ``X`` positions in neither mask.  An MV with masks
``(mv_ones, mv_zeros)`` matches a block iff
``(ones & mv_zeros) == 0 and (zeros & mv_ones) == 0`` — a pair of
AND/compare operations instead of a per-position loop.

Real test sets repeat blocks heavily, so :class:`BlockSet` stores the
*distinct* blocks with multiplicities plus the original sequence as
indices into the distinct table.  EA fitness evaluation (thousands of
coverings per run) works on the distinct table only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .trits import DC, ONE, ZERO, format_trits, parse_trits, trits_to_array

__all__ = ["MAX_BLOCK_LENGTH", "pack_trits", "unpack_masks", "BlockSet"]

MAX_BLOCK_LENGTH = 64  # masks are uint64; the paper uses K = 8 and K = 12


def _bit_weights(block_length: int) -> np.ndarray:
    """Per-position uint64 weights; position 0 (leftmost) is the MSB."""
    shifts = np.arange(block_length - 1, -1, -1, dtype=np.uint64)
    return np.left_shift(np.uint64(1), shifts)


def pack_trits(trits) -> tuple[int, int]:
    """Pack a trit sequence into ``(ones, zeros)`` integer masks.

    >>> pack_trits(parse_trits("10X"))
    (4, 2)
    """
    array = trits_to_array(trits)
    if array.size > MAX_BLOCK_LENGTH:
        raise ValueError(f"block length {array.size} exceeds {MAX_BLOCK_LENGTH}")
    weights = _bit_weights(array.size)
    ones = int(weights[array == ONE].sum()) if array.size else 0
    zeros = int(weights[array == ZERO].sum()) if array.size else 0
    return ones, zeros


def unpack_masks(ones: int, zeros: int, block_length: int) -> tuple[int, ...]:
    """Invert :func:`pack_trits`: masks back to a trit tuple.

    >>> unpack_masks(4, 2, 3)
    (1, 0, 2)
    """
    if ones & zeros:
        raise ValueError("ones and zeros masks overlap")
    trits = []
    for position in range(block_length):
        bit = 1 << (block_length - 1 - position)
        if ones & bit:
            trits.append(ONE)
        elif zeros & bit:
            trits.append(ZERO)
        else:
            trits.append(DC)
    return tuple(trits)


@dataclass(frozen=True)
class BlockSet:
    """The input blocks of one test set, uniquified with multiplicities.

    Attributes
    ----------
    block_length:
        ``K``, the number of trits per input block.
    original_bits:
        Length of the test-set string *before* X-padding — the
        "test set size" column of the paper's tables (``T·n``).
    counts:
        Multiplicity of each distinct block (``int64``).
    ones, zeros:
        ``uint64`` masks of each distinct block.
    sequence:
        For each block position in the test set, the index of its
        distinct block (``int32``); preserves order for the actual
        bitstream emission.
    """

    block_length: int
    original_bits: int
    ones: np.ndarray = field(repr=False)
    zeros: np.ndarray = field(repr=False)
    counts: np.ndarray = field(repr=False)
    sequence: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if not 1 <= self.block_length <= MAX_BLOCK_LENGTH:
            raise ValueError(
                f"block length must be in [1, {MAX_BLOCK_LENGTH}], "
                f"got {self.block_length}"
            )
        if self.original_bits < 0:
            raise ValueError("original_bits must be non-negative")
        if not (len(self.ones) == len(self.zeros) == len(self.counts)):
            raise ValueError("distinct-block arrays must have equal length")

    @classmethod
    def from_trit_array(cls, trits: np.ndarray, block_length: int) -> "BlockSet":
        """Partition a flat trit array (values 0/1/2) into K-blocks.

        The tail is padded with don't-cares, exactly as the paper pads
        the test-set string with ``X`` values.
        """
        if not 1 <= block_length <= MAX_BLOCK_LENGTH:
            raise ValueError(
                f"block length must be in [1, {MAX_BLOCK_LENGTH}], "
                f"got {block_length}"
            )
        array = np.asarray(trits, dtype=np.int8)
        if array.ndim != 1:
            raise ValueError("trit array must be one-dimensional")
        original_bits = int(array.size)
        remainder = original_bits % block_length
        if remainder:
            padding = np.full(block_length - remainder, DC, dtype=np.int8)
            array = np.concatenate([array, padding])
        if array.size == 0:
            empty_u64 = np.empty(0, dtype=np.uint64)
            return cls(
                block_length=block_length,
                original_bits=0,
                ones=empty_u64,
                zeros=empty_u64.copy(),
                counts=np.empty(0, dtype=np.int64),
                sequence=np.empty(0, dtype=np.int32),
            )
        grid = array.reshape(-1, block_length)
        weights = _bit_weights(block_length)
        ones_per_block = ((grid == ONE) * weights).sum(axis=1, dtype=np.uint64)
        zeros_per_block = ((grid == ZERO) * weights).sum(axis=1, dtype=np.uint64)
        pairs = np.stack([ones_per_block, zeros_per_block], axis=1)
        distinct, inverse = np.unique(pairs, axis=0, return_inverse=True)
        counts = np.bincount(inverse, minlength=len(distinct)).astype(np.int64)
        return cls(
            block_length=block_length,
            original_bits=original_bits,
            ones=np.ascontiguousarray(distinct[:, 0]),
            zeros=np.ascontiguousarray(distinct[:, 1]),
            counts=counts,
            sequence=inverse.astype(np.int32),
        )

    @classmethod
    def from_string(cls, text: str, block_length: int) -> "BlockSet":
        """Partition a ``0/1/X`` string into K-blocks.

        >>> bs = BlockSet.from_string("01X 10X 01X", 3)
        >>> bs.n_blocks, bs.n_distinct
        (3, 2)
        """
        return cls.from_trit_array(
            np.asarray(parse_trits(text), dtype=np.int8), block_length
        )

    @property
    def n_blocks(self) -> int:
        """Total number of input blocks (after padding)."""
        return int(self.sequence.size)

    @property
    def n_distinct(self) -> int:
        """Number of distinct input blocks."""
        return int(self.counts.size)

    @property
    def padded_bits(self) -> int:
        """Length of the padded test-set string."""
        return self.n_blocks * self.block_length

    def block_trits(self, distinct_index: int) -> tuple[int, ...]:
        """Trit tuple of the distinct block with the given index."""
        return unpack_masks(
            int(self.ones[distinct_index]),
            int(self.zeros[distinct_index]),
            self.block_length,
        )

    def block_string(self, distinct_index: int) -> str:
        """Human-readable form of a distinct block (``X`` for don't-care)."""
        return format_trits(self.block_trits(distinct_index), unspecified="X")

    def specified_bit_count(self) -> int:
        """Number of specified (non-X) bits across the whole test set."""
        popcount = np.vectorize(lambda mask: bin(int(mask)).count("1"))
        if self.n_distinct == 0:
            return 0
        per_block = popcount(self.ones) + popcount(self.zeros)
        return int((per_block * self.counts).sum())

    def care_density(self) -> float:
        """Fraction of specified bits over the padded string (0.0 if empty)."""
        if self.padded_bits == 0:
            return 0.0
        return self.specified_bit_count() / self.padded_bits

    def iter_block_strings(self):
        """Yield every block of the test set, in order, as a string."""
        for distinct_index in self.sequence:
            yield self.block_string(int(distinct_index))

"""Input blocks: partitioning the test-set string into K-bit pieces.

The paper concatenates all test patterns into one string
``t1 t2 ... t_{T·n}`` over ``{0, 1, X}`` and splits it into fixed-length
*input blocks* of ``K`` trits (padding the tail with ``X``).  Matching
and covering only ever ask "does MV *v* match block *b*", so blocks are
stored as a pair of bitmasks:

* ``ones``  — bit set where the block has a specified 1,
* ``zeros`` — bit set where the block has a specified 0,

with ``X`` positions in neither mask.  An MV with masks
``(mv_ones, mv_zeros)`` matches a block iff
``(ones & mv_zeros) == 0 and (zeros & mv_ones) == 0`` — a pair of
AND/compare operations instead of a per-position loop.

Masks are stored as little-endian ``uint64`` *words*: a K-trit block
packs into ``ceil(K / 64)`` words, where word 0 holds the least
significant 64 bits of the K-bit integer whose position-0 trit has
weight ``2**(K-1)``.  For ``K <= 64`` that is exactly the historical
single-``uint64`` layout and masks stay one-dimensional ``(D,)``
arrays; wider blocks use ``(D, W)`` word arrays.  The word helpers
(:func:`mask_word_count`, :func:`pack_bits_to_words`,
:func:`int_to_words`, :func:`words_to_int`) are shared by the covering
kernels in :mod:`repro.core.kernels`.

Real test sets repeat blocks heavily, so :class:`BlockSet` stores the
*distinct* blocks with multiplicities plus the original sequence as
indices into the distinct table.  EA fitness evaluation (thousands of
coverings per run) works on the distinct table only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .trits import DC, ONE, ZERO, format_trits, parse_trits, trits_to_array

__all__ = [
    "WORD_BITS",
    "BlockSet",
    "int_to_words",
    "mask_word_count",
    "masks_as_words",
    "pack_bits_to_words",
    "pack_trits",
    "unpack_masks",
    "unpack_words_to_bits",
    "words_to_int",
]

WORD_BITS = 64  # one mask word; K > 64 simply uses more words


def mask_word_count(block_length: int) -> int:
    """Number of uint64 words needed for ``block_length``-trit masks.

    >>> mask_word_count(12), mask_word_count(64), mask_word_count(96)
    (1, 1, 2)
    """
    if block_length < 1:
        raise ValueError(f"block length must be >= 1, got {block_length}")
    return -(-block_length // WORD_BITS)


def _bit_weights(block_length: int) -> np.ndarray:
    """Per-position uint64 weights; position 0 (leftmost) is the MSB.

    Only valid for single-word masks (``block_length <= 64``); wider
    blocks go through :func:`pack_bits_to_words`.
    """
    shifts = np.arange(block_length - 1, -1, -1, dtype=np.uint64)
    return np.left_shift(np.uint64(1), shifts)


def pack_bits_to_words(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(..., K)`` 0/1 array into ``(..., W)`` uint64 words.

    Position 0 of the last axis is the most significant bit of the
    K-bit value; the output words are little-endian (word 0 = least
    significant), so for ``K <= 64`` the single output word equals the
    historical flat mask.

    >>> pack_bits_to_words(np.array([1, 0, 1])).tolist()
    [5]
    """
    bits = np.asarray(bits)
    block_length = bits.shape[-1]
    n_words = mask_word_count(block_length)
    if n_words == 1:
        weights = _bit_weights(block_length)
        return (bits * weights).sum(axis=-1, dtype=np.uint64)[..., None]
    pad = n_words * WORD_BITS - block_length
    if pad:
        pad_widths = [(0, 0)] * (bits.ndim - 1) + [(pad, 0)]
        bits = np.pad(bits, pad_widths)
    grouped = bits.reshape(bits.shape[:-1] + (n_words, WORD_BITS))
    word_weights = _bit_weights(WORD_BITS)
    big_endian = (grouped * word_weights).sum(axis=-1, dtype=np.uint64)
    return big_endian[..., ::-1]


def unpack_words_to_bits(words: np.ndarray, block_length: int) -> np.ndarray:
    """Invert :func:`pack_bits_to_words`: ``(..., W)`` words → ``(..., K)``.

    Returns a uint64 0/1 array with position 0 (the MSB) first.
    """
    words = np.asarray(words, dtype=np.uint64)
    exponents = np.arange(block_length - 1, -1, -1, dtype=np.int64)
    word_index = exponents // WORD_BITS
    shifts = (exponents % WORD_BITS).astype(np.uint64)
    return (words[..., word_index] >> shifts) & np.uint64(1)


def int_to_words(value: int, n_words: int) -> tuple[int, ...]:
    """Split an arbitrary-precision mask into little-endian words.

    >>> int_to_words(5, 2)
    (5, 0)
    """
    mask = (1 << WORD_BITS) - 1
    return tuple((value >> (WORD_BITS * w)) & mask for w in range(n_words))


def words_to_int(words) -> int:
    """Rebuild the arbitrary-precision mask from little-endian words."""
    value = 0
    for index, word in enumerate(words):
        value |= int(word) << (WORD_BITS * index)
    return value


def pack_trits(trits) -> tuple[int, int]:
    """Pack a trit sequence into ``(ones, zeros)`` integer masks.

    The masks are arbitrary-precision Python ints, so any block length
    works; position 0 carries weight ``2**(K-1)``.

    >>> pack_trits(parse_trits("10X"))
    (4, 2)
    """
    array = trits_to_array(trits)
    if array.size == 0:
        return 0, 0
    ones = words_to_int(pack_bits_to_words(array == ONE))
    zeros = words_to_int(pack_bits_to_words(array == ZERO))
    return ones, zeros


def unpack_masks(ones: int, zeros: int, block_length: int) -> tuple[int, ...]:
    """Invert :func:`pack_trits`: masks back to a trit tuple.

    >>> unpack_masks(4, 2, 3)
    (1, 0, 2)
    """
    if ones & zeros:
        raise ValueError("ones and zeros masks overlap")
    trits = []
    for position in range(block_length):
        bit = 1 << (block_length - 1 - position)
        if ones & bit:
            trits.append(ONE)
        elif zeros & bit:
            trits.append(ZERO)
        else:
            trits.append(DC)
    return tuple(trits)


def masks_as_words(masks: np.ndarray) -> np.ndarray:
    """View a mask array in canonical word form ``(N, W)``.

    Single-word masks are stored flat ``(N,)``; this reshapes either
    storage to two dimensions without copying.
    """
    masks = np.asarray(masks, dtype=np.uint64)
    if masks.ndim == 1:
        return masks.reshape(-1, 1)
    return masks


@dataclass(frozen=True)
class BlockSet:
    """The input blocks of one test set, uniquified with multiplicities.

    Attributes
    ----------
    block_length:
        ``K``, the number of trits per input block (any positive
        length; wide blocks use multi-word masks).
    original_bits:
        Length of the test-set string *before* X-padding — the
        "test set size" column of the paper's tables (``T·n``).
    counts:
        Multiplicity of each distinct block (``int64``).
    ones, zeros:
        ``uint64`` masks of each distinct block: flat ``(D,)`` arrays
        for ``K <= 64``, little-endian ``(D, W)`` word arrays for
        wider blocks.  :attr:`ones_words`/:attr:`zeros_words` expose
        the uniform two-dimensional view.
    sequence:
        For each block position in the test set, the index of its
        distinct block (``int32``); preserves order for the actual
        bitstream emission.
    """

    block_length: int
    original_bits: int
    ones: np.ndarray = field(repr=False)
    zeros: np.ndarray = field(repr=False)
    counts: np.ndarray = field(repr=False)
    sequence: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.block_length < 1:
            raise ValueError(
                f"block length must be >= 1, got {self.block_length}"
            )
        if self.original_bits < 0:
            raise ValueError("original_bits must be non-negative")
        if not (len(self.ones) == len(self.zeros) == len(self.counts)):
            raise ValueError("distinct-block arrays must have equal length")

    @classmethod
    def from_trit_array(cls, trits: np.ndarray, block_length: int) -> "BlockSet":
        """Partition a flat trit array (values 0/1/2) into K-blocks.

        The tail is padded with don't-cares, exactly as the paper pads
        the test-set string with ``X`` values.
        """
        n_words = mask_word_count(block_length)  # validates block_length
        array = np.asarray(trits, dtype=np.int8)
        if array.ndim != 1:
            raise ValueError("trit array must be one-dimensional")
        original_bits = int(array.size)
        remainder = original_bits % block_length
        if remainder:
            padding = np.full(block_length - remainder, DC, dtype=np.int8)
            array = np.concatenate([array, padding])
        if array.size == 0:
            empty_shape = 0 if n_words == 1 else (0, n_words)
            empty_u64 = np.empty(empty_shape, dtype=np.uint64)
            return cls(
                block_length=block_length,
                original_bits=0,
                ones=empty_u64,
                zeros=empty_u64.copy(),
                counts=np.empty(0, dtype=np.int64),
                sequence=np.empty(0, dtype=np.int32),
            )
        grid = array.reshape(-1, block_length)
        ones_words = pack_bits_to_words(grid == ONE)
        zeros_words = pack_bits_to_words(grid == ZERO)
        pairs = np.concatenate([ones_words, zeros_words], axis=1)
        distinct, inverse = np.unique(pairs, axis=0, return_inverse=True)
        counts = np.bincount(inverse, minlength=len(distinct)).astype(np.int64)
        distinct_ones = np.ascontiguousarray(distinct[:, :n_words])
        distinct_zeros = np.ascontiguousarray(distinct[:, n_words:])
        if n_words == 1:
            distinct_ones = distinct_ones[:, 0]
            distinct_zeros = distinct_zeros[:, 0]
        return cls(
            block_length=block_length,
            original_bits=original_bits,
            ones=distinct_ones,
            zeros=distinct_zeros,
            counts=counts,
            sequence=inverse.astype(np.int32),
        )

    @classmethod
    def from_string(cls, text: str, block_length: int) -> "BlockSet":
        """Partition a ``0/1/X`` string into K-blocks.

        >>> bs = BlockSet.from_string("01X 10X 01X", 3)
        >>> bs.n_blocks, bs.n_distinct
        (3, 2)
        """
        return cls.from_trit_array(
            np.asarray(parse_trits(text), dtype=np.int8), block_length
        )

    @property
    def n_blocks(self) -> int:
        """Total number of input blocks (after padding)."""
        return int(self.sequence.size)

    @property
    def n_distinct(self) -> int:
        """Number of distinct input blocks."""
        return int(self.counts.size)

    @property
    def word_count(self) -> int:
        """``W`` — uint64 words per mask (1 for ``K <= 64``)."""
        return mask_word_count(self.block_length)

    @property
    def ones_words(self) -> np.ndarray:
        """Ones masks in uniform ``(D, W)`` word form."""
        return masks_as_words(self.ones)

    @property
    def zeros_words(self) -> np.ndarray:
        """Zeros masks in uniform ``(D, W)`` word form."""
        return masks_as_words(self.zeros)

    @property
    def padded_bits(self) -> int:
        """Length of the padded test-set string."""
        return self.n_blocks * self.block_length

    def block_trits(self, distinct_index: int) -> tuple[int, ...]:
        """Trit tuple of the distinct block with the given index."""
        return unpack_masks(
            words_to_int(self.ones_words[distinct_index]),
            words_to_int(self.zeros_words[distinct_index]),
            self.block_length,
        )

    def block_string(self, distinct_index: int) -> str:
        """Human-readable form of a distinct block (``X`` for don't-care)."""
        return format_trits(self.block_trits(distinct_index), unspecified="X")

    def specified_bit_count(self) -> int:
        """Number of specified (non-X) bits across the whole test set."""
        if self.n_distinct == 0:
            return 0
        popcount = np.vectorize(lambda mask: bin(int(mask)).count("1"))
        per_block = (popcount(self.ones_words) + popcount(self.zeros_words)).sum(
            axis=1
        )
        return int((per_block * self.counts).sum())

    def care_density(self) -> float:
        """Fraction of specified bits over the padded string (0.0 if empty)."""
        if self.padded_bits == 0:
            return 0.0
        return self.specified_bit_count() / self.padded_bits

    def iter_block_strings(self):
        """Yield every block of the test set, in order, as a string."""
        for distinct_index in self.sequence:
            yield self.block_string(int(distinct_index))

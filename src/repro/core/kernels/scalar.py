"""Scalar reference covering kernel: one genome, one Python MV loop.

:func:`cover_masks` is the original covering algorithm of the seed —
an explicit loop over MVs in priority order with vectorized per-block
match tests.  It is the semantic reference the batched kernels are
property-tested against, and (wrapped per genome by
:class:`ScalarKernel`) the fallback for workloads too small to justify
batched tensor setup.
"""

from __future__ import annotations

import numpy as np

from ..blocks import masks_as_words
from .base import CoveringKernel, PreparedBlocks

__all__ = ["ScalarKernel", "cover_masks"]


def cover_masks(
    block_ones: np.ndarray,
    block_zeros: np.ndarray,
    block_counts: np.ndarray,
    mv_ones: np.ndarray,
    mv_zeros: np.ndarray,
    covering_order: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Single-genome covering over plain mask arrays (the reference).

    Masks may be flat ``(N,)`` single-word values or ``(N, W)``
    little-endian word arrays (for ``K > 64``).  Returns
    ``(assignment, frequencies, uncovered)`` with the same meaning as
    :class:`repro.core.covering.CoveringResult`.
    """
    block_ones = masks_as_words(block_ones)
    block_zeros = masks_as_words(block_zeros)
    mv_ones = masks_as_words(mv_ones)
    mv_zeros = masks_as_words(mv_zeros)
    n_distinct = block_ones.shape[0]
    n_vectors = mv_ones.shape[0]
    assignment = np.full(n_distinct, -1, dtype=np.int64)
    unassigned = np.ones(n_distinct, dtype=bool)
    for mv_index in covering_order:
        if not unassigned.any():
            break
        conflicts = (block_ones & mv_zeros[mv_index]) | (
            block_zeros & mv_ones[mv_index]
        )
        hits = unassigned & (conflicts == 0).all(axis=1)
        assignment[hits] = mv_index
        unassigned &= ~hits
    frequencies = np.zeros(n_vectors, dtype=np.int64)
    covered = assignment >= 0
    block_counts = np.asarray(block_counts, dtype=np.int64)
    np.add.at(frequencies, assignment[covered], block_counts[covered])
    uncovered = int(block_counts[~covered].sum())
    return assignment, frequencies, uncovered


class ScalarKernel(CoveringKernel):
    """Batch adapter over the reference single-genome loop.

    Matches the batched kernels' early-exit contract: genomes with
    uncovered blocks report an exact ``uncovered`` count but all
    ``-1`` assignment rows and zero frequencies.  The factored
    :meth:`~CoveringKernel.match_columns` entry is served by the base
    class's vectorized word-mask test, which is this loop's own match
    expression applied one MV at a time — so the deduped fitness path
    stays bit-identical to the reference here too.
    """

    name = "scalar"

    def prepare_masks(
        self,
        block_ones: np.ndarray,
        block_zeros: np.ndarray,
        block_counts: np.ndarray,
        block_length: int,
    ) -> PreparedBlocks:
        return self._base_prepared(
            block_ones, block_zeros, block_counts, block_length
        )

    def cover_ordered_words(
        self,
        prepared: PreparedBlocks,
        ordered_ones: np.ndarray,
        ordered_zeros: np.ndarray,
        orders: np.ndarray,
        want_assignment: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        n_genomes, n_vectors = ordered_ones.shape[:2]
        n_distinct = prepared.n_distinct
        assignment, frequencies, uncovered = self._empty_results(
            n_genomes, n_vectors, n_distinct
        )
        if n_distinct == 0 or n_genomes == 0:
            return assignment, frequencies, uncovered
        identity = np.arange(n_vectors, dtype=np.int64)
        for row in range(n_genomes):
            # The MV rows are already in covering order, so cover with
            # the identity priority and map ranks back through `orders`.
            rank_assignment, rank_frequencies, row_uncovered = cover_masks(
                prepared.ones_words,
                prepared.zeros_words,
                prepared.counts,
                ordered_ones[row],
                ordered_zeros[row],
                identity,
            )
            uncovered[row] = row_uncovered
            if row_uncovered:
                continue  # early-exit contract: no assignment/frequencies
            frequencies[row, orders[row]] = rank_frequencies
            if want_assignment:
                assignment[row] = orders[row][rank_assignment]
        return assignment, frequencies, uncovered

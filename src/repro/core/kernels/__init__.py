"""Pluggable covering kernels and their selection registry.

Four interchangeable backends price the covering inner loop (see
:mod:`repro.core.kernels.base` for the shared contract):

* ``gemm``    — float32 bit matrices, one BLAS matrix product per
  genome chunk; strongest where BLAS compute density pays — wide
  blocks (multi-word lanes) over modest distinct-block tables;
* ``bitpack`` — fused integer conflict lanes with D-axis sharding;
  the fastest *array* kernel whenever the 2K-bit lane fits two uint64
  words and the block table is large enough to make the GEMM operands
  memory-bandwidth bound;
* ``native``  — the same fused-lane match test as a cc-compiled C
  loop (:mod:`repro.core.kernels.native`): no numpy temporaries,
  branch-free single-word matching, first-match early exit, optional
  OpenMP over the D axis.  Compiled on first use and cached under
  ``$REPRO_CACHE_DIR/native/``; on machines without a C toolchain the
  registry reports it *unavailable* and every selection path below
  skips it;
* ``scalar``  — the original per-genome Python loop; the semantic
  reference and the cheapest option for tiny one-off coverings.

``auto`` picks per workload shape via :func:`select_kernel_name`,
keyed on ``(C, D, L, K)`` — consulting availability first, so a
missing compiler silently narrows the choice to the array kernels.
An *explicitly requested* kernel that is unavailable fails loudly in
:func:`resolve_kernel` instead: the caller asked for something this
machine cannot do, and silently substituting a different backend
would misattribute every downstream timing.  All kernels return
bit-identical results, so selection only ever moves the wall clock.
"""

from __future__ import annotations

from collections.abc import Callable

from ...tuning.profile import TuningProfile, get_active_profile
from .base import (
    CoveringKernel,
    PreparedBlocks,
    accumulate_complete_rows,
    build_count_lut,
    cover_from_match_columns,
    cover_packed_columns,
    first_match_rank,
    pack_match_columns,
    rank_word_bits,
)
from .bitpack import BitpackKernel
from .build import NativeBuildError
from .gemm import GemmKernel, cover_bits_batch, unpack_mask_bits
from .native import NativeKernel, native_status
from .scalar import ScalarKernel, cover_masks

__all__ = [
    "AUTO_KERNEL",
    "KERNEL_CHOICES",
    "BitpackKernel",
    "CoveringKernel",
    "GemmKernel",
    "NativeBuildError",
    "NativeKernel",
    "PreparedBlocks",
    "ScalarKernel",
    "accumulate_complete_rows",
    "available_kernels",
    "build_count_lut",
    "cover_bits_batch",
    "cover_from_match_columns",
    "cover_masks",
    "cover_packed_columns",
    "first_match_rank",
    "get_kernel",
    "kernel_availability",
    "kernel_unavailable_reason",
    "pack_match_columns",
    "rank_word_bits",
    "register_kernel",
    "resolve_kernel",
    "select_kernel_name",
    "unpack_mask_bits",
    "usable_kernels",
]

AUTO_KERNEL = "auto"

_REGISTRY: dict[str, Callable[[], CoveringKernel]] = {
    GemmKernel.name: GemmKernel,
    BitpackKernel.name: BitpackKernel,
    ScalarKernel.name: ScalarKernel,
    NativeKernel.name: NativeKernel,
}

# Per-kernel availability probes: absent = always available.  A probe
# returns None (usable) or a human-readable unavailability reason.
# The native probe triggers the compile-on-first-use machinery, so
# availability is never asked at import time — only when a selection
# or listing actually needs the answer.
_AVAILABILITY: dict[str, Callable[[], str | None]] = {
    NativeKernel.name: lambda: native_status()[1],
}

# The names the CLI/config layer accepts, `auto` first.  Unavailable
# kernels stay listed — naming one is valid configuration; it fails
# with the reason at resolution time, not at parse time.
KERNEL_CHOICES = (AUTO_KERNEL, *sorted(_REGISTRY))

# Auto-selection thresholds: the no-profile defaults, calibrated on
# the workloads of ``benchmarks/bench_batch.py`` and re-confirmed by
# the ``repro tune`` prober (single-core CI-class container; see
# ROADMAP "Tuning architecture").  Bitpack's fused conflict lane holds
# 2K bits; while it fits in at most two uint64 words (K <= 64) the
# integer kernel measured 1.3–1.4× faster once the distinct table
# outgrows BLAS's cache-resident sweet spot (medium D≈860, large
# D≈3330), while tiny tables (small D≈150) stay GEMM territory.  Past
# two lane words the per-element AND loop grows with K while BLAS
# keeps its compute density — gemm wins there until the table is
# large enough that its 4-bytes-per-bit operands go bandwidth-bound.
# A :class:`repro.tuning.TuningProfile` (explicit argument, or the
# process-wide active profile set by ``--profile``) overrides the
# distinct-table cutovers per machine; these module constants remain
# the fallback so behavior without a profile is unchanged.
# Recalibration (PR 5, `repro tune` full mode on the single-core
# CI-class container): the narrow crossover measured D>=512 at the
# probe shape (C=32, L=32) vs the 256 shipped from the L=64 bench
# workloads — the crossover moves with L because GEMM amortizes its
# operand streaming over more MV rows.  The shipped default keeps the
# bench-shape value (the EA's real shape); shape sensitivity is what
# `--profile` is for.  The wide crossover never arrived within the
# probed range (D<=4096) on this container — BLAS keeps multi-word
# lanes ahead longer than the PR-3 estimate — so 2048 stands as a
# conservative bench-derived default there too.
BITPACK_MAX_LANE_WORDS = 2
BITPACK_MIN_DISTINCT = 256
BITPACK_WIDE_MIN_DISTINCT = 2048
# Native-kernel cutovers (PR 8): on the probed container the compiled
# AND+popcount loop beat BOTH array kernels at every batched shape —
# narrow from D=64 and wide from D=256, the smallest points probed —
# growing to ~3.6× over bitpack on the bandwidth-bound large table.
# A floor of 1 therefore means "whenever the batch leaves the scalar
# corner"; the tuning prober raises these per machine if an exotic
# BLAS ever wins a region back.  Only consulted when the native
# kernel is actually available.
NATIVE_MIN_DISTINCT = 1
NATIVE_WIDE_MIN_DISTINCT = 1
# Below this many match tests (distinct blocks × MVs) a single
# uncached covering is cheaper as the plain Python loop than as
# batched tensor setup.  (Not probed by ``repro tune``: the scalar
# corner is interactive-only and off the EA hot path.)
SCALAR_MAX_WORK = 512


def register_kernel(
    name: str,
    factory: Callable[[], CoveringKernel],
    availability: Callable[[], str | None] | None = None,
) -> None:
    """Register a covering-kernel factory under ``name``.

    Extension hook for out-of-tree kernels; ``auto`` never selects a
    registered-late kernel, but explicit configuration can.
    ``availability``, when given, is called lazily and returns ``None``
    (usable) or a human-readable unavailability reason — see
    :func:`kernel_unavailable_reason`.
    """
    if not name or name == AUTO_KERNEL:
        raise ValueError(f"invalid kernel name {name!r}")
    _REGISTRY[name] = factory
    if availability is not None:
        _AVAILABILITY[name] = availability
    else:
        _AVAILABILITY.pop(name, None)


def available_kernels() -> tuple[str, ...]:
    """Names of every registered kernel (without ``auto``).

    Registration, not usability: an unavailable kernel (e.g.
    ``native`` without a C compiler) is still listed here because its
    name is still valid configuration.  Use :func:`usable_kernels` or
    :func:`kernel_availability` for what can actually run.
    """
    return tuple(sorted(_REGISTRY))


def usable_kernels() -> tuple[str, ...]:
    """Names of every registered kernel that can run on this machine."""
    return tuple(
        name
        for name in sorted(_REGISTRY)
        if kernel_unavailable_reason(name) is None
    )


def kernel_unavailable_reason(name: str) -> str | None:
    """Why ``name`` cannot run here, or ``None`` when it can.

    Unknown names raise ``ValueError`` (matching :func:`get_kernel`);
    kernels without an availability probe are always usable.  For
    ``native`` this triggers the compile-on-first-use machinery, so
    the first call may take a moment (and warms the build cache).
    """
    if name not in _REGISTRY:
        known = ", ".join((AUTO_KERNEL, *available_kernels()))
        raise ValueError(
            f"unknown covering kernel {name!r}; choose one of: {known}"
        )
    probe = _AVAILABILITY.get(name)
    return None if probe is None else probe()


def kernel_availability() -> dict[str, str | None]:
    """Every registered kernel → its unavailability reason (or ``None``)."""
    return {name: kernel_unavailable_reason(name) for name in sorted(_REGISTRY)}


def get_kernel(name: str, **options) -> CoveringKernel:
    """Instantiate the kernel registered under ``name``.

    >>> get_kernel("bitpack").name
    'bitpack'
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join((AUTO_KERNEL, *available_kernels()))
        raise ValueError(
            f"unknown covering kernel {name!r}; choose one of: {known}"
        ) from None
    return factory(**options)


def select_kernel_name(
    n_genomes: int,
    n_distinct: int,
    n_vectors: int,
    block_length: int,
    profile: TuningProfile | None = None,
) -> str:
    """The ``auto`` heuristic, keyed on the workload shape (C, D, L, K).

    * The single-genome, tiny-covering corner (``D·L`` match tests
      under ``SCALAR_MAX_WORK``; interactive ``cover`` calls) goes to
      ``scalar``: batched tensor setup costs more than the loop.
    * When the compiled ``native`` kernel is available, batched shapes
      past its (per-lane-width) distinct-table floor go to it — on the
      shipped defaults that is every batched shape, matching the
      measurement that the C loop beat both array kernels everywhere
      probed.  Unavailable (no compiler) means this rule silently
      vanishes and the array heuristics below decide alone.
    * Narrow fused lanes (2K bits in at most two uint64 words) over a
      distinct table past ``BITPACK_MIN_DISTINCT`` go to ``bitpack``
      — measured 1.3–1.4× over GEMM there, growing with the table as
      GEMM goes memory-bandwidth bound.
    * Wider lanes (K > 64) go to ``gemm`` while the table is modest —
      BLAS keeps its compute density where the word loop cannot — and
      back to ``bitpack`` once the table is large enough that GEMM's
      4-bytes-per-bit operands dominate.
    * Everything else (tiny tables) stays with ``gemm``.

    ``profile`` (or, when omitted, the process-wide active profile)
    replaces the distinct-table cutovers with machine-measured ones;
    without either, the module constants above apply unchanged.
    """
    if profile is None:
        profile = get_active_profile()
    if profile is None:
        min_distinct = BITPACK_MIN_DISTINCT
        wide_min_distinct = BITPACK_WIDE_MIN_DISTINCT
        scalar_max_work = SCALAR_MAX_WORK
        native_min_distinct = NATIVE_MIN_DISTINCT
        native_wide_min_distinct = NATIVE_WIDE_MIN_DISTINCT
    else:
        min_distinct = profile.bitpack_min_distinct
        wide_min_distinct = profile.bitpack_wide_min_distinct
        scalar_max_work = profile.scalar_max_work
        native_min_distinct = profile.native_min_distinct
        native_wide_min_distinct = profile.native_wide_min_distinct
    if n_genomes <= 1 and n_distinct * n_vectors <= scalar_max_work:
        return ScalarKernel.name
    lane_words = -(-2 * block_length // 64)
    narrow = lane_words <= BITPACK_MAX_LANE_WORDS
    native_floor = native_min_distinct if narrow else native_wide_min_distinct
    if (
        n_distinct >= native_floor
        and kernel_unavailable_reason(NativeKernel.name) is None
    ):
        return NativeKernel.name
    if narrow and n_distinct >= min_distinct:
        return BitpackKernel.name
    if n_distinct >= wide_min_distinct:
        return BitpackKernel.name
    return GemmKernel.name


def resolve_kernel(
    choice: str | CoveringKernel,
    n_genomes: int,
    n_distinct: int,
    n_vectors: int,
    block_length: int,
    profile: TuningProfile | None = None,
) -> CoveringKernel:
    """Turn a kernel choice (name, ``auto`` or instance) into a kernel.

    ``profile`` tunes both halves of the decision: ``auto`` selects
    with the profile's cutovers, and a bitpack instance is built with
    the profile's ``bitpack_shard_size`` (when set) instead of the
    kernel's cache-budget autosizing.

    Availability is threaded through both paths asymmetrically:
    ``auto`` only ever selects usable kernels (an unavailable
    ``native`` silently disappears from the choice), while an
    explicitly named kernel that is unavailable raises with the
    reason — substituting a different backend behind an explicit
    request would misattribute every downstream timing.
    """
    if isinstance(choice, CoveringKernel):
        return choice
    if profile is None:
        profile = get_active_profile()
    if choice == AUTO_KERNEL:
        choice = select_kernel_name(
            n_genomes, n_distinct, n_vectors, block_length, profile=profile
        )
    elif choice in _REGISTRY:
        reason = kernel_unavailable_reason(choice)
        if reason is not None:
            raise ValueError(
                f"covering kernel {choice!r} is unavailable on this "
                f"machine: {reason}"
            )
    if (
        choice == BitpackKernel.name
        and profile is not None
        and profile.bitpack_shard_size is not None
    ):
        return get_kernel(choice, shard_size=profile.bitpack_shard_size)
    return get_kernel(choice)

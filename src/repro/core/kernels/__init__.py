"""Pluggable covering kernels and their selection registry.

Three interchangeable backends price the covering inner loop (see
:mod:`repro.core.kernels.base` for the shared contract):

* ``gemm``    — float32 bit matrices, one BLAS matrix product per
  genome chunk; strongest where BLAS compute density pays — wide
  blocks (multi-word lanes) over modest distinct-block tables;
* ``bitpack`` — fused integer conflict lanes with D-axis sharding;
  measured fastest whenever the 2K-bit lane fits two uint64 words,
  and the kernel of choice once the block table is large enough to
  make the GEMM operands memory-bandwidth bound;
* ``scalar``  — the original per-genome Python loop; the semantic
  reference and the cheapest option for tiny one-off coverings.

``auto`` picks per workload shape via :func:`select_kernel_name`,
keyed on ``(C, D, L, K)``.  All kernels return bit-identical results,
so the choice only ever moves the wall clock.
"""

from __future__ import annotations

from collections.abc import Callable

from ...tuning.profile import TuningProfile, get_active_profile
from .base import (
    CoveringKernel,
    PreparedBlocks,
    accumulate_complete_rows,
    build_count_lut,
    cover_from_match_columns,
    cover_packed_columns,
    first_match_rank,
    pack_match_columns,
    rank_word_bits,
)
from .bitpack import BitpackKernel
from .gemm import GemmKernel, cover_bits_batch, unpack_mask_bits
from .scalar import ScalarKernel, cover_masks

__all__ = [
    "AUTO_KERNEL",
    "KERNEL_CHOICES",
    "BitpackKernel",
    "CoveringKernel",
    "GemmKernel",
    "PreparedBlocks",
    "ScalarKernel",
    "accumulate_complete_rows",
    "available_kernels",
    "build_count_lut",
    "cover_bits_batch",
    "cover_from_match_columns",
    "cover_masks",
    "cover_packed_columns",
    "first_match_rank",
    "get_kernel",
    "pack_match_columns",
    "rank_word_bits",
    "register_kernel",
    "resolve_kernel",
    "select_kernel_name",
    "unpack_mask_bits",
]

AUTO_KERNEL = "auto"

_REGISTRY: dict[str, Callable[[], CoveringKernel]] = {
    GemmKernel.name: GemmKernel,
    BitpackKernel.name: BitpackKernel,
    ScalarKernel.name: ScalarKernel,
}

# The names the CLI/config layer accepts, `auto` first.
KERNEL_CHOICES = (AUTO_KERNEL, *sorted(_REGISTRY))

# Auto-selection thresholds: the no-profile defaults, calibrated on
# the workloads of ``benchmarks/bench_batch.py`` and re-confirmed by
# the ``repro tune`` prober (single-core CI-class container; see
# ROADMAP "Tuning architecture").  Bitpack's fused conflict lane holds
# 2K bits; while it fits in at most two uint64 words (K <= 64) the
# integer kernel measured 1.3–1.4× faster once the distinct table
# outgrows BLAS's cache-resident sweet spot (medium D≈860, large
# D≈3330), while tiny tables (small D≈150) stay GEMM territory.  Past
# two lane words the per-element AND loop grows with K while BLAS
# keeps its compute density — gemm wins there until the table is
# large enough that its 4-bytes-per-bit operands go bandwidth-bound.
# A :class:`repro.tuning.TuningProfile` (explicit argument, or the
# process-wide active profile set by ``--profile``) overrides the
# distinct-table cutovers per machine; these module constants remain
# the fallback so behavior without a profile is unchanged.
# Recalibration (PR 5, `repro tune` full mode on the single-core
# CI-class container): the narrow crossover measured D>=512 at the
# probe shape (C=32, L=32) vs the 256 shipped from the L=64 bench
# workloads — the crossover moves with L because GEMM amortizes its
# operand streaming over more MV rows.  The shipped default keeps the
# bench-shape value (the EA's real shape); shape sensitivity is what
# `--profile` is for.  The wide crossover never arrived within the
# probed range (D<=4096) on this container — BLAS keeps multi-word
# lanes ahead longer than the PR-3 estimate — so 2048 stands as a
# conservative bench-derived default there too.
BITPACK_MAX_LANE_WORDS = 2
BITPACK_MIN_DISTINCT = 256
BITPACK_WIDE_MIN_DISTINCT = 2048
# Below this many match tests (distinct blocks × MVs) a single
# uncached covering is cheaper as the plain Python loop than as
# batched tensor setup.  (Not probed by ``repro tune``: the scalar
# corner is interactive-only and off the EA hot path.)
SCALAR_MAX_WORK = 512


def register_kernel(name: str, factory: Callable[[], CoveringKernel]) -> None:
    """Register a covering-kernel factory under ``name``.

    Extension hook for out-of-tree kernels; ``auto`` never selects a
    registered-late kernel, but explicit configuration can.
    """
    if not name or name == AUTO_KERNEL:
        raise ValueError(f"invalid kernel name {name!r}")
    _REGISTRY[name] = factory


def available_kernels() -> tuple[str, ...]:
    """Names of every registered kernel (without ``auto``)."""
    return tuple(sorted(_REGISTRY))


def get_kernel(name: str, **options) -> CoveringKernel:
    """Instantiate the kernel registered under ``name``.

    >>> get_kernel("bitpack").name
    'bitpack'
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join((AUTO_KERNEL, *available_kernels()))
        raise ValueError(
            f"unknown covering kernel {name!r}; choose one of: {known}"
        ) from None
    return factory(**options)


def select_kernel_name(
    n_genomes: int,
    n_distinct: int,
    n_vectors: int,
    block_length: int,
    profile: TuningProfile | None = None,
) -> str:
    """The ``auto`` heuristic, keyed on the workload shape (C, D, L, K).

    * The single-genome, tiny-covering corner (``D·L`` match tests
      under ``SCALAR_MAX_WORK``; interactive ``cover`` calls) goes to
      ``scalar``: batched tensor setup costs more than the loop.
    * Narrow fused lanes (2K bits in at most two uint64 words) over a
      distinct table past ``BITPACK_MIN_DISTINCT`` go to ``bitpack``
      — measured 1.3–1.4× over GEMM there, growing with the table as
      GEMM goes memory-bandwidth bound.
    * Wider lanes (K > 64) go to ``gemm`` while the table is modest —
      BLAS keeps its compute density where the word loop cannot — and
      back to ``bitpack`` once the table is large enough that GEMM's
      4-bytes-per-bit operands dominate.
    * Everything else (tiny tables) stays with ``gemm``.

    ``profile`` (or, when omitted, the process-wide active profile)
    replaces the distinct-table cutovers with machine-measured ones;
    without either, the module constants above apply unchanged.
    """
    if profile is None:
        profile = get_active_profile()
    if profile is None:
        min_distinct = BITPACK_MIN_DISTINCT
        wide_min_distinct = BITPACK_WIDE_MIN_DISTINCT
        scalar_max_work = SCALAR_MAX_WORK
    else:
        min_distinct = profile.bitpack_min_distinct
        wide_min_distinct = profile.bitpack_wide_min_distinct
        scalar_max_work = profile.scalar_max_work
    if n_genomes <= 1 and n_distinct * n_vectors <= scalar_max_work:
        return ScalarKernel.name
    lane_words = -(-2 * block_length // 64)
    if lane_words <= BITPACK_MAX_LANE_WORDS and n_distinct >= min_distinct:
        return BitpackKernel.name
    if n_distinct >= wide_min_distinct:
        return BitpackKernel.name
    return GemmKernel.name


def resolve_kernel(
    choice: str | CoveringKernel,
    n_genomes: int,
    n_distinct: int,
    n_vectors: int,
    block_length: int,
    profile: TuningProfile | None = None,
) -> CoveringKernel:
    """Turn a kernel choice (name, ``auto`` or instance) into a kernel.

    ``profile`` tunes both halves of the decision: ``auto`` selects
    with the profile's cutovers, and a bitpack instance is built with
    the profile's ``bitpack_shard_size`` (when set) instead of the
    kernel's cache-budget autosizing.
    """
    if isinstance(choice, CoveringKernel):
        return choice
    if profile is None:
        profile = get_active_profile()
    if choice == AUTO_KERNEL:
        choice = select_kernel_name(
            n_genomes, n_distinct, n_vectors, block_length, profile=profile
        )
    if (
        choice == BitpackKernel.name
        and profile is not None
        and profile.bitpack_shard_size is not None
    ):
        return get_kernel(choice, shard_size=profile.bitpack_shard_size)
    return get_kernel(choice)

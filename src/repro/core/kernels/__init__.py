"""Pluggable covering kernels and their selection registry.

Three interchangeable backends price the covering inner loop (see
:mod:`repro.core.kernels.base` for the shared contract):

* ``gemm``    — float32 bit matrices, one BLAS matrix product per
  genome chunk; strongest where BLAS compute density pays — wide
  blocks (multi-word lanes) over modest distinct-block tables;
* ``bitpack`` — fused integer conflict lanes with D-axis sharding;
  measured fastest whenever the 2K-bit lane fits two uint64 words,
  and the kernel of choice once the block table is large enough to
  make the GEMM operands memory-bandwidth bound;
* ``scalar``  — the original per-genome Python loop; the semantic
  reference and the cheapest option for tiny one-off coverings.

``auto`` picks per workload shape via :func:`select_kernel_name`,
keyed on ``(C, D, L, K)``.  All kernels return bit-identical results,
so the choice only ever moves the wall clock.
"""

from __future__ import annotations

from collections.abc import Callable

from .base import (
    CoveringKernel,
    PreparedBlocks,
    accumulate_complete_rows,
    build_count_lut,
    cover_from_match_columns,
    cover_packed_columns,
    first_match_rank,
    pack_match_columns,
    rank_word_bits,
)
from .bitpack import BitpackKernel
from .gemm import GemmKernel, cover_bits_batch, unpack_mask_bits
from .scalar import ScalarKernel, cover_masks

__all__ = [
    "AUTO_KERNEL",
    "KERNEL_CHOICES",
    "BitpackKernel",
    "CoveringKernel",
    "GemmKernel",
    "PreparedBlocks",
    "ScalarKernel",
    "accumulate_complete_rows",
    "available_kernels",
    "build_count_lut",
    "cover_bits_batch",
    "cover_from_match_columns",
    "cover_masks",
    "cover_packed_columns",
    "first_match_rank",
    "get_kernel",
    "pack_match_columns",
    "rank_word_bits",
    "register_kernel",
    "resolve_kernel",
    "select_kernel_name",
    "unpack_mask_bits",
]

AUTO_KERNEL = "auto"

_REGISTRY: dict[str, Callable[[], CoveringKernel]] = {
    GemmKernel.name: GemmKernel,
    BitpackKernel.name: BitpackKernel,
    ScalarKernel.name: ScalarKernel,
}

# The names the CLI/config layer accepts, `auto` first.
KERNEL_CHOICES = (AUTO_KERNEL, *sorted(_REGISTRY))

# Auto-selection thresholds, calibrated on the workloads of
# ``benchmarks/bench_batch.py`` (single-core container; see ROADMAP
# "Performance architecture").  Bitpack's fused conflict lane holds 2K
# bits; while it fits in at most two uint64 words (K <= 64) the
# integer kernel measured 1.3–1.4× faster once the distinct table
# outgrows BLAS's cache-resident sweet spot (medium D≈860, large
# D≈3330), while tiny tables (small D≈150) stay GEMM territory.  Past
# two lane words the per-element AND loop grows with K while BLAS
# keeps its compute density — gemm wins there until the table is
# large enough that its 4-bytes-per-bit operands go bandwidth-bound.
BITPACK_MAX_LANE_WORDS = 2
BITPACK_MIN_DISTINCT = 256
BITPACK_WIDE_MIN_DISTINCT = 2048
# Below this many match tests (distinct blocks × MVs) a single
# uncached covering is cheaper as the plain Python loop than as
# batched tensor setup.
SCALAR_MAX_WORK = 512


def register_kernel(name: str, factory: Callable[[], CoveringKernel]) -> None:
    """Register a covering-kernel factory under ``name``.

    Extension hook for out-of-tree kernels; ``auto`` never selects a
    registered-late kernel, but explicit configuration can.
    """
    if not name or name == AUTO_KERNEL:
        raise ValueError(f"invalid kernel name {name!r}")
    _REGISTRY[name] = factory


def available_kernels() -> tuple[str, ...]:
    """Names of every registered kernel (without ``auto``)."""
    return tuple(sorted(_REGISTRY))


def get_kernel(name: str, **options) -> CoveringKernel:
    """Instantiate the kernel registered under ``name``.

    >>> get_kernel("bitpack").name
    'bitpack'
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join((AUTO_KERNEL, *available_kernels()))
        raise ValueError(
            f"unknown covering kernel {name!r}; choose one of: {known}"
        ) from None
    return factory(**options)


def select_kernel_name(
    n_genomes: int,
    n_distinct: int,
    n_vectors: int,
    block_length: int,
) -> str:
    """The ``auto`` heuristic, keyed on the workload shape (C, D, L, K).

    * The single-genome, tiny-covering corner (``D·L`` match tests
      under ``SCALAR_MAX_WORK``; interactive ``cover`` calls) goes to
      ``scalar``: batched tensor setup costs more than the loop.
    * Narrow fused lanes (2K bits in at most two uint64 words) over a
      distinct table past ``BITPACK_MIN_DISTINCT`` go to ``bitpack``
      — measured 1.3–1.4× over GEMM there, growing with the table as
      GEMM goes memory-bandwidth bound.
    * Wider lanes (K > 64) go to ``gemm`` while the table is modest —
      BLAS keeps its compute density where the word loop cannot — and
      back to ``bitpack`` once the table is large enough that GEMM's
      4-bytes-per-bit operands dominate.
    * Everything else (tiny tables) stays with ``gemm``.
    """
    if n_genomes <= 1 and n_distinct * n_vectors <= SCALAR_MAX_WORK:
        return ScalarKernel.name
    lane_words = -(-2 * block_length // 64)
    if (
        lane_words <= BITPACK_MAX_LANE_WORDS
        and n_distinct >= BITPACK_MIN_DISTINCT
    ):
        return BitpackKernel.name
    if n_distinct >= BITPACK_WIDE_MIN_DISTINCT:
        return BitpackKernel.name
    return GemmKernel.name


def resolve_kernel(
    choice: str | CoveringKernel,
    n_genomes: int,
    n_distinct: int,
    n_vectors: int,
    block_length: int,
) -> CoveringKernel:
    """Turn a kernel choice (name, ``auto`` or instance) into a kernel."""
    if isinstance(choice, CoveringKernel):
        return choice
    if choice == AUTO_KERNEL:
        choice = select_kernel_name(
            n_genomes, n_distinct, n_vectors, block_length
        )
    return get_kernel(choice)

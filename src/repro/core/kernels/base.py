"""The covering-kernel contract shared by every backend.

A *covering kernel* answers one batched question: given the fixed
distinct-block table of a :class:`~repro.core.blocks.BlockSet` and a
generation of ``C`` genomes — each an ordered list of ``L`` matching
vectors — which MV covers each block first, how often is each MV used,
and how many blocks stay uncovered?  Everything above this layer
(fitness pricing, the EA engine, the experiment protocol) is kernel
agnostic; everything below it (float32 GEMM, bit-packed integer lanes,
the scalar reference loop) is swappable per workload shape.

All kernels share one contract, pinned by the cross-kernel parity
suite: for identical inputs they return **bit-identical**
``(assignment, frequencies, uncovered)`` triples, including the
early-exit convention — a genome whose MVs cannot cover every block
reports an exact ``uncovered`` count but an all ``-1`` assignment row
and an all-zero frequency row.  Seeded experiments are therefore
byte-identical no matter which kernel priced them.

Kernels are stateless objects configured at construction; per-block-set
state lives in the *prepared* value returned by :meth:`prepare` (each
kernel chooses its own representation: float bit matrices for GEMM,
uint64 word lanes for bitpack).  The three entry points differ only in
input encoding:

* :meth:`cover_ordered_words` — MV masks as ``(C, L, W)`` uint64 word
  lanes *already permuted* into covering order (the abstract core);
* :meth:`cover_masks` — declaration-order masks, flat ``(C, L)`` or
  ``(C, L, W)``; permuted here and delegated;
* :meth:`cover_grid` — the ordered ``(C, L, K)`` trit grid straight
  from the EA genome matrix (the fitness hot path; kernels may
  override to skip the intermediate word packing).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..blocks import (
    BlockSet,
    mask_word_count,
    masks_as_words,
    pack_bits_to_words,
)
from ..trits import ONE, ZERO

__all__ = ["CoveringKernel", "PreparedBlocks", "accumulate_complete_rows"]


@dataclass(frozen=True)
class PreparedBlocks:
    """Kernel-ready view of one distinct-block table.

    ``counts_f`` is the float64 copy used in weighted dot products
    (exact up to 2**53, far beyond any test set); subclasses add the
    kernel's private representation of the block masks.
    """

    block_length: int
    word_count: int
    n_distinct: int
    counts: np.ndarray
    counts_f: np.ndarray
    total_count: int
    ones_words: np.ndarray
    zeros_words: np.ndarray


def accumulate_complete_rows(
    assignment: np.ndarray,
    frequencies: np.ndarray,
    start: int,
    sub: np.ndarray,
    sub_rank: np.ndarray,
    order: np.ndarray,
    counts: np.ndarray,
    want_assignment: bool,
) -> None:
    """Scatter one chunk's complete genomes into the result arrays.

    ``sub`` indexes the complete genomes within the chunk starting at
    global row ``start``; ``sub_rank`` is their ``(len(sub), D)``
    first-match covering ranks.  Block multiplicities are scatter-added
    per rank, then mapped from rank space back to MV index space
    through the genomes' ``order`` rows — shared verbatim by the GEMM
    and bitpack kernels so their results cannot drift apart.
    """
    n_vectors = frequencies.shape[1]
    flat = np.arange(sub.size)[:, None] * n_vectors + sub_rank
    counts_tiled = np.broadcast_to(counts, sub_rank.shape)
    rank_frequencies = np.bincount(
        flat.ravel(),
        weights=counts_tiled.ravel(),
        minlength=sub.size * n_vectors,
    ).reshape(sub.size, n_vectors)
    sub_order = order[start + sub]
    frequencies[start + sub[:, None], sub_order] = rank_frequencies.astype(
        np.int64
    )
    if want_assignment:
        assignment[start + sub] = sub_order[
            np.arange(sub.size)[:, None], sub_rank
        ]


class CoveringKernel(abc.ABC):
    """Abstract covering kernel; see the module docstring for the contract."""

    name: str = "abstract"

    # -- preparation --------------------------------------------------

    @abc.abstractmethod
    def prepare_masks(
        self,
        block_ones: np.ndarray,
        block_zeros: np.ndarray,
        block_counts: np.ndarray,
        block_length: int,
    ) -> PreparedBlocks:
        """Build the kernel's per-block-set state from raw mask arrays."""

    def prepare(self, blocks: BlockSet) -> PreparedBlocks:
        """Build the kernel's per-block-set state from a :class:`BlockSet`."""
        return self.prepare_masks(
            blocks.ones, blocks.zeros, blocks.counts, blocks.block_length
        )

    def _base_prepared(
        self,
        block_ones: np.ndarray,
        block_zeros: np.ndarray,
        block_counts: np.ndarray,
        block_length: int,
    ) -> PreparedBlocks:
        ones_words = masks_as_words(block_ones)
        zeros_words = masks_as_words(block_zeros)
        counts = np.asarray(block_counts, dtype=np.int64)
        return PreparedBlocks(
            block_length=block_length,
            word_count=mask_word_count(block_length),
            n_distinct=ones_words.shape[0],
            counts=counts,
            counts_f=counts.astype(np.float64),
            total_count=int(counts.sum()),
            ones_words=ones_words,
            zeros_words=zeros_words,
        )

    # -- covering entry points ----------------------------------------

    @abc.abstractmethod
    def cover_ordered_words(
        self,
        prepared: PreparedBlocks,
        ordered_ones: np.ndarray,
        ordered_zeros: np.ndarray,
        orders: np.ndarray,
        want_assignment: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cover with ``(C, L, W)`` MV word lanes in covering order.

        Row ``j`` of genome ``c`` is the MV tried ``j``-th; ``orders``
        maps that rank back to declaration-order MV indices.  Returns
        ``(assignment, frequencies, uncovered)`` of shapes ``(C, D)``,
        ``(C, L)`` and ``(C,)``.
        """

    def cover_masks(
        self,
        prepared: PreparedBlocks,
        mv_ones: np.ndarray,
        mv_zeros: np.ndarray,
        covering_order: np.ndarray,
        want_assignment: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cover with declaration-order ``(C, L[, W])`` mask arrays.

        Single-genome callers may pass flat ``(L,)`` masks or
        ``(L, W)`` word arrays with a 1-D ``covering_order`` — the
        order's dimensionality disambiguates ``(L, W)`` words from a
        ``(C, L)`` flat batch.
        """
        mv_ones = np.asarray(mv_ones, dtype=np.uint64)
        mv_zeros = np.asarray(mv_zeros, dtype=np.uint64)
        order_input = np.asarray(covering_order, dtype=np.int64)
        if mv_ones.ndim == 1 or (
            mv_ones.ndim == 2 and order_input.ndim == 1
        ):
            mv_ones = mv_ones[None]
            mv_zeros = mv_zeros[None]
        orders = np.atleast_2d(order_input)
        if mv_ones.ndim == 2:
            mv_ones = mv_ones[..., None]
            mv_zeros = mv_zeros[..., None]
        genome_rows = np.arange(mv_ones.shape[0])[:, None]
        return self.cover_ordered_words(
            prepared,
            mv_ones[genome_rows, orders],
            mv_zeros[genome_rows, orders],
            orders,
            want_assignment=want_assignment,
        )

    def cover_grid(
        self,
        prepared: PreparedBlocks,
        ordered_grid: np.ndarray,
        orders: np.ndarray,
        want_assignment: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cover with the ordered ``(C, L, K)`` trit grid (fitness path)."""
        return self.cover_ordered_words(
            prepared,
            pack_bits_to_words(ordered_grid == ONE),
            pack_bits_to_words(ordered_grid == ZERO),
            np.atleast_2d(np.asarray(orders, dtype=np.int64)),
            want_assignment=want_assignment,
        )

    # -- shared helpers -----------------------------------------------

    @staticmethod
    def _empty_results(
        n_genomes: int, n_vectors: int, n_distinct: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The all-uncovered result skeleton every kernel starts from."""
        return (
            np.full((n_genomes, n_distinct), -1, dtype=np.int64),
            np.zeros((n_genomes, n_vectors), dtype=np.int64),
            np.zeros(n_genomes, dtype=np.int64),
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

"""The covering-kernel contract shared by every backend.

A *covering kernel* answers one batched question: given the fixed
distinct-block table of a :class:`~repro.core.blocks.BlockSet` and a
generation of ``C`` genomes — each an ordered list of ``L`` matching
vectors — which MV covers each block first, how often is each MV used,
and how many blocks stay uncovered?  Everything above this layer
(fitness pricing, the EA engine, the experiment protocol) is kernel
agnostic; everything below it (float32 GEMM, bit-packed integer lanes,
the scalar reference loop) is swappable per workload shape.

All kernels share one contract, pinned by the cross-kernel parity
suite: for identical inputs they return **bit-identical**
``(assignment, frequencies, uncovered)`` triples, including the
early-exit convention — a genome whose MVs cannot cover every block
reports an exact ``uncovered`` count but an all ``-1`` assignment row
and an all-zero frequency row.  Seeded experiments are therefore
byte-identical no matter which kernel priced them.

Kernels are stateless objects configured at construction; per-block-set
state lives in the *prepared* value returned by :meth:`prepare` (each
kernel chooses its own representation: float bit matrices for GEMM,
uint64 word lanes for bitpack).  The three entry points differ only in
input encoding:

* :meth:`cover_ordered_words` — MV masks as ``(C, L, W)`` uint64 word
  lanes *already permuted* into covering order (the abstract core);
* :meth:`cover_masks` — declaration-order masks, flat ``(C, L)`` or
  ``(C, L, W)``; permuted here and delegated;
* :meth:`cover_grid` — the ordered ``(C, L, K)`` trit grid straight
  from the EA genome matrix (the fitness hot path; kernels may
  override to skip the intermediate word packing).

Beyond the fused entry points, every kernel also answers the *factored*
question through :meth:`match_columns`: for ``M`` standalone MVs, which
distinct blocks does each match?  The match column of an MV depends
only on (MV, block table) — never on its neighbors or its priority
position — so the batched fitness dedups a generation down to its
unique MV rows, asks the kernel for the missing columns only, and
reassembles per-genome coverings with :func:`cover_from_match_columns`
(the shared gather + first-match helper).  Both decompositions return
bit-identical results.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..blocks import (
    BlockSet,
    mask_word_count,
    masks_as_words,
    pack_bits_to_words,
)
from ..trits import ONE, ZERO

__all__ = [
    "CoveringKernel",
    "PreparedBlocks",
    "accumulate_complete_rows",
    "build_count_lut",
    "cover_from_match_columns",
    "cover_packed_columns",
    "first_match_rank",
    "pack_match_columns",
    "rank_word_bits",
]

# Per-chunk bound on the (chunk, D) match-column tensors computed by
# `match_columns` implementations.
_COLUMN_TENSOR_ELEMENTS = 1 << 20

# Below this many MV rows, match_columns skips the backend's native
# representation (lane packing / float unpacking fixed costs) and runs
# the generic word-mask test.
_SMALL_MATCH_ROWS = 16

# Strategy cutover for cover_packed_columns: generations whose
# (C, D, Lp) boolean match tensor fits under this many elements
# reassemble by one unpack + gather + first-match (few numpy calls —
# the EA's C=5 offspring batches live here); bigger generations run
# the packed L-rank loop, which streams 8× less data but pays ~L
# dispatch rounds.
_GATHER_TENSOR_ELEMENTS = 1 << 22


@dataclass(frozen=True)
class PreparedBlocks:
    """Kernel-ready view of one distinct-block table.

    ``counts_f`` is the float64 copy used in weighted dot products
    (exact up to 2**53, far beyond any test set); subclasses add the
    kernel's private representation of the block masks.
    """

    block_length: int
    word_count: int
    n_distinct: int
    counts: np.ndarray
    counts_f: np.ndarray
    total_count: int
    ones_words: np.ndarray
    zeros_words: np.ndarray


def rank_word_bits(n_vectors: int) -> int:
    """Padded match-word width for ``n_vectors`` MVs (8/16/32/64·k)."""
    for width in (8, 16, 32, 64):
        if n_vectors <= width:
            return width
    return -(-n_vectors // 64) * 64


def first_match_rank(matches: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """First-true index along the padded last axis, via packed bits.

    ``matches`` is ``(..., Lp)`` bool with ``Lp`` a multiple of 8 from
    :func:`rank_word_bits` (padding columns all False).  Packing the
    axis into little-endian words turns "first match in covering
    order" into "lowest set bit": isolate it with ``w & -w`` and read
    its position from the float64 exponent — no index reduction over
    L.  Returns ``(rank, hit)``: ``rank`` is the first-true index
    (unspecified where ``hit`` is False), ``hit`` says whether any
    match exists.
    """
    packed = np.packbits(matches, axis=-1, bitorder="little")
    lane_bytes = packed.shape[-1]
    word_dtype = f"<u{min(lane_bytes, 8)}"
    words = packed.view(word_dtype)
    first_word = words[..., 0]
    hit = first_word != 0
    lowest = first_word & np.negative(first_word)
    rank = np.frexp(lowest.astype(np.float64))[1].astype(np.int64) - 1
    for index in range(1, words.shape[-1]):  # only for L > 64
        word = words[..., index]
        fresh = ~hit & (word != 0)
        if not fresh.any():
            hit |= word != 0
            continue
        lowest = word & np.negative(word)
        word_rank = (
            np.frexp(lowest.astype(np.float64))[1].astype(np.int64)
            - 1
            + 64 * index
        )
        rank = np.where(fresh, word_rank, rank)
        hit |= fresh
    return rank, hit


def pack_match_columns(match_matrix: np.ndarray) -> np.ndarray:
    """Bit-pack ``(M, D)`` bool match columns along D (little-endian).

    The ⌈D/8⌉-byte rows are the storage format of the MV match cache
    and the input format of :func:`cover_packed_columns` — 8× smaller
    than bool columns, which is what keeps gathering a generation's
    columns cheaper than recomputing them.
    """
    return np.packbits(match_matrix, axis=-1, bitorder="little")


def build_count_lut(counts: np.ndarray) -> np.ndarray:
    """Per-byte weighted-popcount table for packed match columns.

    ``lut[p, v]`` is the total multiplicity of the blocks whose bits
    are set in byte value ``v`` at byte slot ``p`` of a packed column
    — so the covered weight of a ``(C, ⌈D/8⌉)`` packed row batch is
    one fancy gather plus a row sum, no unpacking.  Exact: float64
    sums of integer counts, far below 2**53.
    """
    counts = np.asarray(counts, dtype=np.float64)
    n_distinct = counts.shape[0]
    packed_width = -(-n_distinct // 8)
    padded = np.zeros(packed_width * 8, dtype=np.float64)
    padded[:n_distinct] = counts
    byte_bits = np.unpackbits(
        np.arange(256, dtype=np.uint8)[:, None], axis=1, bitorder="little"
    ).astype(np.float64)  # (256, 8)
    return padded.reshape(packed_width, 8) @ byte_bits.T  # (P, 256)


def cover_packed_columns(
    prepared: PreparedBlocks,
    packed_columns: np.ndarray,
    ordered_mv_index: np.ndarray,
    orders: np.ndarray,
    want_assignment: bool = False,
    count_lut: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reassemble per-genome coverings from bit-packed match columns.

    The factored counterpart of the fused ``cover_*`` entry points:
    ``packed_columns`` is ``(M, ⌈D/8⌉)`` uint8 — row ``m`` is MV
    ``m``'s match column over the distinct-block table, packed by
    :func:`pack_match_columns` (typically the *unique* MVs of a
    generation, straight from :meth:`CoveringKernel.match_columns` or
    an :class:`~repro.core.fitness.MVMatchCache`).  ``ordered_mv_index``
    is ``(C, L)`` int — each genome's MVs as rows of
    ``packed_columns``, already permuted into covering order — and
    ``orders`` maps covering rank back to declaration-order MV
    indices, exactly as in :meth:`CoveringKernel.cover_ordered_words`.

    Two reassembly strategies share the contract, picked by tensor
    size: small generations (the EA's C=5 offspring batches) unpack
    the needed columns, gather a ``(C, D, Lp)`` boolean match tensor
    and extract first matches with :func:`first_match_rank` — a
    handful of numpy calls; large generations run ``L`` vectorized
    rank steps over the packed D axis (``newly = column & remaining``
    with claimed weight from the :func:`build_count_lut` table),
    streaming 8× less data than boolean matches.  Because an MV's
    match column cannot depend on its neighbors, both are
    bit-identical to any fused kernel on the same inputs (pinned by
    the factored-parity property suite), including the early-exit
    convention for incomplete genomes.
    """
    n_genomes, n_vectors = ordered_mv_index.shape
    n_distinct = prepared.n_distinct
    assignment = np.full((n_genomes, n_distinct), -1, dtype=np.int64)
    frequencies = np.zeros((n_genomes, n_vectors), dtype=np.int64)
    uncovered = np.zeros(n_genomes, dtype=np.int64)
    if n_distinct == 0 or n_genomes == 0:
        return assignment, frequencies, uncovered
    padded_vectors = rank_word_bits(n_vectors)
    if n_genomes * n_distinct * padded_vectors <= _GATHER_TENSOR_ELEMENTS:
        _cover_packed_gather(
            prepared,
            packed_columns,
            ordered_mv_index,
            orders,
            want_assignment,
            assignment,
            frequencies,
            uncovered,
        )
    else:
        _cover_packed_rank_loop(
            prepared,
            packed_columns,
            ordered_mv_index,
            orders,
            want_assignment,
            count_lut,
            assignment,
            frequencies,
            uncovered,
        )
    return assignment, frequencies, uncovered


def _cover_packed_gather(
    prepared: PreparedBlocks,
    packed_columns: np.ndarray,
    ordered_mv_index: np.ndarray,
    orders: np.ndarray,
    want_assignment: bool,
    assignment: np.ndarray,
    frequencies: np.ndarray,
    uncovered: np.ndarray,
) -> None:
    """Small-generation strategy: unpack, gather, first-match."""
    n_genomes, n_vectors = ordered_mv_index.shape
    n_distinct = prepared.n_distinct
    columns = np.unpackbits(
        packed_columns, axis=1, count=n_distinct, bitorder="little"
    ).view(bool)  # (U, D)
    matches = np.zeros(
        (n_genomes, n_distinct, rank_word_bits(n_vectors)), dtype=bool
    )
    # Gather each genome's L match columns; the padding columns stay
    # False so packed rank words never see a phantom MV.
    gathered = columns[ordered_mv_index]  # (C, L, D)
    matches[:, :, :n_vectors] = gathered.transpose(0, 2, 1)
    rank, hit = first_match_rank(matches)
    covered_weight = hit @ prepared.counts_f  # exact integer float64
    uncovered[:] = prepared.total_count - covered_weight.astype(np.int64)
    complete = np.flatnonzero(uncovered == 0)
    if complete.size:
        accumulate_complete_rows(
            assignment,
            frequencies,
            0,
            complete,
            rank[complete],
            orders,
            prepared.counts,
            want_assignment,
        )


def _cover_packed_rank_loop(
    prepared: PreparedBlocks,
    packed_columns: np.ndarray,
    ordered_mv_index: np.ndarray,
    orders: np.ndarray,
    want_assignment: bool,
    count_lut: np.ndarray | None,
    assignment: np.ndarray,
    frequencies: np.ndarray,
    uncovered: np.ndarray,
) -> None:
    """Large-generation strategy: L rank steps over the packed D axis."""
    n_genomes, n_vectors = ordered_mv_index.shape
    n_distinct = prepared.n_distinct
    if count_lut is None:
        count_lut = build_count_lut(prepared.counts)
    packed_width = packed_columns.shape[1]
    slot = np.arange(packed_width)
    # Blocks not yet covered, packed along D; padding bits start clear
    # so they can never contribute weight or phantom coverage.
    full = np.packbits(np.ones(n_distinct, dtype=bool), bitorder="little")
    remaining = np.broadcast_to(full, (n_genomes, packed_width)).copy()
    rank_frequencies = np.zeros((n_genomes, n_vectors), dtype=np.float64)
    rank_assignment = None
    if want_assignment:
        rank_assignment = np.full((n_genomes, n_distinct), -1, dtype=np.int64)
    for rank in range(n_vectors):
        gathered = packed_columns[ordered_mv_index[:, rank]]  # (C, P)
        newly = gathered & remaining
        rank_frequencies[:, rank] = count_lut[slot, newly].sum(axis=1)
        if want_assignment:
            claimed = np.unpackbits(
                newly, axis=1, count=n_distinct, bitorder="little"
            ).view(bool)
            mv_of_rank = np.broadcast_to(
                orders[:, rank, None], claimed.shape
            )
            rank_assignment[claimed] = mv_of_rank[claimed]
        remaining &= ~newly
        if not remaining.any():
            break  # every block of every genome covered; rest claim 0
    uncovered[:] = count_lut[slot, remaining].sum(axis=1).astype(np.int64)
    complete_rows = np.flatnonzero(uncovered == 0)
    if complete_rows.size:
        # Map covering rank back to declaration-order MV indices; the
        # early-exit contract leaves incomplete genomes all-zero/-1.
        frequencies[complete_rows[:, None], orders[complete_rows]] = (
            rank_frequencies[complete_rows].astype(np.int64)
        )
        if want_assignment:
            assignment[complete_rows] = rank_assignment[complete_rows]


def cover_from_match_columns(
    prepared: PreparedBlocks,
    match_matrix: np.ndarray,
    ordered_mv_index: np.ndarray,
    orders: np.ndarray,
    want_assignment: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`cover_packed_columns` over plain ``(M, D)`` bool columns.

    Convenience wrapper for callers holding unpacked match columns
    (e.g. straight from :meth:`CoveringKernel.match_columns`); the hot
    fitness path keeps its columns packed end to end and calls
    :func:`cover_packed_columns` directly.
    """
    return cover_packed_columns(
        prepared,
        pack_match_columns(np.asarray(match_matrix, dtype=bool)),
        ordered_mv_index,
        orders,
        want_assignment=want_assignment,
    )


def accumulate_complete_rows(
    assignment: np.ndarray,
    frequencies: np.ndarray,
    start: int,
    sub: np.ndarray,
    sub_rank: np.ndarray,
    order: np.ndarray,
    counts: np.ndarray,
    want_assignment: bool,
) -> None:
    """Scatter one chunk's complete genomes into the result arrays.

    ``sub`` indexes the complete genomes within the chunk starting at
    global row ``start``; ``sub_rank`` is their ``(len(sub), D)``
    first-match covering ranks.  Block multiplicities are scatter-added
    per rank, then mapped from rank space back to MV index space
    through the genomes' ``order`` rows — shared verbatim by the GEMM
    and bitpack kernels so their results cannot drift apart.
    """
    n_vectors = frequencies.shape[1]
    flat = np.arange(sub.size)[:, None] * n_vectors + sub_rank
    counts_tiled = np.broadcast_to(counts, sub_rank.shape)
    rank_frequencies = np.bincount(
        flat.ravel(),
        weights=counts_tiled.ravel(),
        minlength=sub.size * n_vectors,
    ).reshape(sub.size, n_vectors)
    sub_order = order[start + sub]
    frequencies[start + sub[:, None], sub_order] = rank_frequencies.astype(
        np.int64
    )
    if want_assignment:
        assignment[start + sub] = sub_order[
            np.arange(sub.size)[:, None], sub_rank
        ]


class CoveringKernel(abc.ABC):
    """Abstract covering kernel; see the module docstring for the contract."""

    name: str = "abstract"

    # -- preparation --------------------------------------------------

    @abc.abstractmethod
    def prepare_masks(
        self,
        block_ones: np.ndarray,
        block_zeros: np.ndarray,
        block_counts: np.ndarray,
        block_length: int,
    ) -> PreparedBlocks:
        """Build the kernel's per-block-set state from raw mask arrays."""

    def prepare(self, blocks: BlockSet) -> PreparedBlocks:
        """Build the kernel's per-block-set state from a :class:`BlockSet`."""
        return self.prepare_masks(
            blocks.ones, blocks.zeros, blocks.counts, blocks.block_length
        )

    def _base_prepared(
        self,
        block_ones: np.ndarray,
        block_zeros: np.ndarray,
        block_counts: np.ndarray,
        block_length: int,
    ) -> PreparedBlocks:
        ones_words = masks_as_words(block_ones)
        zeros_words = masks_as_words(block_zeros)
        counts = np.asarray(block_counts, dtype=np.int64)
        return PreparedBlocks(
            block_length=block_length,
            word_count=mask_word_count(block_length),
            n_distinct=ones_words.shape[0],
            counts=counts,
            counts_f=counts.astype(np.float64),
            total_count=int(counts.sum()),
            ones_words=ones_words,
            zeros_words=zeros_words,
        )

    # -- covering entry points ----------------------------------------

    @abc.abstractmethod
    def cover_ordered_words(
        self,
        prepared: PreparedBlocks,
        ordered_ones: np.ndarray,
        ordered_zeros: np.ndarray,
        orders: np.ndarray,
        want_assignment: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cover with ``(C, L, W)`` MV word lanes in covering order.

        Row ``j`` of genome ``c`` is the MV tried ``j``-th; ``orders``
        maps that rank back to declaration-order MV indices.  Returns
        ``(assignment, frequencies, uncovered)`` of shapes ``(C, D)``,
        ``(C, L)`` and ``(C,)``.
        """

    def cover_masks(
        self,
        prepared: PreparedBlocks,
        mv_ones: np.ndarray,
        mv_zeros: np.ndarray,
        covering_order: np.ndarray,
        want_assignment: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cover with declaration-order ``(C, L[, W])`` mask arrays.

        Single-genome callers may pass flat ``(L,)`` masks or
        ``(L, W)`` word arrays with a 1-D ``covering_order`` — the
        order's dimensionality disambiguates ``(L, W)`` words from a
        ``(C, L)`` flat batch.
        """
        mv_ones = np.asarray(mv_ones, dtype=np.uint64)
        mv_zeros = np.asarray(mv_zeros, dtype=np.uint64)
        order_input = np.asarray(covering_order, dtype=np.int64)
        if mv_ones.ndim == 1 or (
            mv_ones.ndim == 2 and order_input.ndim == 1
        ):
            mv_ones = mv_ones[None]
            mv_zeros = mv_zeros[None]
        orders = np.atleast_2d(order_input)
        if mv_ones.ndim == 2:
            mv_ones = mv_ones[..., None]
            mv_zeros = mv_zeros[..., None]
        genome_rows = np.arange(mv_ones.shape[0])[:, None]
        return self.cover_ordered_words(
            prepared,
            mv_ones[genome_rows, orders],
            mv_zeros[genome_rows, orders],
            orders,
            want_assignment=want_assignment,
        )

    def cover_grid(
        self,
        prepared: PreparedBlocks,
        ordered_grid: np.ndarray,
        orders: np.ndarray,
        want_assignment: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cover with the ordered ``(C, L, K)`` trit grid (fitness path)."""
        return self.cover_ordered_words(
            prepared,
            pack_bits_to_words(ordered_grid == ONE),
            pack_bits_to_words(ordered_grid == ZERO),
            np.atleast_2d(np.asarray(orders, dtype=np.int64)),
            want_assignment=want_assignment,
        )

    # -- factored entry point (unique-MV dedup path) ------------------

    def match_columns(
        self,
        prepared: PreparedBlocks,
        mv_ones: np.ndarray,
        mv_zeros: np.ndarray,
    ) -> np.ndarray:
        """Match column of each standalone MV: ``(M, D)`` bool.

        ``mv_ones``/``mv_zeros`` are ``(M,)`` flat or ``(M, W)`` word
        masks of ``M`` individual MVs — no genome structure, no
        covering order.  Row ``m`` says which distinct blocks MV ``m``
        matches; it depends only on (MV, block table), which is what
        lets the batched fitness dedup and cache columns across
        genomes and generations.  Work is chunked over MVs so each
        ``(chunk, D)`` conflict tensor stays cache-resident; tiny row
        sets (a converged generation's few cache misses) skip the
        backend's native representation — its conversion overhead
        outweighs any throughput edge there — and run the generic
        word-mask test directly.
        """
        mv_ones = masks_as_words(mv_ones)
        mv_zeros = masks_as_words(mv_zeros)
        n_rows = mv_ones.shape[0]
        n_distinct = prepared.n_distinct
        out = np.empty((n_rows, n_distinct), dtype=bool)
        if n_rows == 0 or n_distinct == 0:
            return out
        if n_rows <= _SMALL_MATCH_ROWS:
            out[:] = CoveringKernel._match_columns_chunk(
                self, prepared, mv_ones, mv_zeros
            )
            return out
        chunk = max(1, _COLUMN_TENSOR_ELEMENTS // n_distinct)
        for start in range(0, n_rows, chunk):
            stop = min(start + chunk, n_rows)
            out[start:stop] = self._match_columns_chunk(
                prepared, mv_ones[start:stop], mv_zeros[start:stop]
            )
        return out

    def _match_columns_chunk(
        self,
        prepared: PreparedBlocks,
        mv_ones: np.ndarray,
        mv_zeros: np.ndarray,
    ) -> np.ndarray:
        """One ``(chunk, D)`` bool slab of :meth:`match_columns`.

        The default runs the reference word-mask test
        ``(b₁ & mvᴢ) | (b₀ & mv₁) == 0`` vectorized over the chunk —
        correct for every kernel because :class:`PreparedBlocks`
        always carries the canonical word masks; gemm and bitpack
        override with their native representations.
        """
        ones_words = prepared.ones_words
        zeros_words = prepared.zeros_words
        conflict = (mv_zeros[:, None, 0] & ones_words[None, :, 0]) | (
            mv_ones[:, None, 0] & zeros_words[None, :, 0]
        )
        for word in range(1, ones_words.shape[1]):
            conflict |= (mv_zeros[:, None, word] & ones_words[None, :, word]) | (
                mv_ones[:, None, word] & zeros_words[None, :, word]
            )
        return conflict == 0

    # -- shared helpers -----------------------------------------------

    @staticmethod
    def _empty_results(
        n_genomes: int, n_vectors: int, n_distinct: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The all-uncovered result skeleton every kernel starts from."""
        return (
            np.full((n_genomes, n_distinct), -1, dtype=np.int64),
            np.zeros((n_genomes, n_vectors), dtype=np.int64),
            np.zeros(n_genomes, dtype=np.int64),
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

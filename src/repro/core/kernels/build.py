"""Compile-on-first-use machinery for the native covering kernel.

The native kernel ships its match loop as a C source string
(:data:`repro.core.kernels.native.NATIVE_C_SOURCE`); this module turns
that string into a loadable shared library with whatever C compiler
the machine has, and caches the result on disk so every later process
— including the workers of a ``ProcessBackend`` sweep — pays a single
``dlopen`` instead of a compile.

Build-cache layout (``$REPRO_CACHE_DIR/native/``, default
``~/.cache/repro/native/``):

* ``native-<key>.so``   — the compiled library;
* ``native-<key>.json`` — a sidecar describing the build (compiler
  identifier, flags, source digest, OpenMP availability) for
  ``repro cache info``;
* ``native-<key>.lock`` — a transient exclusive-create lock file held
  only while a compile is in flight.

The cache key is the first 16 hex digits of SHA-256 over (source
text, compiler identifier, flags), so a source edit, a compiler
upgrade or a flag change each land in a fresh slot and stale ``.so``
files can never be loaded against the wrong source.

Concurrency follows the repo's marker-file idiom (see
``repro.parallel.chaos``): the first process to exclusively create the
``.lock`` file compiles; everyone else polls for the finished ``.so``
and warm-loads it — compile-once across any number of worker
processes.  The compiled artifact is published with ``os.replace`` so
a reader can never observe a half-written library.

The failure contract mirrors the MV cache's: a missing compiler, a
failed compile or an unloadable library raises
:class:`NativeBuildError` (or, for a *cached* corrupt ``.so``,
discards the file with a warning and rebuilds once) — the registry
turns that into "``native`` unavailable" so ``auto`` never selects it.
A missing toolchain can cost speed, never a run.
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from ...io_utils import atomic_write_json

__all__ = [
    "BUILD_FORMAT",
    "NativeBuildError",
    "build_key",
    "compile_cached",
    "describe_build_file",
    "find_compiler",
    "load_native_library",
    "native_build_dir",
]

BUILD_FORMAT = "repro-native-build"

# Probe order for the system C compiler; REPRO_NATIVE_CC overrides.
_COMPILER_CANDIDATES = ("cc", "gcc", "clang")

# Position-independent shared library, optimized; C99 for stdint.
_BASE_FLAGS = ("-O3", "-fPIC", "-shared", "-std=c99")
# Feature-tested extras, in descending order of measured impact:
# -march=native lets the compiler vectorize the branch-free match
# loops for this machine's ISA (measured ~4-5x on the cover loop);
# -fopenmp fans the D axis across threads.  Either may be unsupported
# (e.g. -march=native on arm clang) — the build quietly drops it.
_MARCH_FLAG = "-march=native"
_OPENMP_FLAG = "-fopenmp"

# How long a waiter polls for a concurrent builder's .so before giving
# up, and the age past which an orphaned lock (builder killed mid
# compile) is broken.
_LOCK_TIMEOUT_SECONDS = 120.0
_LOCK_STALE_SECONDS = 300.0
_LOCK_POLL_SECONDS = 0.05


class NativeBuildError(RuntimeError):
    """The native kernel could not be built or loaded on this machine."""


def native_build_dir() -> Path:
    """``$REPRO_CACHE_DIR/native`` (default ``~/.cache/repro/native``)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    base = Path(root) if root else Path.home() / ".cache" / "repro"
    return base / "native"


def find_compiler() -> tuple[str, str]:
    """(compiler path, compiler identifier) for this machine.

    ``REPRO_NATIVE_CC`` pins a specific compiler; otherwise the first
    of ``cc``/``gcc``/``clang`` on ``PATH`` wins.  The identifier (the
    first line of ``--version``, falling back to the basename) goes
    into the cache key so a toolchain upgrade invalidates old builds.
    Raises :class:`NativeBuildError` when nothing usable is found or
    ``REPRO_NATIVE_DISABLE`` is set.
    """
    if os.environ.get("REPRO_NATIVE_DISABLE"):
        raise NativeBuildError("disabled via REPRO_NATIVE_DISABLE")
    override = os.environ.get("REPRO_NATIVE_CC")
    candidates = (override,) if override else _COMPILER_CANDIDATES
    for candidate in candidates:
        path = shutil.which(candidate)
        if path is not None:
            return path, _compiler_identifier(path)
    tried = ", ".join(candidates)
    raise NativeBuildError(f"no C compiler found (tried {tried})")


def _compiler_identifier(path: str) -> str:
    try:
        result = subprocess.run(
            [path, "--version"],
            capture_output=True,
            text=True,
            timeout=15,
        )
        first_line = (result.stdout or result.stderr).splitlines()
        if first_line:
            return first_line[0].strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return Path(path).name


def build_key(source: str, compiler_id: str, flags: tuple[str, ...]) -> str:
    """16-hex-digit cache key over (source, compiler, flags)."""
    digest = hashlib.sha256()
    digest.update(source.encode())
    digest.update(b"\0" + compiler_id.encode())
    digest.update(b"\0" + " ".join(flags).encode())
    return digest.hexdigest()[:16]


def _supports_flag(compiler: str, flag: str, directory: Path) -> bool:
    """Feature-test one flag with a trivial compile (cold path only)."""
    with tempfile.TemporaryDirectory(dir=directory) as scratch:
        probe = Path(scratch) / "flag-probe.c"
        probe.write_text("int main(void) { return 0; }\n")
        try:
            result = subprocess.run(
                [compiler, flag, "-o", str(probe.with_suffix("")), str(probe)],
                capture_output=True,
                timeout=60,
            )
        except (OSError, subprocess.SubprocessError):
            return False
        return result.returncode == 0


def _candidate_flag_sets() -> tuple[tuple[str, ...], ...]:
    """Every flag set a cached build may exist under, best first."""
    return (
        (*_BASE_FLAGS, _MARCH_FLAG, _OPENMP_FLAG),
        (*_BASE_FLAGS, _MARCH_FLAG),
        (*_BASE_FLAGS, _OPENMP_FLAG),
        _BASE_FLAGS,
    )


def _acquire_lock(lock_path: Path, so_path: Path) -> int | None:
    """Exclusively create the compile lock, or wait the build out.

    Returns an open descriptor when this process holds the lock (it
    must compile), or ``None`` when a concurrent builder published the
    ``.so`` while we waited.  Stale locks from killed builders are
    broken after ``_LOCK_STALE_SECONDS``.
    """
    deadline = time.monotonic() + _LOCK_TIMEOUT_SECONDS
    while True:
        try:
            return os.open(str(lock_path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            if so_path.exists():
                return None
            try:
                age = time.time() - lock_path.stat().st_mtime
                if age > _LOCK_STALE_SECONDS:
                    lock_path.unlink(missing_ok=True)
                    continue
            except OSError:
                continue  # lock vanished between exists and stat
            if time.monotonic() > deadline:
                raise NativeBuildError(
                    f"timed out waiting for a concurrent build of {so_path.name}"
                ) from None
            time.sleep(_LOCK_POLL_SECONDS)


def compile_cached(
    source: str, directory: Path | None = None
) -> tuple[Path, bool]:
    """The compiled ``.so`` for ``source``, building it on a cache miss.

    Returns ``(path, compiled_now)`` — ``compiled_now`` is ``True``
    only in the process that actually ran the compiler, which is how
    the compile-once tests count builds across workers.  Raises
    :class:`NativeBuildError` when no compiler exists or the compile
    fails; the error message carries the compiler's stderr.
    """
    directory = Path(directory) if directory is not None else native_build_dir()
    compiler, compiler_id = find_compiler()
    # Warm path first: a hit under any candidate flag set loads with
    # zero subprocesses (feature tests run only on cold starts).
    for flags in _candidate_flag_sets():
        so_path = directory / f"native-{build_key(source, compiler_id, flags)}.so"
        if so_path.exists():
            return so_path, False
    directory.mkdir(parents=True, exist_ok=True)
    march = _supports_flag(compiler, _MARCH_FLAG, directory)
    openmp = _supports_flag(compiler, _OPENMP_FLAG, directory)
    flags = (
        *_BASE_FLAGS,
        *((_MARCH_FLAG,) if march else ()),
        *((_OPENMP_FLAG,) if openmp else ()),
    )
    key = build_key(source, compiler_id, flags)
    so_path = directory / f"native-{key}.so"
    lock_path = directory / f"native-{key}.lock"
    descriptor = _acquire_lock(lock_path, so_path)
    if descriptor is None:
        return so_path, False  # a concurrent builder finished it
    try:
        if so_path.exists():  # finished between the miss and the lock
            return so_path, False
        _compile(compiler, flags, source, so_path)
        atomic_write_json(
            directory / f"native-{key}.json",
            {
                "format": BUILD_FORMAT,
                "key": key,
                "compiler": compiler_id,
                "flags": list(flags),
                "source_sha256": hashlib.sha256(source.encode()).hexdigest(),
                "source_bytes": len(source.encode()),
                "openmp": openmp,
                "march_native": march,
            },
        )
        return so_path, True
    finally:
        os.close(descriptor)
        lock_path.unlink(missing_ok=True)


def _compile(
    compiler: str, flags: tuple[str, ...], source: str, so_path: Path
) -> None:
    """Run one compile and publish the result atomically."""
    with tempfile.TemporaryDirectory(dir=so_path.parent) as scratch:
        c_path = Path(scratch) / "native.c"
        out_path = Path(scratch) / "native.so"
        c_path.write_text(source)
        command = [compiler, *flags, "-o", str(out_path), str(c_path)]
        try:
            result = subprocess.run(command, capture_output=True, text=True, timeout=300)
        except (OSError, subprocess.SubprocessError) as error:
            raise NativeBuildError(f"compile failed: {error}") from error
        if result.returncode != 0:
            detail = (result.stderr or result.stdout or "").strip()
            raise NativeBuildError(
                f"compile failed (exit {result.returncode}): {detail[:500]}"
            )
        # os.replace publishes a complete library or nothing; a lock
        # waiter polling for the .so can never dlopen a prefix.
        os.replace(out_path, so_path)


def load_native_library(
    source: str,
    symbols: tuple[str, ...],
    directory: Path | None = None,
    warn=None,
) -> ctypes.CDLL:
    """Compile (or warm-load) ``source`` and return it as a ``CDLL``.

    Every symbol in ``symbols`` must resolve.  A *cached* library that
    fails to load or lacks a symbol — truncated file, foreign
    architecture, stale ABI — is discarded with a ``warn`` message and
    rebuilt once, mirroring the MV cache's failure contract: a corrupt
    cache costs a cold start, never a wrong result.  A freshly built
    library that fails the same checks raises
    :class:`NativeBuildError`.
    """
    if warn is None:
        warn = lambda message: print(message, file=sys.stderr)  # noqa: E731
    path, compiled_now = compile_cached(source, directory)
    try:
        return _load_checked(path, symbols)
    except NativeBuildError as error:
        if compiled_now:
            raise
        warn(f"discarding corrupt native kernel build {path.name}: {error}")
        path.unlink(missing_ok=True)
        path.with_suffix(".json").unlink(missing_ok=True)
    path, _ = compile_cached(source, directory)
    return _load_checked(path, symbols)


def _load_checked(path: Path, symbols: tuple[str, ...]) -> ctypes.CDLL:
    try:
        library = ctypes.CDLL(str(path))
    except OSError as error:
        raise NativeBuildError(f"cannot load {path.name}: {error}") from error
    for symbol in symbols:
        if not hasattr(library, symbol):
            raise NativeBuildError(f"{path.name} lacks symbol {symbol!r}")
    return library


def describe_build_file(path: Path) -> dict:
    """Metadata of one build-cache file (for ``repro cache``).

    ``.json`` sidecars decode to their build document; ``.so`` files
    report their sidecar's metadata when present.  Undecodable files
    return an ``{"error": ...}`` record instead of raising — the
    inspection tool must not crash on exactly the corrupt files it
    exists to find.
    """
    info: dict = {"file": path.name, "bytes": path.stat().st_size}
    sidecar = path if path.suffix == ".json" else path.with_suffix(".json")
    try:
        document = json.loads(sidecar.read_text())
        if not isinstance(document, dict) or document.get("format") != BUILD_FORMAT:
            info["error"] = "not a repro native-build sidecar"
            return info
        info.update(document)
    except OSError:
        info["error"] = "no build sidecar"
    except json.JSONDecodeError as error:
        info["error"] = f"unreadable sidecar ({error})"
    return info

"""Float32 GEMM covering kernel (the PR-1 batched matcher).

Blocks and MVs are unpacked into 0/1 *bit matrices* and per-(block,
MV) conflict counts come from one float32 matrix product —
``conflicts = [b₁|b₀] · [mvᴢ|mv₁]ᵀ`` is zero exactly when the MV
matches the block — so the heavy lifting runs inside BLAS.  The MV
axis is pre-permuted into covering order, which turns
first-match-in-priority-order into a plain ``argmax`` over the
conflict-free booleans.  Work is chunked over genomes so each
``(D, chunk·L)`` conflict matrix stays cache-resident, and genomes
that fail to cover every block take an early exit (exact ``uncovered``
count, no frequency or assignment work).

Strong where BLAS is strong: compute-dense shapes with a modest
distinct-block table.  On large tables the 4-byte-per-bit matrices
make it memory-bandwidth bound — that regime belongs to the
bit-packed kernel (:mod:`repro.core.kernels.bitpack`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..blocks import masks_as_words, unpack_words_to_bits
from ..trits import ONE, ZERO
from .base import CoveringKernel, PreparedBlocks, accumulate_complete_rows

__all__ = ["GemmKernel", "cover_bits_batch", "unpack_mask_bits"]

# Genome-chunk sizing: keep each (D, chunk·L) float32 conflict matrix
# at or below this many elements (~4 MiB), so a chunk's conflict and
# match tensors stay cache-resident end to end.
_BATCH_TENSOR_ELEMENTS = 1 << 20


def unpack_mask_bits(masks: np.ndarray, block_length: int) -> np.ndarray:
    """Unpack uint64 masks into a float32 0/1 bit matrix.

    ``masks`` may be flat single-word values or ``(..., W)`` word
    arrays; the output appends a ``block_length`` axis with position 0
    (the MSB) first — the layout the GEMM kernel multiplies against.
    """
    masks = np.asarray(masks, dtype=np.uint64)
    if masks.ndim >= 1 and block_length > 64:
        return unpack_words_to_bits(masks, block_length).astype(np.float32)
    shifts = np.arange(block_length - 1, -1, -1, dtype=np.uint64)
    return ((masks[..., None] >> shifts) & np.uint64(1)).astype(np.float32)


def cover_bits_batch(
    block_bits: np.ndarray,
    block_counts: np.ndarray,
    mv_bits: np.ndarray,
    covering_order: np.ndarray,
    want_assignment: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """GEMM covering core over pre-unpacked bit matrices.

    ``block_bits`` is the fixed ``(D, 2K)`` ``[b₁|b₀]`` table;
    ``mv_bits`` is ``(C, L, 2K)`` ``[mvᴢ|mv₁]`` rows *already permuted
    into covering order* (row ``j`` of genome ``c`` is the MV tried
    ``j``-th); ``covering_order`` maps that rank back to MV indices.
    Returns ``(assignment, frequencies, uncovered)`` with shapes
    ``(C, D)``, ``(C, L)`` and ``(C,)``; with ``want_assignment=False``
    the ``(C, D)`` assignment matrix is skipped (all ``-1``) — the
    batched fitness only needs frequencies, which stay in MV index
    space.
    """
    n_genomes, n_vectors = mv_bits.shape[:2]
    n_distinct = block_bits.shape[0]
    order = np.atleast_2d(covering_order)
    assignment = np.full((n_genomes, n_distinct), -1, dtype=np.int64)
    frequencies = np.zeros((n_genomes, n_vectors), dtype=np.int64)
    uncovered = np.zeros(n_genomes, dtype=np.int64)
    if n_distinct == 0 or n_genomes == 0:
        return assignment, frequencies, uncovered

    counts = np.asarray(block_counts, dtype=np.int64)
    counts_f = counts.astype(np.float64)  # exact to 2**53 in the dot
    total_count = int(counts.sum())
    chunk = max(1, _BATCH_TENSOR_ELEMENTS // max(1, n_vectors * n_distinct))
    for start in range(0, n_genomes, chunk):
        stop = min(start + chunk, n_genomes)
        span = stop - start
        conflicts = block_bits @ mv_bits[start:stop].reshape(
            span * n_vectors, -1
        ).T  # (D, span·L) GEMM — the kernel's hot loop lives in BLAS
        matches = (conflicts == 0).reshape(n_distinct, span, n_vectors)
        # argmax finds the first priority-ordered match; on an all-False
        # row it points at 0, so gathering the hit tells coverage too.
        first_rank = matches.argmax(axis=2)  # (D, span)
        covered = np.take_along_axis(matches, first_rank[:, :, None], axis=2)[
            :, :, 0
        ]
        uncovered[start:stop] = total_count - (counts_f @ covered).astype(
            np.int64
        )
        complete = uncovered[start:stop] == 0  # (span,)
        if not complete.any():
            continue
        # Early exit: frequency/assignment work only for complete genomes.
        sub = np.flatnonzero(complete)
        accumulate_complete_rows(
            assignment,
            frequencies,
            start,
            sub,
            first_rank[:, sub].T,
            order,
            counts,
            want_assignment,
        )
    return assignment, frequencies, uncovered


@dataclass(frozen=True)
class _GemmPrepared(PreparedBlocks):
    """Adds the fixed ``(D, 2K)`` float32 ``[b₁|b₀]`` bit table."""

    block_bits: np.ndarray = None


class GemmKernel(CoveringKernel):
    """The float32 GEMM covering kernel."""

    name = "gemm"

    def prepare_masks(
        self,
        block_ones: np.ndarray,
        block_zeros: np.ndarray,
        block_counts: np.ndarray,
        block_length: int,
    ) -> PreparedBlocks:
        base = self._base_prepared(
            block_ones, block_zeros, block_counts, block_length
        )
        block_bits = np.concatenate(
            [
                unpack_words_to_bits(
                    masks_as_words(block_ones), block_length
                ).astype(np.float32),
                unpack_words_to_bits(
                    masks_as_words(block_zeros), block_length
                ).astype(np.float32),
            ],
            axis=1,
        )
        return _GemmPrepared(**vars(base), block_bits=block_bits)

    def _match_columns_chunk(
        self,
        prepared: PreparedBlocks,
        mv_ones: np.ndarray,
        mv_zeros: np.ndarray,
    ) -> np.ndarray:
        """Per-MV conflict counts from one BLAS product; zero ⇔ match."""
        block_length = prepared.block_length
        mv_bits = np.concatenate(
            [
                unpack_words_to_bits(mv_zeros, block_length).astype(
                    np.float32
                ),
                unpack_words_to_bits(mv_ones, block_length).astype(
                    np.float32
                ),
            ],
            axis=1,
        )  # (M, 2K) [mvᴢ|mv₁]
        conflicts = mv_bits @ prepared.block_bits.T  # (M, D) GEMM
        return conflicts == 0

    def cover_ordered_words(
        self,
        prepared: PreparedBlocks,
        ordered_ones: np.ndarray,
        ordered_zeros: np.ndarray,
        orders: np.ndarray,
        want_assignment: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        block_length = prepared.block_length
        mv_bits = np.concatenate(
            [
                unpack_words_to_bits(ordered_zeros, block_length).astype(
                    np.float32
                ),
                unpack_words_to_bits(ordered_ones, block_length).astype(
                    np.float32
                ),
            ],
            axis=2,
        )  # (C, L, 2K) [mvᴢ|mv₁]
        return cover_bits_batch(
            prepared.block_bits,
            prepared.counts,
            mv_bits,
            orders,
            want_assignment=want_assignment,
        )

    def cover_grid(
        self,
        prepared: PreparedBlocks,
        ordered_grid: np.ndarray,
        orders: np.ndarray,
        want_assignment: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        # Fast path: MV bit rows straight from the trit grid — no
        # intermediate uint64 packing on the fitness hot path.
        mv_bits = np.concatenate(
            [ordered_grid == ZERO, ordered_grid == ONE], axis=2
        ).astype(np.float32)
        return cover_bits_batch(
            prepared.block_bits,
            prepared.counts,
            mv_bits,
            np.atleast_2d(np.asarray(orders, dtype=np.int64)),
            want_assignment=want_assignment,
        )

"""Native compiled covering kernel: cc-built AND+popcount match loop.

The match test is the same fused-lane identity the bitpack kernel
uses — concatenate each block's ones/zeros bits into one 2K-bit lane
``[b₁|b₀]`` and each MV's zeros/ones bits into ``[mvᴢ|mv₁]``, and the
lanes AND to zero exactly when the MV matches the block — but the
loop lives in a small C library compiled on first use
(:mod:`repro.core.kernels.build`) instead of numpy ufunc chains.  That
buys three things the array path cannot have:

* **no temporaries** — the ``(span, shard, L)`` conflict tensors and
  padded match booleans the bitpack kernel streams through memory
  simply do not exist; each ``(genome, block)`` pair is priced in
  registers;
* **first-match early exit** — the C loop stops at the first matching
  MV, pricing an average of ~L/2 candidates per block where the array
  kernels must materialize all L;
* **one fused pass** — conflict AND, ``__builtin_popcountll`` zero
  test, first-match rank and covered-weight accumulation happen in a
  single traversal per genome.

Lanes are always little-endian ``uint64`` words (the C ABI's one mask
type; see ``docs/native-kernel.md`` for the full contract).  The
optional OpenMP ``parallel for`` fans the D axis out across threads —
the per-block results (rank, covered weight) are independent, and the
weight reduction is an integer sum, so thread count can never move a
result, only the wall clock.

Results are assembled from the C core's ``(first_rank, covered)``
through the same :func:`~repro.core.kernels.base.accumulate_complete_rows`
helper the GEMM and bitpack kernels share, so the backends cannot
drift apart; the cross-kernel property suite pins bit-identity on top.
When the toolchain is missing the registry reports this kernel
unavailable and ``auto`` falls back to the array kernels — a missing
compiler can cost speed, never a run.
"""

from __future__ import annotations

import ctypes
import os
import sys
import tempfile
from dataclasses import dataclass

import numpy as np

from ..blocks import (
    mask_word_count,
    pack_bits_to_words,
    unpack_words_to_bits,
)
from ..trits import ONE, ZERO
from .base import (
    CoveringKernel,
    PreparedBlocks,
    accumulate_complete_rows,
)
from .build import NativeBuildError, load_native_library

__all__ = [
    "NATIVE_C_SOURCE",
    "NativeKernel",
    "native_status",
    "native_warning_emitted",
]

# Genome chunks bound the (chunk, D) rank matrix handed back by the C
# core (same budget as the array kernels' chunking).
_CHUNK_TENSOR_ELEMENTS = 1 << 20

# The C ABI: one source, two entry points, one version probe.  Masks
# are little-endian uint64 word lanes exactly as numpy packs them
# (repro.core.blocks.pack_bits_to_words); all scalars are int64 so the
# ctypes signatures cannot truncate a large table.  `first_rank`
# receives the covering rank of each (genome, block) first match, or
# n_vectors when nothing matches; `covered` receives the exact integer
# covered weight per genome.  The popcount of the ANDed lane words is
# the match test: zero popcount ⇔ no conflicting care bit ⇔ match.
NATIVE_C_SOURCE = r"""
#include <stdint.h>

#define REPRO_NATIVE_ABI 1

int64_t repro_native_abi_version(void) { return REPRO_NATIVE_ABI; }

/* Single-lane-word first match (2K <= 64, the paper's K = 12 regime):
 * a branch-free inner loop builds a 64-bit "which MVs match" mask per
 * chunk of 64 candidates — trivially auto-vectorized, no data-
 * dependent branches to mispredict — and the first match is one
 * count-trailing-zeros.  Measured ~5x over the early-exit scalar loop
 * on random (unpredictable-match) workloads. */
static int64_t repro_first_match_w1(uint64_t block,
                                    const uint64_t *mv,
                                    int64_t n_vectors)
{
    for (int64_t base = 0; base < n_vectors; base += 64) {
        int64_t n = n_vectors - base < 64 ? n_vectors - base : 64;
        uint64_t mask = 0;
        for (int64_t i = 0; i < n; ++i)
            mask |= (uint64_t)((block & mv[base + i]) == 0) << i;
        if (mask) return base + __builtin_ctzll(mask);
    }
    return n_vectors;
}

/* Multi-word lanes: fused AND + popcount accumulation across the lane
 * words — zero total popcount over every word means no conflicting
 * care bit anywhere, i.e. a match — with an early exit at the first
 * matching MV. */
static int64_t repro_first_match_wn(const uint64_t *block,
                                    const uint64_t *mv_rows,
                                    int64_t n_vectors,
                                    int64_t lane_words)
{
    for (int64_t l = 0; l < n_vectors; ++l) {
        const uint64_t *mv = mv_rows + l * lane_words;
        int conflict = 0;
        for (int64_t w = 0; w < lane_words; ++w)
            conflict += __builtin_popcountll(block[w] & mv[w]);
        if (conflict == 0) return l;
    }
    return n_vectors;
}

void repro_cover(const uint64_t *block_lanes,  /* D x W fused [b1|b0] */
                 const int64_t  *counts,       /* D block multiplicities */
                 const uint64_t *mv_lanes,     /* C x L x W fused [mvZ|mv1] */
                 int64_t n_genomes,
                 int64_t n_vectors,
                 int64_t n_distinct,
                 int64_t lane_words,
                 int64_t *first_rank,          /* C x D out; n_vectors = no match */
                 int64_t *covered)             /* C out; exact covered weight */
{
    for (int64_t c = 0; c < n_genomes; ++c) {
        const uint64_t *genome = mv_lanes + c * n_vectors * lane_words;
        int64_t *rank_row = first_rank + c * n_distinct;
        int64_t weight = 0;
        /* Blocks are independent: rank and weight per d, one integer
         * reduction.  Thread count moves the clock, never a result. */
        if (lane_words == 1) {
            #pragma omp parallel for reduction(+:weight) schedule(static)
            for (int64_t d = 0; d < n_distinct; ++d) {
                int64_t rank = repro_first_match_w1(
                    block_lanes[d], genome, n_vectors);
                rank_row[d] = rank;
                if (rank < n_vectors) weight += counts[d];
            }
        } else {
            #pragma omp parallel for reduction(+:weight) schedule(static)
            for (int64_t d = 0; d < n_distinct; ++d) {
                int64_t rank = repro_first_match_wn(
                    block_lanes + d * lane_words, genome,
                    n_vectors, lane_words);
                rank_row[d] = rank;
                if (rank < n_vectors) weight += counts[d];
            }
        }
        covered[c] = weight;
    }
}

void repro_match(const uint64_t *block_lanes,  /* D x W fused [b1|b0] */
                 const uint64_t *mv_lanes,     /* M x W fused [mvZ|mv1] */
                 int64_t n_rows,
                 int64_t n_distinct,
                 int64_t lane_words,
                 uint8_t *out)                 /* M x D; 1 = match */
{
    if (lane_words == 1) {
        #pragma omp parallel for schedule(static)
        for (int64_t m = 0; m < n_rows; ++m) {
            const uint64_t mv = mv_lanes[m];
            uint8_t *row = out + m * n_distinct;
            for (int64_t d = 0; d < n_distinct; ++d)
                row[d] = (uint8_t)((block_lanes[d] & mv) == 0);
        }
        return;
    }
    #pragma omp parallel for schedule(static)
    for (int64_t m = 0; m < n_rows; ++m) {
        const uint64_t *mv = mv_lanes + m * lane_words;
        uint8_t *row = out + m * n_distinct;
        for (int64_t d = 0; d < n_distinct; ++d) {
            const uint64_t *block = block_lanes + d * lane_words;
            int conflict = 0;
            for (int64_t w = 0; w < lane_words; ++w)
                conflict += __builtin_popcountll(block[w] & mv[w]);
            row[d] = (uint8_t)(conflict == 0);
        }
    }
}
"""

_SYMBOLS = ("repro_native_abi_version", "repro_cover", "repro_match")
_ABI_VERSION = 1

# Process-wide load state: (library or None, unavailability reason).
# One attempt per process — a compile failure is not going to heal
# between fitness calls — and ONE stderr warning when it fails, so a
# toolchain-less machine sees exactly one line, not one per command.
# The warning is additionally debounced across the whole process
# *tree* through an environment marker: a long-lived daemon (or a
# process-pool backend) respawns workers that inherit the parent's
# environment, and each respawn re-warning would turn one missing
# toolchain into a stderr flood.  The marker is set by whichever
# process warns first; children see it and stay quiet.  The
# unavailability reason itself stays queryable via
# :func:`native_status` (the serve daemon surfaces it in ``/stats``).
_LOADED: tuple[ctypes.CDLL | None, str | None] | None = None
_WARNED = False
_WARNED_MARKER_ENV = "REPRO_NATIVE_WARNED"


def _load_library() -> tuple[ctypes.CDLL | None, str | None]:
    global _LOADED, _WARNED
    if _LOADED is None:
        try:
            library = load_native_library(NATIVE_C_SOURCE, _SYMBOLS)
            library.repro_native_abi_version.restype = ctypes.c_int64
            abi = int(library.repro_native_abi_version())
            if abi != _ABI_VERSION:
                raise NativeBuildError(
                    f"ABI version {abi}, this build expects {_ABI_VERSION}"
                )
            library.repro_cover.restype = None
            library.repro_match.restype = None
            _LOADED = (library, None)
        except NativeBuildError as error:
            _LOADED = (None, str(error))
            if not _WARNED and _WARNED_MARKER_ENV not in os.environ:
                _WARNED = True
                os.environ[_WARNED_MARKER_ENV] = "1"
                print(
                    f"warning: native kernel unavailable ({error}); "
                    "auto kernel selection falls back to the array kernels",
                    file=sys.stderr,
                )
    return _LOADED


def native_status() -> tuple[bool, str | None]:
    """(available, unavailability reason) — compiles on first call.

    The registry's availability hook: ``auto`` selection, the tuning
    prober and ``repro kernels`` all ask this instead of trying (and
    failing) to construct the kernel.
    """
    library, reason = _load_library()
    return library is not None, reason


def native_warning_emitted() -> bool:
    """Whether the unavailable warning fired in this process tree.

    True when this process warned or inherited the environment marker
    from an ancestor that did — the flag the serve daemon's ``/stats``
    reports so operators can see a swallowed warning.
    """
    return _WARNED or _WARNED_MARKER_ENV in os.environ


def _reset_native_state() -> None:
    """Forget the process-wide load attempt (tests only)."""
    global _LOADED, _WARNED
    _LOADED = None
    _WARNED = False
    os.environ.pop(_WARNED_MARKER_ENV, None)


def _as_uint64_pointer(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_uint64))


def _as_int64_pointer(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


@dataclass(frozen=True)
class _NativePrepared(PreparedBlocks):
    """Adds C-contiguous ``(D, W)`` uint64 fused lanes ``[b₁|b₀]``."""

    block_lanes: np.ndarray = None


class NativeKernel(CoveringKernel):
    """Covering kernel backed by the cc-compiled AND+popcount loop.

    Construction loads (compiling on first use) the shared library;
    it raises :class:`~repro.core.kernels.build.NativeBuildError` when
    the toolchain is missing — resolve through the registry (which
    checks :func:`native_status` first) rather than constructing
    directly when the fallback chain matters.
    """

    name = "native"

    def __init__(self) -> None:
        library, reason = _load_library()
        if library is None:
            raise NativeBuildError(reason)
        self._library = library

    # ctypes.CDLL handles do not pickle; ProcessBackend workers rebuild
    # the kernel from the shared on-disk build cache instead (a dlopen,
    # not a recompile — compile-once is the build module's lock).
    def __getstate__(self) -> dict:
        return {}

    def __setstate__(self, state: dict) -> None:
        self.__init__()

    # -- preparation --------------------------------------------------

    def prepare_masks(
        self,
        block_ones: np.ndarray,
        block_zeros: np.ndarray,
        block_counts: np.ndarray,
        block_length: int,
    ) -> PreparedBlocks:
        base = self._base_prepared(
            block_ones, block_zeros, block_counts, block_length
        )
        n_distinct = base.n_distinct
        lane_words = mask_word_count(2 * block_length)
        # Out-of-core tables (np.memmap masks) get memmap lanes over an
        # anonymous temp file, as in the bitpack kernel: the C loop
        # streams them from disk page by page via the mapped pointer.
        if isinstance(block_ones, np.memmap) or isinstance(
            block_zeros, np.memmap
        ):
            spool = tempfile.TemporaryFile()
            block_lanes = np.memmap(
                spool, dtype=np.uint64, mode="w+",
                shape=(n_distinct, lane_words),
            )
        else:
            block_lanes = np.empty((n_distinct, lane_words), dtype=np.uint64)
        # Chunk the D axis so the unpacked-bit intermediate stays
        # bounded (same budget as the bitpack kernel's preparation).
        chunk = max(1, _CHUNK_TENSOR_ELEMENTS // max(1, 2 * block_length))
        for start in range(0, n_distinct, chunk):
            stop = min(start + chunk, n_distinct)
            bits = np.concatenate(
                [
                    unpack_words_to_bits(
                        np.asarray(base.ones_words[start:stop]), block_length
                    ),
                    unpack_words_to_bits(
                        np.asarray(base.zeros_words[start:stop]), block_length
                    ),
                ],
                axis=1,
            )
            block_lanes[start:stop] = pack_bits_to_words(bits)
        return _NativePrepared(**vars(base), block_lanes=block_lanes)

    # -- lane construction --------------------------------------------

    @staticmethod
    def _mv_lanes_from_words(
        ordered_ones: np.ndarray,
        ordered_zeros: np.ndarray,
        block_length: int,
    ) -> np.ndarray:
        bits = np.concatenate(
            [
                unpack_words_to_bits(ordered_zeros, block_length),
                unpack_words_to_bits(ordered_ones, block_length),
            ],
            axis=-1,
        )
        return np.ascontiguousarray(pack_bits_to_words(bits))

    # -- covering core ------------------------------------------------

    def _cover_lanes(
        self,
        prepared: _NativePrepared,
        mv_lanes: np.ndarray,
        orders: np.ndarray,
        want_assignment: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        n_genomes, n_vectors = mv_lanes.shape[:2]
        n_distinct = prepared.n_distinct
        assignment, frequencies, uncovered = self._empty_results(
            n_genomes, n_vectors, n_distinct
        )
        if n_distinct == 0 or n_genomes == 0:
            return assignment, frequencies, uncovered
        block_lanes = np.ascontiguousarray(prepared.block_lanes)
        lane_words = block_lanes.shape[-1]
        counts = np.ascontiguousarray(prepared.counts, dtype=np.int64)
        mv_lanes = np.ascontiguousarray(mv_lanes, dtype=np.uint64)
        total_count = prepared.total_count
        cover = self._library.repro_cover
        chunk = max(1, _CHUNK_TENSOR_ELEMENTS // max(1, n_distinct))
        first_rank = np.empty((min(chunk, n_genomes), n_distinct), dtype=np.int64)
        covered = np.empty(min(chunk, n_genomes), dtype=np.int64)
        for start in range(0, n_genomes, chunk):
            stop = min(start + chunk, n_genomes)
            span = stop - start
            cover(
                _as_uint64_pointer(block_lanes),
                _as_int64_pointer(counts),
                _as_uint64_pointer(mv_lanes[start:stop]),
                ctypes.c_int64(span),
                ctypes.c_int64(n_vectors),
                ctypes.c_int64(n_distinct),
                ctypes.c_int64(lane_words),
                _as_int64_pointer(first_rank),
                _as_int64_pointer(covered),
            )
            uncovered[start:stop] = total_count - covered[:span]
            complete = uncovered[start:stop] == 0
            if not complete.any():
                continue
            sub = np.flatnonzero(complete)
            accumulate_complete_rows(
                assignment,
                frequencies,
                start,
                sub,
                first_rank[sub],
                orders,
                prepared.counts,
                want_assignment,
            )
        return assignment, frequencies, uncovered

    # -- kernel entry points ------------------------------------------

    def cover_ordered_words(
        self,
        prepared: PreparedBlocks,
        ordered_ones: np.ndarray,
        ordered_zeros: np.ndarray,
        orders: np.ndarray,
        want_assignment: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        mv_lanes = self._mv_lanes_from_words(
            ordered_ones, ordered_zeros, prepared.block_length
        )
        return self._cover_lanes(prepared, mv_lanes, orders, want_assignment)

    def cover_grid(
        self,
        prepared: PreparedBlocks,
        ordered_grid: np.ndarray,
        orders: np.ndarray,
        want_assignment: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        # Fast path: fused lanes straight from the trit grid.
        bits = np.concatenate(
            [ordered_grid == ZERO, ordered_grid == ONE], axis=2
        )
        mv_lanes = np.ascontiguousarray(pack_bits_to_words(bits))
        return self._cover_lanes(
            prepared,
            mv_lanes,
            np.atleast_2d(np.asarray(orders, dtype=np.int64)),
            want_assignment,
        )

    # -- factored entry point -----------------------------------------

    def _match_columns_chunk(
        self,
        prepared: PreparedBlocks,
        mv_ones: np.ndarray,
        mv_zeros: np.ndarray,
    ) -> np.ndarray:
        """Fused-lane match columns via the C loop: one call per chunk."""
        block_length = prepared.block_length
        bits = np.concatenate(
            [
                unpack_words_to_bits(mv_zeros, block_length),
                unpack_words_to_bits(mv_ones, block_length),
            ],
            axis=1,
        )
        mv_lanes = np.ascontiguousarray(pack_bits_to_words(bits))
        block_lanes = np.ascontiguousarray(prepared.block_lanes)
        n_rows = mv_lanes.shape[0]
        n_distinct = prepared.n_distinct
        out = np.empty((n_rows, n_distinct), dtype=np.uint8)
        self._library.repro_match(
            _as_uint64_pointer(block_lanes),
            _as_uint64_pointer(mv_lanes),
            ctypes.c_int64(n_rows),
            ctypes.c_int64(n_distinct),
            ctypes.c_int64(block_lanes.shape[-1]),
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_uint8)),
        )
        return out.view(bool)

"""Bit-packed covering kernel: fused integer conflict lanes.

The match test ``(b₁ & mvᴢ) | (b₀ & mv₁) == 0`` is equivalent to one
AND over a *fused conflict lane*: concatenate each block's ones and
zeros bits into a single 2K-bit word ``[b₁|b₀]`` and each MV's zeros
and ones bits into ``[mvᴢ|mv₁]`` — the lanes AND to zero exactly when
the MV matches the block.  Lanes are stored at the narrowest integer
width that holds 2K bits (uint8/16/32/64, multi-word above 64), so at
the paper's K = 12 a block costs 4 bytes instead of the 96 bytes of
float32 bit matrix the GEMM kernel streams — and the whole match
reduces to one integer AND plus an ``argmin`` (the first zero in
covering order *is* the first minimum when a zero exists; when none
exists the gathered value is nonzero, which is exactly the
uncovered test).  No floats, no popcounts, no BLAS.

Two axes of blocking keep every temporary cache-resident:

* **Genome chunking** (the same scheme the GEMM kernel uses) bounds
  the per-chunk rank matrices;
* **Block-table sharding** splits the D axis so each
  ``(chunk, L, shard)`` conflict tensor fits in cache no matter how
  large the distinct table grows.  Shards are independent — covering
  rank and covered weight per shard — and only tiny per-genome
  reductions cross shard boundaries, so shards can also fan out
  across threads (``shard_backend``): the integer ufuncs release the
  GIL, making a :class:`~repro.parallel.ThreadBackend` an honest
  parallel axis inside one fitness call.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass

import numpy as np

from ..blocks import (
    mask_word_count,
    pack_bits_to_words,
    unpack_words_to_bits,
)
from ..trits import ONE, ZERO
from .base import (
    CoveringKernel,
    PreparedBlocks,
    accumulate_complete_rows,
    first_match_rank,
    rank_word_bits,
)

__all__ = ["BitpackKernel"]

# Per-shard conflict tensors hold chunk·L·shard lane elements; this
# byte bound keeps a shard's temporaries inside typical L2 slices.
_SHARD_TENSOR_BYTES = 1 << 21

# Genome chunks bound the (chunk, D) rank matrix and amortize the
# Python-level shard loop.
_CHUNK_TENSOR_ELEMENTS = 1 << 20


def _lane_dtype(lane_bits: int) -> np.dtype:
    """Narrowest unsigned dtype holding one 2K-bit conflict lane."""
    for dtype in (np.uint8, np.uint16, np.uint32, np.uint64):
        if lane_bits <= np.dtype(dtype).itemsize * 8:
            return np.dtype(dtype)
    return np.dtype(np.uint64)


def _pack_lanes(bits: np.ndarray) -> np.ndarray:
    """Pack ``(..., 2K)`` 0/1 bits into ``(..., LW)`` conflict lanes."""
    lane_bits = bits.shape[-1]
    words = pack_bits_to_words(bits)
    dtype = _lane_dtype(lane_bits)
    if dtype != np.dtype(np.uint64):
        words = words.astype(dtype)
    return words


@dataclass(frozen=True)
class _BitpackPrepared(PreparedBlocks):
    """Adds the fused ``(D, LW)`` block conflict lanes ``[b₁|b₀]``."""

    block_lanes: np.ndarray = None


class BitpackKernel(CoveringKernel):
    """Integer conflict-lane covering kernel with D-axis sharding.

    Parameters
    ----------
    shard_size:
        Distinct blocks per shard; ``None`` picks a size that keeps
        each shard's conflict tensor at ``_SHARD_TENSOR_BYTES``.
    shard_backend:
        Optional :class:`repro.parallel.ExecutionBackend` used to fan
        the independent shards of each genome chunk out across
        threads.  Workers fill disjoint result slices, so the backend
        never changes the outcome, only the wall clock.
    """

    name = "bitpack"

    def __init__(self, shard_size: int | None = None, shard_backend=None) -> None:
        if shard_size is not None and shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        self._shard_size = shard_size
        self._shard_backend = shard_backend

    def prepare_masks(
        self,
        block_ones: np.ndarray,
        block_zeros: np.ndarray,
        block_counts: np.ndarray,
        block_length: int,
    ) -> PreparedBlocks:
        base = self._base_prepared(
            block_ones, block_zeros, block_counts, block_length
        )
        ones_words = base.ones_words
        zeros_words = base.zeros_words
        n_distinct = base.n_distinct
        lane_bits = 2 * block_length
        lane_words = mask_word_count(lane_bits)
        lane_dtype = _lane_dtype(lane_bits)
        # Out-of-core tables (np.memmap masks — see core.blocks_io)
        # get memmap lanes over an anonymous temp file, so the shard
        # loop in _cover_lanes streams them from disk page by page and
        # preparation never materializes a D-sized array in RAM.
        if isinstance(block_ones, np.memmap) or isinstance(
            block_zeros, np.memmap
        ):
            spool = tempfile.TemporaryFile()
            block_lanes = np.memmap(
                spool, dtype=lane_dtype, mode="w+",
                shape=(n_distinct, lane_words),
            )
        else:
            block_lanes = np.empty(
                (n_distinct, lane_words), dtype=lane_dtype
            )
        # Chunk the D axis: the (chunk, 2K) unpacked-bit intermediate
        # is the preparation's RAM high-water mark, so bound it instead
        # of building it for the whole table at once.
        chunk = max(1, _CHUNK_TENSOR_ELEMENTS // max(1, lane_bits))
        for start in range(0, n_distinct, chunk):
            stop = min(start + chunk, n_distinct)
            bits = np.concatenate(
                [
                    unpack_words_to_bits(
                        np.asarray(ones_words[start:stop]), block_length
                    ),
                    unpack_words_to_bits(
                        np.asarray(zeros_words[start:stop]), block_length
                    ),
                ],
                axis=1,
            )
            block_lanes[start:stop] = _pack_lanes(bits)
        return _BitpackPrepared(**vars(base), block_lanes=block_lanes)

    # -- lane construction --------------------------------------------

    @staticmethod
    def _mv_lanes_from_words(
        ordered_ones: np.ndarray,
        ordered_zeros: np.ndarray,
        block_length: int,
    ) -> np.ndarray:
        bits = np.concatenate(
            [
                unpack_words_to_bits(ordered_zeros, block_length),
                unpack_words_to_bits(ordered_ones, block_length),
            ],
            axis=2,
        )
        return _pack_lanes(bits)

    # -- factored entry point -----------------------------------------

    def _match_columns_chunk(
        self,
        prepared: PreparedBlocks,
        mv_ones: np.ndarray,
        mv_zeros: np.ndarray,
    ) -> np.ndarray:
        """Fused-lane match test for standalone MVs: one AND per pair."""
        block_length = prepared.block_length
        bits = np.concatenate(
            [
                unpack_words_to_bits(mv_zeros, block_length),
                unpack_words_to_bits(mv_ones, block_length),
            ],
            axis=1,
        )
        mv_lanes = _pack_lanes(bits)  # (M, LW)
        block_lanes = prepared.block_lanes
        conflict = mv_lanes[:, None, 0] & block_lanes[None, :, 0]
        for word in range(1, block_lanes.shape[-1]):
            conflict |= mv_lanes[:, None, word] & block_lanes[None, :, word]
        return conflict == 0

    # -- covering core ------------------------------------------------

    def _shard_slices(self, n_distinct, span, n_vectors, itemsize):
        if self._shard_size is not None:
            size = self._shard_size
        else:
            size = max(
                1,
                _SHARD_TENSOR_BYTES // max(1, span * n_vectors * itemsize),
            )
        return [
            slice(start, min(start + size, n_distinct))
            for start in range(0, n_distinct, size)
        ]

    def _cover_lanes(
        self,
        prepared: _BitpackPrepared,
        mv_lanes: np.ndarray,
        orders: np.ndarray,
        want_assignment: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        n_genomes, n_vectors = mv_lanes.shape[:2]
        n_distinct = prepared.n_distinct
        assignment, frequencies, uncovered = self._empty_results(
            n_genomes, n_vectors, n_distinct
        )
        if n_distinct == 0 or n_genomes == 0:
            return assignment, frequencies, uncovered

        block_lanes = prepared.block_lanes  # (D, LW)
        lane_words = block_lanes.shape[-1]
        counts = prepared.counts
        total_count = prepared.total_count
        # Match bits pack along the MV axis (padded to a power-of-two
        # word width), so first-match extraction is integer bit math on
        # one word per (genome, block) instead of an index reduction
        # over L — see base.first_match_rank.
        padded_vectors = rank_word_bits(n_vectors)

        chunk = max(
            1, _CHUNK_TENSOR_ELEMENTS // max(1, n_vectors * n_distinct)
        )
        for start in range(0, n_genomes, chunk):
            stop = min(start + chunk, n_genomes)
            span = stop - start
            mv_chunk = mv_lanes[start:stop]  # (span, L, LW)
            first_rank = np.empty((span, n_distinct), dtype=np.int64)
            shards = self._shard_slices(
                n_distinct, span, n_vectors, block_lanes.itemsize
            )
            shard_cap = max(shard.stop - shard.start for shard in shards)
            # Reused per shard: the conflict tensor and the (padded)
            # match booleans; padding columns stay False so packed
            # match words never see a phantom MV.
            conflict_buf = np.empty(
                (span, shard_cap, n_vectors), dtype=block_lanes.dtype
            )
            match_buf = np.zeros(
                (span, shard_cap, padded_vectors), dtype=bool
            )

            def cover_shard(
                shard: slice,
                conflict_buf=conflict_buf,
                match_buf=match_buf,
            ) -> np.ndarray:
                size = shard.stop - shard.start
                conflict = conflict_buf[:, :size]
                matches = match_buf[:, :size]
                # One AND per (genome, MV, block): zero ⇔ match.  With
                # several lane words the per-word conflicts OR together
                # — still zero iff every word is clean.
                np.bitwise_and(
                    mv_chunk[:, None, :, 0],
                    block_lanes[shard, 0][None, :, None],
                    out=conflict,
                )  # (span, shard, L)
                for word in range(1, lane_words):
                    conflict |= (
                        mv_chunk[:, None, :, word]
                        & block_lanes[shard, word][None, :, None]
                    )
                np.equal(conflict, 0, out=matches[:, :, :n_vectors])
                rank, hit = first_match_rank(matches)
                first_rank[:, shard] = rank  # disjoint slice per shard
                # Covered weight (exact: integer-valued float64 sums).
                return hit @ prepared.counts_f[shard]

            backend = self._shard_backend
            if backend is None or len(shards) == 1:
                partials = [cover_shard(shard) for shard in shards]
            else:
                # Workers fill disjoint `first_rank` slices and hand
                # their weight vectors back through the ordered map, so
                # the reduction below is single-threaded and the result
                # is independent of worker scheduling.  Each worker
                # gets private scratch buffers — the shared ones would
                # race.
                def cover_shard_private(shard: slice) -> np.ndarray:
                    size = shard.stop - shard.start
                    return cover_shard(
                        shard,
                        conflict_buf=np.empty(
                            (span, size, n_vectors), dtype=block_lanes.dtype
                        ),
                        match_buf=np.zeros(
                            (span, size, padded_vectors), dtype=bool
                        ),
                    )

                partials = backend.map(cover_shard_private, shards)

            covered_weight = np.sum(partials, axis=0)
            uncovered[start:stop] = total_count - covered_weight.astype(
                np.int64
            )
            complete = uncovered[start:stop] == 0
            if not complete.any():
                continue
            sub = np.flatnonzero(complete)
            accumulate_complete_rows(
                assignment,
                frequencies,
                start,
                sub,
                first_rank[sub],
                orders,
                counts,
                want_assignment,
            )
        return assignment, frequencies, uncovered

    # -- kernel entry points ------------------------------------------

    def cover_ordered_words(
        self,
        prepared: PreparedBlocks,
        ordered_ones: np.ndarray,
        ordered_zeros: np.ndarray,
        orders: np.ndarray,
        want_assignment: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        mv_lanes = self._mv_lanes_from_words(
            ordered_ones, ordered_zeros, prepared.block_length
        )
        return self._cover_lanes(prepared, mv_lanes, orders, want_assignment)

    def cover_grid(
        self,
        prepared: PreparedBlocks,
        ordered_grid: np.ndarray,
        orders: np.ndarray,
        want_assignment: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        # Fast path: conflict lanes straight from the trit grid.
        bits = np.concatenate(
            [ordered_grid == ZERO, ordered_grid == ONE], axis=2
        )
        mv_lanes = _pack_lanes(bits)
        return self._cover_lanes(
            prepared,
            mv_lanes,
            np.atleast_2d(np.asarray(orders, dtype=np.int64)),
            want_assignment,
        )

"""Request execution shared by the daemon and the offline runner.

Byte parity between a served response and the offline CLI is the
serve contract, and this module is how it is enforced *structurally*
rather than by testing alone: both the HTTP daemon and ``repro
request`` parse, execute and render every request through the same
:class:`CompressionService` methods, so the two paths cannot drift —
they are one path.  The daemon adds concurrency around it (the
coalescer batches fitness requests, a worker pool runs compress
requests), but both of those layers are semantically inert:
``evaluate_batch`` is elementwise-identical to per-row evaluation,
and every compress request derives its run seeds from its **own**
``SeedSequence(seed)`` via the optimizer's spawn discipline, so no
interleaving of requests can leak into any response.

Response payloads contain only *seed-pure* fields — rates, MV sets,
evaluation and generation counts — never cache hit counters or
timings, which depend on what other requests warmed and therefore
belong in ``/stats``, not in parity-compared bodies.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from ..core.blocks import BlockSet
from ..core.blocks_io import load_block_table
from ..core.config import CompressionConfig, EAParameters
from ..core.optimizer import (
    EAMVOptimizer,
    OptimizationResult,
    execute_run_task,
)
from ..parallel import RetryPolicy, SerialBackend
from ..testdata.test_set import TestSet
from .protocol import (
    ProtocolError,
    decode_genomes,
    encode_mv_set,
    parse_strategy,
    require,
)
from .state import FitnessKey, TableEntry, WarmRegistry

__all__ = ["CompressionService"]

# EAParameters fields a request may override; anything else is a 400
# (catching typos beats silently running the default).
_EA_FIELDS = frozenset(
    (
        "population_size",
        "children_per_generation",
        "crossover_probability",
        "mutation_probability",
        "inversion_probability",
        "stagnation_limit",
        "max_evaluations",
        "max_generations",
        "include_all_u",
        "seed_nine_c",
        "parent_selection",
        "tournament_size",
        "adaptive_operators",
    )
)


class CompressionService:
    """Parse → execute → payload, identically online and offline."""

    def __init__(
        self,
        registry: WarmRegistry,
        kernel: str = "auto",
        retry: RetryPolicy | None = None,
    ) -> None:
        self._registry = registry
        self._kernel = kernel
        self._retry = retry

    @property
    def registry(self) -> WarmRegistry:
        """The warm-state registry behind this service."""
        return self._registry

    # -- tables --------------------------------------------------------

    def register_table(self, body: dict) -> dict:
        """`/tables`: build + register a block table; its description."""
        entry = self._build_entry(body)
        return entry.describe()

    def _build_entry(self, body: dict) -> TableEntry:
        if not isinstance(body, dict):
            raise ProtocolError(400, "table must be a JSON object")
        name = body.get("name", "")
        if not isinstance(name, str):
            raise ProtocolError(400, "field 'name' must be a string")
        if "path" in body:
            path = require(body, "path", str)
            try:
                blocks = load_block_table(path)
            except (OSError, ValueError, KeyError) as error:
                raise ProtocolError(
                    400, f"cannot load block table from {path!r}: {error}"
                ) from None
            return self._registry.register(blocks, name or path)
        patterns = require(body, "patterns", list)
        block_length = require(body, "block_length", int)
        if block_length < 1:
            raise ProtocolError(400, "block_length must be >= 1")
        if not all(isinstance(row, str) for row in patterns):
            raise ProtocolError(400, "patterns must be trit strings")
        try:
            test_set = TestSet.from_strings(name or "served", patterns)
            blocks = test_set.blocks(block_length)
        except ValueError as error:
            raise ProtocolError(400, str(error)) from None
        return self._registry.register(blocks, name)

    def _resolve_entry(self, value) -> TableEntry:
        """A request's ``table`` field → its warm entry.

        A string is a digest reference (404 when unknown); an object
        is an inline table, auto-registered — which is what lets one
        request body serve both the daemon and the offline runner.
        """
        if isinstance(value, str):
            entry = self._registry.get(value)
            if entry is None:
                raise ProtocolError(
                    404,
                    f"no table registered under digest {value!r}; "
                    "POST it to /tables first or inline it",
                )
            return entry
        if isinstance(value, dict):
            return self._build_entry(value)
        raise ProtocolError(
            400, "field 'table' must be a digest string or a table object"
        )

    # -- fitness -------------------------------------------------------

    def parse_fitness(self, body: dict) -> tuple[FitnessKey, np.ndarray]:
        """Validate a `/fitness` body into its coalescing key + matrix."""
        entry = self._resolve_entry(require(body, "table", (str, dict)))
        n_vectors = require(body, "n_vectors", int)
        if n_vectors < 1:
            raise ProtocolError(400, "n_vectors must be >= 1")
        block_length = entry.blocks.block_length
        strategy = parse_strategy(body.get("strategy", "huffman"))
        kernel = body.get("kernel", self._kernel)
        if not isinstance(kernel, str):
            raise ProtocolError(400, "field 'kernel' must be a string")
        genomes = decode_genomes(
            require(body, "genomes", list), n_vectors * block_length
        )
        entry.fitness_requests += 1
        key = FitnessKey(
            digest=entry.digest,
            n_vectors=n_vectors,
            block_length=block_length,
            strategy=strategy,
            kernel=kernel,
        )
        return key, genomes

    def evaluate(self, key: FitnessKey, genomes: np.ndarray) -> np.ndarray:
        """Price a (possibly coalesced) genome matrix on the warm engine.

        The coalescer's pricing hook; also the offline runner's direct
        path.  Single-caller per engine by construction (one
        dispatcher thread, or one offline thread).
        """
        try:
            engine = self._registry.engine_for(key)
        except (ValueError, KeyError) as error:
            raise ProtocolError(400, str(error)) from None
        return engine.evaluate_batch(genomes)

    def fitness_payload(
        self, key: FitnessKey, rates: np.ndarray
    ) -> dict:
        """The `/fitness` response payload (seed-pure fields only)."""
        return {
            "table": key.digest,
            "n_vectors": key.n_vectors,
            "block_length": key.block_length,
            "strategy": key.strategy.value,
            "n_genomes": int(rates.size),
            "rates": [float(rate) for rate in rates],
        }

    def run_fitness(self, body: dict) -> dict:
        """One `/fitness` request end to end — the offline reference.

        The daemon result is byte-identical by construction: it runs
        the same three calls, with the coalescer between
        :meth:`parse_fitness` and :meth:`evaluate` — inert because
        ``evaluate_batch`` prices concatenated rows elementwise.
        """
        key, genomes = self.parse_fitness(body)
        return self.fitness_payload(key, self.evaluate(key, genomes))

    # -- compress ------------------------------------------------------

    def run_compress(self, body: dict) -> dict:
        """One `/compress` request end to end (daemon and offline).

        Seeds follow the optimizer's spawn discipline: the request's
        ``seed`` spawns one ``SeedSequence`` child per run, so the
        response is a pure function of (table, config, seed) — shared
        warm caches and request interleaving cannot reach it.
        """
        entry = self._resolve_entry(require(body, "table", (str, dict)))
        seed = require(body, "seed", int)
        config = self._parse_config(body, entry.blocks)
        entry.compress_requests += 1
        optimizer = EAMVOptimizer(config, seed=seed)
        tasks = optimizer.build_run_tasks(entry.blocks)
        # SerialBackend inside the daemon's worker thread: the shared
        # MV cache is injected per run, and the PR-6 retry policy
        # re-attempts crashed runs (self-seeded → identical retried
        # results).
        outcomes = SerialBackend().map(
            partial(execute_run_task, mv_cache=entry.mv_cache),
            tasks,
            retry=self._retry,
        )
        result = OptimizationResult(config=config, runs=tuple(outcomes))
        return self._compress_payload(entry, seed, config, result)

    def _parse_config(self, body: dict, blocks: BlockSet) -> CompressionConfig:
        spec = body.get("config", {})
        if not isinstance(spec, dict):
            raise ProtocolError(400, "field 'config' must be a JSON object")
        unknown = set(spec) - {
            "n_vectors", "runs", "strategy", "kernel", "fill_default", "ea",
        }
        if unknown:
            raise ProtocolError(
                400, f"unknown config fields: {', '.join(sorted(unknown))}"
            )
        ea_spec = spec.get("ea", {})
        if not isinstance(ea_spec, dict):
            raise ProtocolError(400, "config field 'ea' must be an object")
        bad = set(ea_spec) - _EA_FIELDS
        if bad:
            raise ProtocolError(
                400, f"unknown ea fields: {', '.join(sorted(bad))}"
            )
        try:
            ea = EAParameters(**ea_spec)
            return CompressionConfig(
                block_length=blocks.block_length,
                n_vectors=int(spec.get("n_vectors", 64)),
                strategy=parse_strategy(spec.get("strategy", "huffman")),
                fill_default=int(spec.get("fill_default", 0)),
                runs=int(spec.get("runs", 5)),
                kernel=spec.get("kernel", self._kernel),
                tuning=self._registry.tuning,
                ea=ea,
            )
        except (TypeError, ValueError) as error:
            raise ProtocolError(400, str(error)) from None

    def _compress_payload(
        self,
        entry: TableEntry,
        seed: int,
        config: CompressionConfig,
        result: OptimizationResult,
    ) -> dict:
        best = result.best_run
        return {
            "table": entry.digest,
            "seed": seed,
            "config": {
                "block_length": config.block_length,
                "n_vectors": config.n_vectors,
                "strategy": config.strategy.value,
                "runs": config.runs,
            },
            "mean_rate": float(result.mean_rate),
            "best_rate": float(best.rate),
            "best_run": best.run_index,
            "best_mv_set": encode_mv_set(result.best_mv_set),
            "total_evaluations": int(result.total_evaluations),
            "runs": [
                {
                    "run": outcome.run_index,
                    "rate": float(outcome.rate),
                    "evaluations": int(outcome.ea_result.evaluations),
                    "generations": int(outcome.ea_result.generations),
                    "terminated_by": outcome.ea_result.terminated_by,
                }
                for outcome in result.runs
            ],
        }

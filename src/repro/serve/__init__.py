"""Compression-as-a-service: the `repro serve` daemon.

A long-lived, stdlib-only HTTP service that keeps prepared kernels,
the thread-safe :class:`~repro.core.fitness.MVMatchCache` and warm
fitness engines resident across requests (:mod:`.state`), coalesces
concurrent same-table fitness requests into single ``evaluate_batch``
passes (:mod:`.batching`), and degrades gracefully under load — 429
on a full queue, 504 past the per-request timeout, 503 while
draining (:mod:`.daemon`).  The determinism contract: a served
response is byte-identical to the same request executed offline by
``repro request``, because both drive the one
:class:`~repro.serve.service.CompressionService`.  See
``docs/serve.md`` for the wire protocol.
"""

from .batching import BatchStats, Coalescer, QueueFullError
from .daemon import ServeDaemon
from .protocol import ProtocolError, canonical_json
from .service import CompressionService
from .state import FitnessKey, TableEntry, WarmRegistry

__all__ = [
    "BatchStats",
    "Coalescer",
    "CompressionService",
    "FitnessKey",
    "ProtocolError",
    "QueueFullError",
    "ServeDaemon",
    "TableEntry",
    "WarmRegistry",
    "canonical_json",
]

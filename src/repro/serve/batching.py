"""Cross-request batching: coalesce same-table fitness requests.

The batched fitness engine is fastest when it prices one large
``(C, L·K)`` matrix per kernel pass, but served requests arrive as
many small matrices.  The :class:`Coalescer` bridges the two: an
admission queue gathers concurrent requests for the same
:class:`~repro.serve.state.FitnessKey` (table digest + evaluation
shape) and a single dispatcher thread flushes each group when its
batching window expires (``window_ms``) or it reaches ``max_batch``
requests — whichever comes first — pricing the concatenated matrix in
**one** ``evaluate_batch`` call and fanning the sliced rates back
through per-request futures.

Why this cannot change results: ``evaluate_batch`` is documented (and
parity-pinned) to be *identical, element for element, to calling the
single-genome path on each row*.  Concatenation and slicing are
therefore invisible — any interleaving of requests produces the same
per-request rates as serial execution, which is the serve determinism
contract.  Groups are keyed by the full :class:`FitnessKey`, so
requests against different tables (or shapes) can never share a
matrix.

Backpressure: at most ``max_queue`` requests may be waiting across
all groups; past that, :meth:`submit` raises :class:`QueueFullError`
and the daemon answers 429 instead of accumulating unbounded state.
``stop(drain=True)`` flushes everything still queued before the
dispatcher exits — the SIGTERM path — so accepted requests are always
answered.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np

__all__ = ["BatchStats", "Coalescer", "QueueFullError"]


class QueueFullError(Exception):
    """Admission queue at capacity; the daemon answers 429."""


class _Group:
    """Requests for one key awaiting a flush."""

    __slots__ = ("key", "deadline", "matrices", "futures")

    def __init__(self, key, deadline: float) -> None:
        self.key = key
        self.deadline = deadline
        self.matrices: list[np.ndarray] = []
        self.futures: list[Future] = []


class BatchStats:
    """Coalescing effectiveness counters (surfaced via `/stats`)."""

    def __init__(self) -> None:
        self.submitted = 0
        self.rejected = 0
        self.flushes = 0
        self.window_flushes = 0
        self.size_flushes = 0
        self.drain_flushes = 0
        self.batched_requests = 0  # requests that shared a flush
        self.occupancy_sum = 0
        self.occupancy_max = 0

    @property
    def mean_occupancy(self) -> float:
        """Requests per flush (0.0 before the first flush)."""
        return self.occupancy_sum / self.flushes if self.flushes else 0.0

    def as_dict(self, queue_depth: int) -> dict:
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "flushes": self.flushes,
            "window_flushes": self.window_flushes,
            "size_flushes": self.size_flushes,
            "drain_flushes": self.drain_flushes,
            "batched_requests": self.batched_requests,
            "mean_occupancy": self.mean_occupancy,
            "max_occupancy": self.occupancy_max,
            "queue_depth": queue_depth,
        }


class Coalescer:
    """Single-dispatcher admission queue batching same-key requests.

    ``evaluate(key, stacked_matrix) -> rates`` is the pricing hook —
    in the daemon it resolves the key's warm engine and calls its
    ``evaluate_batch``.  It runs on the dispatcher thread, so one
    engine never sees concurrent callers.
    """

    def __init__(
        self,
        evaluate,
        window_ms: float = 5.0,
        max_batch: int = 64,
        max_queue: int = 256,
    ) -> None:
        if window_ms < 0:
            raise ValueError("window_ms must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self._evaluate = evaluate
        self._window = window_ms / 1000.0
        self._max_batch = max_batch
        self._max_queue = max_queue
        self._cond = threading.Condition()
        self._groups: dict = {}
        self._queued = 0
        self._running = False
        self._drain = True
        self._thread: threading.Thread | None = None
        self.stats = BatchStats()

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet flushed."""
        with self._cond:
            return self._queued

    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        with self._cond:
            if self._running:
                return
            self._running = True
        self._thread = threading.Thread(
            target=self._dispatch, name="repro-coalescer", daemon=True
        )
        self._thread.start()

    def stop(self, drain: bool = True) -> None:
        """Stop the dispatcher; with ``drain``, flush everything first.

        Without ``drain``, still-queued futures fail with
        :class:`QueueFullError` so no waiter hangs.
        """
        with self._cond:
            if not self._running and self._thread is None:
                return
            self._running = False
            self._drain = drain
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def submit(self, key, genomes: np.ndarray) -> Future:
        """Admit one request; the future resolves to its rate array."""
        future: Future = Future()
        with self._cond:
            if not self._running:
                raise QueueFullError("coalescer is not accepting requests")
            if self._queued + 1 > self._max_queue:
                self.stats.rejected += 1
                raise QueueFullError(
                    f"admission queue full ({self._max_queue} requests)"
                )
            group = self._groups.get(key)
            if group is None:
                group = _Group(key, time.monotonic() + self._window)
                self._groups[key] = group
            group.matrices.append(genomes)
            group.futures.append(future)
            self._queued += 1
            self.stats.submitted += 1
            self._cond.notify_all()
        return future

    # -- dispatcher ----------------------------------------------------

    def _dispatch(self) -> None:
        while True:
            with self._cond:
                while self._running and not self._groups:
                    self._cond.wait()
                if not self._running and not self._groups:
                    return
                if not self._running:
                    # Stopping: flush (or fail) everything queued now.
                    groups = list(self._groups.values())
                    self._groups.clear()
                    self._queued = 0
                    drain = self._drain
                else:
                    group = self._due_group()
                    if group is None:
                        continue  # timed out back into the wait loop
                    self._groups.pop(group.key)
                    self._queued -= len(group.futures)
                    groups, drain = None, False
            if groups is not None:
                for stale in groups:
                    if drain:
                        self._flush(stale, "drain")
                    else:
                        error = QueueFullError("coalescer stopped")
                        for future in stale.futures:
                            future.set_exception(error)
                return
            reason = (
                "size" if len(group.futures) >= self._max_batch else "window"
            )
            self._flush(group, reason)

    def _due_group(self):
        """The next group to flush, or ``None`` after an indecisive wait.

        Called under the lock.  A group is due when full
        (``max_batch``) or when its window deadline has passed;
        otherwise wait until the earliest deadline and re-decide.
        """
        for group in self._groups.values():
            if len(group.futures) >= self._max_batch:
                return group
        group = min(self._groups.values(), key=lambda g: g.deadline)
        now = time.monotonic()
        if group.deadline <= now:
            return group
        self._cond.wait(timeout=group.deadline - now)
        return None

    def _flush(self, group: _Group, reason: str) -> None:
        """Price one group in a single batch call; fan results back."""
        occupancy = len(group.futures)
        stats = self.stats
        stats.flushes += 1
        stats.occupancy_sum += occupancy
        stats.occupancy_max = max(stats.occupancy_max, occupancy)
        if reason == "window":
            stats.window_flushes += 1
        elif reason == "size":
            stats.size_flushes += 1
        else:
            stats.drain_flushes += 1
        if occupancy > 1:
            stats.batched_requests += occupancy
        try:
            stacked = (
                group.matrices[0]
                if occupancy == 1
                else np.concatenate(group.matrices, axis=0)
            )
            rates = np.asarray(self._evaluate(group.key, stacked))
        except BaseException as error:  # fan the failure to every waiter
            for future in group.futures:
                future.set_exception(error)
            return
        offset = 0
        for matrix, future in zip(group.matrices, group.futures):
            count = matrix.shape[0]
            future.set_result(rates[offset : offset + count])
            offset += count

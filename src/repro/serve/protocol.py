"""Wire protocol of the serve daemon: JSON bodies in, canonical JSON out.

Every request and response body is JSON.  Responses are rendered by
:func:`canonical_json` — sorted keys, no whitespace, one trailing
newline — so a response is a *byte-deterministic* function of its
payload dict.  That is the foundation of the serve determinism
contract: the daemon and the offline ``repro request`` command build
their payloads through the same :mod:`repro.serve.service` functions,
so equal payloads become equal bytes, `cmp`-able by the parity suite.

Genomes travel as trit strings over ``0``/``1``/``U`` (``X`` and
``-`` accepted on input, ``U`` always emitted), one string per genome
of exactly ``n_vectors * block_length`` characters — the same surface
notation as the paper and the rest of the CLI.

Validation errors raise :class:`ProtocolError` carrying the HTTP
status the daemon should answer with; the offline runner prints the
same message to stderr, so a malformed request fails identically both
ways.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from ..core.encoding import EncodingStrategy
from ..core.trits import format_trits, parse_trits

__all__ = [
    "ProtocolError",
    "canonical_json",
    "decode_genomes",
    "encode_mv_set",
    "parse_strategy",
    "require",
]


class ProtocolError(Exception):
    """A malformed or unserviceable request; carries the HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def canonical_json(payload: Any) -> bytes:
    """The one byte rendering of a payload: sorted keys, no spaces.

    ``sort_keys`` removes dict insertion order from the bytes,
    ``separators`` removes formatting discretion, and floats render
    through :func:`repr` (shortest round-trip), which is deterministic
    for equal float64 values — together: equal payloads, equal bytes.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("ascii")


def require(body: dict, field: str, kind: type | tuple) -> Any:
    """Fetch a typed required field or raise a 400 naming it."""
    if not isinstance(body, dict):
        raise ProtocolError(400, "request body must be a JSON object")
    if field not in body:
        raise ProtocolError(400, f"missing required field {field!r}")
    value = body[field]
    if not isinstance(value, kind) or isinstance(value, bool):
        kinds = kind if isinstance(kind, tuple) else (kind,)
        names = "/".join(k.__name__ for k in kinds)
        raise ProtocolError(400, f"field {field!r} must be {names}")
    return value


def parse_strategy(value: str) -> EncodingStrategy:
    """An encoding strategy name → enum, rejecting non-frequency ones."""
    try:
        strategy = EncodingStrategy(value)
    except ValueError:
        valid = ", ".join(s.value for s in EncodingStrategy)
        raise ProtocolError(
            400, f"unknown strategy {value!r}; choose one of: {valid}"
        ) from None
    if strategy is EncodingStrategy.FIXED:
        raise ProtocolError(
            400, "strategy 'fixed' has no fitness; use a frequency-based one"
        )
    return strategy


def decode_genomes(texts: list, genome_length: int) -> np.ndarray:
    """Trit strings → an ``(C, L·K)`` int8 genome matrix (strict length)."""
    if not isinstance(texts, list) or not texts:
        raise ProtocolError(400, "field 'genomes' must be a non-empty list")
    rows = []
    for index, text in enumerate(texts):
        if not isinstance(text, str):
            raise ProtocolError(400, f"genome {index} must be a trit string")
        try:
            trits = parse_trits(text)
        except ValueError as error:
            raise ProtocolError(400, f"genome {index}: {error}") from None
        if len(trits) != genome_length:
            raise ProtocolError(
                400,
                f"genome {index} has {len(trits)} trits, "
                f"expected n_vectors*block_length = {genome_length}",
            )
        rows.append(trits)
    return np.asarray(rows, dtype=np.int8)


def encode_mv_set(mv_set) -> list[str]:
    """An :class:`~repro.core.matching.MVSet` → its wire trit strings."""
    return [format_trits(vector.trits) for vector in mv_set]

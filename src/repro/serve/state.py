"""Warm-state registry: block tables, shared MV caches, warm engines.

The registry is the daemon's memory across requests.  Everything is
keyed by the **block-table digest** (:func:`repro.core.cache.persist.
block_table_digest` — SHA-256 over K and the distinct-block arrays),
so two uploads of the same patterns land on the same warm state and
two different tables can never cross-contaminate.

Per table the registry holds:

* the prepared :class:`~repro.core.blocks.BlockSet` itself;
* one shared, thread-safe :class:`~repro.core.fitness.MVMatchCache`
  — injected into every fitness engine and every compress run that
  touches this table, so a column priced for one request is a hit for
  every later one.  Sharing is sound because a match column is a pure
  function of (MV, block table): a warmer cache skips kernel work but
  can never change a priced result;
* warm :class:`~repro.core.fitness.BatchCompressionRateFitness`
  engines, one per ``(L, K, strategy, kernel)`` shape, with the block
  table already prepared in the kernel's native layout.  Engines are
  *not* thread-safe, so each is driven only by the coalescer's single
  dispatcher thread (or the offline runner's single thread).

``mv_cache_persist`` hydrates a table's shared cache from the
persisted on-disk form at registration and saves it back on drain —
the daemon analog of the per-run warm-start flag.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path

from ..core.blocks import BlockSet
from ..core.cache import DEFAULT_POLICY, block_table_digest
from ..core.cache.persist import save_mv_cache
from ..core.encoding import EncodingStrategy
from ..core.fitness import (
    DEFAULT_MV_CACHE_SIZE,
    BatchCompressionRateFitness,
    MVMatchCache,
)
from ..tuning.profile import TuningProfile

__all__ = ["FitnessKey", "TableEntry", "WarmRegistry"]


@dataclass(frozen=True)
class FitnessKey:
    """The shape under which a warm fitness engine is reusable.

    Digest pins the block table; the remaining fields are everything
    :class:`BatchCompressionRateFitness` construction depends on.
    Requests with equal keys coalesce into the same engine (and hence
    the same ``evaluate_batch`` call); unequal keys never share an
    engine, which is what makes mixed-digest batches impossible by
    construction.
    """

    digest: str
    n_vectors: int
    block_length: int
    strategy: EncodingStrategy
    kernel: str


class TableEntry:
    """One registered block table and its warm state."""

    def __init__(
        self,
        blocks: BlockSet,
        digest: str,
        name: str,
        mv_cache_size: int,
        mv_cache_policy: str,
    ) -> None:
        self.blocks = blocks
        self.digest = digest
        self.name = name
        self.mv_cache = (
            MVMatchCache(mv_cache_size, policy=mv_cache_policy)
            if mv_cache_size
            else None
        )
        self.engines: dict[FitnessKey, BatchCompressionRateFitness] = {}
        self.compress_requests = 0
        self.fitness_requests = 0

    def describe(self) -> dict:
        """The `/tables` registration response payload (seed-pure)."""
        return {
            "digest": self.digest,
            "name": self.name,
            "block_length": self.blocks.block_length,
            "n_blocks": int(self.blocks.n_blocks),
            "n_distinct": int(self.blocks.n_distinct),
            "original_bits": int(self.blocks.original_bits),
        }

    def cache_stats(self) -> dict:
        """Shared-cache counters for `/stats` (not parity material)."""
        cache = self.mv_cache
        if cache is None:
            return {"enabled": False}
        lookups = cache.hits + cache.misses
        return {
            "enabled": True,
            "policy": cache.policy_name,
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "size": len(cache),
            "capacity": cache.capacity,
            "hit_rate": cache.hits / lookups if lookups else 0.0,
            "warm_loaded": cache.warm_loaded,
        }


class WarmRegistry:
    """Digest-keyed warm state shared by every request of the daemon."""

    def __init__(
        self,
        mv_cache_size: int = DEFAULT_MV_CACHE_SIZE,
        mv_cache_policy: str | None = None,
        mv_cache_persist: bool = False,
        mv_cache_dir: Path | None = None,
        tuning: TuningProfile | None = None,
    ) -> None:
        self._lock = threading.RLock()
        self._tables: dict[str, TableEntry] = {}
        self._mv_cache_size = int(mv_cache_size or 0)
        self._mv_cache_policy = mv_cache_policy or DEFAULT_POLICY
        self._mv_cache_persist = bool(mv_cache_persist)
        self._mv_cache_dir = mv_cache_dir
        self._tuning = tuning

    @property
    def tuning(self) -> TuningProfile | None:
        """The tuning profile every served engine runs with."""
        return self._tuning

    @property
    def mv_cache_persist(self) -> bool:
        """Whether shared caches hydrate from / save to disk."""
        return self._mv_cache_persist

    def register(self, blocks: BlockSet, name: str = "") -> TableEntry:
        """Register (or re-find) a block table; returns its entry.

        Idempotent by digest: re-registering the same table returns
        the existing entry with all its warm state intact.
        """
        digest = block_table_digest(blocks)
        with self._lock:
            entry = self._tables.get(digest)
            if entry is None:
                entry = TableEntry(
                    blocks,
                    digest,
                    name,
                    self._mv_cache_size,
                    self._mv_cache_policy,
                )
                self._tables[digest] = entry
            return entry

    def get(self, digest: str) -> TableEntry | None:
        """The entry registered under ``digest``, or ``None``."""
        with self._lock:
            return self._tables.get(digest)

    def digests(self) -> list[str]:
        """Registered digests, sorted (stable for `/stats`)."""
        with self._lock:
            return sorted(self._tables)

    def engine_for(self, key: FitnessKey) -> BatchCompressionRateFitness:
        """The warm fitness engine for ``key``, built on first use.

        The returned engine shares the table's thread-safe MV cache
        but is itself single-caller: the coalescer's dispatcher thread
        is the only driver in the daemon (the offline runner has only
        one thread to begin with).
        """
        with self._lock:
            entry = self._tables.get(key.digest)
            if entry is None:
                raise KeyError(key.digest)
            engine = entry.engines.get(key)
            if engine is None:
                engine = BatchCompressionRateFitness(
                    entry.blocks,
                    n_vectors=key.n_vectors,
                    block_length=key.block_length,
                    strategy=key.strategy,
                    kernel=key.kernel,
                    mv_cache_size=self._mv_cache_size,
                    tuning=self._tuning,
                    mv_cache=entry.mv_cache,
                    mv_cache_persist=self._mv_cache_persist,
                    mv_cache_dir=self._mv_cache_dir,
                )
                entry.engines[key] = engine
            return engine

    def persist_caches(self) -> list[Path]:
        """Save every table's warm shared cache to disk (drain hook).

        Returns the files written; a no-op list when persistence is
        off.  The per-table cache is saved under every resolved kernel
        its engines priced with, mirroring the per-run flag's keying.
        """
        written: list[Path] = []
        if not self._mv_cache_persist:
            return written
        with self._lock:
            entries = list(self._tables.values())
        for entry in entries:
            if entry.mv_cache is None or not len(entry.mv_cache):
                continue
            kernels = {
                engine.kernel_name
                for engine in entry.engines.values()
                if engine.kernel_name != "auto"
            }
            for kernel_name in sorted(kernels):
                path = save_mv_cache(
                    entry.mv_cache,
                    entry.digest,
                    kernel_name,
                    entry.blocks.block_length,
                    directory=self._mv_cache_dir,
                )
                if path is not None:
                    written.append(path)
        return written

    def stats(self) -> dict:
        """Per-table warm-state counters for `/stats`."""
        with self._lock:
            return {
                entry.digest: {
                    **entry.describe(),
                    "mv_cache": entry.cache_stats(),
                    "engines": len(entry.engines),
                    "fitness_requests": entry.fitness_requests,
                    "compress_requests": entry.compress_requests,
                }
                for entry in self._tables.values()
            }

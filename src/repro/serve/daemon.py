"""The long-lived HTTP daemon: warm state + coalescing over stdlib http.

:class:`ServeDaemon` wires the pieces together: a
:class:`~http.server.ThreadingHTTPServer` accepts requests on
per-connection threads; ``/fitness`` bodies are admitted to the
:class:`~repro.serve.batching.Coalescer` (one dispatcher thread, one
warm engine per key); ``/compress`` bodies run on a bounded persistent
worker pool so one long EA run cannot monopolize the accept loop.
All pricing flows through the shared
:class:`~repro.serve.service.CompressionService`, which the offline
``repro request`` command drives directly — the byte-parity contract.

Degradation ladder, in order of preference:

* **429** — admission queue (or compress pool backlog) full; retry
  later, nothing was started;
* **504** — the per-request timeout elapsed; the work is abandoned
  PR-6-style (its slot frees when it finishes, the result discarded);
* **503** — the daemon is draining; in-flight requests finish, new
  ones are turned away.

``shutdown(drain=True)`` — the SIGTERM path — stops admission,
flushes the coalescer, waits out the worker pool, persists warm
caches when enabled, then stops the accept loop.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor, TimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import json

from ..core.kernels import kernel_availability
from ..core.kernels.native import native_status, native_warning_emitted
from .batching import Coalescer, QueueFullError
from .protocol import ProtocolError, canonical_json
from .service import CompressionService

__all__ = ["ServeDaemon"]


class _Handler(BaseHTTPRequestHandler):
    """Route HTTP verbs to the owning daemon; never log to stderr."""

    protocol_version = "HTTP/1.1"
    daemon: "ServeDaemon"  # set on the subclass the daemon builds

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging would swamp the daemon's stderr

    def _send(self, status: int, payload) -> None:
        body = canonical_json(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ProtocolError(400, "request needs a JSON body")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise ProtocolError(400, f"invalid JSON body: {error}") from None

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        daemon = self.daemon
        if self.path == "/healthz":
            self._send(200, daemon.health())
        elif self.path == "/stats":
            self._send(200, daemon.stats())
        else:
            self._send(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        daemon = self.daemon
        route = {
            "/tables": daemon.handle_tables,
            "/fitness": daemon.handle_fitness,
            "/compress": daemon.handle_compress,
        }.get(self.path)
        if route is None:
            self._send(404, {"error": f"unknown path {self.path!r}"})
            return
        if daemon.draining:
            daemon.count("rejected")
            self._send(503, {"error": "daemon is draining"})
            return
        try:
            status, payload = route(self._read_body())
        except ProtocolError as error:
            daemon.count("errors")
            status, payload = error.status, {"error": error.message}
        except Exception as error:  # a bug, not a bad request
            daemon.count("errors")
            status, payload = 500, {"error": f"internal error: {error}"}
        self._send(status, payload)


class ServeDaemon:
    """Warm-state compression service over stdlib HTTP."""

    def __init__(
        self,
        service: CompressionService,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        batch_window_ms: float = 5.0,
        max_batch: int = 64,
        max_queue: int = 256,
        request_timeout: float | None = None,
    ) -> None:
        self._service = service
        self._jobs = max(1, int(jobs))
        self._max_queue = int(max_queue)
        self._timeout = request_timeout
        self._coalescer = Coalescer(
            service.evaluate,
            window_ms=batch_window_ms,
            max_batch=max_batch,
            max_queue=max_queue,
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self._jobs, thread_name_prefix="repro-compress"
        )
        self._compress_in_flight = 0
        self._lock = threading.Lock()
        self._counters = {
            "tables": 0,
            "fitness": 0,
            "compress": 0,
            "rejected": 0,
            "timeouts": 0,
            "errors": 0,
        }
        self._draining = False
        self._started = time.monotonic()
        handler = type("_BoundHandler", (_Handler,), {"daemon": self})
        # The stdlib listen backlog (5) drops connects under bursty
        # concurrency before backpressure can answer 429; size it to
        # the admission bound so refusal is always an HTTP status.
        server = type(
            "_BoundServer",
            (ThreadingHTTPServer,),
            {"request_queue_size": max(128, self._max_queue)},
        )
        self._httpd = server((host, port), handler)
        self._serve_thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port resolved when 0 was asked."""
        return self._httpd.server_address[:2]

    @property
    def draining(self) -> bool:
        """Whether new requests are being turned away (503)."""
        return self._draining

    def start(self) -> None:
        """Serve in a background thread (tests, benches, the example)."""
        self._coalescer.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._serve_thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (the CLI)."""
        self._coalescer.start()
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()

    def shutdown(self, drain: bool = True) -> None:
        """Stop serving; with ``drain`` (SIGTERM), finish accepted work.

        Order matters: mark draining (new requests → 503), flush the
        coalescer (fitness waiters resolve), wait out the compress
        pool, persist warm caches, then stop the accept loop.
        """
        self._draining = True
        self._coalescer.stop(drain=drain)
        self._pool.shutdown(wait=drain, cancel_futures=not drain)
        if drain:
            self._service.registry.persist_caches()
        self._httpd.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join()
            self._httpd.server_close()
            self._serve_thread = None

    def count(self, counter: str) -> None:
        """Bump one request counter (thread-safe)."""
        with self._lock:
            self._counters[counter] += 1

    # -- endpoint handlers (called from connection threads) ------------

    def handle_tables(self, body: dict) -> tuple[int, dict]:
        self.count("tables")
        return 200, self._service.register_table(body)

    def handle_fitness(self, body: dict) -> tuple[int, dict]:
        self.count("fitness")
        key, genomes = self._service.parse_fitness(body)
        try:
            future = self._coalescer.submit(key, genomes)
        except QueueFullError as error:
            self.count("rejected")
            status = 503 if self._draining else 429
            raise ProtocolError(status, str(error)) from None
        rates = self._await(future)
        return 200, self._service.fitness_payload(key, rates)

    def handle_compress(self, body: dict) -> tuple[int, dict]:
        self.count("compress")
        with self._lock:
            if self._compress_in_flight >= self._max_queue:
                self._counters["rejected"] += 1
                raise ProtocolError(
                    429,
                    f"compress backlog full ({self._max_queue} requests)",
                )
            self._compress_in_flight += 1
        future = self._pool.submit(self._run_compress, body)
        return 200, self._await(future)

    def _run_compress(self, body: dict) -> dict:
        try:
            return self._service.run_compress(body)
        finally:
            with self._lock:
                self._compress_in_flight -= 1

    def _await(self, future: Future):
        """Wait out a future under the per-request timeout (504 past it).

        On timeout the work is *abandoned*, PR-6 style: the slot frees
        whenever the worker finishes, and the late result is discarded
        with it.
        """
        try:
            return future.result(timeout=self._timeout)
        except TimeoutError:
            self.count("timeouts")
            raise ProtocolError(
                504,
                f"request exceeded the {self._timeout}s timeout; "
                "the work was abandoned",
            ) from None
        except ProtocolError:
            raise
        except Exception as error:
            raise ProtocolError(500, f"execution failed: {error}") from None

    # -- introspection -------------------------------------------------

    def health(self) -> dict:
        return {"status": "draining" if self._draining else "ok"}

    def stats(self) -> dict:
        """Operational counters — deliberately *not* part of parity.

        Cache hits, batch occupancy and queue depth depend on what
        other requests warmed, so they live here and never in a
        response body.
        """
        available, reason = native_status()
        with self._lock:
            counters = dict(self._counters)
            in_flight = self._compress_in_flight
        return {
            "uptime_s": time.monotonic() - self._started,
            "draining": self._draining,
            "jobs": self._jobs,
            "requests": counters,
            "batch": self._coalescer.stats.as_dict(
                self._coalescer.queue_depth
            ),
            "compress_in_flight": in_flight,
            "tables": self._service.registry.stats(),
            "native": {
                "available": available,
                "reason": reason,
                "warned": native_warning_emitted(),
            },
            "kernels": kernel_availability(),
        }

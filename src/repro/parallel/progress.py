"""Ordered progress fan-in for concurrent work.

Workers complete in arbitrary order, but humans read log lines top to
bottom.  :class:`OrderedProgress` sits between backend completions and
a single sink callable (usually ``print``): messages are published
under their submission index and released strictly in index order, so
the table built with ``--jobs 8`` prints its rows in exactly the same
order as the serial run — just faster.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

__all__ = ["OrderedProgress"]


class OrderedProgress:
    """Release ``(index, message)`` pairs to ``sink`` in index order.

    The sink is only ever invoked while holding an internal lock, so a
    plain ``print`` sink never interleaves lines even if backends call
    :meth:`publish` from several threads.  ``sink=None`` discards all
    messages (callers then don't need a conditional at every call
    site), and a ``None`` message marks an index as complete without
    printing anything — later messages are not held up by silent
    units.
    """

    def __init__(self, sink: Callable[[str], None] | None) -> None:
        self._sink = sink
        self._lock = threading.Lock()
        self._pending: dict[int, str | None] = {}
        self._next_index = 0

    @property
    def next_index(self) -> int:
        """The lowest index not yet released (exposed for tests)."""
        return self._next_index

    def publish(self, index: int, message: str | None) -> None:
        """Record ``message`` for ``index``; flush any ready prefix."""
        if index < 0:
            raise ValueError(f"index must be >= 0, got {index}")
        with self._lock:
            if index < self._next_index or index in self._pending:
                raise ValueError(f"index {index} already published")
            self._pending[index] = message
            while self._next_index in self._pending:
                ready = self._pending.pop(self._next_index)
                self._next_index += 1
                if self._sink is not None and ready is not None:
                    self._sink(ready)

"""Parallel execution subsystem: pluggable backends for fan-out work.

The paper's experimental protocol is embarrassingly parallel above the
EA engine: independent seeded runs are averaged per table row, the
'EA-Best' column sweeps a K/L grid, and every table is a set of
independent rows.  This package turns each of those loops into a list
of *work units* submitted through an :class:`ExecutionBackend`:

* :class:`SerialBackend` — plain in-process loop (the default; zero
  overhead, exact historical behavior);
* :class:`ThreadBackend` — a thread pool.  NumPy releases the GIL
  inside the GEMM covering kernel, so threads help when fitness
  pricing dominates and work units share large read-only inputs;
* :class:`ProcessBackend` — a process pool for full-run fan-out.
  Work units must be picklable module-level callables; every unit
  carries its own :class:`numpy.random.SeedSequence`-derived stream,
  so results are independent of worker scheduling.

Determinism is the backbone of the design: :func:`spawn_seeds` derives
independent child streams from one master seed, work units are built
*before* submission in a fixed order, and :meth:`ExecutionBackend.map`
returns results in submission order no matter which worker finished
first.  A given ``(seed, workload)`` therefore produces bit-identical
results on every backend and at every job count.

Progress reporting under concurrency goes through
:class:`OrderedProgress`, which buffers out-of-order completions and
releases messages to a single sink in submission order — no
interleaved or garbled lines.

Fault tolerance layers on top without touching determinism: a
:class:`RetryPolicy` re-attempts transient failures with
deterministically-jittered backoff, per-task timeouts abandon hung
slots, broken process pools degrade to threads and then to serial
execution (see :mod:`repro.parallel.retry`), and the
:mod:`repro.parallel.chaos` harness injects reproducible faults so
every one of those paths is tested rather than hoped-for.
"""

from .backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    in_worker,
    resolve_backend,
)
from .chaos import Fault, FaultPlan, InjectedFaultError, chaos_wrap
from .grouped import grouped_map
from .progress import OrderedProgress
from .retry import (
    DEFAULT_RETRYABLE,
    NO_RETRY,
    FaultToleranceStats,
    RetryPolicy,
    TaskTimeoutError,
    TransientTaskError,
    WorkerCrashError,
)
from .seeding import spawn_seeds

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "in_worker",
    "grouped_map",
    "OrderedProgress",
    "spawn_seeds",
    "RetryPolicy",
    "NO_RETRY",
    "DEFAULT_RETRYABLE",
    "FaultToleranceStats",
    "TaskTimeoutError",
    "WorkerCrashError",
    "TransientTaskError",
    "Fault",
    "FaultPlan",
    "InjectedFaultError",
    "chaos_wrap",
]

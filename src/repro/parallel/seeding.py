"""Reproducible seed derivation for parallel work units.

Every unit of work (an EA run, a K/L grid point, a table row) gets its
own :class:`numpy.random.SeedSequence` child, spawned *before* any work
is submitted.  Child streams are statistically independent and fully
determined by ``(master seed, child index)``, so results do not depend
on the execution backend, the number of workers, or completion order —
the property the serial-vs-parallel parity tests pin down.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_seeds"]

SeedLike = int | np.random.SeedSequence | None


def spawn_seeds(seed: SeedLike, n: int) -> tuple[np.random.SeedSequence, ...]:
    """Derive ``n`` independent child seed sequences from ``seed``.

    ``seed`` may be an ``int`` (the usual CLI-level master seed), an
    existing :class:`~numpy.random.SeedSequence` (to build spawn
    *trees*: a table row spawns per-configuration seeds, each
    configuration spawns per-run seeds), or ``None`` for fresh OS
    entropy (irreproducible — only useful for exploration).

    >>> a, b = spawn_seeds(2005, 2)
    >>> (a.entropy, a.spawn_key) == (b.entropy, b.spawn_key)
    False
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seeds; n must be >= 0")
    sequence = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return tuple(sequence.spawn(n))

"""Deterministic fault injection for the fault-tolerance layer.

Retry, timeout, degradation and resume paths are worthless if they are
only ever exercised by real production faults.  This module makes
chosen work units fail *reproducibly*: a :class:`FaultPlan` maps a
task key to the fault each attempt should suffer —

* ``raise`` — raise (by default a retryable
  :class:`~repro.parallel.retry.TransientTaskError`);
* ``hang`` — sleep ``seconds`` before doing the real work, long enough
  to trip a per-task timeout;
* ``die`` — kill the worker process outright (``os._exit``), breaking
  a process pool the way an OOM kill does.

Attempt numbers are tracked through the filesystem: every invocation
claims the lowest free ``<key>.attempt<N>`` marker file in the plan's
state directory via exclusive creation (``O_CREAT | O_EXCL``), which
is atomic across threads *and* processes — so "fail on attempt 0,
succeed on attempt 1" means exactly that on every backend, and tests
can read the same markers back to assert how many attempts ran.

:func:`chaos_wrap` wraps any picklable work function into a picklable
:class:`ChaosFunction`, so the harness drops into
:meth:`ExecutionBackend.map` (or a monkeypatched
``execute_run_task``) without the backends knowing chaos exists.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .retry import TransientTaskError

__all__ = [
    "RAISE",
    "HANG",
    "DIE",
    "Fault",
    "InjectedFaultError",
    "FaultPlan",
    "ChaosFunction",
    "chaos_wrap",
    "default_task_key",
]

RAISE = "raise"
HANG = "hang"
DIE = "die"
_KINDS = (RAISE, HANG, DIE)


class InjectedFaultError(TransientTaskError):
    """The retryable exception ``raise`` faults throw by default."""


@dataclass(frozen=True)
class Fault:
    """What happens to one ``(task key, attempt)`` pair.

    ``seconds`` is the hang duration (``hang`` only); ``retryable``
    selects between :class:`InjectedFaultError` (absorbed by the
    default :class:`~repro.parallel.retry.RetryPolicy`) and a plain
    ``RuntimeError`` (terminal — aborts the map like a real bug), for
    ``raise`` faults.
    """

    kind: str = RAISE
    seconds: float = 0.25
    retryable: bool = True
    exit_code: int = 86

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose one of {_KINDS}"
            )
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


def default_task_key(item: Any) -> str:
    """Key work units by their own identity fields when they have any.

    Self-seeded run tasks carry ``run_index`` plus a config — keyed as
    ``K{K}L{L}r{run}`` so a plan can name "run 1 of the K=12,L=64
    configuration" without knowing submission order.  Everything else
    keys as ``str(item)`` (fine for the scalar items of backend-level
    tests).
    """
    run_index = getattr(item, "run_index", None)
    config = getattr(item, "config", None)
    if run_index is not None and config is not None:
        return (
            f"K{config.block_length}L{config.n_vectors}r{int(run_index)}"
        )
    return str(item)


def _safe_name(key: str) -> str:
    """A filesystem-safe marker-file stem for an arbitrary key."""
    digest = hashlib.sha256(key.encode()).hexdigest()[:12]
    printable = "".join(c if c.isalnum() or c in "-_." else "_" for c in key)
    return f"{printable[:40]}-{digest}"


@dataclass(frozen=True)
class FaultPlan:
    """Which faults to inject, plus the attempt-counter directory.

    ``faults`` maps task key → (attempt number → :class:`Fault`);
    attempts are 0-based and unlisted attempts run clean, so
    ``{"3": {0: Fault(DIE)}}`` means "task 3 dies on its first
    attempt and succeeds when retried".  The plan is picklable (it
    holds only a path and plain data), so it crosses process-pool
    boundaries intact.
    """

    state_dir: Path
    faults: Mapping[str, Mapping[int, Fault]]

    def begin_attempt(self, key: str) -> int:
        """Claim and return this invocation's 0-based attempt number."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        stem = _safe_name(key)
        for attempt in range(10_000):
            marker = self.state_dir / f"{stem}.attempt{attempt}"
            try:
                os.close(os.open(str(marker), os.O_CREAT | os.O_EXCL))
            except FileExistsError:
                continue
            return attempt
        raise RuntimeError(f"more than 10000 attempts recorded for {key!r}")

    def attempts(self, key: str) -> int:
        """How many attempts have started for ``key`` (all processes)."""
        stem = _safe_name(key)
        count = 0
        while (self.state_dir / f"{stem}.attempt{count}").exists():
            count += 1
        return count

    def fault_for(self, key: str, attempt: int) -> Fault | None:
        """The fault planned for ``(key, attempt)``, if any."""
        return self.faults.get(key, {}).get(attempt)

    def inject(self, key: str) -> None:
        """Claim an attempt for ``key`` and suffer its planned fault.

        ``raise`` faults raise before any real work happens; ``hang``
        faults sleep and then return (the unit proceeds, modeling a
        slow worker whose eventual result the timeout layer already
        abandoned); ``die`` faults terminate the whole process
        without cleanup, exactly like an external kill.
        """
        attempt = self.begin_attempt(key)
        fault = self.fault_for(key, attempt)
        if fault is None:
            return
        if fault.kind == RAISE:
            error_type = (
                InjectedFaultError if fault.retryable else RuntimeError
            )
            raise error_type(
                f"injected fault: task {key!r} attempt {attempt}"
            )
        if fault.kind == HANG:
            time.sleep(fault.seconds)
            return
        os._exit(fault.exit_code)  # DIE: no cleanup, like a real kill


@dataclass(frozen=True)
class ChaosFunction:
    """A picklable work function with a :class:`FaultPlan` strapped on."""

    function: Callable[[Any], Any]
    plan: FaultPlan
    key: Callable[[Any], str] = default_task_key

    def __call__(self, item: Any) -> Any:
        self.plan.inject(self.key(item))
        return self.function(item)


def chaos_wrap(
    function: Callable[[Any], Any],
    plan: FaultPlan,
    key: Callable[[Any], str] = default_task_key,
) -> ChaosFunction:
    """Wrap ``function`` so ``plan`` governs each invocation's fate."""
    return ChaosFunction(function=function, plan=plan, key=key)

"""Execution backends: serial, thread-pool, and process-pool.

All backends implement one method —
``map(function, items, *, on_result=None, retry=None, timeout=None,
stats=None)`` — with the same contract:

* results come back as a list in **submission order**, regardless of
  which worker finished first;
* ``on_result(index, result)`` fires as units complete (completion
  order), always from the submitting thread, so callers can feed an
  :class:`repro.parallel.progress.OrderedProgress` without extra
  locking;
* the first failing unit (lowest submission index) has its exception
  re-raised after pending work is cancelled — where "failing" means
  *permanently* failing: with a :class:`~repro.parallel.retry.RetryPolicy`
  a retryable failure is re-attempted (on a fresh slot, after a
  deterministic backoff) and only counts once attempts are exhausted;
* ``KeyboardInterrupt`` and ``SystemExit`` are never buffered or
  retried — they cancel pending work and propagate immediately.

Fault tolerance
---------------
``retry`` takes a :class:`~repro.parallel.retry.RetryPolicy`
(``None`` = single attempt).  ``timeout`` bounds each *attempt* in
seconds on the pool backends: an overdue unit is abandoned (the slot
eventually frees; its result, if any, is discarded), charged a
:class:`~repro.parallel.retry.TaskTimeoutError` and — attempts
permitting — resubmitted on a fresh slot.  The serial backend cannot
preempt a running unit, so it honors ``retry`` but ignores
``timeout``.  A broken process pool (worker died: OOM kill, segfault,
``os._exit``) charges every in-flight unit a
:class:`~repro.parallel.retry.WorkerCrashError` and the pool is
replaced — first rebuilt in kind, then downgraded (process → thread →
serial) with a logged warning instead of aborting the whole map.
``stats`` (a :class:`~repro.parallel.retry.FaultToleranceStats`)
accumulates what was absorbed.

Because every work unit is a pure function of its item (the
self-seeded ``RunTask`` discipline), retries, timeouts and pool
downgrades can never change results — only the wall clock.

Backend choice
--------------
``SerialBackend`` is the default and the reference semantics.
``ThreadBackend`` suits GEMM-bound fitness work: NumPy releases the
GIL inside the covering kernel's matrix products, and threads share
the block table without copying.  ``ProcessBackend`` is for full-run
fan-out (whole EA runs, table rows): work units and their results must
be picklable, and each worker is marked via a pool initializer so any
*nested* backend inside a worker degrades to serial execution instead
of forking a pool-of-pools.

Fork safety: workers never rely on inherited global RNG state — every
work unit carries its own :class:`numpy.random.SeedSequence` (see
:mod:`repro.parallel.seeding`), which is also what makes results
identical across start methods (``fork`` vs ``spawn``).
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import sys
import time
from collections.abc import Callable, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Any, Protocol, runtime_checkable

from .retry import (
    NO_RETRY,
    FaultToleranceStats,
    RetryPolicy,
    TaskTimeoutError,
    WorkerCrashError,
    jitter_entropy,
)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "in_worker",
]

logger = logging.getLogger("repro.parallel")

OnResult = Callable[[int, Any], None]

# Set (via pool initializer) in process-pool workers; nested backends
# check it and run serially rather than forking a pool from a worker.
_IN_WORKER = False


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    """True inside a :class:`ProcessBackend` worker process."""
    return _IN_WORKER


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can run ``function`` over ``items`` in order."""

    jobs: int

    def map(
        self,
        function: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        on_result: OnResult | None = None,
        retry: RetryPolicy | None = None,
        timeout: float | None = None,
        stats: FaultToleranceStats | None = None,
    ) -> list[Any]:
        """Apply ``function`` to every item; results in input order."""
        ...


def _serial_unit(
    function: Callable[[Any], Any],
    item: Any,
    index: int,
    policy: RetryPolicy,
    stats: FaultToleranceStats,
) -> Any:
    """One unit, run inline with the retry policy applied."""
    attempt = 0
    while True:
        attempt += 1
        stats.attempts += 1
        if attempt > 1:
            stats.retries += 1
        try:
            return function(item)
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as error:
            if not policy.is_retryable(error) or attempt >= policy.max_attempts:
                raise
            delay = policy.delay_before(
                attempt + 1, jitter_entropy(item, index)
            )
            logger.warning(
                "task %d failed (%s: %s); retrying (attempt %d/%d) in %.3fs",
                index, type(error).__name__, error,
                attempt + 1, policy.max_attempts, delay,
            )
            if delay > 0:
                time.sleep(delay)


def _serial_map(
    function: Callable[[Any], Any],
    items: Sequence[Any],
    on_result: OnResult | None,
    policy: RetryPolicy = NO_RETRY,
    stats: FaultToleranceStats | None = None,
) -> list[Any]:
    stats = stats if stats is not None else FaultToleranceStats()
    results = []
    for index, item in enumerate(items):
        result = _serial_unit(function, item, index, policy, stats)
        if on_result is not None:
            on_result(index, result)
        results.append(result)
    return results


class SerialBackend:
    """Run every unit inline — the default and reference semantics.

    Honors ``retry``; ``timeout`` is ignored (a single thread cannot
    preempt a running unit — use a pool backend to enforce deadlines).
    """

    jobs = 1

    def map(
        self,
        function: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        on_result: OnResult | None = None,
        retry: RetryPolicy | None = None,
        timeout: float | None = None,
        stats: FaultToleranceStats | None = None,
    ) -> list[Any]:
        return _serial_map(function, items, on_result, retry or NO_RETRY, stats)

    def __repr__(self) -> str:
        return "SerialBackend()"


class _FanOut:
    """One fault-tolerant ``map`` execution over a pool executor.

    Bookkeeping lives per submission index: attempt counts, scheduled
    retry times, the future currently owning the index.  A future that
    outlives its deadline is *abandoned* — dropped from the books so a
    fresh attempt can take a fresh slot; whatever the hung worker
    eventually produces is discarded.  Pool breakage replaces the
    executor along the backend's fallback chain (rebuild in kind →
    downgrade flavor → run the remainder inline).
    """

    def __init__(
        self,
        backend: "_PoolBackend",
        function: Callable[[Any], Any],
        items: list[Any],
        on_result: OnResult | None,
        policy: RetryPolicy,
        timeout: float | None,
        stats: FaultToleranceStats,
    ) -> None:
        self.backend = backend
        self.function = function
        self.items = items
        self.on_result = on_result
        self.policy = policy
        self.timeout = timeout
        self.stats = stats
        self.max_workers = min(backend.jobs, len(items))
        self.results: list[Any] = [None] * len(items)
        self.completed = [False] * len(items)
        self.attempts = [0] * len(items)
        self.failures: dict[int, BaseException] = {}
        self.retry_at: dict[int, float] = {}
        self.pending: dict[Future, int] = {}
        self.deadlines: dict[Future, float] = {}
        self.aborting = False
        self.fallback_level = 0
        self.executor: Executor | None = backend._executor(self.max_workers)

    # -- top level -----------------------------------------------------

    def run(self) -> list[Any]:
        try:
            for index in range(len(self.items)):
                if self.aborting:
                    break
                self._submit(index)
            self._loop()
        except (KeyboardInterrupt, SystemExit):
            # Never buffered into the failure dict: cancel pending
            # work and propagate immediately (prompt Ctrl-C).
            self._abort()
            raise
        finally:
            if self.executor is not None:
                self.executor.shutdown(wait=False, cancel_futures=True)
        if self.failures:
            raise self.failures[min(self.failures)]
        return self.results

    def _loop(self) -> None:
        while self.pending or self.retry_at:
            now = time.monotonic()
            self._launch_due_retries(now)
            if not self.pending:
                if self.aborting or not self.retry_at:
                    return
                pause = min(self.retry_at.values()) - time.monotonic()
                if pause > 0:
                    time.sleep(min(pause, 0.1))
                continue
            done, _ = wait(
                list(self.pending),
                timeout=self._wait_budget(now),
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                self._complete(future)
            if self.timeout is not None:
                self._expire_overdue()

    def _wait_budget(self, now: float) -> float | None:
        horizons = []
        if self.deadlines:
            horizons.append(min(self.deadlines.values()))
        if self.retry_at and not self.aborting:
            horizons.append(min(self.retry_at.values()))
        if not horizons:
            return None
        return max(0.0, min(horizons) - now) + 0.005

    # -- submission and completion ------------------------------------

    def _submit(self, index: int) -> None:
        if self.aborting or self.completed[index] or index in self.failures:
            return
        if self.executor is None:
            self._run_inline(index)
            return
        try:
            future = self.executor.submit(self.function, self.items[index])
        except (BrokenExecutor, RuntimeError) as error:
            # submit() on a broken/shut-down pool: replace it and retry
            # the submission on whatever the fallback chain provides.
            self._pool_broke(error)
            self._submit(index)
            return
        self.attempts[index] += 1
        self.stats.attempts += 1
        if self.attempts[index] > 1:
            self.stats.retries += 1
        self.pending[future] = index
        if self.timeout is not None:
            self.deadlines[future] = time.monotonic() + self.timeout

    def _launch_due_retries(self, now: float) -> None:
        if self.aborting:
            self.retry_at.clear()
            return
        due = sorted(
            index for index, when in self.retry_at.items() if when <= now
        )
        for index in due:
            del self.retry_at[index]
            self._submit(index)

    def _complete(self, future: Future) -> None:
        index = self.pending.pop(future, None)
        self.deadlines.pop(future, None)
        if index is None:
            return  # abandoned after a timeout, or pool-breakage victim
        try:
            result = future.result()
        except CancelledError:
            return
        except (KeyboardInterrupt, SystemExit):
            raise
        except BrokenExecutor as error:
            self._pool_broke(error, trigger=index)
            return
        except BaseException as error:
            self._failed(index, error)
            return
        self._succeeded(index, result)

    def _succeeded(self, index: int, result: Any) -> None:
        self.results[index] = result
        self.completed[index] = True
        if self.on_result is not None:
            self.on_result(index, result)

    def _failed(self, index: int, error: BaseException) -> None:
        if (
            not self.aborting
            and self.policy.is_retryable(error)
            and self.attempts[index] < self.policy.max_attempts
        ):
            delay = self.policy.delay_before(
                self.attempts[index] + 1,
                jitter_entropy(self.items[index], index),
            )
            logger.warning(
                "task %d failed (%s: %s); retrying (attempt %d/%d) in %.3fs",
                index, type(error).__name__, error,
                self.attempts[index] + 1, self.policy.max_attempts, delay,
            )
            self.retry_at[index] = time.monotonic() + delay
            return
        self.failures[index] = error
        self._abort()

    def _abort(self) -> None:
        if self.aborting:
            return
        self.aborting = True
        self.retry_at.clear()
        for future in list(self.pending):
            future.cancel()

    # -- timeouts ------------------------------------------------------

    def _expire_overdue(self) -> None:
        now = time.monotonic()
        overdue = [
            future for future, deadline in self.deadlines.items()
            if deadline <= now
        ]
        for future in overdue:
            if future.done():
                continue  # completed in the race window; next wait() reaps it
            future.cancel()  # only succeeds if not yet started
            index = self.pending.pop(future)
            del self.deadlines[future]
            self.stats.timeouts += 1
            error = TaskTimeoutError(
                f"task {index} exceeded the {self.timeout}s per-task "
                f"timeout on attempt {self.attempts[index]}; abandoning "
                "the slot"
            )
            logger.warning("%s", error)
            self._failed(index, error)

    # -- pool breakage and degradation ---------------------------------

    def _pool_broke(
        self, error: BaseException, trigger: int | None = None
    ) -> None:
        # Futures that finished with a real outcome before the pool
        # broke still hold good results (or genuine failures) — harvest
        # them; only futures poisoned by the breakage are crash victims.
        # ``trigger`` is the index whose future raised the breakage —
        # already popped from the books by the caller, but a victim
        # all the same.
        victims = [] if trigger is None else [trigger]
        survivors: list[tuple[int, Future]] = []
        for future, index in self.pending.items():
            if future.done() and not future.cancelled():
                outcome = future.exception()
                if not isinstance(outcome, BrokenExecutor):
                    survivors.append((index, future))
                    continue
            victims.append(index)
        victims = sorted(set(victims))
        self.pending.clear()
        self.deadlines.clear()
        broken, self.executor = self.executor, None
        if broken is not None:
            try:
                broken.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
        self.stats.crashes += 1
        self.fallback_level += 1
        replacement, description = self.backend._fallback_executor(
            self.fallback_level, self.max_workers
        )
        self.executor = replacement
        if self.fallback_level <= self.backend._pool_rebuilds:
            self.stats.pool_rebuilds += 1
        else:
            self.stats.downgrades += 1
        logger.warning(
            "worker pool broke (%s: %s); continuing with %s "
            "(%d in-flight task(s) charged a crash attempt)",
            type(error).__name__, error, description, len(victims),
        )
        for index, future in sorted(survivors):
            outcome = future.exception()
            if outcome is None:
                self._succeeded(index, future.result())
            elif isinstance(outcome, (KeyboardInterrupt, SystemExit)):
                raise outcome
            else:
                self._failed(index, outcome)
        for index in victims:
            self._failed(
                index,
                WorkerCrashError(
                    f"worker pool broke while task {index} was in flight "
                    f"(attempt {self.attempts[index]}): {error}"
                ),
            )
        if self.executor is None and not self.aborting:
            self._drain_inline()

    def _drain_inline(self) -> None:
        """Finish every unfinished index serially (last-resort fallback)."""
        for index in range(len(self.items)):
            if self.aborting:
                return
            if self.completed[index] or index in self.failures:
                continue
            self.retry_at.pop(index, None)
            self._run_inline(index)

    def _run_inline(self, index: int) -> None:
        while True:
            self.attempts[index] += 1
            self.stats.attempts += 1
            if self.attempts[index] > 1:
                self.stats.retries += 1
            try:
                result = self.function(self.items[index])
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as error:
                if (
                    self.policy.is_retryable(error)
                    and self.attempts[index] < self.policy.max_attempts
                ):
                    delay = self.policy.delay_before(
                        self.attempts[index] + 1,
                        jitter_entropy(self.items[index], index),
                    )
                    if delay > 0:
                        time.sleep(delay)
                    continue
                self.failures[index] = error
                self._abort()
                return
            self._succeeded(index, result)
            return


class _PoolBackend:
    """Shared executor-driven map for thread and process pools."""

    jobs: int
    _flavor = "pool"
    _pool_rebuilds = 1  # same-flavor executor recreations before downgrading

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def _executor(self, max_workers: int) -> Executor:
        raise NotImplementedError

    def _fallback_executor(
        self, level: int, max_workers: int
    ) -> tuple[Executor | None, str]:
        """Replacement executor after ``level`` pool breakages.

        ``(None, ...)`` means "run the remainder inline" — the final
        rung of every fallback chain.
        """
        if level <= self._pool_rebuilds:
            return self._executor(max_workers), f"a rebuilt {self._flavor} pool"
        return None, "serial in-process execution (downgraded)"

    def map(
        self,
        function: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        on_result: OnResult | None = None,
        retry: RetryPolicy | None = None,
        timeout: float | None = None,
        stats: FaultToleranceStats | None = None,
    ) -> list[Any]:
        items = list(items)
        policy = retry or NO_RETRY
        if in_worker() or self.jobs == 1 or len(items) <= 1:
            return _serial_map(function, items, on_result, policy, stats)
        fan_out = _FanOut(
            self,
            function,
            items,
            on_result,
            policy,
            timeout,
            stats if stats is not None else FaultToleranceStats(),
        )
        return fan_out.run()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(jobs={self.jobs})"


class ThreadBackend(_PoolBackend):
    """Thread-pool backend for GIL-releasing (NumPy-bound) work."""

    _flavor = "thread"

    def _executor(self, max_workers: int) -> Executor:
        return ThreadPoolExecutor(max_workers=max_workers)


class ProcessBackend(_PoolBackend):
    """Process-pool backend for full-run fan-out.

    Work units (``function`` and each item) must be picklable —
    module-level callables over plain dataclasses.  ``fork`` is used
    on Linux (cheap workers, shared read-only block tables), the
    platform-default start method elsewhere; workers are marked so
    nested backends degrade to serial execution instead of spawning
    pools from within workers.

    A broken pool (a worker killed mid-task) is rebuilt once; a second
    breakage downgrades to a thread pool, a third to serial inline
    execution — each with a logged warning, never a silent abort.
    """

    _flavor = "process"

    def _executor(self, max_workers: int) -> Executor:
        # Prefer fork only on Linux (cheap workers, shared read-only
        # block tables).  macOS also *offers* fork but CPython made
        # spawn its default there for a reason — forked children can
        # abort inside Accelerate/Objective-C — so everywhere else we
        # take the platform default.
        context = (
            multiprocessing.get_context("fork")
            if sys.platform.startswith("linux")
            else multiprocessing.get_context()
        )
        return ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=context,
            initializer=_mark_worker,
        )

    def _fallback_executor(
        self, level: int, max_workers: int
    ) -> tuple[Executor | None, str]:
        if level <= self._pool_rebuilds:
            return self._executor(max_workers), "a rebuilt process pool"
        if level == self._pool_rebuilds + 1:
            return (
                ThreadPoolExecutor(max_workers=max_workers),
                "a thread pool (downgraded)",
            )
        return None, "serial in-process execution (downgraded)"


def resolve_backend(
    jobs: int | None = None, kind: str = "process"
) -> ExecutionBackend:
    """Backend for a ``--jobs`` value: 1/None = serial, 0 = all cores.

    ``kind`` selects the pool flavor used when ``jobs`` asks for
    parallelism: ``"process"`` (default; full-run fan-out) or
    ``"thread"`` (GEMM-bound work, or platforms where fork is
    expensive).
    """
    if kind not in ("process", "thread"):
        raise ValueError(f"unknown backend kind {kind!r}")
    if jobs is None:
        return SerialBackend()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs == 1:
        return SerialBackend()
    if kind == "thread":
        return ThreadBackend(jobs)
    return ProcessBackend(jobs)

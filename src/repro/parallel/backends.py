"""Execution backends: serial, thread-pool, and process-pool.

All backends implement one method —
``map(function, items, *, on_result=None)`` — with the same contract:

* results come back as a list in **submission order**, regardless of
  which worker finished first;
* ``on_result(index, result)`` fires as units complete (completion
  order), always from the submitting thread, so callers can feed an
  :class:`repro.parallel.progress.OrderedProgress` without extra
  locking;
* the first failing unit (lowest submission index) has its exception
  re-raised after pending work is cancelled.

Backend choice
--------------
``SerialBackend`` is the default and the reference semantics.
``ThreadBackend`` suits GEMM-bound fitness work: NumPy releases the
GIL inside the covering kernel's matrix products, and threads share
the block table without copying.  ``ProcessBackend`` is for full-run
fan-out (whole EA runs, table rows): work units and their results must
be picklable, and each worker is marked via a pool initializer so any
*nested* backend inside a worker degrades to serial execution instead
of forking a pool-of-pools.

Fork safety: workers never rely on inherited global RNG state — every
work unit carries its own :class:`numpy.random.SeedSequence` (see
:mod:`repro.parallel.seeding`), which is also what makes results
identical across start methods (``fork`` vs ``spawn``).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from collections.abc import Callable, Sequence
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from typing import Any, Protocol, runtime_checkable

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "in_worker",
]

OnResult = Callable[[int, Any], None]

# Set (via pool initializer) in process-pool workers; nested backends
# check it and run serially rather than forking a pool from a worker.
_IN_WORKER = False


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    """True inside a :class:`ProcessBackend` worker process."""
    return _IN_WORKER


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can run ``function`` over ``items`` in order."""

    jobs: int

    def map(
        self,
        function: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        on_result: OnResult | None = None,
    ) -> list[Any]:
        """Apply ``function`` to every item; results in input order."""
        ...


def _serial_map(
    function: Callable[[Any], Any],
    items: Sequence[Any],
    on_result: OnResult | None,
) -> list[Any]:
    results = []
    for index, item in enumerate(items):
        result = function(item)
        if on_result is not None:
            on_result(index, result)
        results.append(result)
    return results


class SerialBackend:
    """Run every unit inline — the default and reference semantics."""

    jobs = 1

    def map(
        self,
        function: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        on_result: OnResult | None = None,
    ) -> list[Any]:
        return _serial_map(function, items, on_result)

    def __repr__(self) -> str:
        return "SerialBackend()"


class _PoolBackend:
    """Shared executor-driven map for thread and process pools."""

    jobs: int

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def _executor(self, max_workers: int) -> Executor:
        raise NotImplementedError

    def map(
        self,
        function: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        on_result: OnResult | None = None,
    ) -> list[Any]:
        items = list(items)
        if in_worker() or self.jobs == 1 or len(items) <= 1:
            return _serial_map(function, items, on_result)
        results: list[Any] = [None] * len(items)
        failures: dict[int, BaseException] = {}
        with self._executor(min(self.jobs, len(items))) as executor:
            futures = {
                executor.submit(function, item): index
                for index, item in enumerate(items)
            }
            for future in as_completed(futures):
                index = futures[future]
                try:
                    results[index] = future.result()
                except BaseException as error:  # re-raised below, in order
                    failures[index] = error
                    for pending in futures:
                        pending.cancel()
                else:
                    if on_result is not None:
                        on_result(index, results[index])
        if failures:
            raise failures[min(failures)]
        return results

    def __repr__(self) -> str:
        return f"{type(self).__name__}(jobs={self.jobs})"


class ThreadBackend(_PoolBackend):
    """Thread-pool backend for GIL-releasing (NumPy-bound) work."""

    def _executor(self, max_workers: int) -> Executor:
        return ThreadPoolExecutor(max_workers=max_workers)


class ProcessBackend(_PoolBackend):
    """Process-pool backend for full-run fan-out.

    Work units (``function`` and each item) must be picklable —
    module-level callables over plain dataclasses.  ``fork`` is used
    on Linux (cheap workers, shared read-only block tables), the
    platform-default start method elsewhere; workers are marked so
    nested backends degrade to serial execution instead of spawning
    pools from within workers.
    """

    def _executor(self, max_workers: int) -> Executor:
        # Prefer fork only on Linux (cheap workers, shared read-only
        # block tables).  macOS also *offers* fork but CPython made
        # spawn its default there for a reason — forked children can
        # abort inside Accelerate/Objective-C — so everywhere else we
        # take the platform default.
        context = (
            multiprocessing.get_context("fork")
            if sys.platform.startswith("linux")
            else multiprocessing.get_context()
        )
        return ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=context,
            initializer=_mark_worker,
        )


def resolve_backend(
    jobs: int | None = None, kind: str = "process"
) -> ExecutionBackend:
    """Backend for a ``--jobs`` value: 1/None = serial, 0 = all cores.

    ``kind`` selects the pool flavor used when ``jobs`` asks for
    parallelism: ``"process"`` (default; full-run fan-out) or
    ``"thread"`` (GEMM-bound work, or platforms where fork is
    expensive).
    """
    if kind not in ("process", "thread"):
        raise ValueError(f"unknown backend kind {kind!r}")
    if jobs is None:
        return SerialBackend()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs == 1:
        return SerialBackend()
    if kind == "thread":
        return ThreadBackend(jobs)
    return ProcessBackend(jobs)

"""Grouped fan-out: many labeled groups of units, one flat submission.

The experiment layers all share one shape: several labeled groups of
work units (a table row's EA configurations × runs, an ablation's
sweep points × runs) that should saturate the backend as a single
flat task list, then be reassembled per group — with one progress
line per group, released in group order as each group's last unit
completes.  :func:`grouped_map` is that shape, so the index
bookkeeping (owner table, per-group countdown, cursor regrouping)
lives in exactly one place.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from typing import Any

from .backends import ExecutionBackend
from .progress import OrderedProgress

__all__ = ["grouped_map"]

DescribeGroup = Callable[[str, int, float], str]


def _default_describe(label: str, n_items: int, seconds: float) -> str:
    return f"  {label}: done"


def grouped_map(
    backend: ExecutionBackend,
    function: Callable[[Any], Any],
    groups: Sequence[tuple[str, Sequence[Any]]],
    *,
    progress: Callable[[str], None] | None = None,
    describe: DescribeGroup | None = None,
) -> list[list[Any]]:
    """Run ``(label, items)`` groups through one flat ``backend.map``.

    Returns one result list per group, in group order (each list in
    its items' order).  ``describe(label, n_items, seconds)`` builds
    the per-group progress line (seconds measured from submission);
    lines go through an :class:`OrderedProgress` so they appear in
    group order no matter which group finishes first.
    """
    describe = describe or _default_describe
    flat = [item for _, items in groups for item in items]
    owner = [
        group_index
        for group_index, (_, items) in enumerate(groups)
        for _ in items
    ]
    fan_in = OrderedProgress(progress)
    remaining = [len(items) for _, items in groups]
    started = time.perf_counter()

    def finish(group_index: int) -> None:
        label, items = groups[group_index]
        fan_in.publish(
            group_index,
            describe(label, len(items), time.perf_counter() - started),
        )

    # Empty groups complete immediately — they must not hold up the
    # ordered release of later groups' lines.
    for group_index, count in enumerate(remaining):
        if count == 0:
            finish(group_index)

    def on_result(flat_index: int, result: Any) -> None:
        group_index = owner[flat_index]
        remaining[group_index] -= 1
        if remaining[group_index] == 0:
            finish(group_index)

    results = backend.map(function, flat, on_result=on_result)

    regrouped = []
    cursor = 0
    for _, items in groups:
        regrouped.append(results[cursor : cursor + len(items)])
        cursor += len(items)
    return regrouped

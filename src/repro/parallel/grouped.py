"""Grouped fan-out: many labeled groups of units, one flat submission.

The experiment layers all share one shape: several labeled groups of
work units (a table row's EA configurations × runs, an ablation's
sweep points × runs) that should saturate the backend as a single
flat task list, then be reassembled per group — with one progress
line per group, released in group order as each group's last unit
completes.  :func:`grouped_map` is that shape, so the index
bookkeeping (owner table, per-group countdown, cursor regrouping)
lives in exactly one place.

Fault tolerance rides through unchanged semantics: ``retry``,
``timeout`` and ``stats`` are forwarded to the backend (only when
set, so duck-typed backends without the keywords keep working), and
an optional ``cache`` (``get(item)``/``put(item, result)``, e.g. a
checkpoint :class:`~repro.experiments.checkpoint.RunTaskCache`)
short-circuits already-completed units before anything is submitted —
the resume path of ``--resume``.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from typing import Any, Protocol, runtime_checkable

from .backends import ExecutionBackend
from .progress import OrderedProgress
from .retry import FaultToleranceStats, RetryPolicy

__all__ = ["grouped_map", "ResultCache"]

DescribeGroup = Callable[[str, int, float], str]


@runtime_checkable
class ResultCache(Protocol):
    """Anything that can short-circuit completed work units."""

    def get(self, item: Any) -> Any | None: ...

    def put(self, item: Any, result: Any) -> None: ...


def _default_describe(label: str, n_items: int, seconds: float) -> str:
    return f"  {label}: done"


def grouped_map(
    backend: ExecutionBackend,
    function: Callable[[Any], Any],
    groups: Sequence[tuple[str, Sequence[Any]]],
    *,
    progress: Callable[[str], None] | None = None,
    describe: DescribeGroup | None = None,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    stats: FaultToleranceStats | None = None,
    cache: ResultCache | None = None,
) -> list[list[Any]]:
    """Run ``(label, items)`` groups through one flat ``backend.map``.

    Returns one result list per group, in group order (each list in
    its items' order).  ``describe(label, n_items, seconds)`` builds
    the per-group progress line (seconds measured from submission);
    lines go through an :class:`OrderedProgress` so they appear in
    group order no matter which group finishes first.

    ``cache`` hits are resolved up front and never submitted; fresh
    results are ``put`` back as they complete (from the submitting
    thread, so the cache needs no locking).  ``retry``/``timeout``/
    ``stats`` pass straight through to :meth:`ExecutionBackend.map`.
    """
    describe = describe or _default_describe
    flat = [item for _, items in groups for item in items]
    owner = [
        group_index
        for group_index, (_, items) in enumerate(groups)
        for _ in items
    ]
    results: list[Any] = [None] * len(flat)
    fan_in = OrderedProgress(progress)
    remaining = [len(items) for _, items in groups]
    started = time.perf_counter()

    def finish(group_index: int) -> None:
        label, items = groups[group_index]
        fan_in.publish(
            group_index,
            describe(label, len(items), time.perf_counter() - started),
        )

    # Resolve cache hits before submitting anything: resumed units are
    # charged against their group's countdown exactly like completions.
    submitted = list(range(len(flat)))
    if cache is not None:
        submitted = []
        for flat_index, item in enumerate(flat):
            hit = cache.get(item)
            if hit is None:
                submitted.append(flat_index)
            else:
                results[flat_index] = hit
                remaining[owner[flat_index]] -= 1

    # Empty groups — and groups fully served from the cache — complete
    # immediately; they must not hold up the ordered release of later
    # groups' lines.
    for group_index, count in enumerate(remaining):
        if count == 0:
            finish(group_index)

    def on_result(submit_index: int, result: Any) -> None:
        flat_index = submitted[submit_index]
        if cache is not None:
            cache.put(flat[flat_index], result)
        group_index = owner[flat_index]
        remaining[group_index] -= 1
        if remaining[group_index] == 0:
            finish(group_index)

    if submitted:
        # Fault-tolerance keywords are forwarded only when engaged, so
        # duck-typed backends with the bare map signature keep working.
        map_kwargs: dict[str, Any] = {}
        if retry is not None:
            map_kwargs["retry"] = retry
        if timeout is not None:
            map_kwargs["timeout"] = timeout
        if stats is not None:
            map_kwargs["stats"] = stats
        fresh = backend.map(
            function,
            [flat[index] for index in submitted],
            on_result=on_result,
            **map_kwargs,
        )
        for submit_index, flat_index in enumerate(submitted):
            results[flat_index] = fresh[submit_index]

    regrouped = []
    cursor = 0
    for _, items in groups:
        regrouped.append(results[cursor : cursor + len(items)])
        cursor += len(items)
    return regrouped

"""Retry policies and fault accounting for backend fan-out.

Long experiment campaigns (a ``--budget paper`` table is hours of
seeded EA runs) meet transient faults: a worker process OOM-killed, a
wedged BLAS call, a flaky filesystem.  :class:`RetryPolicy` classifies
which failures are worth retrying and how long to wait between
attempts — capped exponential backoff with **deterministic jitter**:
the jitter draw comes from a :class:`numpy.random.SeedSequence` child
keyed by ``(task entropy, attempt)``, so two runs of the same seeded
campaign sleep the same milliseconds and nothing about retrying can
perturb results (work units are pure functions of their fields; a
retried task returns bit-identical output, only later).

:class:`FaultToleranceStats` is the mutable accounting object a caller
may pass into :meth:`ExecutionBackend.map` to learn what the map
absorbed: attempts, retries, timeouts, worker crashes, pool rebuilds
and backend downgrades.  The experiment runner surfaces it per table
row so absorbed faults stay visible instead of silently eating wall
clock.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field, replace

import numpy as np

__all__ = [
    "TaskTimeoutError",
    "WorkerCrashError",
    "TransientTaskError",
    "DEFAULT_RETRYABLE",
    "RetryPolicy",
    "NO_RETRY",
    "FaultToleranceStats",
    "jitter_entropy",
]


class TaskTimeoutError(RuntimeError):
    """A work unit exceeded the per-task timeout and was abandoned."""


class WorkerCrashError(RuntimeError):
    """A pool worker died (process killed, pool broken) mid-task."""


class TransientTaskError(RuntimeError):
    """Base class applications can raise to mark a failure retryable."""


# Worth retrying by default: our own timeout/crash markers, explicit
# transient errors, and the OS-level failures (OSError covers
# ConnectionError and friends) that flaky infrastructure produces.
# Deterministic application bugs (ValueError, TypeError, ...) are NOT
# retryable — re-running a pure function on the same input can only
# burn wall clock.
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    TaskTimeoutError,
    WorkerCrashError,
    TransientTaskError,
    TimeoutError,
    OSError,
)


def jitter_entropy(item: object, index: int) -> tuple[int, ...]:
    """Deterministic per-task entropy for backoff jitter.

    Self-seeded work units (e.g. :class:`repro.core.optimizer.RunTask`)
    carry a ``seed_sequence`` whose ``(entropy, spawn_key)`` already
    uniquely names the task; anything else falls back to its
    submission index.  Either way the returned tuple is a pure
    function of the task, never of wall clock or scheduling.
    """
    sequence = getattr(item, "seed_sequence", None)
    if isinstance(sequence, np.random.SeedSequence):
        entropy = sequence.entropy
        if entropy is None:
            parts: tuple[int, ...] = ()
        elif isinstance(entropy, (list, tuple)):
            parts = tuple(int(part) for part in entropy)
        else:
            parts = (int(entropy),)
        return parts + tuple(int(key) for key in sequence.spawn_key)
    return (int(index),)


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts a work unit gets and how long to back off.

    ``max_attempts`` counts every execution including the first —
    ``max_attempts=1`` disables retries (:data:`NO_RETRY`).  Between
    attempts the delay grows as ``base_delay · backoff_factor^(n-1)``
    capped at ``max_delay``, then shrinks by a deterministic jitter
    fraction drawn from ``SeedSequence((task entropy, attempt))`` —
    desynchronizing retries without introducing nondeterminism.

    ``retryable`` classifies exceptions: a failure is retried only if
    it is an instance of one of these types.  ``KeyboardInterrupt``
    and ``SystemExit`` are *never* retried or buffered — they
    propagate immediately no matter what this tuple says.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff_factor: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5
    retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be within [0, 1], got {self.jitter}")

    def is_retryable(self, error: BaseException) -> bool:
        """Whether ``error`` is worth another attempt (type-based)."""
        if isinstance(error, (KeyboardInterrupt, SystemExit)):
            return False
        return isinstance(error, self.retryable)

    def delay_before(
        self, attempt: int, entropy: Sequence[int] = ()
    ) -> float:
        """Seconds to wait before attempt number ``attempt`` (2-based).

        ``attempt`` is the attempt about to run, so the first retry
        (attempt 2) waits ``base_delay``-ish, the second retry
        ``base_delay · backoff_factor``, and so on, capped at
        ``max_delay``.  The jitter multiplier lies in
        ``[1 - jitter, 1]`` and is a pure function of
        ``(entropy, attempt)``.
        """
        if attempt <= 1:
            return 0.0
        delay = min(
            self.base_delay * self.backoff_factor ** (attempt - 2),
            self.max_delay,
        )
        if delay <= 0.0 or self.jitter == 0.0:
            return delay
        draw = np.random.default_rng(
            np.random.SeedSequence([*map(int, entropy), int(attempt)])
        ).random()
        return delay * (1.0 - self.jitter * float(draw))

    def with_updates(self, **changes) -> "RetryPolicy":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


NO_RETRY = RetryPolicy(max_attempts=1)


@dataclass
class FaultToleranceStats:
    """What one (or many, via :meth:`merge`) ``map`` calls absorbed.

    ``attempts`` counts every task execution started, ``retries`` the
    re-executions among them; ``timeouts``/``crashes`` classify the
    absorbed failures; ``pool_rebuilds`` counts executor recreations
    after pool breakage and ``downgrades`` the times a broken pool
    flavor fell back to a simpler one (process → thread → serial).
    ``resumed`` is filled by the checkpoint layer: completed work
    served from a journal instead of being re-run.
    """

    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    pool_rebuilds: int = 0
    downgrades: int = 0
    resumed: int = 0

    _FIELDS = (
        "attempts", "retries", "timeouts", "crashes",
        "pool_rebuilds", "downgrades", "resumed",
    )

    def merge(self, other: "FaultToleranceStats") -> "FaultToleranceStats":
        """Accumulate ``other`` into this instance (returns self)."""
        for name in self._FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (what rides on ``RowResult.fault_stats``)."""
        return {name: getattr(self, name) for name in self._FIELDS}

    @property
    def eventful(self) -> bool:
        """True when anything beyond plain first-attempt successes happened."""
        return any(
            getattr(self, name) for name in self._FIELDS if name != "attempts"
        )

    def summary(self) -> str:
        """One human line, e.g. ``retries=2 (timeouts=1 crashes=1)``."""
        parts = [f"attempts={self.attempts}"]
        for name in self._FIELDS[1:]:
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={value}")
        return " ".join(parts)

"""Golomb run-length coding (Chandra/Chakrabarty, VTS 2000 — ref [3]).

One of the code-based schemes the paper cites as prior art.  The test
set is filled (don't-cares → 0) and viewed as runs of 0s terminated by
a 1; each run length ``l`` is coded with Golomb parameter ``m``:

* quotient  ``q = l // m`` in unary (``q`` ones, then a zero),
* remainder ``r = l % m`` in ``log2(m)`` binary bits (``m`` a power of
  two — the Rice special case used in test compression).

A trailing run without a terminating 1 is coded the same way with an
explicit end-marker convention handled by the caller keeping the bit
count (:mod:`repro.core.baselines` does).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = [
    "runs_of_zeros",
    "golomb_encode_run",
    "golomb_encode",
    "golomb_decode",
    "best_golomb_parameter",
]


def runs_of_zeros(bits: Sequence[int]) -> tuple[list[int], bool]:
    """Split a bit sequence into runs of 0s terminated by a 1.

    Returns ``(runs, trailing)`` where ``trailing`` is True when the
    last run ends at the end of data without a terminating 1 (the
    decoder then truncates after the known bit count).

    >>> runs_of_zeros([0, 0, 1, 0, 1, 1])
    ([2, 1, 0], False)
    >>> runs_of_zeros([1, 0, 0])
    ([0, 2], True)
    """
    runs = []
    current = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"invalid bit {bit!r}")
        if bit == 0:
            current += 1
        else:
            runs.append(current)
            current = 0
    trailing = current > 0
    if trailing:
        runs.append(current)
    return runs, trailing


def golomb_encode_run(length: int, m: int) -> str:
    """Codeword for a single run length.

    >>> golomb_encode_run(5, 4)
    '1001'
    """
    if length < 0:
        raise ValueError("run length must be non-negative")
    if m < 1 or m & (m - 1):
        raise ValueError("Golomb parameter must be a positive power of two")
    quotient, remainder = divmod(length, m)
    tail_bits = m.bit_length() - 1
    tail = format(remainder, f"0{tail_bits}b") if tail_bits else ""
    return "1" * quotient + "0" + tail


def golomb_encode(runs: Iterable[int], m: int) -> str:
    """Concatenated codewords for a run sequence."""
    return "".join(golomb_encode_run(run, m) for run in runs)


def golomb_decode(code: str, m: int) -> list[int]:
    """Inverse of :func:`golomb_encode`.

    >>> golomb_decode(golomb_encode([2, 1, 0], 2), 2)
    [2, 1, 0]
    """
    if m < 1 or m & (m - 1):
        raise ValueError("Golomb parameter must be a positive power of two")
    tail_bits = m.bit_length() - 1
    runs = []
    position = 0
    while position < len(code):
        quotient = 0
        while position < len(code) and code[position] == "1":
            quotient += 1
            position += 1
        if position >= len(code):
            raise ValueError("truncated Golomb codeword (missing separator)")
        position += 1  # the '0' separator
        remainder = 0
        if tail_bits:
            tail = code[position : position + tail_bits]
            if len(tail) < tail_bits:
                raise ValueError("truncated Golomb codeword (short tail)")
            remainder = int(tail, 2)
            position += tail_bits
        runs.append(quotient * m + remainder)
    return runs


def best_golomb_parameter(
    runs: Sequence[int], candidates: Sequence[int] = (1, 2, 4, 8, 16, 32, 64)
) -> int:
    """The power-of-two ``m`` minimizing the coded length of ``runs``.

    >>> best_golomb_parameter([30, 28, 33])
    16
    """
    if not runs:
        return 1
    best_m, best_cost = 1, None
    for m in candidates:
        cost = sum(len(golomb_encode_run(run, m)) for run in runs)
        if best_cost is None or cost < best_cost:
            best_m, best_cost = m, cost
    return best_m

"""Prefix codes: validation, Kraft inequality, canonical construction.

The paper requires the codeword set ``{C(v1), ..., C(vL)}`` to be a
prefix code — no codeword is a prefix of another — so a serial decoder
can delimit codewords without length fields.  This module provides a
:class:`PrefixCode` mapping symbols to codewords, structural checks, and
the canonical-code construction used to turn Huffman code *lengths*
into concrete codewords.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence
from typing import TypeVar

__all__ = [
    "PrefixCode",
    "PrefixViolationError",
    "is_prefix_free",
    "kraft_sum",
    "canonical_code_from_lengths",
]

Symbol = TypeVar("Symbol", bound=Hashable)


class PrefixViolationError(ValueError):
    """Raised when a set of codewords is not prefix-free."""


def is_prefix_free(codewords: Sequence[str]) -> bool:
    """Return True iff no codeword is a prefix of a different codeword.

    Duplicate codewords are *not* prefix-free (a codeword is a prefix of
    its copy, and the decoder could not distinguish the two symbols).

    >>> is_prefix_free(["0", "10", "11"])
    True
    >>> is_prefix_free(["0", "01"])
    False
    """
    ordered = sorted(codewords)
    for previous, current in zip(ordered, ordered[1:]):
        if current.startswith(previous):
            return False
    return True


def kraft_sum(lengths: Sequence[int]) -> float:
    """Kraft inequality sum ``Σ 2^-len`` for a binary code.

    A prefix code exists for the given lengths iff the sum is ≤ 1; a
    *complete* code (every stream decodable) has sum exactly 1.

    >>> kraft_sum([1, 2, 2])
    1.0
    """
    for length in lengths:
        if length < 0:
            raise ValueError(f"negative codeword length {length}")
    return sum(2.0 ** -length for length in lengths)


def canonical_code_from_lengths(
    lengths: Mapping[Symbol, int],
) -> dict[Symbol, str]:
    """Assign canonical codewords for the given per-symbol lengths.

    Symbols are ordered by (length, repr of symbol) and numbered with
    the canonical Huffman recurrence, which always yields a prefix code
    when the lengths satisfy the Kraft inequality.

    >>> canonical_code_from_lengths({"a": 1, "b": 2, "c": 2})
    {'a': '0', 'b': '10', 'c': '11'}
    """
    if not lengths:
        return {}
    for symbol, length in lengths.items():
        if length <= 0:
            raise ValueError(f"symbol {symbol!r} has non-positive length {length}")
    if kraft_sum(list(lengths.values())) > 1.0 + 1e-12:
        raise PrefixViolationError(
            "codeword lengths violate the Kraft inequality; no prefix code exists"
        )
    ordered = sorted(lengths.items(), key=lambda item: (item[1], repr(item[0])))
    code: dict[Symbol, str] = {}
    value = 0
    previous_length = ordered[0][1]
    for symbol, length in ordered:
        value <<= length - previous_length
        code[symbol] = format(value, f"0{length}b")
        value += 1
        previous_length = length
    return code


class PrefixCode:
    """An immutable symbol → binary-codeword mapping with prefix checks.

    >>> code = PrefixCode({"x": "0", "y": "10", "z": "11"})
    >>> code.encode(["x", "y"])
    '010'
    >>> code.expected_length({"x": 2, "y": 1, "z": 1})
    6
    """

    def __init__(self, mapping: Mapping[Hashable, str]) -> None:
        for symbol, word in mapping.items():
            if not word:
                raise ValueError(f"symbol {symbol!r} has an empty codeword")
            if set(word) - {"0", "1"}:
                raise ValueError(f"codeword {word!r} contains non-binary characters")
        if not is_prefix_free(list(mapping.values())):
            raise PrefixViolationError(f"codewords are not prefix-free: {mapping!r}")
        self._mapping = dict(mapping)

    @classmethod
    def from_lengths(cls, lengths: Mapping[Hashable, int]) -> "PrefixCode":
        """Build a canonical prefix code from per-symbol lengths."""
        return cls(canonical_code_from_lengths(lengths))

    @property
    def symbols(self) -> list:
        """The coded symbols, in insertion order."""
        return list(self._mapping)

    def codeword(self, symbol: Hashable) -> str:
        """Return the codeword assigned to ``symbol``."""
        return self._mapping[symbol]

    def length(self, symbol: Hashable) -> int:
        """Return the codeword length for ``symbol``."""
        return len(self._mapping[symbol])

    def as_dict(self) -> dict:
        """Return a copy of the symbol → codeword mapping."""
        return dict(self._mapping)

    def encode(self, symbols: Sequence[Hashable]) -> str:
        """Concatenate the codewords of ``symbols``."""
        return "".join(self._mapping[s] for s in symbols)

    def expected_length(self, frequencies: Mapping[Hashable, int]) -> int:
        """Total coded bits for the given symbol frequencies."""
        return sum(
            count * len(self._mapping[symbol])
            for symbol, count in frequencies.items()
            if count
        )

    def decode_tree(self) -> dict:
        """Return the decoding trie: nested ``{bit: subtree-or-symbol}``.

        Leaves are the symbols themselves; inner nodes are dicts keyed
        by ``'0'``/``'1'``.  This is the structure an on-chip decoder
        FSM walks bit by bit.
        """
        root: dict = {}
        for symbol, word in self._mapping.items():
            node = root
            for bit in word[:-1]:
                node = node.setdefault(bit, {})
                if not isinstance(node, dict):
                    raise PrefixViolationError("codeword passes through a leaf")
            if word[-1] in node:
                raise PrefixViolationError("duplicate codeword path")
            node[word[-1]] = symbol
        return root

    def __len__(self) -> int:
        return len(self._mapping)

    def __contains__(self, symbol: Hashable) -> bool:
        return symbol in self._mapping

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrefixCode):
            return NotImplemented
        return self._mapping == other._mapping

    def __repr__(self) -> str:
        return f"PrefixCode({self._mapping!r})"

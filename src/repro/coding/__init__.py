"""Prefix-coding substrate: Huffman codes, prefix codes, bit streams."""

from .bitstream import BitReader, BitWriter, bits_from_string, bits_to_string
from .fdr import fdr_decode, fdr_encode, fdr_encode_run, fdr_group
from .golomb import (
    best_golomb_parameter,
    golomb_decode,
    golomb_encode,
    golomb_encode_run,
    runs_of_zeros,
)
from .huffman import entropy_bound, huffman_code, huffman_code_lengths, weighted_length
from .prefix import (
    PrefixCode,
    PrefixViolationError,
    canonical_code_from_lengths,
    is_prefix_free,
    kraft_sum,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "bits_from_string",
    "bits_to_string",
    "fdr_decode",
    "fdr_encode",
    "fdr_encode_run",
    "fdr_group",
    "best_golomb_parameter",
    "golomb_decode",
    "golomb_encode",
    "golomb_encode_run",
    "runs_of_zeros",
    "entropy_bound",
    "huffman_code",
    "huffman_code_lengths",
    "weighted_length",
    "PrefixCode",
    "PrefixViolationError",
    "canonical_code_from_lengths",
    "is_prefix_free",
    "kraft_sum",
]

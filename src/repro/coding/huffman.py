"""Huffman coding (Huffman 1952), as used for MV codeword assignment.

The paper assigns codewords to matching vectors by running Huffman's
algorithm on the frequencies-of-use collected during covering
(Section 3.3).  Matching vectors with frequency zero are simply left
out.  The degenerate single-symbol case receives a one-bit codeword so
that the stream remains self-delimiting.

Codewords are *canonical*: Huffman's algorithm fixes only the lengths;
we then number the codewords canonically (see
:func:`repro.coding.prefix.canonical_code_from_lengths`), which makes
results deterministic and the decoder table compact.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Hashable, Mapping

from .prefix import PrefixCode

__all__ = ["huffman_code_lengths", "huffman_code", "weighted_length", "entropy_bound"]


def huffman_code_lengths(frequencies: Mapping[Hashable, int]) -> dict[Hashable, int]:
    """Compute optimal prefix-code lengths for the given frequencies.

    Zero-frequency symbols are excluded from the result (the paper
    allocates no codeword to unused matching vectors).  A single coded
    symbol gets length 1.

    >>> huffman_code_lengths({"a": 5, "b": 3, "c": 2})
    {'a': 1, 'b': 2, 'c': 2}
    """
    active = [(sym, freq) for sym, freq in frequencies.items() if freq > 0]
    for symbol, frequency in frequencies.items():
        if frequency < 0:
            raise ValueError(f"negative frequency {frequency} for {symbol!r}")
    if not active:
        return {}
    if len(active) == 1:
        return {active[0][0]: 1}

    counter = itertools.count()  # tie-breaker keeps the heap total-ordered
    heap: list[tuple[int, int, list[Hashable]]] = [
        (freq, next(counter), [sym]) for sym, freq in active
    ]
    heapq.heapify(heap)
    lengths = {sym: 0 for sym, _ in active}
    while len(heap) > 1:
        freq_a, _, symbols_a = heapq.heappop(heap)
        freq_b, _, symbols_b = heapq.heappop(heap)
        for symbol in symbols_a:
            lengths[symbol] += 1
        for symbol in symbols_b:
            lengths[symbol] += 1
        heapq.heappush(heap, (freq_a + freq_b, next(counter), symbols_a + symbols_b))
    return lengths


def huffman_code(frequencies: Mapping[Hashable, int]) -> PrefixCode:
    """Build a canonical Huffman :class:`PrefixCode` for ``frequencies``.

    >>> code = huffman_code({"a": 5, "b": 3, "c": 2})
    >>> sorted((s, len(w)) for s, w in code.as_dict().items())
    [('a', 1), ('b', 2), ('c', 2)]
    """
    return PrefixCode.from_lengths(huffman_code_lengths(frequencies))


def weighted_length(
    lengths: Mapping[Hashable, int], frequencies: Mapping[Hashable, int]
) -> int:
    """Total coded size ``Σ freq(s)·len(s)`` over symbols with a codeword."""
    return sum(
        frequencies.get(symbol, 0) * length for symbol, length in lengths.items()
    )


def entropy_bound(frequencies: Mapping[Hashable, int]) -> float:
    """Shannon lower bound (in bits) on any prefix coding of the stream.

    Huffman's weighted length always lies within ``[H, H + total)``
    where ``H`` is this bound — handy as a test oracle.
    """
    total = sum(freq for freq in frequencies.values() if freq > 0)
    if total == 0:
        return 0.0
    bound = 0.0
    for frequency in frequencies.values():
        if frequency > 0:
            probability = frequency / total
            bound -= frequency * math.log2(probability)
    return bound

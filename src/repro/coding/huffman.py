"""Huffman coding (Huffman 1952), as used for MV codeword assignment.

The paper assigns codewords to matching vectors by running Huffman's
algorithm on the frequencies-of-use collected during covering
(Section 3.3).  Matching vectors with frequency zero are simply left
out.  The degenerate single-symbol case receives a one-bit codeword so
that the stream remains self-delimiting.

Codewords are *canonical*: Huffman's algorithm fixes only the lengths;
we then number the codewords canonically (see
:func:`repro.coding.prefix.canonical_code_from_lengths`), which makes
results deterministic and the decoder table compact.

Two array-based fast paths back the EA's batched fitness engine
(`repro.core.fitness`), which only needs the *weighted total*
``Σ freq·len`` — not per-symbol codewords.  That total equals the sum
of all merge weights produced by Huffman's algorithm and is identical
for every optimal tree, so it can be computed with the classic
two-queue merge over sorted frequencies (:func:`huffman_total_bits`)
and, for a whole generation at once, with a lockstep-vectorized
two-queue over a frequency *matrix*
(:func:`huffman_total_bits_batch`) — no per-genome dict or heap
construction anywhere on the hot path.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Hashable, Mapping
from typing import NamedTuple

import numpy as np

from .prefix import PrefixCode

__all__ = [
    "HuffmanLengthStats",
    "huffman_code_lengths",
    "huffman_code",
    "huffman_length_stats",
    "huffman_length_stats_batch",
    "huffman_total_bits",
    "huffman_total_bits_batch",
    "weighted_length",
    "entropy_bound",
]

# Below this many rows the per-row scalar merge beats the lockstep
# batch machinery (whose step count scales with L, not the row count).
# The no-profile default; ``repro tune`` measures the crossover per
# machine and callers on the hot path pass it via ``lockstep_min_rows``
# (see ``repro.tuning``).
_LOCKSTEP_MIN_ROWS = 96


def huffman_code_lengths(frequencies: Mapping[Hashable, int]) -> dict[Hashable, int]:
    """Compute optimal prefix-code lengths for the given frequencies.

    Zero-frequency symbols are excluded from the result (the paper
    allocates no codeword to unused matching vectors).  A single coded
    symbol gets length 1.

    >>> huffman_code_lengths({"a": 5, "b": 3, "c": 2})
    {'a': 1, 'b': 2, 'c': 2}
    """
    active = [(sym, freq) for sym, freq in frequencies.items() if freq > 0]
    for symbol, frequency in frequencies.items():
        if frequency < 0:
            raise ValueError(f"negative frequency {frequency} for {symbol!r}")
    if not active:
        return {}
    if len(active) == 1:
        return {active[0][0]: 1}

    counter = itertools.count()  # tie-breaker keeps the heap total-ordered
    heap: list[tuple[int, int, list[Hashable]]] = [
        (freq, next(counter), [sym]) for sym, freq in active
    ]
    heapq.heapify(heap)
    lengths = {sym: 0 for sym, _ in active}
    while len(heap) > 1:
        freq_a, _, symbols_a = heapq.heappop(heap)
        freq_b, _, symbols_b = heapq.heappop(heap)
        for symbol in symbols_a:
            lengths[symbol] += 1
        for symbol in symbols_b:
            lengths[symbol] += 1
        heapq.heappush(heap, (freq_a + freq_b, next(counter), symbols_a + symbols_b))
    return lengths


def huffman_total_bits(frequencies: np.ndarray) -> int:
    """Weighted Huffman length ``Σ freq·len`` of an array of frequencies.

    Zero frequencies are ignored (unused matching vectors receive no
    codeword); a single active symbol is priced at length 1, matching
    :func:`huffman_code_lengths`.  Uses the two-queue merge over sorted
    frequencies — merged weights emerge in non-decreasing order, so the
    smallest pending node is always at the head of one of two queues —
    and therefore needs no heap or symbol dict.

    >>> huffman_total_bits(np.asarray([5, 3, 2]))
    15
    """
    freqs = np.asarray(frequencies)
    if freqs.ndim != 1:
        raise ValueError("frequencies must be one-dimensional")
    if freqs.size and int(freqs.min()) < 0:
        raise ValueError("frequencies must be non-negative")
    return _merge_total(np.sort(freqs[freqs > 0]).tolist())


def _merge_total(leaves: list[int]) -> int:
    """Two-queue merge total over an ascending list of frequencies."""
    n_active = len(leaves)
    if n_active == 0:
        return 0
    if n_active == 1:
        return int(leaves[0])
    merged: list[int] = []
    leaf_head = merge_head = 0
    total = 0
    for _ in range(n_active - 1):
        pair = 0
        for _half in range(2):
            if merge_head >= len(merged) or (
                leaf_head < n_active and leaves[leaf_head] <= merged[merge_head]
            ):
                pair += leaves[leaf_head]
                leaf_head += 1
            else:
                pair += merged[merge_head]
                merge_head += 1
        merged.append(pair)
        total += pair
    return int(total)


def huffman_total_bits_batch(
    frequency_matrix: np.ndarray, lockstep_min_rows: int | None = None
) -> np.ndarray:
    """Row-wise :func:`huffman_total_bits` over a ``(C, L)`` matrix.

    This is the batched fitness engine's pricing kernel: one call prices
    every genome of a generation.  All ``C`` rows run the two-queue
    merge in lockstep — each of the ``L−1`` steps pops the two smallest
    pending nodes of every row with ``O(C)`` vectorized work — so the
    Python-level loop count depends only on ``L``, not on the batch
    size.  Rows are padded with ``+inf`` sentinels; rows with fewer
    active symbols simply stop participating early.

    Frequencies must be non-negative; zeros are inactive.  Returns an
    ``int64`` array of ``Σ freq·len`` per row (0 for all-zero rows,
    ``freq`` itself for single-symbol rows).  Exact for totals below
    2**53 (float64 accumulation of integer weights).

    The lockstep machinery costs ~``L`` vectorized steps regardless of
    ``C``, so small batches (below ``lockstep_min_rows``, default the
    measured ``_LOCKSTEP_MIN_ROWS``; tuned per machine by ``repro
    tune``) are routed through the per-row scalar merge instead —
    same results, no fixed overhead.

    >>> huffman_total_bits_batch(np.asarray([[5, 3, 2], [0, 7, 0]])).tolist()
    [15, 7]
    """
    freqs = np.asarray(frequency_matrix)
    if freqs.ndim != 2:
        raise ValueError("frequency matrix must be two-dimensional")
    n_rows, n_symbols = freqs.shape
    if n_rows == 0 or n_symbols == 0:
        return np.zeros(n_rows, dtype=np.int64)
    if freqs.size and int(freqs.min()) < 0:
        raise ValueError("frequencies must be non-negative")
    if lockstep_min_rows is None:
        lockstep_min_rows = _LOCKSTEP_MIN_ROWS
    if n_rows < lockstep_min_rows:
        # One batched sort, then pure-Python merges on plain lists —
        # no per-row numpy call overhead.
        presorted = np.sort(freqs, axis=1).tolist()
        return np.asarray(
            [
                _merge_total([leaf for leaf in row if leaf > 0])
                for row in presorted
            ],
            dtype=np.int64,
        )

    # Sorted leaves with +inf padding; one extra column so queue heads
    # can point one past the end without bounds checks.
    leaves = np.where(freqs > 0, freqs, np.inf).astype(np.float64)
    leaves.sort(axis=1)
    leaves = np.concatenate(
        [leaves, np.full((n_rows, 1), np.inf)], axis=1
    )
    n_active = (freqs > 0).sum(axis=1)

    merged = np.full((n_rows, n_symbols), np.inf)
    rows = np.arange(n_rows)
    leaf_head = np.zeros(n_rows, dtype=np.int64)
    merge_head = np.zeros(n_rows, dtype=np.int64)
    merge_tail = np.zeros(n_rows, dtype=np.int64)
    totals = np.zeros(n_rows, dtype=np.float64)

    for step in range(n_symbols - 1):
        active = step < n_active - 1
        if not active.any():
            break
        pair = np.zeros(n_rows, dtype=np.float64)
        for _ in range(2):
            leaf_value = leaves[rows, leaf_head]
            merge_value = merged[rows, np.minimum(merge_head, n_symbols - 1)]
            merge_value = np.where(merge_head < merge_tail, merge_value, np.inf)
            take_leaf = leaf_value <= merge_value
            pair += np.where(take_leaf, leaf_value, merge_value)
            leaf_head += take_leaf & active
            merge_head += ~take_leaf & active
        merged[rows[active], merge_tail[active]] = pair[active]
        merge_tail += active
        totals += np.where(active, pair, 0.0)

    single = n_active == 1
    if single.any():
        totals[single] = leaves[single, 0]
    return totals.astype(np.int64)


class HuffmanLengthStats(NamedTuple):
    """Aggregate code-length statistics of one optimal Huffman tree.

    ``n_active`` — symbols with a codeword (frequency > 0);
    ``total_bits`` — weighted length ``Σ freq·len``;
    ``sum_lengths`` — unweighted length sum ``Σ len`` (the decoder
    table's codeword storage); ``max_length`` — the longest codeword.
    Each field is a scalar for :func:`huffman_length_stats` and a
    per-row ``int64`` array for :func:`huffman_length_stats_batch`.
    """

    n_active: object
    total_bits: object
    sum_lengths: object
    max_length: object


def _merge_stats(leaves: list[int]) -> tuple[int, int, int, int]:
    """Two-queue merge over ascending frequencies, tracking lengths.

    Besides the running weight of each pending merged node (as in
    :func:`_merge_total`), tracks its leaf count and height: every merge
    deepens each leaf beneath it by one, so ``Σ len`` accumulates the
    merged leaf counts and the root's height is the longest codeword.
    Ties prefer the leaf queue, which reproduces the length *multiset*
    of :func:`huffman_code_lengths` (leaves there carry smaller heap
    tie-breakers than any merged node).
    """
    n_active = len(leaves)
    if n_active == 0:
        return (0, 0, 0, 0)
    if n_active == 1:
        return (1, int(leaves[0]), 1, 1)
    merged_weight: list[int] = []
    merged_leaves: list[int] = []
    merged_height: list[int] = []
    leaf_head = merge_head = 0
    total = sum_lengths = 0
    for _ in range(n_active - 1):
        pair_weight = 0
        pair_leaves = 0
        pair_height = 0
        for _half in range(2):
            if merge_head >= len(merged_weight) or (
                leaf_head < n_active
                and leaves[leaf_head] <= merged_weight[merge_head]
            ):
                pair_weight += leaves[leaf_head]
                pair_leaves += 1
                leaf_head += 1
            else:
                pair_weight += merged_weight[merge_head]
                pair_leaves += merged_leaves[merge_head]
                pair_height = max(pair_height, merged_height[merge_head])
                merge_head += 1
        merged_weight.append(pair_weight)
        merged_leaves.append(pair_leaves)
        merged_height.append(pair_height + 1)
        total += pair_weight
        sum_lengths += pair_leaves
    return (n_active, int(total), int(sum_lengths), int(merged_height[-1]))


def huffman_length_stats(frequencies: np.ndarray) -> HuffmanLengthStats:
    """Aggregate Huffman length statistics of one frequency array.

    Zero frequencies are inactive; a single active symbol is priced at
    length 1, exactly as in :func:`huffman_code_lengths`.  The returned
    aggregates (count, ``Σ freq·len``, ``Σ len``, ``max len``) match
    what :func:`huffman_code_lengths` would yield symbol-by-symbol —
    this is the scalar reference for the decoder-model objective
    columns (see :mod:`repro.core.decoder_hw`).

    >>> huffman_length_stats(np.asarray([5, 3, 2]))
    HuffmanLengthStats(n_active=3, total_bits=15, sum_lengths=5, max_length=2)
    """
    freqs = np.asarray(frequencies)
    if freqs.ndim != 1:
        raise ValueError("frequencies must be one-dimensional")
    if freqs.size and int(freqs.min()) < 0:
        raise ValueError("frequencies must be non-negative")
    return HuffmanLengthStats(*_merge_stats(np.sort(freqs[freqs > 0]).tolist()))


def huffman_length_stats_batch(frequency_matrix: np.ndarray) -> HuffmanLengthStats:
    """Row-wise :func:`huffman_length_stats` over a ``(C, L)`` matrix.

    Backs the batched multi-objective adapter: one call yields, for
    every genome of a generation, the codeword count, the coded-stream
    size ``Σ freq·len``, the decoder table's stored-codeword bits
    ``Σ len``, and the longest codeword.  Returns a
    :class:`HuffmanLengthStats` of four ``(C,)`` ``int64`` arrays.

    Pareto pricing batches are generation-sized (tens of rows), so this
    uses one batched sort plus the per-row scalar merge — the same
    small-batch strategy :func:`huffman_total_bits_batch` routes
    through below its lockstep cutover.

    >>> stats = huffman_length_stats_batch(np.asarray([[5, 3, 2], [0, 7, 0]]))
    >>> [column.tolist() for column in stats]
    [[3, 1], [15, 7], [5, 1], [2, 1]]
    """
    freqs = np.asarray(frequency_matrix)
    if freqs.ndim != 2:
        raise ValueError("frequency matrix must be two-dimensional")
    n_rows = freqs.shape[0]
    if freqs.size == 0:
        zeros = np.zeros(n_rows, dtype=np.int64)
        return HuffmanLengthStats(zeros, zeros.copy(), zeros.copy(), zeros.copy())
    if int(freqs.min()) < 0:
        raise ValueError("frequencies must be non-negative")
    presorted = np.sort(freqs, axis=1).tolist()
    stats = [
        _merge_stats([leaf for leaf in row if leaf > 0]) for row in presorted
    ]
    columns = np.asarray(stats, dtype=np.int64).reshape(n_rows, 4)
    return HuffmanLengthStats(
        columns[:, 0], columns[:, 1], columns[:, 2], columns[:, 3]
    )


def huffman_code(frequencies: Mapping[Hashable, int]) -> PrefixCode:
    """Build a canonical Huffman :class:`PrefixCode` for ``frequencies``.

    >>> code = huffman_code({"a": 5, "b": 3, "c": 2})
    >>> sorted((s, len(w)) for s, w in code.as_dict().items())
    [('a', 1), ('b', 2), ('c', 2)]
    """
    return PrefixCode.from_lengths(huffman_code_lengths(frequencies))


def weighted_length(
    lengths: Mapping[Hashable, int], frequencies: Mapping[Hashable, int]
) -> int:
    """Total coded size ``Σ freq(s)·len(s)`` over symbols with a codeword."""
    return sum(
        frequencies.get(symbol, 0) * length for symbol, length in lengths.items()
    )


def entropy_bound(frequencies: Mapping[Hashable, int]) -> float:
    """Shannon lower bound (in bits) on any prefix coding of the stream.

    Huffman's weighted length always lies within ``[H, H + total)``
    where ``H`` is this bound — handy as a test oracle.
    """
    total = sum(freq for freq in frequencies.values() if freq > 0)
    if total == 0:
        return 0.0
    bound = 0.0
    for frequency in frequencies.values():
        if frequency > 0:
            probability = frequency / total
            bound -= frequency * math.log2(probability)
    return bound

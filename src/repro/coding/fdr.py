"""Frequency-directed run-length (FDR) coding (ref [4] of the paper).

Chandra/Chakrabarty's FDR code is a variable-to-variable run-length
code tuned to the run-length distribution of 0-filled test sets: run
lengths are organized in groups ``A_k``, each with a ``k``-bit unary
group prefix and a ``k``-bit tail:

======  ====================  ==========  ===========
group   run lengths           prefix      tail bits
======  ====================  ==========  ===========
A1      0 … 1                 ``0``       1
A2      2 … 5                 ``10``      2
A3      6 … 13                ``110``     3
A_k     2^k − 2 … 2^(k+1)−3   1^(k−1) 0   k
======  ====================  ==========  ===========

Short runs (the overwhelming majority in test data) get 2-bit
codewords while the length coverage grows exponentially.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["fdr_group", "fdr_encode_run", "fdr_encode", "fdr_decode"]


def fdr_group(length: int) -> int:
    """The group index ``k`` with ``2^k − 2 <= length <= 2^(k+1) − 3``.

    >>> [fdr_group(l) for l in (0, 1, 2, 5, 6, 13, 14)]
    [1, 1, 2, 2, 3, 3, 4]
    """
    if length < 0:
        raise ValueError("run length must be non-negative")
    k = 1
    while length > 2 ** (k + 1) - 3:
        k += 1
    return k


def fdr_encode_run(length: int) -> str:
    """Codeword for one run length.

    >>> fdr_encode_run(0), fdr_encode_run(2), fdr_encode_run(6)
    ('00', '1000', '110000')
    """
    k = fdr_group(length)
    prefix = "1" * (k - 1) + "0"
    offset = length - (2**k - 2)
    return prefix + format(offset, f"0{k}b")


def fdr_encode(runs: Iterable[int]) -> str:
    """Concatenated codewords for a run sequence."""
    return "".join(fdr_encode_run(run) for run in runs)


def fdr_decode(code: str) -> list[int]:
    """Inverse of :func:`fdr_encode`.

    >>> fdr_decode(fdr_encode([0, 7, 2, 100]))
    [0, 7, 2, 100]
    """
    runs = []
    position = 0
    while position < len(code):
        k = 1
        while position < len(code) and code[position] == "1":
            k += 1
            position += 1
        if position >= len(code):
            raise ValueError("truncated FDR codeword (missing prefix end)")
        position += 1  # the prefix-terminating '0'
        tail = code[position : position + k]
        if len(tail) < k:
            raise ValueError("truncated FDR codeword (short tail)")
        position += k
        runs.append(2**k - 2 + int(tail, 2))
    return runs

"""Bit-level I/O used by the compressor and the on-chip decoder model.

The compressed test data produced by code-based compression is a plain
bit string (codewords followed by fill bits).  ``BitWriter`` accumulates
bits most-significant-first into a compact :class:`bytearray`;
``BitReader`` replays them in the same order, which is exactly what a
serial on-chip decoder would see on its input pin.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["BitWriter", "BitReader", "bits_from_string", "bits_to_string"]


def bits_from_string(text: str) -> list[int]:
    """Parse a string such as ``"0110"`` into a list of 0/1 integers.

    Spaces and underscores are ignored so callers can group digits for
    readability (``"110 01"``).

    >>> bits_from_string("110 01")
    [1, 1, 0, 0, 1]
    """
    bits = []
    for ch in text:
        if ch in " _":
            continue
        if ch not in "01":
            raise ValueError(f"invalid bit character {ch!r} in {text!r}")
        bits.append(1 if ch == "1" else 0)
    return bits


def bits_to_string(bits: Iterable[int]) -> str:
    """Render an iterable of 0/1 integers as a compact string.

    >>> bits_to_string([1, 0, 1])
    '101'
    """
    out = []
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"invalid bit value {bit!r}")
        out.append("1" if bit else "0")
    return "".join(out)


class BitWriter:
    """Accumulate single bits into a byte buffer, MSB first.

    >>> w = BitWriter()
    >>> w.write_bits([1, 0, 1, 1])
    >>> w.bit_length
    4
    >>> w.to_bitstring()
    '1011'
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._bit_count = 0

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._bit_count

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"invalid bit value {bit!r}")
        byte_index, bit_index = divmod(self._bit_count, 8)
        if bit_index == 0:
            self._buffer.append(0)
        if bit:
            self._buffer[byte_index] |= 0x80 >> bit_index
        self._bit_count += 1

    def write_bits(self, bits: Iterable[int]) -> None:
        """Append a sequence of bits in order.

        Bulk counterpart of :meth:`write_bit` with the buffer and
        cursor hoisted into locals — the compressor emits every block
        through here, so per-bit attribute/method dispatch matters.
        """
        buffer = self._buffer
        position = self._bit_count
        for bit in bits:
            if bit not in (0, 1):
                self._bit_count = position
                raise ValueError(f"invalid bit value {bit!r}")
            if position & 7 == 0:
                buffer.append(0)
            if bit:
                buffer[position >> 3] |= 0x80 >> (position & 7)
            position += 1
        self._bit_count = position

    def write_bitstring(self, text: str) -> None:
        """Append bits given as a string such as ``"0110"``."""
        self.write_bits(bits_from_string(text))

    def getvalue(self) -> bytes:
        """Return the packed bytes (final partial byte zero-padded)."""
        return bytes(self._buffer)

    def to_bitstring(self) -> str:
        """Return all written bits as a 0/1 string (no padding)."""
        return bits_to_string(self)

    def __iter__(self) -> Iterator[int]:
        for position in range(self._bit_count):
            byte_index, bit_index = divmod(position, 8)
            yield (self._buffer[byte_index] >> (7 - bit_index)) & 1

    def __len__(self) -> int:
        return self._bit_count


class BitReader:
    """Replay a bit stream produced by :class:`BitWriter`.

    >>> w = BitWriter(); w.write_bitstring("10110")
    >>> r = BitReader(w.getvalue(), w.bit_length)
    >>> [r.read_bit() for _ in range(5)]
    [1, 0, 1, 1, 0]
    >>> r.exhausted
    True
    """

    def __init__(self, data: bytes, bit_length: int | None = None) -> None:
        self._data = bytes(data)
        max_bits = len(self._data) * 8
        if bit_length is None:
            bit_length = max_bits
        if not 0 <= bit_length <= max_bits:
            raise ValueError(
                f"bit_length {bit_length} out of range for {len(self._data)} bytes"
            )
        self._bit_length = bit_length
        self._position = 0

    @classmethod
    def from_writer(cls, writer: BitWriter) -> "BitReader":
        """Build a reader over everything ``writer`` has produced."""
        return cls(writer.getvalue(), writer.bit_length)

    @classmethod
    def from_bitstring(cls, text: str) -> "BitReader":
        """Build a reader from a 0/1 string."""
        writer = BitWriter()
        writer.write_bitstring(text)
        return cls.from_writer(writer)

    @property
    def bit_length(self) -> int:
        """Total number of readable bits."""
        return self._bit_length

    @property
    def position(self) -> int:
        """Index of the next bit to be read."""
        return self._position

    @property
    def remaining(self) -> int:
        """Number of bits left to read."""
        return self._bit_length - self._position

    @property
    def exhausted(self) -> bool:
        """True once every bit has been consumed."""
        return self._position >= self._bit_length

    def read_bit(self) -> int:
        """Consume and return the next bit."""
        if self._position >= self._bit_length:
            raise EOFError("bit stream exhausted")
        byte_index, bit_index = divmod(self._position, 8)
        self._position += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read_bits(self, count: int) -> list[int]:
        """Consume and return the next ``count`` bits."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.read_bit() for _ in range(count)]

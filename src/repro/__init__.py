"""repro — Evolutionary optimization in code-based test compression.

A from-scratch reproduction of Polian, Czutro and Becker,
*Evolutionary Optimization in Code-Based Test Compression* (DATE 2005),
including every substrate the paper depends on: a prefix-coding layer,
an evolutionary-algorithm engine, a gate-level circuit and ATPG stack
that produces don't-care-rich test sets, and an experiment harness
that regenerates the paper's tables.

Quickstart::

    import repro

    blocks = repro.BlockSet.from_string("1100 11XX 0000 110X", 4)
    result = repro.compress_nine_c(blocks)        # 9C baseline
    best = repro.optimize_mv_set(                  # EA-optimized MVs
        blocks, repro.CompressionConfig(block_length=4, n_vectors=4), seed=1
    )
    print(result.rate, best.mean_rate)
"""

from .core import (
    BlockSet,
    CompressedTestSet,
    CompressionConfig,
    CompressionRateFitness,
    CoveringResult,
    DecodedTestSet,
    EAMVOptimizer,
    EAParameters,
    EncodingStrategy,
    EncodingTable,
    MatchingVector,
    MVSet,
    OptimizationResult,
    UncoverableError,
    compress_blocks,
    compress_nine_c,
    compression_rate,
    cover,
    decompress,
    nine_c_mv_set,
    optimize_mv_set,
    verify_roundtrip,
)
from .tuning import (
    TuningProfile,
    load_profile,
    save_profile,
    use_profile,
)

__version__ = "1.1.0"

__all__ = [
    "BlockSet",
    "CompressedTestSet",
    "CompressionConfig",
    "CompressionRateFitness",
    "CoveringResult",
    "DecodedTestSet",
    "EAMVOptimizer",
    "EAParameters",
    "EncodingStrategy",
    "EncodingTable",
    "MatchingVector",
    "MVSet",
    "OptimizationResult",
    "UncoverableError",
    "compress_blocks",
    "compress_nine_c",
    "compression_rate",
    "cover",
    "decompress",
    "nine_c_mv_set",
    "TuningProfile",
    "load_profile",
    "optimize_mv_set",
    "save_profile",
    "use_profile",
    "verify_roundtrip",
    "__version__",
]

"""Robust path-delay test generation (TIP [31, 32] stand-in).

A path-delay test is a *pair* of vectors ``(v1, v2)``: ``v1`` sets up
initial values, ``v2`` launches a transition down the target path and
the output is sampled at-speed.  A test is **robust** when it detects
the path fault regardless of delays elsewhere, which imposes the
classic side-input conditions at every on-path gate (controlling
value ``c``, non-controlling ``nc``):

* on-path transition ends at ``c``   → side inputs steady ``nc``
  (both vectors);
* on-path transition ends at ``nc``  → side inputs ``nc`` in ``v2``
  (the on-path ``c`` in ``v1`` controls the gate, so ``v1`` sides are
  free);
* XOR/XNOR gates have no controlling value → side inputs must be
  steady at a constant (we try all-0 then all-1, a deliberate
  simplification documented in DESIGN.md).

The two frames of a combinational (test-per-clock) circuit are
independent input vectors, so each frame's requirement set is
justified separately with the PODEM-style :func:`repro.atpg.podem.
justify` engine.  Tests come back as don't-care-rich vector pairs —
the same shape as the paper's Table 2 inputs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..circuits.netlist import GateType, Netlist
from ..circuits.paths import Path, enumerate_paths
from ..circuits.simulator import simulate3
from ..testdata.test_set import TestSet
from .podem import justify

__all__ = [
    "Transition",
    "RobustTest",
    "PathDelayResult",
    "robust_requirements",
    "generate_robust_test",
    "generate_path_delay_tests",
    "is_robust_test",
]


class Transition(enum.Enum):
    """Transition launched at the path input by (v1 → v2)."""

    RISING = "rising"  # 0 -> 1
    FALLING = "falling"  # 1 -> 0

    @property
    def values(self) -> tuple[int, int]:
        """(v1, v2) values at the path input."""
        return (0, 1) if self is Transition.RISING else (1, 0)


@dataclass(frozen=True)
class RobustTest:
    """A robust two-vector test for one path/transition pair."""

    path: Path
    transition: Transition
    vector_one: dict[str, int]
    vector_two: dict[str, int]


@dataclass(frozen=True)
class PathDelayResult:
    """Outcome of path-delay test generation over a set of paths."""

    test_set: TestSet
    tests: tuple[RobustTest, ...]
    untestable: tuple[tuple[Path, Transition], ...]

    @property
    def robust_coverage(self) -> float:
        """Tested / targeted path-transition faults."""
        targeted = len(self.tests) + len(self.untestable)
        return 1.0 if targeted == 0 else len(self.tests) / targeted


def robust_requirements(
    netlist: Netlist,
    path: Path,
    transition: Transition,
    xor_side_value: int = 0,
) -> tuple[dict[str, int], dict[str, int]] | None:
    """Per-frame net requirements for a robust test, or None if the
    path visits a gate through a non-input net (malformed path).

    Returns ``(frame1, frame2)`` requirement dicts including the
    on-path values themselves, the side-input constraints, and the
    launch values at the path input.
    """
    v1, v2 = transition.values
    frame1: dict[str, int] = {path.start: v1}
    frame2: dict[str, int] = {path.start: v2}
    for net, next_net in zip(path.nets, path.nets[1:]):
        gate = netlist.gates.get(next_net)
        if gate is None or net not in gate.inputs:
            return None
        controlling = gate.gate_type.controlling_value
        side_inputs = [s for s in gate.inputs if s != net]
        side_steady_parity = 0
        if controlling is not None:
            if v2 == controlling:
                # Transition ends controlling: sides steady non-controlling.
                for side in side_inputs:
                    frame1[side] = 1 - controlling
                    frame2[side] = 1 - controlling
            else:
                # Transition ends non-controlling: v1 on-path value
                # controls the gate, sides only constrained in frame 2.
                for side in side_inputs:
                    frame2[side] = 1 - controlling
            nc = 1 - controlling
            out1 = _gate_output(gate.gate_type, v1, nc, len(side_inputs))
            out2 = _gate_output(gate.gate_type, v2, nc, len(side_inputs))
        elif gate.gate_type in (GateType.XOR, GateType.XNOR):
            for side in side_inputs:
                frame1[side] = xor_side_value
                frame2[side] = xor_side_value
                side_steady_parity ^= xor_side_value
            out1 = v1 ^ side_steady_parity
            out2 = v2 ^ side_steady_parity
            if gate.gate_type is GateType.XNOR:
                out1, out2 = 1 - out1, 1 - out2
        else:  # NOT / BUF
            invert = gate.gate_type is GateType.NOT
            out1 = 1 - v1 if invert else v1
            out2 = 1 - v2 if invert else v2
        frame1[next_net] = out1
        frame2[next_net] = out2
        v1, v2 = out1, out2
    return frame1, frame2


def _gate_output(
    gate_type: GateType, on_path: int, side_value: int, n_sides: int
) -> int:
    """Gate output when every side input holds ``side_value``."""
    if gate_type in (GateType.AND, GateType.NAND):
        value = on_path if (side_value == 1 or n_sides == 0) else 0
        return 1 - value if gate_type is GateType.NAND else value
    if gate_type in (GateType.OR, GateType.NOR):
        value = on_path if (side_value == 0 or n_sides == 0) else 1
        return 1 - value if gate_type is GateType.NOR else value
    raise ValueError(f"{gate_type} has no controlling value")


def generate_robust_test(
    netlist: Netlist,
    path: Path,
    transition: Transition,
    max_backtracks: int = 1000,
) -> RobustTest | None:
    """Generate one robust test, or None if justification fails.

    >>> from ..circuits.library import load_circuit
    >>> c17 = load_circuit("c17")
    >>> path = next(enumerate_paths(c17))
    >>> test = generate_robust_test(c17, path, Transition.RISING)
    >>> test is None or is_robust_test(c17, test)
    True
    """
    for xor_side_value in (0, 1):
        requirements = robust_requirements(
            netlist, path, transition, xor_side_value
        )
        if requirements is None:
            return None
        frame1_req, frame2_req = requirements
        cube_one = justify(netlist, frame1_req, max_backtracks)
        if cube_one is None:
            continue
        cube_two = justify(netlist, frame2_req, max_backtracks)
        if cube_two is None:
            continue
        return RobustTest(
            path=path,
            transition=transition,
            vector_one=cube_one,
            vector_two=cube_two,
        )
    return None


def is_robust_test(netlist: Netlist, test: RobustTest) -> bool:
    """Check the robust side-input conditions by simulation.

    Simulates both frames and verifies every requirement net holds its
    required value — the oracle used by the test suite.
    """
    requirements = robust_requirements(netlist, test.path, test.transition)
    if requirements is None:
        return False
    frame1_req, frame2_req = requirements
    values_one = simulate3(netlist, test.vector_one)
    values_two = simulate3(netlist, test.vector_two)
    frame1_ok = all(values_one[net] == value for net, value in frame1_req.items())
    frame2_ok = all(values_two[net] == value for net, value in frame2_req.items())
    if frame1_ok and frame2_ok:
        return True
    # The generator may have used the all-1 XOR side fallback.
    requirements = robust_requirements(
        netlist, test.path, test.transition, xor_side_value=1
    )
    frame1_req, frame2_req = requirements
    return all(
        values_one[net] == value for net, value in frame1_req.items()
    ) and all(values_two[net] == value for net, value in frame2_req.items())


def generate_path_delay_tests(
    netlist: Netlist,
    max_paths: int | None = None,
    max_backtracks: int = 1000,
    name: str | None = None,
) -> PathDelayResult:
    """Robust tests for every enumerated path, rising and falling.

    The resulting :class:`TestSet` has ``2n``-bit patterns — ``v1``
    concatenated with ``v2`` — mirroring how the paper's Table 2
    aggregates two-vector tests into one string.
    """
    tests: list[RobustTest] = []
    untestable: list[tuple[Path, Transition]] = []
    for path in enumerate_paths(netlist, limit=max_paths):
        for transition in (Transition.RISING, Transition.FALLING):
            test = generate_robust_test(netlist, path, transition, max_backtracks)
            if test is None:
                untestable.append((path, transition))
            else:
                tests.append(test)
    if not tests:
        raise ValueError(
            f"no robustly testable paths in {netlist.name!r}"
        )
    pair_cubes = []
    for test in tests:
        pair = {net: value for net, value in test.vector_one.items()}
        pair.update(
            {f"{net}'": value for net, value in test.vector_two.items()}
        )
        pair_cubes.append(pair)
    input_order = list(netlist.inputs) + [f"{net}'" for net in netlist.inputs]
    test_set = TestSet.from_cubes(
        name or f"{netlist.name}-path-delay", pair_cubes, input_order
    )
    return PathDelayResult(
        test_set=test_set,
        tests=tuple(tests),
        untestable=tuple(untestable),
    )

"""Three-valued stuck-at fault simulation with fault dropping.

Given a test cube (PIs over ``{0,1,X}``), a fault is *detected* when
some primary output carries a specified value in both the good and the
faulty circuit and the two differ — the conservative 01X criterion
(an X at an output never counts as detection, matching how don't-care
test sets keep their coverage guarantees).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from ..circuits.netlist import Netlist
from ..circuits.simulator import simulate3
from ..core.trits import DC
from .faults import StuckAtFault

__all__ = ["detects", "fault_simulate", "fault_coverage"]


def detects(
    netlist: Netlist,
    cube: Mapping[str, int],
    fault: StuckAtFault,
    good_values: Mapping[str, int] | None = None,
) -> bool:
    """True iff ``cube`` definitely detects ``fault``.

    ``good_values`` lets callers reuse one good-circuit simulation
    across many fault checks.

    >>> from ..circuits.library import load_circuit
    >>> c17 = load_circuit("c17")
    >>> detects(c17, {"G1": 0, "G3": 1, "G2": 1, "G6": 1}, StuckAtFault("G22", 0))
    True
    """
    good = good_values if good_values is not None else simulate3(netlist, cube)
    site = good.get(fault.net, DC)
    if site == DC or site == fault.value:
        return False  # not (definitely) activated
    faulty = simulate3(netlist, cube, forced={fault.net: fault.value})
    for po in netlist.outputs:
        good_po, faulty_po = good[po], faulty[po]
        if good_po != DC and faulty_po != DC and good_po != faulty_po:
            return True
    return False


def fault_simulate(
    netlist: Netlist,
    cube: Mapping[str, int],
    faults: Iterable[StuckAtFault],
) -> list[StuckAtFault]:
    """Return the subset of ``faults`` that ``cube`` detects.

    The good circuit is simulated once; only faults whose site lies in
    the cube's specified support can be activated, and a faulty
    simulation runs per candidate (serial fault simulation — ample for
    the circuit sizes of this substrate).
    """
    good = simulate3(netlist, cube)
    return [
        fault for fault in faults if detects(netlist, cube, fault, good_values=good)
    ]


def fault_coverage(
    netlist: Netlist,
    cubes: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault],
) -> float:
    """Fraction of ``faults`` detected by at least one cube (0..1)."""
    if not faults:
        return 1.0
    remaining = set(faults)
    for cube in cubes:
        if not remaining:
            break
        remaining -= set(fault_simulate(netlist, cube, remaining))
    return 1.0 - len(remaining) / len(faults)

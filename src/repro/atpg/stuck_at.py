"""Uncompacted stuck-at test generation flow.

The paper's Table 1 inputs are "uncompacted stuck-at test sets with
don't-cares" [30].  This flow reproduces that object from first
principles:

1. collapse the stuck-at fault universe,
2. for each still-undetected fault run PODEM (whose cubes only
   specify the PIs the search touched — everything else stays X),
3. fault-simulate the new cube against the remaining faults and drop
   what it detects,
4. append the cube *without any compaction or merging*.

No random fill, no reverse-order compaction, no cube merging — the
result is deliberately redundant and X-rich, like the test sets the
paper compresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.netlist import Netlist
from ..testdata.test_set import TestSet
from .fault_sim import fault_simulate
from .faults import StuckAtFault, collapse_faults
from .podem import podem

__all__ = ["StuckAtResult", "generate_stuck_at_tests"]


@dataclass(frozen=True)
class StuckAtResult:
    """Everything the stuck-at flow produced.

    ``test_set`` holds the uncompacted cubes; ``untestable`` the
    faults PODEM proved redundant; ``aborted`` the faults abandoned at
    the backtrack limit.  ``fault_coverage`` is over the collapsed,
    testable universe.
    """

    test_set: TestSet
    detected: tuple[StuckAtFault, ...] = field(repr=False)
    untestable: tuple[StuckAtFault, ...]
    aborted: tuple[StuckAtFault, ...]

    @property
    def fault_coverage(self) -> float:
        """Detected / (detected + aborted); redundant faults excluded."""
        testable = len(self.detected) + len(self.aborted)
        return 1.0 if testable == 0 else len(self.detected) / testable


def generate_stuck_at_tests(
    netlist: Netlist,
    max_backtracks: int = 1000,
    name: str | None = None,
) -> StuckAtResult:
    """Generate an uncompacted, don't-care-rich stuck-at test set.

    >>> from ..circuits.library import load_circuit
    >>> result = generate_stuck_at_tests(load_circuit("c17"))
    >>> result.fault_coverage
    1.0
    >>> 0.0 < result.test_set.x_density() < 1.0
    True
    """
    faults = collapse_faults(netlist)
    remaining: list[StuckAtFault] = list(faults)
    cubes: list[dict[str, int]] = []
    detected: list[StuckAtFault] = []
    untestable: list[StuckAtFault] = []
    aborted: list[StuckAtFault] = []
    while remaining:
        fault = remaining.pop(0)
        result = podem(netlist, fault, max_backtracks=max_backtracks)
        if result.status == "untestable":
            untestable.append(fault)
            continue
        if result.status == "aborted":
            aborted.append(fault)
            continue
        cubes.append(result.cube)
        detected.append(fault)
        newly_detected = set(fault_simulate(netlist, result.cube, remaining))
        detected.extend(sorted(newly_detected))
        remaining = [f for f in remaining if f not in newly_detected]
    if not cubes:
        raise ValueError(
            f"no testable faults in {netlist.name!r}; cannot build a test set"
        )
    test_set = TestSet.from_cubes(
        name or f"{netlist.name}-stuck-at", cubes, netlist.inputs
    )
    return StuckAtResult(
        test_set=test_set,
        detected=tuple(detected),
        untestable=tuple(untestable),
        aborted=tuple(aborted),
    )

"""PODEM test generation (Goel 1981) producing don't-care-rich cubes.

PODEM searches over primary-input assignments only.  The loop:

1. **Imply**: three-valued simulation of the good and the faulty
   circuit under the partial PI assignment.
2. **Check**: success if some primary output shows a specified
   good/faulty difference; failure (backtrack) if the fault can no
   longer be activated or no X-path remains from the D-frontier to an
   output.
3. **Objective**: activate the fault, else advance the D-frontier by
   setting a side input of a frontier gate to its non-controlling
   value.
4. **Backtrace**: map the objective to a single PI assignment through
   the unjustified logic; push it as a decision and go to 1.

Because only the PIs that decisions touched ever get values, the
returned test cube leaves every other input at ``X`` — these are
exactly the "uncompacted test sets with don't-cares" the compression
paper consumes.

The same machinery justifies arbitrary ``{net: value}`` requirement
sets (:func:`justify`), which the path-delay generator reuses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.netlist import GateType, Netlist
from ..circuits.simulator import simulate3
from ..core.trits import DC
from .faults import StuckAtFault

__all__ = ["PodemResult", "podem", "justify"]


@dataclass(frozen=True)
class PodemResult:
    """Outcome of one PODEM run.

    ``status`` is ``"detected"``, ``"untestable"`` (search space
    exhausted — the fault is redundant) or ``"aborted"`` (backtrack
    limit hit).  ``cube`` maps assigned PIs to 0/1; unlisted PIs are
    don't-cares.
    """

    status: str
    cube: dict[str, int] = field(default_factory=dict)
    backtracks: int = 0

    @property
    def detected(self) -> bool:
        return self.status == "detected"


@dataclass
class _Decision:
    pi: str
    value: int
    flipped: bool = False


def _difference(good: int, faulty: int) -> bool:
    """True when the net carries a specified good/faulty difference."""
    return good != faulty and good != DC and faulty != DC


class _PodemSearch:
    """Shared branch-and-bound machinery for PODEM and justification."""

    def __init__(
        self,
        netlist: Netlist,
        fault: StuckAtFault | None,
        max_backtracks: int,
    ) -> None:
        self.netlist = netlist
        self.fault = fault
        self.max_backtracks = max_backtracks
        self.assignment: dict[str, int] = {}
        self.decisions: list[_Decision] = []
        self.backtracks = 0
        self.good: dict[str, int] = {}
        self.faulty: dict[str, int] = {}

    # -- simulation ----------------------------------------------------

    def imply(self) -> None:
        self.good = simulate3(self.netlist, self.assignment)
        if self.fault is not None:
            self.faulty = simulate3(
                self.netlist,
                self.assignment,
                forced={self.fault.net: self.fault.value},
            )

    # -- fault-detection status -----------------------------------------

    def detected(self) -> bool:
        return any(
            _difference(self.good[po], self.faulty[po])
            for po in self.netlist.outputs
        )

    def activation_impossible(self) -> bool:
        """The fault site already carries the stuck value in the good
        circuit — no assignment extension can activate it."""
        site = self.good[self.fault.net]
        return site == self.fault.value

    def d_frontier(self) -> list[str]:
        """Gates with a difference on an input but not on the output."""
        frontier = []
        for gate in self.netlist.topological_order():
            output_good = self.good[gate.output]
            output_faulty = self.faulty[gate.output]
            if _difference(output_good, output_faulty):
                continue
            if output_good != DC and output_faulty != DC:
                continue  # resolved equal: difference is blocked here
            if any(
                _difference(self.good[s], self.faulty[s]) for s in gate.inputs
            ):
                frontier.append(gate.output)
        return frontier

    def x_path_exists(self, frontier: list[str]) -> bool:
        """Some PO reachable from the frontier through unresolved nets."""
        unresolved = {
            net
            for net in self.netlist.all_nets()
            if self.good[net] == DC or self.faulty[net] == DC
        }
        outputs = set(self.netlist.outputs)
        seen = set(frontier)
        stack = list(frontier)
        while stack:
            net = stack.pop()
            if net in outputs:
                return True
            for sink in self.netlist.fanout(net):
                if sink in unresolved and sink not in seen:
                    seen.add(sink)
                    stack.append(sink)
        return False

    # -- objective and backtrace ----------------------------------------

    def fault_objective(self) -> tuple[str, int] | None:
        """Objective to work toward detecting the fault."""
        if self.good[self.fault.net] == DC:
            return (self.fault.net, 1 - self.fault.value)
        frontier = self.d_frontier()
        if not frontier or not self.x_path_exists(frontier):
            return None
        gate = self.netlist.gates[frontier[0]]
        controlling = gate.gate_type.controlling_value
        for source in gate.inputs:
            if self.good[source] == DC or self.faulty[source] == DC:
                if controlling is not None:
                    return (source, 1 - controlling)
                return (source, 0)  # XOR-family: any specified value
        return None

    def backtrace(self, net: str, value: int) -> tuple[str, int] | None:
        """Walk the objective back to an unassigned primary input."""
        current, target = net, value
        for _ in range(self.netlist.n_gates + len(self.netlist.inputs) + 1):
            if current in self.netlist.gates:
                gate = self.netlist.gates[current]
                current, target = self._backtrace_through(gate, target)
                if current is None:
                    return None
            else:  # primary input
                if current in self.assignment:
                    return None  # already decided: objective unreachable this way
                return (current, target)
        return None

    def _backtrace_through(self, gate, target: int):
        gate_type = gate.gate_type
        if gate_type in (GateType.NOT, GateType.NAND, GateType.NOR):
            target = 1 - target
        if gate_type in (GateType.XOR, GateType.XNOR):
            # Heuristic: pick an X input; required value = target xor
            # parity of the other, already-specified inputs.
            parity = 1 if gate_type is GateType.XNOR else 0
            chosen = None
            for source in gate.inputs:
                if self.good[source] == DC and chosen is None:
                    chosen = source
                elif self.good[source] != DC:
                    parity ^= self.good[source]
            if chosen is None:
                return None, target
            return chosen, target ^ parity
        controlling = gate_type.controlling_value
        easiest = None
        for source in gate.inputs:
            if self.good[source] == DC:
                easiest = source
                break
        if easiest is None:
            return None, target
        if controlling is None:  # NOT/BUF
            return easiest, target
        if target == controlling:
            return easiest, controlling  # one controlling input suffices
        return easiest, 1 - controlling  # all inputs non-controlling

    # -- decision stack ---------------------------------------------------

    def decide(self, pi: str, value: int) -> None:
        self.decisions.append(_Decision(pi, value))
        self.assignment[pi] = value

    def backtrack(self) -> bool:
        """Flip the deepest unflipped decision; False when exhausted."""
        self.backtracks += 1
        while self.decisions:
            decision = self.decisions[-1]
            if decision.flipped:
                self.decisions.pop()
                del self.assignment[decision.pi]
            else:
                decision.flipped = True
                decision.value = 1 - decision.value
                self.assignment[decision.pi] = decision.value
                return True
        return False


def podem(
    netlist: Netlist,
    fault: StuckAtFault,
    max_backtracks: int = 1000,
) -> PodemResult:
    """Generate a test cube for ``fault``, or prove it untestable.

    >>> from ..circuits.library import load_circuit
    >>> result = podem(load_circuit("c17"), StuckAtFault("G22", 0))
    >>> result.detected
    True
    """
    if fault.net not in set(netlist.all_nets()):
        raise ValueError(f"fault site {fault.net!r} not in netlist")
    search = _PodemSearch(netlist, fault, max_backtracks)
    while True:
        search.imply()
        if search.detected():
            return PodemResult(
                status="detected",
                cube=dict(search.assignment),
                backtracks=search.backtracks,
            )
        objective = None
        if not search.activation_impossible():
            objective = search.fault_objective()
        target = None
        if objective is not None:
            target = search.backtrace(*objective)
        if target is not None:
            search.decide(*target)
            continue
        # Dead end: no objective or backtrace blocked.
        if search.backtracks >= max_backtracks:
            return PodemResult(status="aborted", backtracks=search.backtracks)
        if not search.backtrack():
            return PodemResult(status="untestable", backtracks=search.backtracks)


def justify(
    netlist: Netlist,
    requirements: dict[str, int],
    max_backtracks: int = 1000,
) -> dict[str, int] | None:
    """Find a PI cube making every required net take its required value.

    Returns the partial PI assignment (unlisted PIs are don't-cares),
    or None when the requirements are unsatisfiable or the backtrack
    limit is hit.  Used by the path-delay generator to justify the
    per-frame side-input constraints.

    >>> from ..circuits.library import load_circuit
    >>> cube = justify(load_circuit("c17"), {"G10": 0})
    >>> cube["G1"], cube["G3"]
    (1, 1)
    """
    for net, value in requirements.items():
        if value not in (0, 1):
            raise ValueError(f"requirement {net}={value} must be 0 or 1")
        if net not in set(netlist.all_nets()):
            raise ValueError(f"required net {net!r} not in netlist")
    search = _PodemSearch(netlist, fault=None, max_backtracks=max_backtracks)
    while True:
        search.good = simulate3(netlist, search.assignment)
        conflict = any(
            search.good[net] != DC and search.good[net] != value
            for net, value in requirements.items()
        )
        unmet = [
            (net, value)
            for net, value in sorted(requirements.items())
            if search.good[net] == DC
        ]
        if not conflict and not unmet:
            return dict(search.assignment)
        target = None
        if not conflict:
            target = search.backtrace(*unmet[0])
        if target is not None:
            search.decide(*target)
            continue
        if search.backtracks >= max_backtracks:
            return None
        if not search.backtrack():
            return None

"""Single stuck-at fault model and structural equivalence collapsing.

The fault universe is two faults (stuck-at-0, stuck-at-1) per net.
Structural equivalence collapsing merges faults that every test
detects together — e.g. any input of an AND gate stuck-at-0 is
equivalent to its output stuck-at-0 — via union-find.  Merging across
a gate is only valid when the input net feeds that gate alone
(fanout-free), the textbook condition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.netlist import GateType, Netlist

__all__ = ["StuckAtFault", "full_fault_list", "collapse_faults"]


@dataclass(frozen=True, order=True)
class StuckAtFault:
    """A single stuck-at fault: ``net`` permanently at ``value``."""

    net: str
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0 or 1, got {self.value}")

    def __str__(self) -> str:
        return f"{self.net} s-a-{self.value}"


def full_fault_list(netlist: Netlist) -> list[StuckAtFault]:
    """Both stuck-at faults on every net, in deterministic order.

    >>> from ..circuits.library import load_circuit
    >>> len(full_fault_list(load_circuit("c17")))  # 11 nets x 2
    22
    """
    return [
        StuckAtFault(net, value)
        for net in netlist.all_nets()
        for value in (0, 1)
    ]


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict = {}

    def find(self, item):
        parent = self._parent.setdefault(item, item)
        if parent != item:
            self._parent[item] = self.find(parent)
        return self._parent[item]

    def union(self, a, b) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a


# For a gate with controlling value c and inversion i, an input
# stuck-at-c is equivalent to the output stuck-at (c XOR i).
_GATE_EQUIVALENCE: dict[GateType, tuple[int, int]] = {
    GateType.AND: (0, 0),
    GateType.NAND: (0, 1),
    GateType.OR: (1, 1),
    GateType.NOR: (1, 0),
}


def collapse_faults(netlist: Netlist) -> list[StuckAtFault]:
    """Equivalence-collapsed fault list (one representative per class).

    Rules applied (input net must be fanout-free):

    * AND:  in s-a-0 ≡ out s-a-0      * NAND: in s-a-0 ≡ out s-a-1
    * OR:   in s-a-1 ≡ out s-a-1      * NOR:  in s-a-1 ≡ out s-a-0
    * NOT:  in s-a-v ≡ out s-a-(1-v)  * BUF:  in s-a-v ≡ out s-a-v

    Representatives are chosen deterministically (smallest net name,
    then value), so results are stable across runs.

    >>> from ..circuits.library import load_circuit
    >>> len(collapse_faults(load_circuit("c17")))
    16
    """
    union = _UnionFind()
    for gate in netlist.topological_order():
        for source in gate.inputs:
            if len(netlist.fanout(source)) != 1:
                continue  # fanout stems break equivalence
            if gate.gate_type in _GATE_EQUIVALENCE:
                in_value, out_value = _GATE_EQUIVALENCE[gate.gate_type]
                union.union((source, in_value), (gate.output, out_value))
            elif gate.gate_type is GateType.NOT:
                union.union((source, 0), (gate.output, 1))
                union.union((source, 1), (gate.output, 0))
            elif gate.gate_type is GateType.BUF:
                union.union((source, 0), (gate.output, 0))
                union.union((source, 1), (gate.output, 1))
            # XOR/XNOR inputs are never equivalent to the output.
    classes: dict[tuple, tuple] = {}
    for fault in full_fault_list(netlist):
        root = union.find((fault.net, fault.value))
        key = (fault.net, fault.value)
        best = classes.get(root)
        if best is None or key < best:
            classes[root] = key
    return sorted(StuckAtFault(net, value) for net, value in classes.values())

"""ATPG substrate: stuck-at and path-delay test generation."""

from .compaction import compact_test_set, cubes_compatible, merge_cubes
from .fault_sim import detects, fault_coverage, fault_simulate
from .faults import StuckAtFault, collapse_faults, full_fault_list
from .path_delay import (
    PathDelayResult,
    RobustTest,
    Transition,
    generate_path_delay_tests,
    generate_robust_test,
    is_robust_test,
    robust_requirements,
)
from .podem import PodemResult, justify, podem
from .relax import relax_cube, relax_test_set
from .stuck_at import StuckAtResult, generate_stuck_at_tests

__all__ = [
    "compact_test_set",
    "cubes_compatible",
    "merge_cubes",
    "detects",
    "fault_coverage",
    "fault_simulate",
    "StuckAtFault",
    "collapse_faults",
    "full_fault_list",
    "PathDelayResult",
    "RobustTest",
    "Transition",
    "generate_path_delay_tests",
    "generate_robust_test",
    "is_robust_test",
    "robust_requirements",
    "PodemResult",
    "justify",
    "podem",
    "relax_cube",
    "relax_test_set",
    "StuckAtResult",
    "generate_stuck_at_tests",
]

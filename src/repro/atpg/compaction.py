"""Static test-set compaction (the thing the paper's inputs do NOT do).

The paper deliberately compresses *uncompacted* test sets: compaction
merges compatible cubes, which shrinks the pattern count but destroys
don't-cares — and code-based compression feeds on don't-cares.  This
module implements greedy static compaction so the trade-off can be
measured (see ``benchmarks/bench_compaction.py``): compaction reduces
``T·n`` up front, compression reduces transferred bits; the
interesting question is the product.

Two cubes are *compatible* when no position pairs a specified 0 with
a specified 1; their merge specifies the union of their care bits.
Greedy first-fit merging preserves fault coverage by construction
(every original cube is contained in some merged cube).
"""

from __future__ import annotations

import numpy as np

from ..core.trits import DC
from ..testdata.test_set import TestSet

__all__ = ["cubes_compatible", "merge_cubes", "compact_test_set"]


def cubes_compatible(first: np.ndarray, second: np.ndarray) -> bool:
    """True iff no position has specified, conflicting values.

    >>> import numpy as np
    >>> a = np.asarray([0, 2, 1], dtype=np.int8)
    >>> b = np.asarray([0, 1, 2], dtype=np.int8)
    >>> cubes_compatible(a, b)
    True
    """
    both_specified = (first != DC) & (second != DC)
    return bool((first[both_specified] == second[both_specified]).all())


def merge_cubes(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Union of two compatible cubes (specified bits win over X)."""
    if not cubes_compatible(first, second):
        raise ValueError("cannot merge incompatible cubes")
    return np.where(first != DC, first, second).astype(np.int8)


def compact_test_set(test_set: TestSet) -> TestSet:
    """Greedy first-fit static compaction.

    Cubes are processed in order; each is merged into the first
    existing merged cube it is compatible with, or starts a new one.
    The result detects every fault the input detects (each input cube
    is covered by its merged cube), with fewer patterns and a lower X
    density.

    >>> ts = TestSet.from_strings("t", ["1X0", "10X", "0XX"])
    >>> compacted = compact_test_set(ts)
    >>> compacted.n_patterns
    2
    """
    merged: list[np.ndarray] = []
    for row in range(test_set.n_patterns):
        cube = test_set.patterns[row]
        for index, existing in enumerate(merged):
            if cubes_compatible(existing, cube):
                merged[index] = merge_cubes(existing, cube)
                break
        else:
            merged.append(cube.copy())
    return TestSet(
        name=f"{test_set.name}-compacted",
        patterns=np.stack(merged),
    )

"""X-maximizing test relaxation (Kajihara/Miyase [30] stand-in).

The paper's stuck-at test sets come from "the method from [30]" —
identification of don't-care inputs of given test patterns.  This
module implements the same *effect* with a greedy relaxation: for each
pattern, try turning each specified bit back into an X and keep the
change whenever the pattern still detects every fault it is
responsible for.  Applied to a fully- or partially-specified test set
it monotonically increases the X density without losing coverage.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..circuits.netlist import Netlist
from ..testdata.test_set import TestSet
from ..core.trits import DC
from .fault_sim import fault_simulate
from .faults import StuckAtFault

__all__ = ["relax_cube", "relax_test_set"]


def relax_cube(
    netlist: Netlist,
    cube: Mapping[str, int],
    responsible_faults: Sequence[StuckAtFault],
) -> dict[str, int]:
    """Drop as many assignments from ``cube`` as possible while it
    still detects every fault in ``responsible_faults``.

    Bits are tried in deterministic (sorted PI name) order; the result
    is a subset of the original assignments.
    """
    required = set(responsible_faults)
    if len(set(fault_simulate(netlist, cube, required))) != len(required):
        raise ValueError("cube does not detect its responsible faults")
    relaxed = dict(cube)
    for pi in sorted(cube):
        trial = dict(relaxed)
        del trial[pi]
        if len(set(fault_simulate(netlist, trial, required))) == len(required):
            relaxed = trial
    return relaxed


def relax_test_set(
    netlist: Netlist,
    test_set: TestSet,
    faults: Sequence[StuckAtFault],
) -> TestSet:
    """Relax every pattern of ``test_set`` against ``faults``.

    Fault responsibility is assigned greedily in pattern order (each
    fault belongs to the first pattern that detects it), mirroring how
    fault-dropping flows attribute detection.  Patterns that detect
    nothing are kept unchanged (their bits are all candidates, but
    with no responsibility every bit would relax away; instead they
    are left intact so the test set's pattern count is preserved).
    """
    remaining = list(faults)
    responsibility: list[list[StuckAtFault]] = []
    cubes: list[dict[str, int]] = []
    for row in range(test_set.n_patterns):
        cube = {
            net: int(test_set.patterns[row, col])
            for col, net in enumerate(netlist.inputs)
            if test_set.patterns[row, col] != DC
        }
        cubes.append(cube)
        caught = fault_simulate(netlist, cube, remaining)
        responsibility.append(caught)
        caught_set = set(caught)
        remaining = [f for f in remaining if f not in caught_set]
    relaxed_cubes = []
    for cube, responsible in zip(cubes, responsibility):
        if responsible:
            relaxed_cubes.append(relax_cube(netlist, cube, responsible))
        else:
            relaxed_cubes.append(cube)
    return TestSet.from_cubes(
        f"{test_set.name}-relaxed", relaxed_cubes, netlist.inputs
    )

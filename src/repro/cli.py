"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``      Reproduce Table 1 (stuck-at); quick subset by default.
``table2``      Reproduce Table 2 (path delay); quick subset by default.
``compress``    Compress a test-set file (one ``0/1/X`` pattern per line).
``atpg``        Generate a stuck-at test set for a library circuit and
                compress it with all methods.
``ablate``      Run one of the ablation studies on a calibrated test set.
``tune``        Probe this machine's kernel/cache crossovers and write
                a tuning profile for the other commands' ``--profile``.
``kernels``     List the covering-kernel backends with availability
                (e.g. ``native: unavailable — no C compiler found``)
                and, with ``--shape C,D,L,K``, the ``auto`` pick.
``cache``       Inspect or clear the on-disk caches — persisted MV
                caches and native kernel builds
                (``list``/``info``/``clear``).
``serve``       Run the long-lived compression daemon: warm per-table
                state, cross-request batching, ``/compress`` ``/fitness``
                ``/tables`` ``/healthz`` ``/stats`` (see docs/serve.md).
``request``     Execute one serve-protocol JSON request offline and
                print the canonical response — the byte-parity
                reference for served responses.

Examples
--------
::

    python -m repro table1 --circuits s349 s298 --seed 1
    python -m repro table1 --full --budget paper --jobs 0
    python -m repro table1 --full --budget paper --jobs 0 --resume
    python -m repro compress my_tests.txt --k 12 --l 64
    python -m repro atpg c17
    python -m repro ablate kl --circuit s349 --jobs 4
    python -m repro tune --quick           # then:
    python -m repro table1 --seed 1 --profile ~/.cache/repro/tuning_profile.json

Every command takes ``--jobs N`` (1 = serial, 0 = all CPU cores) and
``--backend {process,thread}``; results are independent of both — the
same seed gives the same table at any job count.  ``--profile PATH``
applies a machine-measured tuning profile (written by ``repro tune``)
to every hot-path threshold; like ``--kernel``, ``--mv-cache-size``,
``--mv-cache-policy`` and ``--mv-cache-persist``, it only moves the
wall clock — seeded output is byte-identical with or without it.

Fault tolerance: ``--retries N`` re-attempts transient failures
(worker crashes, hangs cut short by ``--task-timeout SECONDS``) with
deterministic backoff, and ``--resume`` (table/ablate/report
commands) journals every completed EA run under ``REPRO_CACHE_DIR``
so an interrupted sweep restarted with ``--resume`` skips work it
already finished.  None of these can change seeded output — a
retried or resumed table is byte-identical to an uninterrupted one;
absorbed faults are summarized on stderr.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.cache import DEFAULT_POLICY, POLICY_CHOICES
from .core.compressor import compress_blocks
from .core.config import CompressionConfig, EAParameters
from .core.fitness import DEFAULT_MV_CACHE_SIZE
from .core.kernels import KERNEL_CHOICES
from .core.nine_c import compress_nine_c
from .core.optimizer import EAMVOptimizer
from .parallel import ExecutionBackend, RetryPolicy, resolve_backend
from .testdata.calibration import calibrate_spec
from .testdata.registry import TABLE1_STUCK_AT, row_by_name
from .testdata.synthetic import SyntheticSpec
from .testdata.test_set import TestSet
from .tuning.profile import (
    TuningProfile,
    default_profile_path,
    load_profile_or_none,
    set_active_profile,
)

__all__ = ["main"]


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """The global parallel-execution knobs, shared by every command."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel workers: 1 = serial (default), 0 = all CPU cores",
    )
    parser.add_argument(
        "--backend",
        choices=("process", "thread"),
        default="process",
        help="pool flavor used when --jobs asks for parallelism",
    )
    parser.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default="auto",
        help=(
            "covering kernel pricing the EA fitness (auto picks per "
            "workload shape; all kernels give bit-identical results)"
        ),
    )
    parser.add_argument(
        "--mv-cache-size",
        type=int,
        default=DEFAULT_MV_CACHE_SIZE,
        metavar="N",
        help=(
            "per-run MV match-column cache capacity behind the "
            "unique-MV dedup path of the batched fitness; 0 disables "
            "the cache and prices through the fused per-generation "
            "kernels (results are byte-identical either way, only "
            f"the wall clock moves; default {DEFAULT_MV_CACHE_SIZE})"
        ),
    )
    parser.add_argument(
        "--mv-cache-policy",
        choices=POLICY_CHOICES,
        default=None,
        help=(
            "eviction policy of the MV match-column cache; unset "
            "defers to the tuning profile's choice and then to the "
            f"default ({DEFAULT_POLICY}); every policy prices "
            "byte-identically, only hit rates differ"
        ),
    )
    parser.add_argument(
        "--mv-cache-persist",
        action=argparse.BooleanOptionalAction,
        default=False,
        help=(
            "save the MV cache contents under REPRO_CACHE_DIR after "
            "each run and warm-start later runs on the same block "
            "table and kernel from disk; a corrupt or mismatched "
            "file is ignored with a warning (cold start) and seeded "
            "results are byte-identical either way (default off)"
        ),
    )
    parser.add_argument(
        "--mv-feedback",
        choices=("auto", "on", "off"),
        default="auto",
        help=(
            "runtime MV-cache engagement monitor: auto/on attach a "
            "hit-rate monitor that can disengage the dedup path "
            "mid-run and re-probe it later, off keeps the static "
            "shape decision only (results are byte-identical either "
            "way; default auto)"
        ),
    )
    parser.add_argument(
        "--profile",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "tuning profile written by `repro tune`; its "
            "machine-measured thresholds replace the shipped defaults "
            "for kernel auto-selection, MV-cache engagement, bitpack "
            "shard sizing and Huffman batching (ignored with a "
            "warning on version/fingerprint mismatch; results are "
            "byte-identical with or without it)"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help=(
            "re-attempts granted to each work unit after a transient "
            "failure (worker crash, timeout, injected fault) with "
            "deterministic exponential backoff; 0 disables retries; "
            "seeded results are byte-identical regardless (default 1)"
        ),
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-attempt wall-clock budget on pool backends: an "
            "overdue work unit is abandoned and (given --retries) "
            "re-run on a fresh slot; ignored by the serial backend"
        ),
    )


def _resolve_backend(arguments: argparse.Namespace) -> ExecutionBackend:
    return resolve_backend(arguments.jobs, arguments.backend)


def _resolve_tuning(arguments: argparse.Namespace) -> TuningProfile | None:
    """Load ``--profile`` (if any) and install it process-wide.

    A missing, malformed, version-mismatched or wrong-machine profile
    falls back to the shipped defaults with a warning on stderr — a
    stale profile must never break a run.  The returned profile is
    also threaded into every ``CompressionConfig`` so process-pool
    workers (which don't inherit this process's active profile) tune
    identically.
    """
    if arguments.profile is None:
        # Clear any profile a previous main() call installed in this
        # process — a profile-less invocation means shipped defaults.
        set_active_profile(None)
        return None
    profile = load_profile_or_none(
        arguments.profile,
        warn=lambda reason: print(
            f"warning: ignoring tuning profile: {reason}", file=sys.stderr
        ),
    )
    set_active_profile(profile)
    return profile


def _resolve_mv_feedback(arguments: argparse.Namespace) -> bool | None:
    return {"auto": None, "on": True, "off": False}[arguments.mv_feedback]


def _resolve_fault_tolerance(
    arguments: argparse.Namespace,
) -> tuple[RetryPolicy | None, float | None]:
    """``(retry, timeout)`` from ``--retries``/``--task-timeout``."""
    if arguments.retries < 0:
        raise SystemExit(f"--retries must be >= 0, got {arguments.retries}")
    retry = (
        RetryPolicy(max_attempts=arguments.retries + 1)
        if arguments.retries > 0
        else None
    )
    return retry, arguments.task_timeout


def _resolve_checkpoint(arguments: argparse.Namespace):
    """A ``CheckpointStore`` when ``--resume`` is on, else ``None``."""
    if not getattr(arguments, "resume", False):
        return None
    from .experiments import CheckpointStore

    return CheckpointStore.default()


def _print_fault_summary(stats: dict[str, int]) -> None:
    """Absorbed-fault accounting on stderr (stdout stays byte-stable)."""
    eventful = {
        key: value
        for key, value in stats.items()
        if value and key != "attempts"
    }
    if not eventful:
        return
    rendered = " ".join(f"{key}={value}" for key, value in eventful.items())
    print(f"fault tolerance: {rendered}", file=sys.stderr)


def _print_mv_cache_summary(result, persist: bool) -> None:
    """Warm/cold cache accounting on stderr (stdout stays byte-stable).

    The warm line is the hook the CI smoke step greps for: a second
    ``--mv-cache-persist`` run over the same inputs must report a warm
    start.
    """
    if not persist:
        return
    warm = sum(run.ea_result.mv_cache_warm_loaded for run in result.runs)
    if warm:
        print(
            f"mv cache: warm start ({warm} persisted entries loaded "
            f"across {len(result.runs)} runs)",
            file=sys.stderr,
        )
    else:
        print("mv cache: cold start (no usable persisted cache)",
              file=sys.stderr)


def _add_table_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--full", action="store_true", help="run every circuit in the table"
    )
    parser.add_argument(
        "--circuits", nargs="*", default=None, help="explicit circuit subset"
    )
    parser.add_argument(
        "--budget",
        choices=("quick", "paper"),
        default="quick",
        help="EA effort per row (paper = 5 runs, 500-gen stagnation)",
    )
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "journal completed EA runs under REPRO_CACHE_DIR and skip "
            "work already journaled by a previous --resume run of the "
            "same seeded sweep (byte-identical output either way)"
        ),
    )
    _add_execution_arguments(parser)


def _table_command(arguments: argparse.Namespace, which: int) -> int:
    tuning = _resolve_tuning(arguments)
    mv_feedback = _resolve_mv_feedback(arguments)
    from .experiments import (
        PAPER,
        QUICK,
        build_table1,
        build_table2,
        format_table,
        shape_check_markdown,
    )

    budget = PAPER if arguments.budget == "paper" else QUICK
    builder = build_table1 if which == 1 else build_table2
    if arguments.circuits:
        circuits = arguments.circuits
    elif arguments.full:
        circuits = None
    else:
        from .experiments import DEFAULT_QUICK_TABLE1, DEFAULT_QUICK_TABLE2

        circuits = DEFAULT_QUICK_TABLE1 if which == 1 else DEFAULT_QUICK_TABLE2
    retry, timeout = _resolve_fault_tolerance(arguments)
    result = builder(
        circuits=circuits,
        budget=budget,
        seed=arguments.seed,
        progress=print,
        backend=_resolve_backend(arguments),
        kernel=arguments.kernel,
        mv_cache_size=arguments.mv_cache_size,
        tuning=tuning,
        mv_feedback=mv_feedback,
        mv_cache_policy=arguments.mv_cache_policy,
        mv_cache_persist=arguments.mv_cache_persist,
        retry=retry,
        timeout=timeout,
        checkpoint=_resolve_checkpoint(arguments),
    )
    print()
    print(format_table(result))
    print()
    print(shape_check_markdown(result))
    _print_fault_summary(result.fault_stats())
    return 0


def _print_pareto_front(blocks, config, arguments: argparse.Namespace) -> int:
    """Run the NSGA-II mode and print the merged Pareto front."""
    from .experiments import (
        OBJECTIVE_SETS,
        build_pareto_front,
        pareto_markdown,
    )

    retry, timeout = _resolve_fault_tolerance(arguments)
    result = build_pareto_front(
        blocks,
        config,
        OBJECTIVE_SETS[arguments.objectives],
        seed=arguments.seed,
        backend=_resolve_backend(arguments),
        retry=retry,
        timeout=timeout,
    )
    print(pareto_markdown(result), end="")
    return 0


def _compress_command(arguments: argparse.Namespace) -> int:
    tuning = _resolve_tuning(arguments)
    mv_feedback = _resolve_mv_feedback(arguments)
    lines = [
        line.strip()
        for line in Path(arguments.file).read_text().splitlines()
        if line.strip() and not line.startswith("#")
    ]
    test_set = TestSet.from_strings(Path(arguments.file).stem, lines)
    print(f"loaded {test_set!r}")
    blocks8 = test_set.blocks(8)
    print(f"9C     rate: {compress_nine_c(blocks8).rate:6.2f}%")
    print(
        f"9C+HC  rate: {compress_nine_c(blocks8, use_huffman=True).rate:6.2f}%"
    )
    config = CompressionConfig(
        block_length=arguments.k,
        n_vectors=arguments.l,
        runs=arguments.runs,
        kernel=arguments.kernel,
        mv_cache_size=arguments.mv_cache_size,
        tuning=tuning,
        mv_feedback=mv_feedback,
        mv_cache_policy=arguments.mv_cache_policy,
        mv_cache_persist=arguments.mv_cache_persist,
        ea=EAParameters(
            stagnation_limit=arguments.stagnation,
            max_evaluations=arguments.max_evaluations,
        ),
    )
    if arguments.objectives != "rate":
        return _print_pareto_front(
            test_set.blocks(arguments.k), config, arguments
        )
    optimizer = EAMVOptimizer(
        config, seed=arguments.seed, backend=_resolve_backend(arguments)
    )
    retry, timeout = _resolve_fault_tolerance(arguments)
    result = optimizer.optimize(
        test_set.blocks(arguments.k), retry=retry, timeout=timeout
    )
    _print_mv_cache_summary(result, arguments.mv_cache_persist)
    print(
        f"EA     rate: {result.mean_rate:6.2f}% mean, "
        f"{result.best_rate:6.2f}% best over {config.runs} runs"
    )
    compressed = compress_blocks(
        test_set.blocks(arguments.k), result.best_mv_set
    )
    print(f"best MV usage: {compressed.mv_usage()}")
    return 0


def _atpg_command(arguments: argparse.Namespace) -> int:
    tuning = _resolve_tuning(arguments)
    mv_feedback = _resolve_mv_feedback(arguments)
    from .atpg.stuck_at import generate_stuck_at_tests
    from .circuits.library import load_circuit

    netlist = load_circuit(arguments.circuit)
    result = generate_stuck_at_tests(netlist)
    test_set = result.test_set
    print(f"{netlist!r}")
    print(
        f"test set: {test_set.n_patterns} patterns x {test_set.n_inputs} "
        f"inputs, X density {test_set.x_density():.2f}, "
        f"fault coverage {result.fault_coverage:.1%}"
    )
    blocks8 = test_set.blocks(8)
    print(f"9C     rate: {compress_nine_c(blocks8).rate:6.2f}%")
    print(
        f"9C+HC  rate: {compress_nine_c(blocks8, use_huffman=True).rate:6.2f}%"
    )
    config = CompressionConfig(
        block_length=arguments.k,
        n_vectors=arguments.l,
        runs=3,
        kernel=arguments.kernel,
        mv_cache_size=arguments.mv_cache_size,
        tuning=tuning,
        mv_feedback=mv_feedback,
        mv_cache_policy=arguments.mv_cache_policy,
        mv_cache_persist=arguments.mv_cache_persist,
        ea=EAParameters(stagnation_limit=30, max_evaluations=1200),
    )
    if arguments.objectives != "rate":
        return _print_pareto_front(
            test_set.blocks(arguments.k), config, arguments
        )
    retry, timeout = _resolve_fault_tolerance(arguments)
    result = EAMVOptimizer(
        config, seed=arguments.seed, backend=_resolve_backend(arguments)
    ).optimize(test_set.blocks(arguments.k), retry=retry, timeout=timeout)
    _print_mv_cache_summary(result, arguments.mv_cache_persist)
    print(
        f"EA     rate: {result.mean_rate:6.2f}% mean, "
        f"{result.best_rate:6.2f}% best"
    )
    return 0


def _calibrated_test_set(circuit: str, seed: int) -> TestSet:
    row = row_by_name(TABLE1_STUCK_AT, circuit)
    spec = SyntheticSpec(
        name=row.circuit,
        n_patterns=row.n_patterns,
        pattern_bits=row.pattern_bits,
        care_density=0.5,
        seed=seed,
    )
    return calibrate_spec(spec, row.published["9C"]).test_set


def _ablate_command(arguments: argparse.Namespace) -> int:
    tuning = _resolve_tuning(arguments)
    mv_feedback = _resolve_mv_feedback(arguments)
    from .experiments import (
        ablation_markdown,
        decoder_cost_study,
        kl_sweep,
        operator_sweep,
        seeding_ablation,
        subsumption_ablation,
    )

    test_set = _calibrated_test_set(arguments.circuit, arguments.seed)
    backend = _resolve_backend(arguments)
    retry, timeout = _resolve_fault_tolerance(arguments)
    checkpoint = _resolve_checkpoint(arguments)
    if arguments.study == "kl":
        points = kl_sweep(
            test_set, seed=arguments.seed, backend=backend,
            kernel=arguments.kernel,
            mv_cache_size=arguments.mv_cache_size,
            tuning=tuning,
            mv_feedback=mv_feedback,
            mv_cache_policy=arguments.mv_cache_policy,
            mv_cache_persist=arguments.mv_cache_persist,
            retry=retry, timeout=timeout, checkpoint=checkpoint,
        )
        print(ablation_markdown(points, f"K/L sweep on {arguments.circuit}"))
    elif arguments.study == "operators":
        points = operator_sweep(
            test_set, seed=arguments.seed, backend=backend,
            kernel=arguments.kernel,
            mv_cache_size=arguments.mv_cache_size,
            tuning=tuning,
            mv_feedback=mv_feedback,
            mv_cache_policy=arguments.mv_cache_policy,
            mv_cache_persist=arguments.mv_cache_persist,
            retry=retry, timeout=timeout, checkpoint=checkpoint,
        )
        print(
            ablation_markdown(
                points, f"Operator probabilities on {arguments.circuit}"
            )
        )
    elif arguments.study == "seeding":
        points = seeding_ablation(
            test_set, seed=arguments.seed, backend=backend,
            kernel=arguments.kernel,
            mv_cache_size=arguments.mv_cache_size,
            tuning=tuning,
            mv_feedback=mv_feedback,
            mv_cache_policy=arguments.mv_cache_policy,
            mv_cache_persist=arguments.mv_cache_persist,
            retry=retry, timeout=timeout, checkpoint=checkpoint,
        )
        print(ablation_markdown(points, f"9C seeding on {arguments.circuit}"))
    elif arguments.study == "subsumption":
        points = subsumption_ablation(
            test_set, seed=arguments.seed, backend=backend,
            kernel=arguments.kernel,
            mv_cache_size=arguments.mv_cache_size,
            tuning=tuning,
            mv_feedback=mv_feedback,
            mv_cache_policy=arguments.mv_cache_policy,
            mv_cache_persist=arguments.mv_cache_persist,
            retry=retry, timeout=timeout,
        )
        print(
            ablation_markdown(
                points, f"Subsumption encoding on {arguments.circuit}"
            )
        )
    else:  # decoder
        costs = decoder_cost_study(
            test_set, seed=arguments.seed, backend=backend,
            kernel=arguments.kernel,
            mv_cache_size=arguments.mv_cache_size,
            tuning=tuning,
            mv_feedback=mv_feedback,
            mv_cache_policy=arguments.mv_cache_policy,
            mv_cache_persist=arguments.mv_cache_persist,
        )
        for method, values in costs.items():
            print(
                f"{method:6s} rate {values['rate']:6.2f}%  payload "
                f"{int(values['payload_bits'])} bits  code table "
                f"{int(values['code_table_bits'])} bits"
            )
    return 0


def _report_command(arguments: argparse.Namespace) -> int:
    tuning = _resolve_tuning(arguments)
    mv_feedback = _resolve_mv_feedback(arguments)
    from .experiments import (
        PAPER,
        QUICK,
        build_table1,
        build_table2,
        experiments_markdown,
        kl_sweep,
        operator_sweep,
        seeding_ablation,
        subsumption_ablation,
    )

    budget = PAPER if arguments.budget == "paper" else QUICK
    from .experiments import DEFAULT_QUICK_TABLE1, DEFAULT_QUICK_TABLE2

    circuits1 = None if arguments.full else DEFAULT_QUICK_TABLE1
    circuits2 = None if arguments.full else DEFAULT_QUICK_TABLE2
    backend = _resolve_backend(arguments)
    retry, timeout = _resolve_fault_tolerance(arguments)
    checkpoint = _resolve_checkpoint(arguments)
    print("building Table 1 ...")
    table1 = build_table1(
        circuits=circuits1,
        budget=budget,
        seed=arguments.seed,
        progress=print,
        backend=backend,
        kernel=arguments.kernel,
        mv_cache_size=arguments.mv_cache_size,
        tuning=tuning,
        mv_feedback=mv_feedback,
        mv_cache_policy=arguments.mv_cache_policy,
        mv_cache_persist=arguments.mv_cache_persist,
        retry=retry, timeout=timeout, checkpoint=checkpoint,
    )
    print("building Table 2 ...")
    table2 = build_table2(
        circuits=circuits2,
        budget=budget,
        seed=arguments.seed,
        progress=print,
        backend=backend,
        kernel=arguments.kernel,
        mv_cache_size=arguments.mv_cache_size,
        tuning=tuning,
        mv_feedback=mv_feedback,
        mv_cache_policy=arguments.mv_cache_policy,
        mv_cache_persist=arguments.mv_cache_persist,
        retry=retry, timeout=timeout, checkpoint=checkpoint,
    )
    print("running ablations on s349 ...")
    test_set = _calibrated_test_set("s349", arguments.seed)
    ablations = {
        "K/L sweep (s349, source of EA-Best)": kl_sweep(
            test_set, seed=arguments.seed, backend=backend,
            kernel=arguments.kernel,
            mv_cache_size=arguments.mv_cache_size,
            tuning=tuning,
            mv_feedback=mv_feedback,
            mv_cache_policy=arguments.mv_cache_policy,
            mv_cache_persist=arguments.mv_cache_persist,
            retry=retry, timeout=timeout, checkpoint=checkpoint,
        ),
        "Operator probabilities (s349)": operator_sweep(
            test_set, seed=arguments.seed, backend=backend,
            kernel=arguments.kernel,
            mv_cache_size=arguments.mv_cache_size,
            tuning=tuning,
            mv_feedback=mv_feedback,
            mv_cache_policy=arguments.mv_cache_policy,
            mv_cache_persist=arguments.mv_cache_persist,
            retry=retry, timeout=timeout, checkpoint=checkpoint,
        ),
        "9C seeding of the initial population (s349)": seeding_ablation(
            test_set, seed=arguments.seed, backend=backend,
            kernel=arguments.kernel,
            mv_cache_size=arguments.mv_cache_size,
            tuning=tuning,
            mv_feedback=mv_feedback,
            mv_cache_policy=arguments.mv_cache_policy,
            mv_cache_persist=arguments.mv_cache_persist,
            retry=retry, timeout=timeout, checkpoint=checkpoint,
        ),
        "Subsumption-aware encoding (s349, Section 3.3)": subsumption_ablation(
            test_set, seed=arguments.seed, backend=backend,
            kernel=arguments.kernel,
            mv_cache_size=arguments.mv_cache_size,
            tuning=tuning,
            mv_feedback=mv_feedback,
            mv_cache_policy=arguments.mv_cache_policy,
            mv_cache_persist=arguments.mv_cache_persist,
            retry=retry, timeout=timeout,
        ),
    }
    _print_fault_summary(
        {
            key: table1.fault_stats().get(key, 0)
            + table2.fault_stats().get(key, 0)
            for key in set(table1.fault_stats()) | set(table2.fault_stats())
        }
    )
    document = experiments_markdown(
        table1, table2, ablations, budget_label=arguments.budget
    )
    Path(arguments.output).write_text(document)
    print(f"wrote {arguments.output}")
    return 0


def _tune_command(arguments: argparse.Namespace) -> int:
    from .tuning.probes import run_probes, tuning_summary
    from .tuning.profile import save_profile

    print(
        "probing kernel crossovers, MV-dedup break-even, shard size "
        f"and Huffman cutover ({'quick' if arguments.quick else 'full'} "
        f"mode, best of {arguments.repeats}) ..."
    )
    profile = run_probes(
        quick=arguments.quick, repeats=arguments.repeats, progress=print
    )
    path = save_profile(profile, arguments.profile)
    print(f"wrote {path}")
    print(
        "thresholds: "
        f"bitpack_min_distinct={profile.bitpack_min_distinct}  "
        f"bitpack_wide_min_distinct={profile.bitpack_wide_min_distinct}  "
        f"native_min_distinct={profile.native_min_distinct}  "
        f"native_wide_min_distinct={profile.native_wide_min_distinct}  "
        f"mv_dedup_min_genomes={profile.mv_dedup_min_genomes}  "
        f"mv_dedup_min_table={profile.mv_dedup_min_table}  "
        f"mv_dedup_min_distinct={profile.mv_dedup_min_distinct}  "
        f"bitpack_shard_size={profile.bitpack_shard_size}  "
        f"huffman_lockstep_min_rows={profile.huffman_lockstep_min_rows}  "
        f"mv_feedback_min_hit_rate={profile.mv_feedback_min_hit_rate:.2f}"
    )
    if not arguments.no_summary:
        summary = tuning_summary(profile, quick=arguments.quick)
        for row in summary:
            print(
                f"{row['workload']:>7}: default {row['default_genomes_per_second']:>9.1f}"
                f" genomes/s  tuned {row['tuned_genomes_per_second']:>9.1f}"
                f" genomes/s  (×{row['speedup_tuned_vs_default']:.2f})"
            )
        print(
            "(seeded results are byte-identical with or without the "
            "profile — only the wall clock moves)"
        )
    return 0


def _cache_command(arguments: argparse.Namespace) -> int:
    from .core.cache import describe_cache_file, mv_cache_dir
    from .core.kernels.build import describe_build_file, native_build_dir

    # Cache entries are .npz (persisted MV caches) and .so (native
    # kernel builds); .json build sidecars and stray .lock files ride
    # along on `clear` but are not listed as entries of their own.
    def entries(directory: Path) -> list[Path]:
        if not directory.is_dir():
            return []
        return sorted(directory.glob("*.npz")) + sorted(directory.glob("*.so"))

    if arguments.dir is not None:
        directories = [Path(arguments.dir)]
    else:
        directories = [mv_cache_dir(), native_build_dir()]

    if arguments.action == "list":
        for directory in directories:
            files = entries(directory)
            print(f"cache directory: {directory}")
            if not files:
                print("(empty)")
                continue
            total = 0
            for path in files:
                size = path.stat().st_size
                total += size
                print(f"{size:>12,d}  {path.name}")
            print(f"{total:>12,d}  total in {len(files)} file(s)")
        return 0
    if arguments.action == "info":
        for directory in directories:
            files = entries(directory)
            if not files:
                print(f"cache directory: {directory}")
                print("(empty)")
                continue
            for path in files:
                info = (
                    describe_cache_file(path)
                    if path.suffix == ".npz"
                    else describe_build_file(path)
                )
                print(f"{path.name}:")
                for key in sorted(info):
                    if key != "file":
                        print(f"  {key}: {info[key]}")
        return 0
    # clear
    for directory in directories:
        removed = 0
        if directory.is_dir():
            for pattern in ("*.npz", "*.so", "*.json", "*.lock"):
                for path in sorted(directory.glob(pattern)):
                    path.unlink()
                    removed += 1
        print(f"removed {removed} file(s) from {directory}")
    return 0


def _build_service(arguments: argparse.Namespace):
    """A :class:`~repro.serve.CompressionService` from the shared flags.

    One builder for ``serve`` and ``request`` is half the parity
    contract: the daemon and the offline runner resolve flags into
    identical warm-state configuration, so the same request body
    prices through identically-configured engines on both paths.
    """
    from .serve import CompressionService, WarmRegistry

    tuning = _resolve_tuning(arguments)
    retry, timeout = _resolve_fault_tolerance(arguments)
    registry = WarmRegistry(
        mv_cache_size=arguments.mv_cache_size,
        mv_cache_policy=arguments.mv_cache_policy,
        mv_cache_persist=arguments.mv_cache_persist,
        tuning=tuning,
    )
    service = CompressionService(
        registry, kernel=arguments.kernel, retry=retry
    )
    return service, timeout


def _serve_command(arguments: argparse.Namespace) -> int:
    import os
    import signal
    import threading

    from .serve import ServeDaemon

    service, timeout = _build_service(arguments)
    jobs = arguments.jobs if arguments.jobs > 0 else (os.cpu_count() or 1)
    daemon = ServeDaemon(
        service,
        host=arguments.host,
        port=arguments.port,
        jobs=jobs,
        batch_window_ms=arguments.batch_window_ms,
        max_batch=arguments.max_batch,
        max_queue=arguments.max_queue,
        request_timeout=timeout,
    )
    host, port = daemon.address

    def _drain(signum, frame) -> None:
        # shutdown() blocks until drained, and serve_forever() owns
        # this thread — hand the drain to a helper thread so the
        # accept loop can wind down underneath it.
        threading.Thread(
            target=daemon.shutdown, kwargs={"drain": True}, daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    print(
        f"repro serve: listening on http://{host}:{port} "
        f"(jobs={jobs}, batch window {arguments.batch_window_ms}ms, "
        f"max batch {arguments.max_batch}, queue {arguments.max_queue}); "
        "SIGTERM drains",
        file=sys.stderr,
    )
    daemon.serve_forever()
    print("repro serve: drained and stopped", file=sys.stderr)
    return 0


def _request_command(arguments: argparse.Namespace) -> int:
    import json

    from .serve import ProtocolError, canonical_json

    service, _ = _build_service(arguments)
    raw = (
        sys.stdin.read()
        if arguments.file == "-"
        else Path(arguments.file).read_text()
    )
    try:
        body = json.loads(raw)
    except json.JSONDecodeError as error:
        print(f"error: invalid JSON request: {error}", file=sys.stderr)
        return 1
    endpoint = arguments.endpoint
    if endpoint is None:
        if isinstance(body, dict) and "genomes" in body:
            endpoint = "fitness"
        elif isinstance(body, dict) and "seed" in body:
            endpoint = "compress"
        else:
            endpoint = "tables"
    try:
        if endpoint == "fitness":
            payload = service.run_fitness(body)
        elif endpoint == "compress":
            payload = service.run_compress(body)
        else:
            payload = service.register_table(body)
    except ProtocolError as error:
        print(f"error: {error.message}", file=sys.stderr)
        return 1
    sys.stdout.buffer.write(canonical_json(payload))
    return 0


def _kernels_command(arguments: argparse.Namespace) -> int:
    from .core.kernels import kernel_availability, select_kernel_name

    for name, reason in sorted(kernel_availability().items()):
        if reason is None:
            print(f"{name}: available")
        else:
            print(f"{name}: unavailable — {reason}")
    if arguments.shape is not None:
        try:
            c, d, l, k = (int(part) for part in arguments.shape.split(","))
        except ValueError:
            print(
                f"invalid --shape {arguments.shape!r}; expected C,D,L,K",
                file=sys.stderr,
            )
            return 2
        pick = select_kernel_name(c, d, l, k)
        print(f"auto pick for shape C={c}, D={d}, L={l}, K={k}: {pick}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Evolutionary optimization in code-based test compression",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    table1 = commands.add_parser("table1", help="reproduce Table 1")
    _add_table_arguments(table1)
    table2 = commands.add_parser("table2", help="reproduce Table 2")
    _add_table_arguments(table2)

    compress = commands.add_parser("compress", help="compress a pattern file")
    compress.add_argument("file")
    compress.add_argument("--k", type=int, default=12)
    compress.add_argument("--l", type=int, default=64)
    compress.add_argument("--runs", type=int, default=3)
    compress.add_argument("--stagnation", type=int, default=50)
    compress.add_argument("--max-evaluations", type=int, default=2000)
    compress.add_argument("--seed", type=int, default=2005)
    compress.add_argument(
        "--objectives",
        choices=("rate", "rate+area", "rate+area+time"),
        default="rate",
        help=(
            "optimize a single rate objective (default) or run the "
            "NSGA-II multi-objective mode and print the Pareto front"
        ),
    )
    _add_execution_arguments(compress)

    atpg = commands.add_parser("atpg", help="ATPG + compression demo")
    atpg.add_argument("circuit")
    atpg.add_argument("--k", type=int, default=12)
    atpg.add_argument("--l", type=int, default=64)
    atpg.add_argument("--seed", type=int, default=2005)
    atpg.add_argument(
        "--objectives",
        choices=("rate", "rate+area", "rate+area+time"),
        default="rate",
        help=(
            "optimize a single rate objective (default) or run the "
            "NSGA-II multi-objective mode and print the Pareto front"
        ),
    )
    _add_execution_arguments(atpg)

    ablate = commands.add_parser("ablate", help="run an ablation study")
    ablate.add_argument(
        "study", choices=("kl", "operators", "seeding", "subsumption", "decoder")
    )
    ablate.add_argument("--circuit", default="s349")
    ablate.add_argument("--seed", type=int, default=2005)
    ablate.add_argument(
        "--resume",
        action="store_true",
        help="journal completed EA runs and skip already-journaled work",
    )
    _add_execution_arguments(ablate)

    report = commands.add_parser(
        "report", help="regenerate EXPERIMENTS.md from measured runs"
    )
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.add_argument(
        "--budget", choices=("quick", "paper"), default="quick"
    )
    report.add_argument("--full", action="store_true")
    report.add_argument("--seed", type=int, default=2005)
    report.add_argument(
        "--resume",
        action="store_true",
        help="journal completed EA runs and skip already-journaled work",
    )
    _add_execution_arguments(report)

    tune = commands.add_parser(
        "tune",
        help=(
            "probe this machine's kernel/cache crossovers and write a "
            "tuning profile for --profile"
        ),
    )
    tune.add_argument(
        "--profile",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "where to write the profile "
            f"(default {default_profile_path()})"
        ),
    )
    tune.add_argument(
        "--quick",
        action="store_true",
        help="smaller probe shapes and fewer points (seconds, not minutes)",
    )
    tune.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="best-of-N timing repeats per probe point (default 3)",
    )
    tune.add_argument(
        "--no-summary",
        action="store_true",
        help="skip the before/after genomes/s summary after writing",
    )

    kernels = commands.add_parser(
        "kernels",
        help=(
            "list covering-kernel backends with availability, and the "
            "auto pick for a workload shape"
        ),
    )
    kernels.add_argument(
        "--shape",
        default=None,
        metavar="C,D,L,K",
        help=(
            "also print the auto kernel pick for this workload shape "
            "(genome batch, distinct blocks, MVs per genome, block length)"
        ),
    )

    cache = commands.add_parser(
        "cache",
        help=(
            "inspect or clear the on-disk caches: persisted MV caches "
            "(--mv-cache-persist) and native kernel builds"
        ),
    )
    cache.add_argument(
        "action",
        choices=("list", "info", "clear"),
        help=(
            "list = file names and sizes; info = decoded metadata per "
            "file; clear = delete every cache file"
        ),
    )
    cache.add_argument(
        "--dir",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "single cache directory to operate on (default: both the "
            "mv_cache and native directories under REPRO_CACHE_DIR)"
        ),
    )

    serve = commands.add_parser(
        "serve",
        help=(
            "run the long-lived compression daemon: warm per-table "
            "state and cross-request batching over stdlib HTTP"
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8477,
        help="TCP port; 0 picks a free one (default 8477)",
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help=(
            "how long the coalescer holds the first fitness request of "
            "a batch open for same-table company before flushing "
            "(batching is byte-inert — served responses are identical "
            "at any window; default 5)"
        ),
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        metavar="N",
        help="flush a batch early once it holds N requests (default 64)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=256,
        metavar="N",
        help=(
            "admission bound: past N queued requests new ones are "
            "rejected with 429 instead of accumulating (default 256)"
        ),
    )
    _add_execution_arguments(serve)

    request = commands.add_parser(
        "request",
        help=(
            "execute one serve-protocol JSON request offline and print "
            "the canonical response (the serve byte-parity reference)"
        ),
    )
    request.add_argument(
        "file", help="request JSON file, or - to read from stdin"
    )
    request.add_argument(
        "--endpoint",
        choices=("tables", "fitness", "compress"),
        default=None,
        help=(
            "which endpoint semantics to apply (default: inferred — "
            "'genomes' means fitness, 'seed' means compress, otherwise "
            "tables)"
        ),
    )
    _add_execution_arguments(request)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = build_parser().parse_args(argv)
    if arguments.command == "table1":
        return _table_command(arguments, which=1)
    if arguments.command == "table2":
        return _table_command(arguments, which=2)
    if arguments.command == "compress":
        return _compress_command(arguments)
    if arguments.command == "atpg":
        return _atpg_command(arguments)
    if arguments.command == "ablate":
        return _ablate_command(arguments)
    if arguments.command == "report":
        return _report_command(arguments)
    if arguments.command == "tune":
        return _tune_command(arguments)
    if arguments.command == "kernels":
        return _kernels_command(arguments)
    if arguments.command == "cache":
        return _cache_command(arguments)
    if arguments.command == "serve":
        return _serve_command(arguments)
    if arguments.command == "request":
        return _request_command(arguments)
    raise AssertionError(f"unhandled command {arguments.command!r}")


if __name__ == "__main__":
    sys.exit(main())

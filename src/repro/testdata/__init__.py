"""Test-set objects, synthetic generation, calibration, paper registry."""

from .calibration import CalibrationResult, calibrate_spec, nine_c_rate
from .fill import FILL_STRATEGIES, fill_test_set
from .registry import (
    TABLE1_AVERAGES,
    TABLE1_STUCK_AT,
    TABLE2_AVERAGES,
    TABLE2_PATH_DELAY,
    PaperRow,
    row_by_name,
)
from .synthetic import SyntheticSpec, synthetic_test_set
from .test_set import TestSet

__all__ = [
    "CalibrationResult",
    "FILL_STRATEGIES",
    "fill_test_set",
    "calibrate_spec",
    "nine_c_rate",
    "TABLE1_AVERAGES",
    "TABLE1_STUCK_AT",
    "TABLE2_AVERAGES",
    "TABLE2_PATH_DELAY",
    "PaperRow",
    "row_by_name",
    "SyntheticSpec",
    "synthetic_test_set",
    "TestSet",
]

"""Don't-care fill strategies — what compression loses if X is spent.

The paper's premise is that matching vectors exploit unspecified
values: an X matches anything, so X-rich blocks fall into cheap MVs.
Testers, by contrast, must eventually apply concrete values; classic
fill policies are 0-fill, 1-fill, and random fill (power-aware flows
also use adjacent fill, included here as ``repeat``).

Filling *before* compression destroys exactly the freedom the encoder
feeds on; ``benchmarks/bench_fill.py`` measures how many points of
compression each policy costs, which is the quantitative argument for
compressing test *cubes* rather than test *vectors*.
"""

from __future__ import annotations

import numpy as np

from ..core.trits import DC
from .test_set import TestSet

__all__ = ["FILL_STRATEGIES", "fill_test_set"]

FILL_STRATEGIES = ("zero", "one", "random", "repeat")


def fill_test_set(
    test_set: TestSet, strategy: str = "zero", seed: int = 0
) -> TestSet:
    """Replace every X with a concrete bit per the given policy.

    * ``zero`` / ``one`` — constant fill;
    * ``random`` — i.i.d. fair coin (seeded);
    * ``repeat`` — adjacent fill: each X copies the last specified bit
      to its left in the same pattern (0 if none), the standard
      low-transition scan fill.

    >>> ts = TestSet.from_strings("t", ["1XX0", "X1XX"])
    >>> fill_test_set(ts, "repeat").pattern_string(0)
    '1110'
    """
    if strategy not in FILL_STRATEGIES:
        raise ValueError(
            f"unknown fill strategy {strategy!r}; choose from {FILL_STRATEGIES}"
        )
    patterns = test_set.patterns.copy()
    unspecified = patterns == DC
    if strategy == "zero":
        patterns[unspecified] = 0
    elif strategy == "one":
        patterns[unspecified] = 1
    elif strategy == "random":
        rng = np.random.default_rng(seed)
        draws = rng.integers(0, 2, size=int(unspecified.sum()), dtype=np.int8)
        patterns[unspecified] = draws
    else:  # repeat (adjacent fill)
        for row in range(patterns.shape[0]):
            last = np.int8(0)
            for col in range(patterns.shape[1]):
                if patterns[row, col] == DC:
                    patterns[row, col] = last
                else:
                    last = patterns[row, col]
    return TestSet(name=f"{test_set.name}-{strategy}-fill", patterns=patterns)

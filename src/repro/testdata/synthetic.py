"""Calibrated synthetic test sets with ATPG-like structure.

The paper's exact test sets are unpublished; what compression sees is
their *statistics*.  Uncompacted ATPG cubes have three structural
properties this generator reproduces:

1. **Clustered care bits** — each cube specifies the inputs in the
   cone of one targeted fault, so specified bits bunch in windows;
2. **Hot columns** — a few inputs (resets, enables, wide-cone nets)
   are specified in almost every pattern, usually at the same value;
3. **Column-correlated values** — justifying the same internal nets
   drives the same input values, so two cubes that specify the same
   column mostly agree there.

Care-bit placement uses weighted sampling without replacement (Gumbel
top-k), so the requested care density is met *exactly*; values come
from a per-column base value XORed with sparse noise.  Everything is
deterministic under the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core.trits import DC
from .test_set import TestSet

__all__ = [
    "WIDE_BLOCK_LENGTH",
    "WIDE_BLOCK_SPEC",
    "SyntheticSpec",
    "synthetic_test_set",
    "wide_block_test_set",
]


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one synthetic test set.

    ``care_density`` is the exact fraction of specified bits.  The
    structural knobs default to values representative of uncompacted
    stuck-at cubes; calibration only ever adjusts ``care_density``.
    """

    name: str
    n_patterns: int
    pattern_bits: int
    care_density: float
    seed: int = 0
    one_bias: float = 0.40  # fraction of specified bits that are 1
    cone_width_fraction: float = 0.30  # fault-cone window / pattern width
    cones_per_pattern: int = 2
    hot_column_fraction: float = 0.06
    hot_column_weight: float = 4.0
    cone_weight: float = 3.0
    base_weight: float = 0.25
    value_noise: float = 0.12  # per-bit disagreement with the column base

    def __post_init__(self) -> None:
        if self.n_patterns < 1 or self.pattern_bits < 1:
            raise ValueError("test set must have positive dimensions")
        if not 0.0 <= self.care_density <= 1.0:
            raise ValueError("care_density must be in [0, 1]")
        if not 0.0 <= self.one_bias <= 1.0:
            raise ValueError("one_bias must be in [0, 1]")

    def with_care_density(self, care_density: float) -> "SyntheticSpec":
        """Copy with a different care density (used by calibration)."""
        return replace(self, care_density=care_density)

    @property
    def total_bits(self) -> int:
        """T·n — matches the paper's test-set-size column."""
        return self.n_patterns * self.pattern_bits


# A wide-block workload: K = 96 blocks need two uint64 mask words, so
# compressing this set end to end exercises the multi-word packing and
# every covering kernel's multi-word lanes (the paper never ran
# K > 16; the K <= 64 single-word cap is a lifted implementation
# limit, not a paper constraint).  Scenario: a wide scan frontend
# where one block spans a whole 192-bit scan slice.
WIDE_BLOCK_LENGTH = 96
WIDE_BLOCK_SPEC = SyntheticSpec(
    name="wide-k96",
    n_patterns=120,
    pattern_bits=192,
    care_density=0.35,
    seed=17,
)


def wide_block_test_set() -> "TestSet":
    """The K = 96 workload's test set (two blocks per pattern)."""
    return synthetic_test_set(WIDE_BLOCK_SPEC)


def _care_weights(spec: SyntheticSpec, rng: np.random.Generator) -> np.ndarray:
    """Per-bit sampling weight: baseline + fault cones + hot columns."""
    t, n = spec.n_patterns, spec.pattern_bits
    weights = np.full((t, n), spec.base_weight, dtype=np.float32)

    window = max(1, int(round(spec.cone_width_fraction * n)))
    columns = np.arange(n)
    centers = rng.integers(0, n, size=(t, spec.cones_per_pattern))
    for cone_index in range(spec.cones_per_pattern):
        center = centers[:, cone_index : cone_index + 1]
        distance = np.abs(columns[None, :] - center)
        distance = np.minimum(distance, n - distance)  # wrap-around cone
        weights += np.where(distance <= window // 2, spec.cone_weight, 0.0)

    n_hot = int(round(spec.hot_column_fraction * n))
    if n_hot:
        hot = rng.choice(n, size=n_hot, replace=False)
        weights[:, hot] += spec.hot_column_weight
    return weights


def synthetic_test_set(spec: SyntheticSpec) -> TestSet:
    """Generate the test set described by ``spec``.

    >>> ts = synthetic_test_set(
    ...     SyntheticSpec("demo", n_patterns=20, pattern_bits=30,
    ...                   care_density=0.4, seed=1))
    >>> ts.total_bits, round(ts.care_density(), 2)
    (600, 0.4)
    """
    rng = np.random.default_rng(spec.seed)
    t, n = spec.n_patterns, spec.pattern_bits

    # Exact-count weighted care-bit placement (Gumbel top-k).
    weights = _care_weights(spec, rng)
    n_care = int(round(spec.care_density * t * n))
    flat_keys = np.log(weights.reshape(-1)) + rng.gumbel(size=t * n).astype(
        np.float32
    )
    care_flat = np.zeros(t * n, dtype=bool)
    if n_care > 0:
        top = np.argpartition(flat_keys, -n_care)[-n_care:]
        care_flat[top] = True
    care = care_flat.reshape(t, n)

    # Column-correlated values with sparse noise.
    column_base = (rng.random(n) < spec.one_bias).astype(np.int8)
    noise = (rng.random((t, n)) < spec.value_noise).astype(np.int8)
    values = column_base[None, :] ^ noise

    patterns = np.where(care, values, np.int8(DC)).astype(np.int8)
    return TestSet(name=spec.name, patterns=patterns)

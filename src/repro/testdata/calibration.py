"""Anchor synthetic test sets to the paper's 9C column.

Absolute compression rates depend on the test set, which the paper's
authors did not publish.  The reproducible quantity is the *relative*
behaviour of the four methods on the *same* data, so for each table
row we pick the one free parameter of the synthetic generator — the
care density — such that our reimplemented 9C baseline (K = 8, fixed
code) achieves the paper's published 9C rate on the generated set.
All four methods then run on that same set.

9C's rate is monotonically decreasing in care density (more specified
bits → fewer matches to the cheap all-0/all-1/half-half vectors), so
a bisection converges quickly; the generator's exact-count care
placement makes the relation smooth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.nine_c import DEFAULT_NINE_C_BLOCK_LENGTH, compress_nine_c
from .synthetic import SyntheticSpec, synthetic_test_set
from .test_set import TestSet

__all__ = ["CalibrationResult", "nine_c_rate", "calibrate_spec"]


@dataclass(frozen=True)
class CalibrationResult:
    """A calibrated test set and how close the anchor landed."""

    spec: SyntheticSpec
    test_set: TestSet
    achieved_nine_c_rate: float
    target_nine_c_rate: float

    @property
    def anchor_error(self) -> float:
        """|achieved − target| in percentage points."""
        return abs(self.achieved_nine_c_rate - self.target_nine_c_rate)


def nine_c_rate(
    test_set: TestSet, block_length: int = DEFAULT_NINE_C_BLOCK_LENGTH
) -> float:
    """9C (fixed-code) compression rate of a test set, in percent."""
    return compress_nine_c(test_set.blocks(block_length)).rate


def calibrate_spec(
    spec: SyntheticSpec,
    target_rate: float,
    block_length: int = DEFAULT_NINE_C_BLOCK_LENGTH,
    tolerance: float = 0.5,
    max_iterations: int = 24,
    low: float = 0.005,
    high: float = 0.95,
) -> CalibrationResult:
    """Bisect the care density until 9C hits ``target_rate``.

    Returns the best candidate found even if ``tolerance`` (in rate
    percentage points) is not met within ``max_iterations`` — extreme
    published rates may sit outside the generator's reachable range,
    in which case the closest endpoint is used and the residual shows
    up in ``anchor_error`` (and is reported in EXPERIMENTS.md).

    >>> spec = SyntheticSpec("demo", 50, 24, care_density=0.5, seed=3)
    >>> result = calibrate_spec(spec, target_rate=40.0)
    >>> result.anchor_error < 2.0
    True
    """
    best: CalibrationResult | None = None

    def evaluate(care_density: float) -> CalibrationResult:
        nonlocal best
        candidate_spec = spec.with_care_density(care_density)
        test_set = synthetic_test_set(candidate_spec)
        rate = nine_c_rate(test_set, block_length)
        candidate = CalibrationResult(
            spec=candidate_spec,
            test_set=test_set,
            achieved_nine_c_rate=rate,
            target_nine_c_rate=target_rate,
        )
        if best is None or candidate.anchor_error < best.anchor_error:
            best = candidate
        return candidate

    low_result = evaluate(high)  # highest care density -> lowest rate
    high_result = evaluate(low)  # lowest care density -> highest rate
    if target_rate <= low_result.achieved_nine_c_rate:
        return low_result
    if target_rate >= high_result.achieved_nine_c_rate:
        return high_result

    low_density, high_density = low, high
    for _ in range(max_iterations):
        middle = 0.5 * (low_density + high_density)
        candidate = evaluate(middle)
        if candidate.anchor_error <= tolerance:
            return candidate
        if candidate.achieved_nine_c_rate > target_rate:
            # Too much compression -> need more specified bits.
            low_density = middle
        else:
            high_density = middle
    return best

"""Registry of every row of the paper's Tables 1 and 2.

For each circuit the paper lists the test-set size and four
compression rates.  The authors' exact test sets are unpublished, so
the reproduction generates synthetic test sets with the *same size*
(``n_patterns × n_inputs``, matching the paper's "test set size"
column bit-for-bit) and a don't-care density calibrated so the 9C
baseline reproduces the paper's 9C column (see
:mod:`repro.testdata.calibration`).

The per-circuit input widths below are the standard ISCAS-85 PI
counts and ISCAS-89 full-scan widths (PIs + flip-flops); every one of
them divides the paper's test-set size exactly (path-delay rows use
``2·n`` per pattern since tests are vector pairs), which cross-checks
both the widths and the transcription of the table.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PaperRow", "TABLE1_STUCK_AT", "TABLE2_PATH_DELAY", "row_by_name"]


@dataclass(frozen=True)
class PaperRow:
    """One row of Table 1 or Table 2.

    ``published`` maps column name → compression rate in percent.
    ``pattern_bits`` is the width of one pattern in the test-set
    string: ``n`` for stuck-at rows, ``2·n`` for path-delay rows
    (vector pairs).
    """

    circuit: str
    test_set_bits: int
    pattern_bits: int
    published: dict[str, float]

    def __post_init__(self) -> None:
        if self.test_set_bits % self.pattern_bits:
            raise ValueError(
                f"{self.circuit}: size {self.test_set_bits} is not a "
                f"multiple of pattern width {self.pattern_bits}"
            )

    @property
    def n_patterns(self) -> int:
        """T — number of test patterns (vector pairs for path delay)."""
        return self.test_set_bits // self.pattern_bits


def _stuck_at(circuit, bits, width, nine_c, nine_c_hc, ea, ea_best):
    return PaperRow(
        circuit=circuit,
        test_set_bits=bits,
        pattern_bits=width,
        published={
            "9C": nine_c,
            "9C+HC": nine_c_hc,
            "EA": ea,
            "EA-Best": ea_best,
        },
    )


def _path_delay(circuit, bits, width, nine_c, nine_c_hc, ea1, ea2):
    return PaperRow(
        circuit=circuit,
        test_set_bits=bits,
        pattern_bits=2 * width,
        published={
            "9C": nine_c,
            "9C+HC": nine_c_hc,
            "EA1": ea1,
            "EA2": ea2,
        },
    )


# Table 1: stuck-at test sets (39 circuits, sorted by test-set size).
TABLE1_STUCK_AT: tuple[PaperRow, ...] = (
    _stuck_at("s349", 624, 24, 23.0, 30.0, 54.2, 55.8),
    _stuck_at("s344", 624, 24, 25.0, 33.0, 51.8, 55.8),
    _stuck_at("s298", 629, 17, 19.0, 27.0, 45.2, 51.2),
    _stuck_at("s208", 722, 19, 26.0, 32.0, 47.8, 50.4),
    _stuck_at("s400", 984, 24, 29.0, 36.0, 54.4, 56.4),
    _stuck_at("s382", 1008, 24, 29.0, 36.0, 52.0, 54.2),
    _stuck_at("s386", 1157, 13, 0.0, 13.0, 30.4, 30.6),
    _stuck_at("s444", 1176, 24, 40.0, 43.0, 54.4, 57.8),
    _stuck_at("c6288", 1216, 32, 8.0, 19.0, 17.6, 20.4),
    _stuck_at("s510", 1850, 25, 42.0, 45.0, 57.6, 57.6),
    _stuck_at("c432", 1944, 36, 26.0, 36.0, 49.2, 50.4),
    _stuck_at("s526", 1944, 24, 25.0, 29.0, 46.4, 46.4),
    _stuck_at("s1494", 2324, 14, -1.0, 11.0, 23.0, 28.9),
    _stuck_at("s420", 2380, 34, 53.0, 55.0, 54.4, 56.2),
    _stuck_at("s1488", 2436, 14, 2.0, 15.0, 25.6, 30.0),
    _stuck_at("s832", 3404, 23, 35.0, 38.0, 43.8, 43.8),
    _stuck_at("s820", 3496, 23, 31.0, 35.0, 42.8, 43.4),
    _stuck_at("c499", 3854, 41, 43.0, 51.0, 45.0, 51.6),
    _stuck_at("s713", 4104, 54, 51.0, 52.0, 61.4, 61.8),
    _stuck_at("s641", 4212, 54, 51.0, 52.0, 60.2, 62.2),
    _stuck_at("c880", 4680, 60, 40.0, 42.0, 47.8, 49.8),
    _stuck_at("c1908", 4950, 33, -2.0, 10.0, 18.4, 19.0),
    _stuck_at("s953", 5220, 45, 51.0, 53.0, 61.6, 63.2),
    _stuck_at("c1355", 5289, 41, 38.0, 45.0, 40.8, 44.8),
    _stuck_at("s1196", 6016, 32, 34.0, 38.0, 46.2, 46.2),
    _stuck_at("s1238", 6240, 32, 34.0, 37.0, 44.0, 45.8),
    _stuck_at("s1423", 8463, 91, 59.0, 59.0, 61.0, 61.6),
    _stuck_at("s838", 8509, 67, 67.0, 68.0, 66.2, 68.6),
    _stuck_at("c3540", 10350, 50, 36.0, 39.0, 43.8, 44.2),
    _stuck_at("c2670", 33086, 233, 70.0, 70.0, 70.4, 70.6),
    _stuck_at("c5315", 33108, 178, 65.0, 65.0, 66.2, 67.0),
    _stuck_at("c7552", 60030, 207, 63.0, 64.0, 63.2, 63.2),
    _stuck_at("s5378", 71262, 214, 73.0, 73.0, 76.8, 76.8),
    _stuck_at("s9234", 118560, 247, 75.0, 75.0, 76.2, 76.4),
    _stuck_at("s35932", 133988, 1763, 71.0, 71.0, 73.8, 73.8),
    _stuck_at("s15850", 305500, 611, 80.0, 80.0, 83.0, 83.0),
    _stuck_at("s13207", 410200, 700, 83.0, 83.0, 85.8, 85.9),
    _stuck_at("s38584", 1250256, 1464, 82.0, 82.0, 86.2, 86.2),
    _stuck_at("s38417", 2068352, 1664, 84.0, 84.0, 87.0, 87.9),
)

# Table 2: path-delay test sets (29 circuits; patterns are vector pairs).
TABLE2_PATH_DELAY: tuple[PaperRow, ...] = (
    _path_delay("s27", 448, 7, -5.0, 9.0, 46.2, 51.6),
    _path_delay("s298", 6018, 17, 41.0, 44.0, 48.9, 54.2),
    _path_delay("s386", 6032, 13, 8.0, 19.0, 24.7, 26.0),
    _path_delay("s208", 7524, 19, 40.0, 43.0, 43.5, 46.6),
    _path_delay("s444", 14544, 24, 49.0, 52.0, 55.6, 55.8),
    _path_delay("s382", 16272, 24, 50.0, 55.0, 58.0, 59.2),
    _path_delay("s400", 16320, 24, 50.0, 55.0, 57.1, 58.2),
    _path_delay("s526", 17088, 24, 44.0, 45.0, 59.3, 60.0),
    _path_delay("s349", 17712, 24, 41.0, 44.0, 57.0, 61.2),
    _path_delay("s344", 17712, 24, 41.0, 44.0, 57.0, 60.8),
    _path_delay("s510", 18450, 25, 45.0, 47.0, 48.9, 52.6),
    _path_delay("s1494", 20300, 14, 1.0, 15.0, 19.9, 25.0),
    _path_delay("s1488", 20664, 14, 2.0, 15.0, 20.5, 24.6),
    _path_delay("s820", 21850, 23, 34.0, 38.0, 38.2, 42.4),
    _path_delay("s832", 22448, 23, 34.0, 38.0, 38.4, 42.4),
    _path_delay("s420", 43588, 34, 58.0, 59.0, 57.9, 51.2),
    _path_delay("s713", 56376, 54, 61.0, 63.0, 64.6, 69.0),
    _path_delay("s953", 75510, 45, 57.0, 59.0, 59.4, 62.8),
    _path_delay("s641", 94500, 54, 60.0, 62.0, 62.6, 66.2),
    _path_delay("s1196", 95616, 32, 40.0, 42.0, 46.9, 46.4),
    _path_delay("s1238", 96128, 32, 39.0, 41.0, 46.3, 45.8),
    _path_delay("s838", 269808, 66, 70.0, 70.0, 69.3, 64.2),
    _path_delay("s1423", 2321592, 91, 49.0, 50.0, 51.8, 52.8),
    _path_delay("s5378", 3625588, 214, 78.0, 78.0, 77.5, 81.2),
    _path_delay("s9234", 4666324, 247, 81.0, 82.0, 80.1, 83.2),
    _path_delay("s35932", 7108416, 1763, 87.0, 87.0, 86.7, 91.0),
    _path_delay("s13207", 10234000, 700, 85.0, 85.0, 85.9, 89.6),
    _path_delay("s15850", 36502362, 611, 84.0, 84.0, 82.7, 86.3),
    _path_delay("s38584", 81190512, 1464, 87.0, 87.0, 67.5, 90.0),
)

# Paper-reported column averages (last line of each table).
TABLE1_AVERAGES = {"9C": 42.6, "9C+HC": 46.8, "EA": 54.2, "EA-Best": 55.9}
TABLE2_AVERAGES = {"9C": 48.7, "9C+HC": 52.1, "EA1": 55.6, "EA2": 58.6}


def row_by_name(table: tuple[PaperRow, ...], circuit: str) -> PaperRow:
    """Look up a row by circuit name.

    >>> row_by_name(TABLE1_STUCK_AT, "s349").test_set_bits
    624
    """
    for row in table:
        if row.circuit == circuit:
            return row
    raise KeyError(f"circuit {circuit!r} not in table")

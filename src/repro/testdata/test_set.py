"""Test sets: T patterns of n trits each, the object the paper encodes.

The paper aggregates a test set into one string ``tp(1)_1 ...
tp(T)_n`` over ``{0, 1, X}`` and compresses that string.
:class:`TestSet` stores the patterns as a compact numpy ``int8``
matrix, provides the flattened string view, and reports the don't-care
statistics that drive compression behaviour.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..core.blocks import BlockSet
from ..core.trits import DC, format_trits, parse_trits

__all__ = ["TestSet"]


@dataclass(frozen=True)
class TestSet:
    """An ordered set of test patterns over ``{0, 1, X}``.

    ``patterns`` has shape ``(T, n)`` with trit values (2 = X).
    """

    name: str
    patterns: np.ndarray

    __test__ = False  # tell pytest this is not a test class

    def __post_init__(self) -> None:
        array = np.asarray(self.patterns, dtype=np.int8)
        if array.ndim != 2:
            raise ValueError("patterns must be a (T, n) matrix")
        if array.size and (array.min() < 0 or array.max() > 2):
            raise ValueError("pattern values must be trits in {0, 1, 2}")
        object.__setattr__(self, "patterns", array)

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_strings(cls, name: str, rows: Iterable[str]) -> "TestSet":
        """Build from per-pattern strings like ``["01XX1", "X10X0"]``."""
        parsed = [parse_trits(row) for row in rows]
        if not parsed:
            raise ValueError("a test set needs at least one pattern")
        width = len(parsed[0])
        if any(len(row) != width for row in parsed):
            raise ValueError("all patterns must have the same width")
        return cls(name=name, patterns=np.asarray(parsed, dtype=np.int8))

    @classmethod
    def from_cubes(
        cls,
        name: str,
        cubes: Sequence[Mapping[str, int]],
        input_order: Sequence[str],
    ) -> "TestSet":
        """Build from ATPG cubes (PI → value dicts; missing PIs are X)."""
        if not cubes:
            raise ValueError("a test set needs at least one pattern")
        matrix = np.full((len(cubes), len(input_order)), DC, dtype=np.int8)
        column = {net: index for index, net in enumerate(input_order)}
        for row, cube in enumerate(cubes):
            for net, value in cube.items():
                matrix[row, column[net]] = value
        return cls(name=name, patterns=matrix)

    # -- shape and statistics ----------------------------------------------

    @property
    def n_patterns(self) -> int:
        """T — the number of test patterns."""
        return int(self.patterns.shape[0])

    @property
    def n_inputs(self) -> int:
        """n — bits per pattern."""
        return int(self.patterns.shape[1])

    @property
    def total_bits(self) -> int:
        """T·n — the paper's "test set size" column."""
        return self.n_patterns * self.n_inputs

    def care_density(self) -> float:
        """Fraction of specified (non-X) bits."""
        if self.patterns.size == 0:
            return 0.0
        return float((self.patterns != DC).mean())

    def x_density(self) -> float:
        """Fraction of don't-care bits."""
        return 1.0 - self.care_density() if self.patterns.size else 0.0

    # -- views --------------------------------------------------------------

    def flatten(self) -> np.ndarray:
        """The test-set string as a flat trit array (row-major)."""
        return self.patterns.reshape(-1)

    def to_string(self) -> str:
        """The test-set string with ``X`` for don't-cares."""
        return format_trits(self.flatten(), unspecified="X")

    def pattern_string(self, index: int) -> str:
        """One pattern rendered as a string."""
        return format_trits(self.patterns[index], unspecified="X")

    def blocks(self, block_length: int) -> BlockSet:
        """Partition the test-set string into K-blocks for compression."""
        return BlockSet.from_trit_array(self.flatten(), block_length)

    def __repr__(self) -> str:
        return (
            f"TestSet({self.name!r}, T={self.n_patterns}, n={self.n_inputs}, "
            f"x_density={self.x_density():.2f})"
        )

"""Pareto-front experiment protocol for the multi-objective EA mode.

The multi-objective counterpart of :class:`repro.core.optimizer.EAMVOptimizer`:
several independent seeded NSGA-II runs
(:class:`repro.ea.multi_objective.MultiObjectiveEngine`) fan out as
picklable self-seeded :class:`ParetoRunTask` units, their per-run
fronts merge into one global non-dominated front, and the result
renders as a markdown table with a hypervolume summary
(:func:`pareto_markdown`).

The determinism discipline is the single-objective protocol's,
unchanged: every task is a pure function of its fields (blocks,
config, objectives, its own ``SeedSequence`` child), results are
reassembled in run order, and front merging is pure array work — so a
given ``(seed, blocks, config, objectives)`` produces a byte-identical
front on every backend, at every job count, under every kernel (pinned
by ``tests/ea/test_multi_objective.py``).

Checkpoint/resume reuses the PR-6 journal machinery with a
Pareto-specific fingerprint (the single-objective semantic fingerprint
plus the objective names and a ``kind`` tag, so single- and
multi-objective journals can never serve each other's entries) and a
Pareto codec that stores every front point's genome and exact values —
resumed fronts are byte-identical to uninterrupted ones.
"""

from __future__ import annotations

import hashlib
import json
import logging
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.blocks import BlockSet
from ..core.config import CompressionConfig
from ..core.fitness import BatchCompressionRateFitness
from ..core.optimizer import _PinAllU, _seed_genomes
from ..ea.multi_objective import (
    MOGenerationStats,
    MultiObjectiveEngine,
    MultiObjectiveResult,
    ParetoPoint,
    hypervolume,
    minimization_form,
    non_dominated_mask,
)
from ..parallel import (
    ExecutionBackend,
    FaultToleranceStats,
    RetryPolicy,
    SerialBackend,
    grouped_map,
)
from .checkpoint import (
    FORMAT_VERSION,
    CheckpointStore,
    _blocks_digest,
    _seed_identity,
    _semantic_config,
)

__all__ = [
    "OBJECTIVE_SETS",
    "ParetoRunTask",
    "ParetoRunOutcome",
    "ParetoFrontResult",
    "ParetoTaskCache",
    "build_pareto_front",
    "execute_pareto_task",
    "merge_fronts",
    "pareto_markdown",
    "pareto_task_fingerprint",
]

logger = logging.getLogger("repro.experiments.pareto")

# The CLI's --objectives vocabulary.  "rate" is the classic
# single-objective path (EvolutionaryEngine, untouched); the others
# route to the multi-objective protocol below.
OBJECTIVE_SETS: dict[str, tuple[str, ...]] = {
    "rate": ("rate",),
    "rate+area": ("rate", "area"),
    "rate+area+time": ("rate", "area", "time"),
}

_OBJECTIVE_LABELS = {
    "rate": "Rate %",
    "area": "Area bits",
    "time": "Time cycles",
}

_OBJECTIVE_UNITS = {"rate": "%", "area": "bits", "time": "cycles"}


@dataclass(frozen=True)
class ParetoRunTask:
    """One independent multi-objective run as a self-seeded work unit.

    Mirrors :class:`repro.core.optimizer.RunTask`, plus the objective
    names — part of the task identity (and of its fingerprint) because
    they change what the engine searches.
    """

    run_index: int
    blocks: BlockSet
    config: CompressionConfig
    objectives: tuple[str, ...]
    seed_sequence: np.random.SeedSequence


@dataclass(frozen=True)
class ParetoRunOutcome:
    """One run's Pareto archive (natural-value points) plus run stats."""

    run_index: int
    result: MultiObjectiveResult = field(repr=False)

    @property
    def front(self) -> tuple[ParetoPoint, ...]:
        """The run's final archive, deterministically sorted."""
        return self.result.front


def execute_pareto_task(task: ParetoRunTask) -> ParetoRunOutcome:
    """Run one independent NSGA-II search — the backend work unit.

    Module-level and deterministic, exactly like
    :func:`repro.core.optimizer.execute_run_task` (same RNG derivation:
    one generator per task seeds both the engine and the optional
    9C-seeded genome), so fronts are backend- and job-count-invariant.
    """
    config = task.config
    rng = np.random.default_rng(task.seed_sequence)
    fitness = BatchCompressionRateFitness(
        task.blocks,
        n_vectors=config.n_vectors,
        block_length=config.block_length,
        strategy=config.strategy,
        kernel=config.kernel,
        mv_cache_size=config.mv_cache_size,
        tuning=config.tuning,
        mv_feedback=config.mv_feedback,
        mv_cache_policy=config.mv_cache_policy,
        mv_cache_persist=config.mv_cache_persist,
    )
    engine = MultiObjectiveEngine(
        fitness=fitness,
        genome_length=config.genome_length,
        objectives=task.objectives,
        params=config.ea,
        seed=rng.integers(0, 2**63 - 1),
        repair=_PinAllU(config.block_length) if config.ea.include_all_u else None,
        initial_genomes=_seed_genomes(config, rng),
    )
    result = engine.run()
    if config.mv_cache_persist:
        fitness.persist_mv_cache()
    return ParetoRunOutcome(run_index=task.run_index, result=result)


# -- checkpointing -----------------------------------------------------


def pareto_task_fingerprint(task: ParetoRunTask) -> str:
    """Stable hex key naming exactly one seeded multi-objective run.

    The single-objective fingerprint's payload plus the objective names
    and a ``kind`` discriminator — a Pareto journal entry can never be
    mistaken for a rate-only one (or vice versa) even under identical
    configs and seeds.
    """
    payload = {
        "version": FORMAT_VERSION,
        "kind": "pareto",
        "objectives": list(task.objectives),
        "run_index": int(task.run_index),
        "config": _semantic_config(task.config),
        "seed": _seed_identity(task.seed_sequence),
        "blocks": _blocks_digest(task.blocks),
    }
    serialized = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(serialized.encode()).hexdigest()


def encode_pareto_outcome(outcome: ParetoRunOutcome) -> dict[str, Any]:
    """A :class:`ParetoRunOutcome` as plain JSON (genomes + exact values)."""
    result = outcome.result
    return {
        "run_index": int(outcome.run_index),
        "objectives": list(result.objectives),
        "front": [
            {
                "genome": [int(gene) for gene in np.asarray(point.genome).ravel()],
                "values": [float(value) for value in point.values],
            }
            for point in result.front
        ],
        "mo": {
            "generations": int(result.generations),
            "evaluations": int(result.evaluations),
            "terminated_by": str(result.terminated_by),
            "cache_hits": int(result.cache_hits),
            "cache_hit_rate": float(result.cache_hit_rate),
            "mv_cache_hits": int(result.mv_cache_hits),
            "mv_cache_misses": int(result.mv_cache_misses),
            "mv_cache_hit_rate": float(result.mv_cache_hit_rate),
            "mv_cache_warm_loaded": int(result.mv_cache_warm_loaded),
        },
    }


def decode_pareto_outcome(
    record: dict[str, Any], task: ParetoRunTask
) -> ParetoRunOutcome:
    """Rebuild the exact outcome a worker once returned (empty history)."""
    front = tuple(
        ParetoPoint(
            genome=np.asarray(entry["genome"], dtype=np.int8),
            values=tuple(float(value) for value in entry["values"]),
        )
        for entry in record["front"]
    )
    mo = record["mo"]
    history: tuple[MOGenerationStats, ...] = ()
    result = MultiObjectiveResult(
        objectives=tuple(str(name) for name in record["objectives"]),
        front=front,
        generations=int(mo["generations"]),
        evaluations=int(mo["evaluations"]),
        terminated_by=str(mo["terminated_by"]),
        history=history,
        cache_hits=int(mo["cache_hits"]),
        cache_hit_rate=float(mo["cache_hit_rate"]),
        mv_cache_hits=int(mo["mv_cache_hits"]),
        mv_cache_misses=int(mo["mv_cache_misses"]),
        mv_cache_hit_rate=float(mo["mv_cache_hit_rate"]),
        mv_cache_warm_loaded=int(mo.get("mv_cache_warm_loaded", 0)),
    )
    return ParetoRunOutcome(run_index=int(record["run_index"]), result=result)


@dataclass
class ParetoTaskCache:
    """``grouped_map`` cache adapter over a journal, Pareto-typed.

    The Pareto twin of :class:`repro.experiments.checkpoint.RunTaskCache`
    — isinstance-gated on the Pareto task/outcome types so it can share
    a journal directory (never a journal *entry*: fingerprints carry
    the ``kind`` tag) with single-objective caches.
    """

    journal: Any
    stats: FaultToleranceStats | None = None
    hits: int = 0
    misses: int = 0
    _fingerprints: dict[int, str] = field(default_factory=dict)

    def _fingerprint(self, task: ParetoRunTask) -> str:
        key = id(task)
        fingerprint = self._fingerprints.get(key)
        if fingerprint is None:
            fingerprint = pareto_task_fingerprint(task)
            self._fingerprints[key] = fingerprint
        return fingerprint

    def get(self, task: Any) -> ParetoRunOutcome | None:
        if not isinstance(task, ParetoRunTask):
            return None
        record = self.journal.get(self._fingerprint(task))
        if record is None:
            self.misses += 1
            return None
        try:
            outcome = decode_pareto_outcome(record, task)
        except (ValueError, KeyError, TypeError) as error:
            logger.warning(
                "ignoring unusable pareto checkpoint entry in %s (%s); re-running",
                self.journal.path, error,
            )
            self.misses += 1
            return None
        self.hits += 1
        if self.stats is not None:
            self.stats.resumed += 1
        return outcome

    def put(self, task: Any, outcome: Any) -> None:
        if not isinstance(task, ParetoRunTask) or not isinstance(
            outcome, ParetoRunOutcome
        ):
            return
        self.journal.record(self._fingerprint(task), encode_pareto_outcome(outcome))


# -- front merging and the result --------------------------------------


def merge_fronts(
    outcomes: Sequence[ParetoRunOutcome], objectives: Sequence[str]
) -> tuple[ParetoPoint, ...]:
    """Union the per-run archives into one global non-dominated front.

    Pure array work, deterministic: union in run order, filter to the
    non-dominated set, keep the first genome per objective-distinct
    point, sort lexicographically in minimization space (best rate
    first).
    """
    points = [point for outcome in outcomes for point in outcome.front]
    if not points:
        return ()
    matrix = minimization_form(
        np.asarray([point.values for point in points]), objectives
    )
    mask = non_dominated_mask(matrix)
    merged: list[tuple[tuple[float, ...], ParetoPoint]] = []
    seen: set[tuple[float, ...]] = set()
    for keep, row, point in zip(mask, matrix, points):
        if not keep:
            continue
        key = tuple(float(value) for value in row)
        if key in seen:
            continue
        seen.add(key)
        merged.append((key, point))
    merged.sort(key=lambda pair: pair[0])
    return tuple(point for _, point in merged)


@dataclass(frozen=True)
class ParetoFrontResult:
    """Aggregate of all multi-objective runs for one (blocks, config)."""

    objectives: tuple[str, ...]
    config: CompressionConfig
    runs: tuple[ParetoRunOutcome, ...]
    front: tuple[ParetoPoint, ...]

    @property
    def total_evaluations(self) -> int:
        """Fitness evaluations spent across all runs."""
        return sum(outcome.result.evaluations for outcome in self.runs)

    def reference_point(self) -> tuple[float, ...]:
        """Hypervolume reference: the front's per-objective worst + 1.

        Stated in *natural* values.  Derived from the final merged
        front only, so it is as deterministic as the front itself.
        Empty fronts have no reference (raises ``ValueError``).
        """
        if not self.front:
            raise ValueError("empty front has no reference point")
        matrix = minimization_form(
            np.asarray([point.values for point in self.front]), self.objectives
        )
        reference = matrix.max(axis=0) + 1.0
        natural = minimization_form(reference, self.objectives)
        return tuple(float(value) for value in natural)

    def front_hypervolume(self) -> float:
        """Hypervolume of the merged front against :meth:`reference_point`."""
        if not self.front:
            return 0.0
        matrix = minimization_form(
            np.asarray([point.values for point in self.front]), self.objectives
        )
        reference = minimization_form(
            np.asarray(self.reference_point()), self.objectives
        )
        return hypervolume(matrix, reference)


def default_pareto_label(objectives: Sequence[str]) -> str:
    """The journal label the CLI and tests agree on."""
    return f"pareto-{'+'.join(objectives)}"


def build_pareto_front(
    blocks: BlockSet,
    config: CompressionConfig | None = None,
    objectives: Sequence[str] = OBJECTIVE_SETS["rate+area+time"],
    seed: int | np.random.SeedSequence | None = None,
    backend: ExecutionBackend | None = None,
    *,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    stats: FaultToleranceStats | None = None,
    checkpoint: CheckpointStore | None = None,
    label: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> ParetoFrontResult:
    """Run ``config.runs`` independent NSGA-II searches and merge fronts.

    The multi-objective counterpart of
    :func:`repro.core.optimizer.optimize_mv_set`: per-run
    ``SeedSequence`` children are spawned exactly like the optimizer's,
    tasks flow through ``grouped_map`` (so ``retry``/``timeout``/
    ``stats``/checkpoint ``--resume`` all behave as in the
    single-objective protocol), and the merged front is a pure function
    of ``(seed, blocks, config, objectives)``.
    """
    config = config or CompressionConfig()
    names = tuple(objectives)
    sequence = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    children = sequence.spawn(config.runs)
    tasks = [
        ParetoRunTask(
            run_index=run_index,
            blocks=blocks,
            config=config,
            objectives=names,
            seed_sequence=child,
        )
        for run_index, child in enumerate(children)
    ]
    cache = None
    journal_label = label or default_pareto_label(names)
    if checkpoint is not None:
        cache = ParetoTaskCache(
            journal=checkpoint.journal(journal_label), stats=stats
        )
    outcomes = grouped_map(
        backend or SerialBackend(),
        execute_pareto_task,
        [(journal_label, tasks)],
        progress=progress,
        retry=retry,
        timeout=timeout,
        stats=stats,
        cache=cache,
    )[0]
    runs = tuple(outcomes)
    return ParetoFrontResult(
        objectives=names,
        config=config,
        runs=runs,
        front=merge_fronts(runs, names),
    )


# -- reporting ---------------------------------------------------------


def _format_value(name: str, value: float) -> str:
    if name == "rate":
        return f"{value:.2f}"
    return f"{int(value)}"


def pareto_markdown(result: ParetoFrontResult) -> str:
    """The merged front as a markdown table plus a hypervolume summary.

    Deterministic text (no timings, no floats beyond the exact
    objective values), so seeded output is byte-comparable across
    backends, job counts and kernels.
    """
    names = result.objectives
    lines = [f"### Pareto front ({', '.join(names)})", ""]
    header = "| # | " + " | ".join(_OBJECTIVE_LABELS[n] for n in names) + " |"
    align = "|--:|" + "|".join("------:" for _ in names) + "|"
    lines.append(header)
    lines.append(align)
    for index, point in enumerate(result.front, start=1):
        cells = " | ".join(
            _format_value(name, value)
            for name, value in zip(names, point.values)
        )
        lines.append(f"| {index} | {cells} |")
    lines.append("")
    if result.front:
        reference = ", ".join(
            f"{name} {_format_value(name, value)} {_OBJECTIVE_UNITS[name]}"
            for name, value in zip(names, result.reference_point())
        )
        lines.append(
            f"- non-dominated points: {len(result.front)} "
            f"(from {len(result.runs)} runs, "
            f"{result.total_evaluations} evaluations)"
        )
        lines.append(
            f"- hypervolume: {result.front_hypervolume():.4f} "
            f"(reference: {reference})"
        )
    else:
        lines.append(
            "- no valid solutions found (every genome left blocks uncovered)"
        )
    return "\n".join(lines) + "\n"

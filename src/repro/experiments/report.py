"""EXPERIMENTS.md section writers.

Turns :class:`TableResult` and ablation outputs into the markdown
sections recorded in EXPERIMENTS.md, so the committed document can be
regenerated from code (``python -m repro report``).
"""

from __future__ import annotations

from collections.abc import Sequence

from .ablations import AblationPoint
from .tables import TableResult

__all__ = [
    "table_markdown",
    "ablation_markdown",
    "shape_check_markdown",
    "experiments_markdown",
]


def table_markdown(result: TableResult, title: str) -> str:
    """One reproduced table as a markdown section."""
    lines = [f"### {title}", ""]
    header = (
        "| Circuit | Size | "
        + " | ".join(f"{c} meas. | {c} paper" for c in result.columns)
        + " |"
    )
    divider = "| --- | --- | " + " | ".join(
        "---: | ---:" for _ in result.columns
    ) + " |"
    lines.extend([header, divider])
    for row in result.rows:
        cells = " | ".join(
            f"{row.measured[c]:.1f} | {row.published[c]:.1f}"
            for c in result.columns
        )
        lines.append(f"| {row.circuit} | {row.test_set_bits} | {cells} |")
    average_cells = " | ".join(
        f"{result.measured_average(c):.1f} | "
        f"{result.published_subset_average(c):.1f}"
        for c in result.columns
    )
    lines.append(f"| **Average** | | {average_cells} |")
    lines.append("")
    anchor = max(row.anchor_error for row in result.rows)
    lines.append(
        f"Calibration anchor error (9C column): at most {anchor:.2f} "
        "percentage points across rows."
    )
    return "\n".join(lines)


def ablation_markdown(points: Sequence[AblationPoint], title: str) -> str:
    """An ablation result as a markdown section."""
    lines = [
        f"### {title}",
        "",
        "| Configuration | Mean rate | Best rate |",
        "| --- | ---: | ---: |",
    ]
    for point in points:
        lines.append(
            f"| {point.label} | {point.mean_rate:.1f} | {point.best_rate:.1f} |"
        )
    lines.append("")
    return "\n".join(lines)


def shape_check_markdown(result: TableResult) -> str:
    """The qualitative claims of the paper, checked on measured data."""
    columns = result.columns
    ea_column = columns[2]
    best_column = columns[3]
    lines = ["### Shape checks", ""]
    checks = [
        (
            f"average({columns[1]}) > average({columns[0]}) "
            "(Huffman re-coding helps 9C)",
            result.measured_average(columns[1])
            >= result.measured_average(columns[0]),
        ),
        (
            f"average({ea_column}) > average({columns[1]}) "
            "(EA beats 9C+HC on average)",
            result.measured_average(ea_column)
            > result.measured_average(columns[1]),
        ),
        (
            f"average({best_column}) >= average({ea_column})",
            result.measured_average(best_column)
            >= result.measured_average(ea_column) - 1e-9,
        ),
        (
            f"{ea_column} wins against 9C on most rows",
            result.wins(ea_column, columns[0]) > len(result.rows) / 2,
        ),
    ]
    for description, passed in checks:
        lines.append(f"- {'PASS' if passed else 'FAIL'}: {description}")
    lines.append("")
    return "\n".join(lines)


def experiments_markdown(
    table1: TableResult,
    table2: TableResult,
    ablations: dict[str, Sequence[AblationPoint]],
    budget_label: str,
) -> str:
    """The full EXPERIMENTS.md document from measured results."""
    parts = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Regenerate this document with `python -m repro report` "
        f"(budget: {budget_label}).",
        "",
        "Method: for every table row a synthetic test set is generated "
        "with the paper's exact test-set size and a don't-care density "
        "calibrated so the reimplemented 9C baseline (K=8, fixed code) "
        "matches the paper's 9C column; all methods then run on that "
        "same set.  Absolute EA rates depend on the EA budget; the "
        "reproduced claim is the *shape* (who wins, by roughly what "
        "factor, where the exceptions sit).  See DESIGN.md §3 and §7.",
        "",
        "## Table 1 — stuck-at test sets",
        "",
        table_markdown(table1, "Table 1 (reproduced subset)"),
        "",
        shape_check_markdown(table1),
        "",
        "## Table 2 — path-delay test sets",
        "",
        table_markdown(table2, "Table 2 (reproduced subset)"),
        "",
        shape_check_markdown(table2),
        "",
        "## Figure 1 — the evolutionary algorithm",
        "",
        "Figure 1 is pseudocode; `repro.ea.engine.EvolutionaryEngine` "
        "implements it 1:1 (random population of S, C children per "
        "generation via crossover/mutation/inversion, best-S survival, "
        "stagnation/evaluation-limit termination).  `examples/ea_trace.py` "
        "prints the loop's live trace; `benchmarks/bench_figure1.py` "
        "records generations, evaluations and termination cause.",
        "",
        "## Section 3.3 example — subsumption",
        "",
        "The paper's worked example (v1=111U/5, v2=1110/3, v3=0000/2; "
        "plain Huffman 20 bits, merged 18 bits) is reproduced exactly by "
        "`tests/core/test_encoding.py::TestSubsumptionRefinement::"
        "test_paper_section_3_3_example`.",
        "",
        "## Ablations",
        "",
    ]
    for title, points in ablations.items():
        parts.append(ablation_markdown(points, title))
    return "\n".join(parts)

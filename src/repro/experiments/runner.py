"""Run the paper's four methods on one table row.

A row run is: calibrate a synthetic test set against the paper's 9C
column, then evaluate

* **9C** — fixed nine-vector code at K = 8 [20],
* **9C+HC** — same covering, Huffman codewords,
* **EA** (Table 1) / **EA1**, **EA2** (Table 2) — the paper's EA
  configurations, averaged over independent runs,
* **EA-Best** (Table 1) — best run over a K/L grid.

Budgets are explicit: the ``PAPER`` budget mirrors Section 4 (5 runs,
500-generation stagnation); the default ``QUICK`` budget shrinks the
run count and stagnation window so a full table regenerates in
minutes on a laptop.  Test sets larger than ``search_bit_cap`` are
subsampled for the EA *search* only — the reported rate always prices
the found MV sets on the complete test set.

Parallel architecture
---------------------
All EA work of a row — every independent run of every configuration,
including the whole EA-Best K/L grid — is flattened into one list of
self-seeded :class:`repro.core.optimizer.RunTask` units and submitted
through an :class:`repro.parallel.ExecutionBackend` in a single
``map`` call, so a row with a 5-point grid and 5 runs per point keeps
30 workers busy at once.  Seeds are spawned per configuration from the
row seed via :func:`repro.parallel.spawn_seeds` (one
``SeedSequence`` child per configuration, one grandchild per run), so
results are bit-identical on every backend and at every job count.
Per-configuration progress is routed through an ordered fan-in — no
interleaved lines under concurrency.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.blocks import BlockSet
from ..core.compressor import compress_blocks
from ..core.config import CompressionConfig, EAParameters
from ..core.encoding import EncodingStrategy
from ..core.fitness import DEFAULT_MV_CACHE_SIZE
from ..core.nine_c import DEFAULT_NINE_C_BLOCK_LENGTH, compress_nine_c
from ..core.optimizer import (
    EAMVOptimizer,
    OptimizationResult,
    RunTask,
    execute_run_task,
)
from ..parallel import (
    ExecutionBackend,
    FaultToleranceStats,
    RetryPolicy,
    SerialBackend,
    grouped_map,
    spawn_seeds,
)
from ..testdata.calibration import calibrate_spec
from ..testdata.registry import PaperRow
from ..testdata.synthetic import SyntheticSpec
from ..testdata.test_set import TestSet
from ..tuning.profile import TuningProfile
from .checkpoint import CheckpointStore

__all__ = ["ExperimentBudget", "QUICK", "PAPER", "RowResult", "run_row"]


@dataclass(frozen=True)
class ExperimentBudget:
    """How much EA effort a table run spends per row."""

    runs: int
    stagnation_limit: int
    max_evaluations: int | None
    kl_grid: tuple[tuple[int, int], ...]  # EA-Best candidates (K, L)
    search_bit_cap: int  # subsample test sets beyond this for the search

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ValueError(f"budget runs must be >= 1, got {self.runs}")
        if self.stagnation_limit < 1:
            raise ValueError(
                f"stagnation_limit must be >= 1, got {self.stagnation_limit}"
            )
        if self.max_evaluations is not None and self.max_evaluations < 1:
            raise ValueError(
                f"max_evaluations must be >= 1 or None, got {self.max_evaluations}"
            )
        if not self.kl_grid:
            raise ValueError(
                "kl_grid must name at least one (K, L) candidate — "
                "EA-Best is a maximum over the grid"
            )
        if any(
            block_length < 1 or n_vectors < 1
            for block_length, n_vectors in self.kl_grid
        ):
            raise ValueError(f"kl_grid entries must be positive, got {self.kl_grid}")
        if self.search_bit_cap < 1:
            raise ValueError(
                f"search_bit_cap must be >= 1, got {self.search_bit_cap}"
            )

    def ea_parameters(self) -> EAParameters:
        """Paper operator probabilities with this budget's termination."""
        return EAParameters(
            stagnation_limit=self.stagnation_limit,
            max_evaluations=self.max_evaluations,
        )


QUICK = ExperimentBudget(
    runs=3,
    stagnation_limit=30,
    max_evaluations=1500,
    kl_grid=((8, 16), (12, 64)),
    search_bit_cap=50_000,
)

PAPER = ExperimentBudget(
    runs=5,
    stagnation_limit=500,
    max_evaluations=None,
    kl_grid=((8, 16), (8, 32), (12, 64), (16, 64), (16, 128)),
    search_bit_cap=250_000,
)


@dataclass(frozen=True)
class RowResult:
    """Measured vs published rates for one circuit row."""

    circuit: str
    kind: str  # "stuck-at" | "path-delay"
    test_set_bits: int
    care_density: float
    anchor_error: float
    measured: dict[str, float]
    published: dict[str, float]
    seconds: float = field(default=0.0, compare=False)
    # What the fault-tolerance layer absorbed while measuring this row
    # (attempts/retries/timeouts/crashes/resumed, see
    # FaultToleranceStats.as_dict).  Diagnostic only: excluded from
    # comparison and never rendered into tables, so resumed or retried
    # rows stay byte-identical to clean ones.
    fault_stats: dict[str, int] = field(
        default_factory=dict, compare=False, repr=False
    )

    def delta(self, column: str) -> float:
        """measured − published, in percentage points."""
        return self.measured[column] - self.published[column]


def _subsample(test_set: TestSet, max_bits: int, seed: int) -> TestSet:
    """Random pattern subset with at most ``max_bits`` total bits."""
    if test_set.total_bits <= max_bits:
        return test_set
    keep = max(1, max_bits // test_set.n_inputs)
    rng = np.random.default_rng(seed)
    chosen = np.sort(rng.choice(test_set.n_patterns, size=keep, replace=False))
    return TestSet(
        name=f"{test_set.name}-sample", patterns=test_set.patterns[chosen]
    )


@dataclass(frozen=True)
class _EAConfigJob:
    """One EA configuration of a row, expanded to per-run tasks."""

    label: str
    block_length: int
    tasks: tuple[RunTask, ...]


def _config_jobs(
    search_set: TestSet,
    configurations: list[tuple[str, int, int]],
    budget: ExperimentBudget,
    seed: int,
    kernel: str = "auto",
    mv_cache_size: int = DEFAULT_MV_CACHE_SIZE,
    tuning: TuningProfile | None = None,
    mv_feedback: bool | None = None,
    mv_cache_policy: str | None = None,
    mv_cache_persist: bool = False,
) -> list[_EAConfigJob]:
    """Build self-seeded run tasks for every (label, K, L) of a row.

    Each configuration gets its own :class:`~numpy.random.SeedSequence`
    child of the row seed, and the optimizer spawns one grandchild per
    run — the spawn tree fixes every run's stream before any work is
    submitted, so execution order can never change results.
    """
    blocks_cache: dict[int, BlockSet] = {}
    jobs = []
    for (label, block_length, n_vectors), child in zip(
        configurations, spawn_seeds(seed, len(configurations))
    ):
        if block_length not in blocks_cache:
            blocks_cache[block_length] = search_set.blocks(block_length)
        config = CompressionConfig(
            block_length=block_length,
            n_vectors=n_vectors,
            runs=budget.runs,
            kernel=kernel,
            mv_cache_size=mv_cache_size,
            mv_cache_policy=mv_cache_policy,
            mv_cache_persist=mv_cache_persist,
            tuning=tuning,
            mv_feedback=mv_feedback,
            ea=budget.ea_parameters(),
        )
        optimizer = EAMVOptimizer(config, seed=child)
        jobs.append(
            _EAConfigJob(
                label=label,
                block_length=block_length,
                tasks=optimizer.build_run_tasks(blocks_cache[block_length]),
            )
        )
    return jobs


def _execute_config_jobs(
    jobs: list[_EAConfigJob],
    test_set: TestSet,
    search_is_full: bool,
    backend: ExecutionBackend,
    progress: Callable[[str], None] | None,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    stats: FaultToleranceStats | None = None,
    cache: Any = None,
) -> list[tuple[float, float]]:
    """(mean rate, best rate) per configuration, via one flat fan-out.

    The search may have run on a subsample; every run's best MV set is
    then re-priced on the full test set with Huffman coding.  Progress
    emits one line per configuration, released in configuration order
    as soon as all of a configuration's runs are in.  ``retry``/
    ``timeout``/``stats`` ride through to the backend and ``cache``
    (a checkpoint :class:`~repro.experiments.checkpoint.RunTaskCache`)
    serves journaled runs instead of re-searching them.
    """
    grouped = grouped_map(
        backend,
        execute_run_task,
        [(job.label, job.tasks) for job in jobs],
        progress=progress,
        # `seconds` is elapsed since the row's flat submission started
        # (grouped_map's clock), not this configuration's own duration —
        # label it as a running total.
        describe=lambda label, n_runs, seconds: (
            f"  {label}: {n_runs} runs searched [t={seconds:5.1f}s]"
        ),
        retry=retry,
        timeout=timeout,
        stats=stats,
        cache=cache,
    )

    rates = []
    full_blocks_cache: dict[int, BlockSet] = {}
    for job, job_outcomes in zip(jobs, grouped):
        result = OptimizationResult(
            config=job.tasks[0].config, runs=tuple(job_outcomes)
        )
        if search_is_full:
            rates.append((result.mean_rate, result.best_rate))
            continue
        if job.block_length not in full_blocks_cache:
            full_blocks_cache[job.block_length] = test_set.blocks(
                job.block_length
            )
        repriced = [
            compress_blocks(
                full_blocks_cache[job.block_length],
                run.mv_set,
                EncodingStrategy.HUFFMAN,
            ).rate
            for run in result.runs
        ]
        rates.append((float(np.mean(repriced)), float(max(repriced))))
    return rates


def run_row(
    row: PaperRow,
    kind: str,
    budget: ExperimentBudget = QUICK,
    seed: int = 2005,
    spec_overrides: dict | None = None,
    backend: ExecutionBackend | None = None,
    progress: Callable[[str], None] | None = None,
    kernel: str = "auto",
    mv_cache_size: int = DEFAULT_MV_CACHE_SIZE,
    tuning: TuningProfile | None = None,
    mv_feedback: bool | None = None,
    mv_cache_policy: str | None = None,
    mv_cache_persist: bool = False,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    checkpoint: CheckpointStore | None = None,
) -> RowResult:
    """Reproduce one table row: calibrate, then run all methods.

    ``kind`` is ``"stuck-at"`` (Table 1 columns: 9C, 9C+HC, EA,
    EA-Best) or ``"path-delay"`` (Table 2 columns: 9C, 9C+HC, EA1,
    EA2).  All EA runs of the row (including the EA-Best grid) fan out
    through ``backend``; results are independent of the backend and
    job count.  ``kernel`` names the covering kernel pricing every EA
    fitness call and ``mv_cache_size`` bounds the per-run MV
    match-column cache (0 disables it).  ``tuning`` pins a
    machine-measured :class:`repro.tuning.TuningProfile` inside every
    run's config (so process workers tune identically) and
    ``mv_feedback`` forces the runtime MV-cache engagement monitor on
    or off.  ``mv_cache_policy`` selects the cache's eviction policy
    and ``mv_cache_persist`` warms every run from (and refreshes) the
    persisted on-disk cache.  All of these price bit-identically, so
    the table is byte-identical under any choice.

    ``retry`` and ``timeout`` make the row's EA fan-out fault
    tolerant (see :class:`repro.parallel.RetryPolicy`); ``checkpoint``
    journals every completed run under a per-row label so an
    interrupted row resumes instead of restarting — none of the three
    can change the measured values, only whether and how fast they
    arrive.  What was absorbed is reported in the result's
    ``fault_stats``.
    """
    if kind not in ("stuck-at", "path-delay"):
        raise ValueError(f"unknown experiment kind {kind!r}")
    backend = backend or SerialBackend()
    started = time.perf_counter()
    spec = SyntheticSpec(
        name=row.circuit,
        n_patterns=row.n_patterns,
        pattern_bits=row.pattern_bits,
        care_density=0.5,
        seed=seed,
        **(spec_overrides or {}),
    )
    calibration = calibrate_spec(spec, row.published["9C"])
    test_set = calibration.test_set

    nine_c_blocks = test_set.blocks(DEFAULT_NINE_C_BLOCK_LENGTH)
    measured: dict[str, float] = {
        "9C": compress_nine_c(nine_c_blocks).rate,
        "9C+HC": compress_nine_c(nine_c_blocks, use_huffman=True).rate,
    }

    if kind == "stuck-at":
        configurations = [("EA K=12,L=64", 12, 64)] + [
            (f"EA-Best K={block_length},L={n_vectors}", block_length, n_vectors)
            for block_length, n_vectors in budget.kl_grid
        ]
    else:
        configurations = [("EA1 K=8,L=9", 8, 9), ("EA2 K=12,L=64", 12, 64)]

    search_set = _subsample(test_set, budget.search_bit_cap, seed)
    jobs = _config_jobs(
        search_set, configurations, budget, seed, kernel, mv_cache_size,
        tuning, mv_feedback, mv_cache_policy, mv_cache_persist,
    )
    stats = FaultToleranceStats()
    cache = (
        checkpoint.cache(f"{kind}:{row.circuit}:seed{seed}", stats=stats)
        if checkpoint is not None
        else None
    )
    rates = _execute_config_jobs(
        jobs, test_set, search_set is test_set, backend, progress,
        retry=retry, timeout=timeout, stats=stats, cache=cache,
    )

    if kind == "stuck-at":
        mean_rate, _ = rates[0]
        measured["EA"] = mean_rate
        best_over_grid = max(best for _, best in rates[1:])
        measured["EA-Best"] = max(best_over_grid, mean_rate)
    else:
        measured["EA1"] = rates[0][0]
        measured["EA2"] = rates[1][0]

    return RowResult(
        circuit=row.circuit,
        kind=kind,
        test_set_bits=row.test_set_bits,
        care_density=calibration.spec.care_density,
        anchor_error=calibration.anchor_error,
        measured=measured,
        published=dict(row.published),
        seconds=time.perf_counter() - started,
        fault_stats=stats.as_dict(),
    )

"""Run the paper's four methods on one table row.

A row run is: calibrate a synthetic test set against the paper's 9C
column, then evaluate

* **9C** — fixed nine-vector code at K = 8 [20],
* **9C+HC** — same covering, Huffman codewords,
* **EA** (Table 1) / **EA1**, **EA2** (Table 2) — the paper's EA
  configurations, averaged over independent runs,
* **EA-Best** (Table 1) — best run over a K/L grid.

Budgets are explicit: the ``PAPER`` budget mirrors Section 4 (5 runs,
500-generation stagnation); the default ``QUICK`` budget shrinks the
run count and stagnation window so a full table regenerates in
minutes on a laptop.  Test sets larger than ``search_bit_cap`` are
subsampled for the EA *search* only — the reported rate always prices
the found MV sets on the complete test set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.blocks import BlockSet
from ..core.compressor import compress_blocks
from ..core.config import CompressionConfig, EAParameters
from ..core.encoding import EncodingStrategy
from ..core.nine_c import DEFAULT_NINE_C_BLOCK_LENGTH, compress_nine_c
from ..core.optimizer import EAMVOptimizer
from ..testdata.calibration import calibrate_spec
from ..testdata.registry import PaperRow
from ..testdata.synthetic import SyntheticSpec
from ..testdata.test_set import TestSet

__all__ = ["ExperimentBudget", "QUICK", "PAPER", "RowResult", "run_row"]


@dataclass(frozen=True)
class ExperimentBudget:
    """How much EA effort a table run spends per row."""

    runs: int
    stagnation_limit: int
    max_evaluations: int | None
    kl_grid: tuple[tuple[int, int], ...]  # EA-Best candidates (K, L)
    search_bit_cap: int  # subsample test sets beyond this for the search

    def ea_parameters(self) -> EAParameters:
        """Paper operator probabilities with this budget's termination."""
        return EAParameters(
            stagnation_limit=self.stagnation_limit,
            max_evaluations=self.max_evaluations,
        )


QUICK = ExperimentBudget(
    runs=3,
    stagnation_limit=30,
    max_evaluations=1500,
    kl_grid=((8, 16), (12, 64)),
    search_bit_cap=50_000,
)

PAPER = ExperimentBudget(
    runs=5,
    stagnation_limit=500,
    max_evaluations=None,
    kl_grid=((8, 16), (8, 32), (12, 64), (16, 64), (16, 128)),
    search_bit_cap=250_000,
)


@dataclass(frozen=True)
class RowResult:
    """Measured vs published rates for one circuit row."""

    circuit: str
    kind: str  # "stuck-at" | "path-delay"
    test_set_bits: int
    care_density: float
    anchor_error: float
    measured: dict[str, float]
    published: dict[str, float]
    seconds: float = field(default=0.0, compare=False)

    def delta(self, column: str) -> float:
        """measured − published, in percentage points."""
        return self.measured[column] - self.published[column]


def _subsample(test_set: TestSet, max_bits: int, seed: int) -> TestSet:
    """Random pattern subset with at most ``max_bits`` total bits."""
    if test_set.total_bits <= max_bits:
        return test_set
    keep = max(1, max_bits // test_set.n_inputs)
    rng = np.random.default_rng(seed)
    chosen = np.sort(rng.choice(test_set.n_patterns, size=keep, replace=False))
    return TestSet(
        name=f"{test_set.name}-sample", patterns=test_set.patterns[chosen]
    )


def _ea_rates(
    test_set: TestSet,
    block_length: int,
    n_vectors: int,
    budget: ExperimentBudget,
    seed: int,
) -> tuple[float, float]:
    """(mean rate, best rate) over ``budget.runs`` EA runs.

    The search may run on a subsample; every run's best MV set is
    re-priced on the full test set with Huffman coding.
    """
    search_set = _subsample(test_set, budget.search_bit_cap, seed)
    config = CompressionConfig(
        block_length=block_length,
        n_vectors=n_vectors,
        runs=budget.runs,
        ea=budget.ea_parameters(),
    )
    result = EAMVOptimizer(config, seed=seed).optimize(
        search_set.blocks(block_length)
    )
    if search_set is test_set:
        return result.mean_rate, result.best_rate
    full_blocks = test_set.blocks(block_length)
    rates = [
        compress_blocks(full_blocks, run.mv_set, EncodingStrategy.HUFFMAN).rate
        for run in result.runs
    ]
    return float(np.mean(rates)), float(max(rates))


def run_row(
    row: PaperRow,
    kind: str,
    budget: ExperimentBudget = QUICK,
    seed: int = 2005,
    spec_overrides: dict | None = None,
) -> RowResult:
    """Reproduce one table row: calibrate, then run all methods.

    ``kind`` is ``"stuck-at"`` (Table 1 columns: 9C, 9C+HC, EA,
    EA-Best) or ``"path-delay"`` (Table 2 columns: 9C, 9C+HC, EA1,
    EA2).
    """
    if kind not in ("stuck-at", "path-delay"):
        raise ValueError(f"unknown experiment kind {kind!r}")
    started = time.perf_counter()
    spec = SyntheticSpec(
        name=row.circuit,
        n_patterns=row.n_patterns,
        pattern_bits=row.pattern_bits,
        care_density=0.5,
        seed=seed,
        **(spec_overrides or {}),
    )
    calibration = calibrate_spec(spec, row.published["9C"])
    test_set = calibration.test_set

    nine_c_blocks = test_set.blocks(DEFAULT_NINE_C_BLOCK_LENGTH)
    measured: dict[str, float] = {
        "9C": compress_nine_c(nine_c_blocks).rate,
        "9C+HC": compress_nine_c(nine_c_blocks, use_huffman=True).rate,
    }

    if kind == "stuck-at":
        mean_rate, _ = _ea_rates(test_set, 12, 64, budget, seed)
        measured["EA"] = mean_rate
        best_over_grid = -float("inf")
        for block_length, n_vectors in budget.kl_grid:
            _, best = _ea_rates(
                test_set, block_length, n_vectors, budget, seed + 1
            )
            best_over_grid = max(best_over_grid, best)
        measured["EA-Best"] = max(best_over_grid, mean_rate)
    else:
        measured["EA1"], _ = _ea_rates(test_set, 8, 9, budget, seed)
        measured["EA2"], _ = _ea_rates(test_set, 12, 64, budget, seed)

    return RowResult(
        circuit=row.circuit,
        kind=kind,
        test_set_bits=row.test_set_bits,
        care_density=calibration.spec.care_density,
        anchor_error=calibration.anchor_error,
        measured=measured,
        published=dict(row.published),
        seconds=time.perf_counter() - started,
    )

"""Checkpoint/resume for experiment runs: journaled ``RunTask`` results.

A ``--budget paper`` table is hours of seeded EA runs; before this
module a crash or Ctrl-C at hour three discarded every completed run.
Now each finished :class:`~repro.core.optimizer.RunOutcome` is
journaled under ``REPRO_CACHE_DIR`` keyed by a **task fingerprint**,
and a ``--resume`` rerun serves journaled outcomes instead of
re-running the EA — producing byte-identical tables because the
journal stores exactly what the worker returned (the winning genome
and its exact rate; floats round-trip through JSON ``repr``).

The fingerprint is a SHA-256 over everything that determines a run's
result and *nothing else*:

* the semantic configuration — ``K``, ``L``, strategy, fill, run
  count and every EA parameter.  Performance-only knobs (kernel
  choice, MV-cache size, tuning profile, feedback mode) are excluded:
  they never change results, so a resume may legally switch them;
* the run index and the task's ``SeedSequence`` ``(entropy,
  spawn_key)`` — the spawn key encodes the task's position in the
  seed spawn tree, so reshaping a sweep cannot produce false hits;
* a digest of the block set (the circuit's actual bits), because
  different test sets are priced under identical configs and seeds.

Journals are per-label JSON-Lines files (one per table row or sweep),
rewritten through :func:`repro.io_utils.atomic_write_text` on every
record so a kill can never leave a truncated document; unreadable or
stale entries are skipped with a warning, never fatal.  Restored
:class:`~repro.ea.engine.EAResult` objects carry an empty
``history`` — per-generation traces are diagnostic-only and would
bloat the journal for no table-level benefit.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..core.blocks import BlockSet
from ..core.config import CompressionConfig
from ..core.matching import MVSet
from ..core.optimizer import RunOutcome, RunTask
from ..ea.engine import EAResult
from ..io_utils import atomic_write_text
from ..parallel.retry import FaultToleranceStats

__all__ = [
    "default_checkpoint_root",
    "task_fingerprint",
    "encode_outcome",
    "decode_outcome",
    "RunJournal",
    "RunTaskCache",
    "CheckpointStore",
]

logger = logging.getLogger("repro.experiments.checkpoint")

FORMAT_VERSION = 1


def default_checkpoint_root() -> Path:
    """``$REPRO_CACHE_DIR/checkpoints`` (default ``~/.cache/repro``)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    base = Path(root) if root else Path.home() / ".cache" / "repro"
    return base / "checkpoints"


# -- fingerprinting ----------------------------------------------------


def _semantic_config(config: CompressionConfig) -> dict[str, Any]:
    """The config fields that determine results — and nothing else.

    ``kernel``, ``mv_cache_size``, ``tuning`` and ``mv_feedback`` are
    deliberately absent: every kernel and cache setting produces
    bit-identical rates (the repo's parity tests pin this), so a
    resumed run may switch them freely without invalidating work.
    """
    ea = config.ea
    return {
        "block_length": int(config.block_length),
        "n_vectors": int(config.n_vectors),
        "strategy": str(config.strategy.value),
        "fill_default": int(config.fill_default),
        "runs": int(config.runs),
        "ea": {
            "population_size": int(ea.population_size),
            "children_per_generation": int(ea.children_per_generation),
            "crossover_probability": float(ea.crossover_probability),
            "mutation_probability": float(ea.mutation_probability),
            "inversion_probability": float(ea.inversion_probability),
            "stagnation_limit": int(ea.stagnation_limit),
            "max_evaluations": (
                None if ea.max_evaluations is None else int(ea.max_evaluations)
            ),
            "max_generations": (
                None if ea.max_generations is None else int(ea.max_generations)
            ),
            "include_all_u": bool(ea.include_all_u),
            "seed_nine_c": bool(ea.seed_nine_c),
            "parent_selection": str(ea.parent_selection),
            "tournament_size": int(ea.tournament_size),
            "adaptive_operators": bool(ea.adaptive_operators),
        },
    }


def _blocks_digest(blocks: BlockSet) -> str:
    """Content digest of a block set (dtype/shape-qualified)."""
    digest = hashlib.sha256()
    digest.update(f"K={blocks.block_length};bits={blocks.original_bits};".encode())
    for name in ("ones", "zeros", "counts", "sequence"):
        array = np.ascontiguousarray(getattr(blocks, name))
        digest.update(f"{name}:{array.dtype}:{array.shape}:".encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def _seed_identity(sequence: np.random.SeedSequence) -> dict[str, Any]:
    entropy = sequence.entropy
    if entropy is None:
        parts: list[int] = []
    elif isinstance(entropy, (list, tuple)):
        parts = [int(part) for part in entropy]
    else:
        parts = [int(entropy)]
    # Entropy words can exceed 64 bits; stringify for exact JSON.
    return {
        "entropy": [str(part) for part in parts],
        "spawn_key": [int(key) for key in sequence.spawn_key],
    }


def task_fingerprint(task: RunTask) -> str:
    """Stable hex key naming exactly one seeded run's result."""
    payload = {
        "version": FORMAT_VERSION,
        "run_index": int(task.run_index),
        "config": _semantic_config(task.config),
        "seed": _seed_identity(task.seed_sequence),
        "blocks": _blocks_digest(task.blocks),
    }
    serialized = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(serialized.encode()).hexdigest()


# -- outcome (de)serialization -----------------------------------------


def encode_outcome(outcome: RunOutcome) -> dict[str, Any]:
    """A :class:`RunOutcome` as plain JSON data (genome + exact rate)."""
    ea = outcome.ea_result
    return {
        "run_index": int(outcome.run_index),
        "rate": float(outcome.rate),
        "genome": [int(gene) for gene in np.asarray(ea.best_genome).ravel()],
        "ea": {
            "best_fitness": float(ea.best_fitness),
            "generations": int(ea.generations),
            "evaluations": int(ea.evaluations),
            "terminated_by": str(ea.terminated_by),
            "cache_hits": int(ea.cache_hits),
            "cache_hit_rate": float(ea.cache_hit_rate),
            "mv_cache_hits": int(ea.mv_cache_hits),
            "mv_cache_misses": int(ea.mv_cache_misses),
            "mv_cache_hit_rate": float(ea.mv_cache_hit_rate),
            "mv_cache_warm_loaded": int(ea.mv_cache_warm_loaded),
        },
    }


def decode_outcome(record: dict[str, Any], task: RunTask) -> RunOutcome:
    """Rebuild the exact :class:`RunOutcome` a worker once returned.

    The MV set is reconstructed from the journaled genome through the
    same ``MVSet.from_genome`` call :func:`execute_run_task` uses, so
    downstream re-pricing (the full-set Huffman pass in the runner)
    sees bit-identical inputs.  ``history`` is intentionally empty.
    """
    genome = np.asarray(record["genome"], dtype=np.int8)
    ea = record["ea"]
    ea_result = EAResult(
        best_genome=genome,
        best_fitness=float(ea["best_fitness"]),
        generations=int(ea["generations"]),
        evaluations=int(ea["evaluations"]),
        terminated_by=str(ea["terminated_by"]),
        history=(),
        cache_hits=int(ea["cache_hits"]),
        cache_hit_rate=float(ea["cache_hit_rate"]),
        mv_cache_hits=int(ea["mv_cache_hits"]),
        mv_cache_misses=int(ea["mv_cache_misses"]),
        mv_cache_hit_rate=float(ea["mv_cache_hit_rate"]),
        # .get: journals written before the warm-start field existed
        # decode as cold starts.
        mv_cache_warm_loaded=int(ea.get("mv_cache_warm_loaded", 0)),
    )
    return RunOutcome(
        run_index=int(record["run_index"]),
        mv_set=MVSet.from_genome(genome, task.config.block_length),
        rate=float(record["rate"]),
        ea_result=ea_result,
    )


# -- the journal -------------------------------------------------------


@dataclass
class RunJournal:
    """Fingerprint → outcome records for one label (row/sweep), on disk.

    JSON-Lines; loaded tolerantly (corrupt or wrong-version lines are
    skipped with a warning — a half-written journal only ever costs
    re-running the affected task, never the resume).  Every
    :meth:`record` rewrites the file through
    :func:`~repro.io_utils.atomic_write_text`, so the on-disk journal
    is always a complete, parseable document.
    """

    path: Path
    _records: dict[str, dict[str, Any]] = field(default_factory=dict)

    @classmethod
    def open(cls, path: Path) -> "RunJournal":
        journal = cls(path=Path(path))
        if not journal.path.exists():
            return journal
        try:
            text = journal.path.read_text()
        except OSError as error:
            logger.warning(
                "checkpoint journal %s unreadable (%s); starting fresh",
                journal.path, error,
            )
            return journal
        for line_number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                if entry.get("version") != FORMAT_VERSION:
                    raise ValueError(
                        f"unsupported version {entry.get('version')!r}"
                    )
                fingerprint = entry["fingerprint"]
                outcome = entry["outcome"]
            except (ValueError, KeyError, TypeError) as error:
                logger.warning(
                    "skipping corrupt checkpoint entry %s:%d (%s)",
                    journal.path, line_number, error,
                )
                continue
            journal._records[fingerprint] = outcome
        return journal

    def __len__(self) -> int:
        return len(self._records)

    def get(self, fingerprint: str) -> dict[str, Any] | None:
        return self._records.get(fingerprint)

    def record(self, fingerprint: str, outcome: dict[str, Any]) -> None:
        """Add (or refresh) one entry and persist the journal atomically."""
        self._records[fingerprint] = outcome
        lines = [
            json.dumps(
                {
                    "version": FORMAT_VERSION,
                    "fingerprint": key,
                    "outcome": value,
                },
                sort_keys=True,
            )
            for key, value in self._records.items()
        ]
        atomic_write_text(self.path, "\n".join(lines) + "\n")


@dataclass
class RunTaskCache:
    """The ``cache`` adapter :func:`repro.parallel.grouped_map` consumes.

    ``get(task)`` serves a journaled outcome (or ``None``), ``put``
    journals a fresh one.  Fingerprints are memoized per task object —
    tasks carry NumPy arrays and are unhashable, but within one map
    call the same object flows through ``get`` and ``put``.
    """

    journal: RunJournal
    stats: FaultToleranceStats | None = None
    hits: int = 0
    misses: int = 0
    _fingerprints: dict[int, str] = field(default_factory=dict)

    def _fingerprint(self, task: RunTask) -> str:
        key = id(task)
        fingerprint = self._fingerprints.get(key)
        if fingerprint is None:
            fingerprint = task_fingerprint(task)
            self._fingerprints[key] = fingerprint
        return fingerprint

    def get(self, task: Any) -> RunOutcome | None:
        if not isinstance(task, RunTask):
            return None
        record = self.journal.get(self._fingerprint(task))
        if record is None:
            self.misses += 1
            return None
        try:
            outcome = decode_outcome(record, task)
        except (ValueError, KeyError, TypeError) as error:
            logger.warning(
                "ignoring unusable checkpoint entry in %s (%s); re-running",
                self.journal.path, error,
            )
            self.misses += 1
            return None
        self.hits += 1
        if self.stats is not None:
            self.stats.resumed += 1
        return outcome

    def put(self, task: Any, outcome: Any) -> None:
        if not isinstance(task, RunTask) or not isinstance(outcome, RunOutcome):
            return
        self.journal.record(self._fingerprint(task), encode_outcome(outcome))


@dataclass(frozen=True)
class CheckpointStore:
    """Journal directory handle — small, picklable, safe to fan out.

    One journal file per label keeps concurrent row workers (table-level
    :class:`~repro.parallel.ProcessBackend` fan-out) from ever writing
    the same file: within a row, ``on_result`` fires from the row's own
    submitting thread, so journal writes are single-threaded.
    """

    root: Path

    @classmethod
    def default(cls) -> "CheckpointStore":
        return cls(root=default_checkpoint_root())

    def journal(self, label: str) -> RunJournal:
        digest = hashlib.sha256(label.encode()).hexdigest()[:12]
        printable = "".join(
            c if c.isalnum() or c in "-_." else "_" for c in label
        )
        return RunJournal.open(self.root / f"{printable[:40]}-{digest}.jsonl")

    def cache(
        self, label: str, stats: FaultToleranceStats | None = None
    ) -> RunTaskCache:
        """A grouped-map cache over this store's journal for ``label``."""
        return RunTaskCache(journal=self.journal(label), stats=stats)

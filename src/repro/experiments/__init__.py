"""Experiment harness: reproduce the paper's tables and ablations."""

from .ablations import (
    AblationPoint,
    decoder_cost_study,
    kl_sweep,
    operator_sweep,
    seeding_ablation,
    subsumption_ablation,
)
from .checkpoint import (
    CheckpointStore,
    RunJournal,
    RunTaskCache,
    default_checkpoint_root,
    task_fingerprint,
)
from .report import (
    ablation_markdown,
    experiments_markdown,
    shape_check_markdown,
    table_markdown,
)
from .runner import PAPER, QUICK, ExperimentBudget, RowResult, run_row
from .tables import (
    DEFAULT_QUICK_TABLE1,
    DEFAULT_QUICK_TABLE2,
    TABLE1_COLUMNS,
    TABLE2_COLUMNS,
    TableResult,
    build_table1,
    build_table2,
    format_table,
)

__all__ = [
    "AblationPoint",
    "decoder_cost_study",
    "kl_sweep",
    "operator_sweep",
    "seeding_ablation",
    "subsumption_ablation",
    "CheckpointStore",
    "RunJournal",
    "RunTaskCache",
    "default_checkpoint_root",
    "task_fingerprint",
    "ablation_markdown",
    "experiments_markdown",
    "shape_check_markdown",
    "table_markdown",
    "PAPER",
    "QUICK",
    "ExperimentBudget",
    "RowResult",
    "run_row",
    "DEFAULT_QUICK_TABLE1",
    "DEFAULT_QUICK_TABLE2",
    "TABLE1_COLUMNS",
    "TABLE2_COLUMNS",
    "TableResult",
    "build_table1",
    "build_table2",
    "format_table",
]

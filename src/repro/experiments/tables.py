"""Build and format Table 1 and Table 2 of the paper.

Each table run produces measured-vs-published rates per circuit plus
column averages, rendered in the paper's layout with the published
value in parentheses next to every measured one.

Rows are independent, so a parallel :class:`ExecutionBackend` fans
them out when the selection is at least as wide as the pool (one
worker per row, progress lines released in row order); narrower
builds instead pass the backend down to :func:`run_row` so each row's
own EA runs and K/L grid use the full width.  Either way the measured
values are identical to the serial build.
"""

from __future__ import annotations

import functools
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..core.fitness import DEFAULT_MV_CACHE_SIZE
from ..parallel import (
    ExecutionBackend,
    FaultToleranceStats,
    OrderedProgress,
    RetryPolicy,
    SerialBackend,
)
from ..testdata.registry import (
    TABLE1_AVERAGES,
    TABLE1_STUCK_AT,
    TABLE2_AVERAGES,
    TABLE2_PATH_DELAY,
    PaperRow,
)
from ..tuning.profile import TuningProfile
from .checkpoint import CheckpointStore
from .runner import QUICK, ExperimentBudget, RowResult, run_row

__all__ = [
    "TableResult",
    "TABLE1_COLUMNS",
    "TABLE2_COLUMNS",
    "DEFAULT_QUICK_TABLE1",
    "DEFAULT_QUICK_TABLE2",
    "build_table1",
    "build_table2",
    "format_table",
]

TABLE1_COLUMNS = ("9C", "9C+HC", "EA", "EA-Best")
TABLE2_COLUMNS = ("9C", "9C+HC", "EA1", "EA2")

# Circuits spanning three decades of test-set size for the default
# (quick) runs; full tables are available via --full in the CLI.
DEFAULT_QUICK_TABLE1 = (
    "s349", "s298", "s386", "c6288", "s510", "s1494", "s832", "c499",
    "s953", "s713", "c2670", "s5378", "s35932",
)
DEFAULT_QUICK_TABLE2 = (
    "s27", "s298", "s386", "s444", "s1494", "s820", "s953", "s838",
)


@dataclass(frozen=True)
class TableResult:
    """All rows of one reproduced table plus aggregate statistics."""

    kind: str
    columns: tuple[str, ...]
    rows: tuple[RowResult, ...]
    published_averages: dict[str, float]

    def measured_average(self, column: str) -> float:
        """Mean measured rate over the reproduced rows."""
        return float(np.mean([row.measured[column] for row in self.rows]))

    def published_subset_average(self, column: str) -> float:
        """Mean *published* rate over the same subset of rows."""
        return float(np.mean([row.published[column] for row in self.rows]))

    def ordering_holds(self) -> bool:
        """The paper's headline: EA methods beat 9C+HC beat 9C on
        average (checked on the reproduced subset)."""
        averages = [self.measured_average(column) for column in self.columns]
        return averages[0] <= averages[1] <= max(averages[2:])

    def wins(self, column_a: str, column_b: str) -> int:
        """Rows where ``column_a`` strictly beats ``column_b``."""
        return sum(
            1
            for row in self.rows
            if row.measured[column_a] > row.measured[column_b]
        )

    def fault_stats(self) -> dict[str, int]:
        """Fault-tolerance accounting summed over all rows (diagnostic)."""
        totals: dict[str, int] = {}
        for row in self.rows:
            for key, value in row.fault_stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals


def _format_row_progress(result: RowResult, columns: tuple[str, ...]) -> str:
    cells = "  ".join(
        f"{column}={result.measured[column]:6.1f}({result.published[column]:5.1f})"
        for column in columns
    )
    return f"{result.circuit:8s} {cells}  [{result.seconds:5.1f}s]"


def _build(
    table: Sequence[PaperRow],
    kind: str,
    columns: tuple[str, ...],
    published_averages: dict[str, float],
    circuits: Sequence[str] | None,
    budget: ExperimentBudget,
    seed: int,
    progress: Callable[[str], None] | None,
    backend: ExecutionBackend | None,
    kernel: str,
    mv_cache_size: int,
    tuning: TuningProfile | None,
    mv_feedback: bool | None,
    mv_cache_policy: str | None = None,
    mv_cache_persist: bool = False,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    checkpoint: CheckpointStore | None = None,
) -> TableResult:
    selected = [
        row for row in table if circuits is None or row.circuit in set(circuits)
    ]
    if not selected:
        raise ValueError("no circuits selected")
    backend = backend or SerialBackend()

    # Rows are the parallel unit when there are at least as many rows
    # as workers (saturates the pool AND overlaps the rows' serial
    # phases: calibration, 9C, re-pricing).  With fewer rows than
    # workers the rows run in sequence and the backend is handed down
    # instead, so each row's flattened EA runs × K/L grid use the full
    # width.  Either way the values are identical — every run is
    # self-seeded — only the scheduling differs.
    if backend.jobs > 1 and len(selected) >= backend.jobs:
        fan_in = OrderedProgress(progress)
        # Each row worker applies retry/timeout to its *in-row* EA
        # fan-out (serial inside the worker) and journals its own runs;
        # the row-level map additionally retries whole crashed rows —
        # with the journal in play a retried row resumes its completed
        # runs instead of repeating them.
        map_kwargs: dict = {}
        if retry is not None:
            map_kwargs["retry"] = retry
            map_kwargs["stats"] = FaultToleranceStats()
        results = backend.map(
            functools.partial(
                run_row,
                kind=kind,
                budget=budget,
                seed=seed,
                kernel=kernel,
                mv_cache_size=mv_cache_size,
                tuning=tuning,
                mv_feedback=mv_feedback,
                mv_cache_policy=mv_cache_policy,
                mv_cache_persist=mv_cache_persist,
                retry=retry,
                timeout=timeout,
                checkpoint=checkpoint,
            ),
            selected,
            on_result=lambda index, result: fan_in.publish(
                index, _format_row_progress(result, columns)
            ),
            **map_kwargs,
        )
    else:
        results = []
        for row in selected:
            result = run_row(
                row, kind, budget=budget, seed=seed, backend=backend,
                kernel=kernel, mv_cache_size=mv_cache_size,
                tuning=tuning, mv_feedback=mv_feedback,
                mv_cache_policy=mv_cache_policy,
                mv_cache_persist=mv_cache_persist,
                retry=retry, timeout=timeout, checkpoint=checkpoint,
            )
            results.append(result)
            if progress is not None:
                progress(_format_row_progress(result, columns))
    return TableResult(
        kind=kind,
        columns=columns,
        rows=tuple(results),
        published_averages=dict(published_averages),
    )


def build_table1(
    circuits: Sequence[str] | None = DEFAULT_QUICK_TABLE1,
    budget: ExperimentBudget = QUICK,
    seed: int = 2005,
    progress: Callable[[str], None] | None = None,
    backend: ExecutionBackend | None = None,
    kernel: str = "auto",
    mv_cache_size: int = DEFAULT_MV_CACHE_SIZE,
    tuning: TuningProfile | None = None,
    mv_feedback: bool | None = None,
    mv_cache_policy: str | None = None,
    mv_cache_persist: bool = False,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    checkpoint: CheckpointStore | None = None,
) -> TableResult:
    """Reproduce Table 1 (stuck-at).  ``circuits=None`` runs all 39.

    ``kernel`` selects the covering kernel for every EA fitness call
    and ``mv_cache_size`` bounds the per-run MV match-column cache
    (0 disables it); both price bit-identically, so a seeded table is
    byte-identical under any choice.  So are ``retry``/``timeout``
    (transient-fault absorption) and ``checkpoint`` (resume from a
    journal of completed runs) — the fault-tolerance layer can change
    wall clock, never values.
    """
    return _build(
        TABLE1_STUCK_AT,
        "stuck-at",
        TABLE1_COLUMNS,
        TABLE1_AVERAGES,
        circuits,
        budget,
        seed,
        progress,
        backend,
        kernel,
        mv_cache_size,
        tuning,
        mv_feedback,
        mv_cache_policy=mv_cache_policy,
        mv_cache_persist=mv_cache_persist,
        retry=retry,
        timeout=timeout,
        checkpoint=checkpoint,
    )


def build_table2(
    circuits: Sequence[str] | None = DEFAULT_QUICK_TABLE2,
    budget: ExperimentBudget = QUICK,
    seed: int = 2005,
    progress: Callable[[str], None] | None = None,
    backend: ExecutionBackend | None = None,
    kernel: str = "auto",
    mv_cache_size: int = DEFAULT_MV_CACHE_SIZE,
    tuning: TuningProfile | None = None,
    mv_feedback: bool | None = None,
    mv_cache_policy: str | None = None,
    mv_cache_persist: bool = False,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    checkpoint: CheckpointStore | None = None,
) -> TableResult:
    """Reproduce Table 2 (path delay).  ``circuits=None`` runs all 29."""
    return _build(
        TABLE2_PATH_DELAY,
        "path-delay",
        TABLE2_COLUMNS,
        TABLE2_AVERAGES,
        circuits,
        budget,
        seed,
        progress,
        backend,
        kernel,
        mv_cache_size,
        tuning,
        mv_feedback,
        mv_cache_policy=mv_cache_policy,
        mv_cache_persist=mv_cache_persist,
        retry=retry,
        timeout=timeout,
        checkpoint=checkpoint,
    )


def format_table(result: TableResult) -> str:
    """Render a reproduced table, paper-style, measured (published)."""
    title = (
        "Table 1: stuck-at test sets"
        if result.kind == "stuck-at"
        else "Table 2: path delay test sets"
    )
    header_cells = "".join(f"{column:>18s}" for column in result.columns)
    lines = [
        title,
        f"{'Circuit':8s}{'Size':>10s}{header_cells}",
        "-" * (18 + 18 * len(result.columns)),
    ]
    for row in result.rows:
        cells = "".join(
            f"{row.measured[column]:8.1f} ({row.published[column]:5.1f})"
            for column in result.columns
        )
        lines.append(f"{row.circuit:8s}{row.test_set_bits:>10d}{cells}")
    lines.append("-" * (18 + 18 * len(result.columns)))
    average_cells = "".join(
        f"{result.measured_average(column):8.1f} "
        f"({result.published_subset_average(column):5.1f})"
        for column in result.columns
    )
    lines.append(f"{'Average':8s}{'':>10s}{average_cells}")
    lines.append(
        "(published values in parentheses; averages over the reproduced "
        "subset)"
    )
    return "\n".join(lines)

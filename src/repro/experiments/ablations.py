"""Ablation studies for the design choices the paper calls out.

Section 4 of the paper motivates four follow-up questions, each
implemented here as a parameterized study:

* **K/L sweep** — "We generated data for numerous values of K and L
  ... we report our best results in the last column";
* **operator probabilities** — "further improvements are possible by
  fitting the parameters of the Evolutionary Optimization";
* **9C seeding** — "This could be ruled out by adding the 9C matching
  vector set to the initial population (which we did not)";
* **subsumption-aware encoding** — the Section 3.3 example:
  "Handling such cases explicitly could improve the compression
  rate."

Every sweep point is an independent set of EA runs, all sharing the
same master seed (a controlled comparison: variants differ only in
the knob under study).  The points' runs are flattened into one
self-seeded task list and submitted through an
:class:`repro.parallel.ExecutionBackend`, with per-point progress
released in point order; results are identical on every backend.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from ..core.blocks import BlockSet
from ..core.compressor import compress_blocks
from ..core.config import CompressionConfig, EAParameters
from ..core.encoding import EncodingStrategy
from ..core.fitness import DEFAULT_MV_CACHE_SIZE
from ..core.nine_c import DEFAULT_NINE_C_BLOCK_LENGTH, compress_nine_c
from ..core.optimizer import EAMVOptimizer, OptimizationResult, execute_run_task
from ..parallel import (
    ExecutionBackend,
    FaultToleranceStats,
    RetryPolicy,
    SerialBackend,
    grouped_map,
)
from ..testdata.test_set import TestSet
from ..tuning.profile import TuningProfile
from .checkpoint import CheckpointStore

__all__ = [
    "AblationPoint",
    "kl_sweep",
    "operator_sweep",
    "seeding_ablation",
    "subsumption_ablation",
    "decoder_cost_study",
]


@dataclass(frozen=True)
class AblationPoint:
    """One configuration of an ablation and its measured rates."""

    label: str
    mean_rate: float
    best_rate: float
    evaluations: int = 0


def _sweep(
    test_set: TestSet,
    points: Sequence[tuple[str, CompressionConfig]],
    seed: int,
    backend: ExecutionBackend | None,
    progress: Callable[[str], None] | None,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    checkpoint: CheckpointStore | None = None,
    checkpoint_label: str = "ablation",
) -> list[AblationPoint]:
    """Run every (label, config) point and collect its rates.

    All points' runs go through the backend as one flat task list;
    each point re-uses the same master seed so variants face identical
    random initial conditions (the knob under study is the only
    difference).  ``retry``/``timeout`` engage the backend's fault
    tolerance and ``checkpoint`` journals completed runs under
    ``checkpoint_label`` so an interrupted sweep resumes.
    """
    backend = backend or SerialBackend()
    blocks_cache: dict[int, BlockSet] = {}
    tasks_per_point = []
    for _, config in points:
        if config.block_length not in blocks_cache:
            blocks_cache[config.block_length] = test_set.blocks(
                config.block_length
            )
        optimizer = EAMVOptimizer(config, seed=seed)
        tasks_per_point.append(
            optimizer.build_run_tasks(blocks_cache[config.block_length])
        )

    cache = (
        checkpoint.cache(f"{checkpoint_label}:seed{seed}")
        if checkpoint is not None
        else None
    )
    grouped = grouped_map(
        backend,
        execute_run_task,
        [
            (label, tasks)
            for (label, _), tasks in zip(points, tasks_per_point)
        ],
        progress=progress,
        retry=retry,
        timeout=timeout,
        cache=cache,
    )

    results = []
    for (label, config), point_outcomes in zip(points, grouped):
        result = OptimizationResult(config=config, runs=tuple(point_outcomes))
        results.append(
            AblationPoint(
                label=label,
                mean_rate=result.mean_rate,
                best_rate=result.best_rate,
                evaluations=result.total_evaluations,
            )
        )
    return results


def kl_sweep(
    test_set: TestSet,
    grid: Sequence[tuple[int, int]] = ((4, 8), (8, 9), (8, 32), (12, 64), (16, 64)),
    ea: EAParameters | None = None,
    runs: int = 3,
    seed: int = 7,
    backend: ExecutionBackend | None = None,
    progress: Callable[[str], None] | None = None,
    kernel: str = "auto",
    mv_cache_size: int = DEFAULT_MV_CACHE_SIZE,
    tuning: TuningProfile | None = None,
    mv_feedback: bool | None = None,
    mv_cache_policy: str | None = None,
    mv_cache_persist: bool = False,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    checkpoint: CheckpointStore | None = None,
) -> list[AblationPoint]:
    """Compression rate across (K, L) — the source of 'EA-Best'."""
    ea = ea or EAParameters(stagnation_limit=30, max_evaluations=1200)
    points = [
        (
            f"K={block_length},L={n_vectors}",
            CompressionConfig(
                block_length=block_length,
                n_vectors=n_vectors,
                runs=runs,
                kernel=kernel,
                mv_cache_size=mv_cache_size,
                mv_cache_policy=mv_cache_policy,
                mv_cache_persist=mv_cache_persist,
                tuning=tuning,
                mv_feedback=mv_feedback,
                ea=ea,
            ),
        )
        for block_length, n_vectors in grid
    ]
    return _sweep(
        test_set, points, seed, backend, progress,
        retry=retry, timeout=timeout, checkpoint=checkpoint,
        checkpoint_label=f"ablation:kl:{test_set.name}",
    )


def operator_sweep(
    test_set: TestSet,
    block_length: int = 12,
    n_vectors: int = 64,
    runs: int = 3,
    seed: int = 7,
    backend: ExecutionBackend | None = None,
    progress: Callable[[str], None] | None = None,
    kernel: str = "auto",
    mv_cache_size: int = DEFAULT_MV_CACHE_SIZE,
    tuning: TuningProfile | None = None,
    mv_feedback: bool | None = None,
    mv_cache_policy: str | None = None,
    mv_cache_persist: bool = False,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    checkpoint: CheckpointStore | None = None,
) -> list[AblationPoint]:
    """Vary the operator-probability mix around the paper's setting."""
    base = dict(stagnation_limit=30, max_evaluations=1200)
    variants = {
        "paper (30/30/10)": EAParameters(**base),
        "crossover-heavy (60/20/10)": EAParameters(
            crossover_probability=0.6, mutation_probability=0.2, **base
        ),
        "mutation-heavy (10/70/10)": EAParameters(
            crossover_probability=0.1, mutation_probability=0.7, **base
        ),
        "no inversion (40/40/0)": EAParameters(
            crossover_probability=0.4,
            mutation_probability=0.4,
            inversion_probability=0.0,
            **base,
        ),
        "mutation only (0/100/0)": EAParameters(
            crossover_probability=0.0,
            mutation_probability=1.0,
            inversion_probability=0.0,
            **base,
        ),
    }
    points = [
        (
            label,
            CompressionConfig(
                block_length=block_length, n_vectors=n_vectors, runs=runs,
                kernel=kernel, mv_cache_size=mv_cache_size,
                mv_cache_policy=mv_cache_policy,
                mv_cache_persist=mv_cache_persist,
                tuning=tuning, mv_feedback=mv_feedback, ea=ea,
            ),
        )
        for label, ea in variants.items()
    ]
    return _sweep(
        test_set, points, seed, backend, progress,
        retry=retry, timeout=timeout, checkpoint=checkpoint,
        checkpoint_label=f"ablation:operators:{test_set.name}",
    )


def seeding_ablation(
    test_set: TestSet,
    block_length: int = 12,
    n_vectors: int = 64,
    runs: int = 3,
    seed: int = 7,
    backend: ExecutionBackend | None = None,
    progress: Callable[[str], None] | None = None,
    kernel: str = "auto",
    mv_cache_size: int = DEFAULT_MV_CACHE_SIZE,
    tuning: TuningProfile | None = None,
    mv_feedback: bool | None = None,
    mv_cache_policy: str | None = None,
    mv_cache_persist: bool = False,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    checkpoint: CheckpointStore | None = None,
) -> list[AblationPoint]:
    """Random initial population vs one individual seeded with 9C MVs."""
    base = dict(stagnation_limit=30, max_evaluations=1200)
    points = [
        (
            label,
            CompressionConfig(
                block_length=block_length, n_vectors=n_vectors, runs=runs,
                kernel=kernel, mv_cache_size=mv_cache_size,
                mv_cache_policy=mv_cache_policy,
                mv_cache_persist=mv_cache_persist,
                tuning=tuning, mv_feedback=mv_feedback, ea=ea,
            ),
        )
        for label, ea in (
            ("random init (paper)", EAParameters(**base)),
            ("9C-seeded init", EAParameters(seed_nine_c=True, **base)),
        )
    ]
    return _sweep(
        test_set, points, seed, backend, progress,
        retry=retry, timeout=timeout, checkpoint=checkpoint,
        checkpoint_label=f"ablation:seeding:{test_set.name}",
    )


def subsumption_ablation(
    test_set: TestSet,
    block_length: int = 12,
    n_vectors: int = 64,
    runs: int = 3,
    seed: int = 7,
    backend: ExecutionBackend | None = None,
    progress: Callable[[str], None] | None = None,
    kernel: str = "auto",
    mv_cache_size: int = DEFAULT_MV_CACHE_SIZE,
    tuning: TuningProfile | None = None,
    mv_feedback: bool | None = None,
    mv_cache_policy: str | None = None,
    mv_cache_persist: bool = False,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
) -> list[AblationPoint]:
    """Plain Huffman vs subsumption-refined encoding of the same MVs.

    The EA searches once under plain Huffman (the paper's setup); the
    found MV sets are then re-encoded with the Section 3.3 merge.
    """
    ea = EAParameters(stagnation_limit=30, max_evaluations=1200)
    config = CompressionConfig(
        block_length=block_length, n_vectors=n_vectors, runs=runs,
        kernel=kernel, mv_cache_size=mv_cache_size,
        mv_cache_policy=mv_cache_policy,
        mv_cache_persist=mv_cache_persist,
        tuning=tuning, mv_feedback=mv_feedback, ea=ea,
    )
    blocks = test_set.blocks(block_length)
    result = EAMVOptimizer(config, seed=seed, backend=backend).optimize(
        blocks, retry=retry, timeout=timeout
    )
    if progress is not None:
        progress(f"  search done ({runs} runs); re-encoding both ways")
    plain = [
        compress_blocks(blocks, run.mv_set, EncodingStrategy.HUFFMAN).rate
        for run in result.runs
    ]
    refined = [
        compress_blocks(blocks, run.mv_set, EncodingStrategy.HUFFMAN_SUBSUME).rate
        for run in result.runs
    ]
    return [
        AblationPoint(
            label="huffman (paper)",
            mean_rate=float(sum(plain) / len(plain)),
            best_rate=float(max(plain)),
            evaluations=result.total_evaluations,
        ),
        AblationPoint(
            label="huffman + subsumption (Sec. 3.3)",
            mean_rate=float(sum(refined) / len(refined)),
            best_rate=float(max(refined)),
            evaluations=result.total_evaluations,
        ),
    ]


def decoder_cost_study(
    test_set: TestSet,
    block_length: int = 12,
    n_vectors: int = 64,
    seed: int = 7,
    backend: ExecutionBackend | None = None,
    kernel: str = "auto",
    mv_cache_size: int = DEFAULT_MV_CACHE_SIZE,
    tuning: TuningProfile | None = None,
    mv_feedback: bool | None = None,
    mv_cache_policy: str | None = None,
    mv_cache_persist: bool = False,
) -> dict[str, dict[str, float]]:
    """Payload vs code-table cost for 9C and the EA decoder.

    Supports the paper's Section 5 discussion of reconfigurable
    decoders: the EA decoder needs a per-test-set code table whose
    size is tiny next to the payload saving.
    """
    nine_c_blocks = test_set.blocks(DEFAULT_NINE_C_BLOCK_LENGTH)
    nine_c = compress_nine_c(nine_c_blocks)
    ea_config = CompressionConfig(
        block_length=block_length,
        n_vectors=n_vectors,
        runs=1,
        kernel=kernel,
        mv_cache_size=mv_cache_size,
        mv_cache_policy=mv_cache_policy,
        mv_cache_persist=mv_cache_persist,
        tuning=tuning,
        mv_feedback=mv_feedback,
        ea=EAParameters(stagnation_limit=30, max_evaluations=1200),
    )
    blocks = test_set.blocks(block_length)
    best = (
        EAMVOptimizer(ea_config, seed=seed, backend=backend)
        .optimize(blocks)
        .best_mv_set
    )
    ea = compress_blocks(blocks, best)
    return {
        "9C": {
            "rate": nine_c.rate,
            "payload_bits": float(nine_c.compressed_bits),
            "code_table_bits": float(nine_c.code_table_bits()),
        },
        "EA": {
            "rate": ea.rate,
            "payload_bits": float(ea.compressed_bits),
            "code_table_bits": float(ea.code_table_bits()),
        },
    }

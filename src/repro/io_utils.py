"""Crash-safe artifact writes shared by every JSON-emitting layer.

Tuning profiles, bench artifacts (``BENCH_*.json``) and checkpoint
journals are all small JSON documents that other runs *read back* —
a process killed mid-``write_text`` must never leave a truncated
document that poisons the next run.  :func:`atomic_write_text` is the
one write path they all share: the content goes to a temporary file in
the destination directory, is flushed and fsynced, and then replaces
the destination via :func:`os.replace` — atomic on POSIX and Windows
alike, so readers observe either the old complete document or the new
complete document, never a prefix.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json"]


def atomic_write_bytes(path: Path | str, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    The binary counterpart of :func:`atomic_write_text`, used for the
    persisted MV match-column caches: two processes saving the same
    cache key race harmlessly — each rename publishes one complete
    file, the last rename wins, and readers never observe a prefix.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: Path | str, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    Parent directories are created as needed.  The temporary file
    lives in the destination directory so the final rename never
    crosses a filesystem boundary (cross-device renames are copies,
    which reintroduce the torn-write window).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        # Never leave orphaned temp files behind a failed/interrupted
        # write; the destination is untouched either way.
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: Path | str, document: object, indent: int = 2) -> Path:
    """Serialize ``document`` as JSON and write it atomically."""
    return atomic_write_text(path, json.dumps(document, indent=indent) + "\n")

"""Seeded random combinational circuit generator.

The full ISCAS suites are not redistributable inside this repository,
so beyond the embedded genuine benchmarks (c17, s27) the circuit
substrate supplies *generated* combinational circuits: random gate
DAGs with an ISCAS-like gate-type mix.  Generation is deterministic
under a seed, so tests and experiments can reference "gen_200x500"
style circuits reproducibly.
"""

from __future__ import annotations

import numpy as np

from .netlist import Gate, GateType, Netlist

__all__ = ["random_netlist"]

# Rough gate-type mix of the ISCAS-85 suite: NAND/NOR-heavy with
# inverters and a little XOR flavour.
_DEFAULT_TYPE_WEIGHTS: tuple[tuple[GateType, float], ...] = (
    (GateType.NAND, 0.30),
    (GateType.AND, 0.15),
    (GateType.NOR, 0.15),
    (GateType.OR, 0.12),
    (GateType.NOT, 0.15),
    (GateType.BUF, 0.03),
    (GateType.XOR, 0.07),
    (GateType.XNOR, 0.03),
)


def random_netlist(
    n_inputs: int,
    n_gates: int,
    seed: int,
    name: str | None = None,
    max_fanin: int = 4,
    locality: int = 24,
) -> Netlist:
    """Generate a random combinational netlist.

    Gates are created in topological order; each gate draws its fanin
    from the ``locality`` most recently created nets (keeps the DAG
    deep and ISCAS-like rather than a flat bipartite soup).  Every net
    without fanout becomes a primary output.

    >>> n = random_netlist(8, 30, seed=1)
    >>> n.n_gates, len(n.inputs)
    (30, 8)
    """
    if n_inputs < 1:
        raise ValueError("need at least one input")
    if n_gates < 1:
        raise ValueError("need at least one gate")
    if max_fanin < 2:
        raise ValueError("max_fanin must be >= 2")
    rng = np.random.default_rng(seed)
    types = [t for t, _ in _DEFAULT_TYPE_WEIGHTS]
    weights = np.asarray([w for _, w in _DEFAULT_TYPE_WEIGHTS])
    weights = weights / weights.sum()

    inputs = [f"i{index}" for index in range(n_inputs)]
    nets: list[str] = list(inputs)
    gates: list[Gate] = []
    for gate_index in range(n_gates):
        gate_type = types[int(rng.choice(len(types), p=weights))]
        window = nets[-locality:] if len(nets) > locality else nets
        if gate_type in (GateType.NOT, GateType.BUF):
            fanin_count = 1
        else:
            fanin_count = int(rng.integers(2, min(max_fanin, len(window)) + 1)) \
                if len(window) >= 2 else 1
            if fanin_count < 2:
                gate_type = GateType.NOT
                fanin_count = 1
        chosen = rng.choice(len(window), size=fanin_count, replace=False)
        fanin = tuple(window[int(i)] for i in chosen)
        output = f"n{gate_index}"
        gates.append(Gate(output=output, gate_type=gate_type, inputs=fanin))
        nets.append(output)

    read = {source for gate in gates for source in gate.inputs}
    outputs = [gate.output for gate in gates if gate.output not in read]
    if not outputs:
        outputs = [gates[-1].output]
    return Netlist(
        name=name or f"gen_{n_inputs}x{n_gates}_s{seed}",
        inputs=inputs,
        outputs=outputs,
        gates=gates,
    )

"""Circuit substrate: netlists, .bench parsing, simulation, generation."""

from .bench_parser import parse_bench, parse_bench_file, write_bench
from .generator import random_netlist
from .library import C17_BENCH, S27_BENCH, available_circuits, load_circuit
from .netlist import Gate, GateType, Netlist, NetlistError
from .paths import Path, count_paths, enumerate_paths
from .simulator import evaluate_gate3, simulate3, simulate_patterns

__all__ = [
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "random_netlist",
    "C17_BENCH",
    "S27_BENCH",
    "available_circuits",
    "load_circuit",
    "Gate",
    "GateType",
    "Netlist",
    "NetlistError",
    "Path",
    "count_paths",
    "enumerate_paths",
    "evaluate_gate3",
    "simulate3",
    "simulate_patterns",
]

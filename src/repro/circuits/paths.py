"""Structural path enumeration for path-delay testing.

A *path* is a sequence of nets from a primary input to a primary
output following gate connections.  Path-delay fault testing targets
each path with both a rising and a falling transition at its input;
the paper's Table 2 test sets come from a robust path-delay ATPG (the
TIP tool).  ISCAS circuits have exponentially many paths, so
enumeration takes a limit and yields the lexicographically-first
paths depth-first.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from .netlist import Netlist

__all__ = ["Path", "enumerate_paths", "count_paths"]


@dataclass(frozen=True)
class Path:
    """A structural PI→PO path, as the ordered tuple of nets on it."""

    nets: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.nets) < 1:
            raise ValueError("a path needs at least one net")

    @property
    def start(self) -> str:
        """The primary input where the transition is launched."""
        return self.nets[0]

    @property
    def end(self) -> str:
        """The primary output where the transition is captured."""
        return self.nets[-1]

    @property
    def length(self) -> int:
        """Number of gates along the path."""
        return len(self.nets) - 1

    def __str__(self) -> str:
        return " -> ".join(self.nets)


def enumerate_paths(
    netlist: Netlist, limit: int | None = None
) -> Iterator[Path]:
    """Yield PI→PO paths depth-first, up to ``limit`` paths.

    >>> from .library import load_circuit
    >>> paths = list(enumerate_paths(load_circuit("c17")))
    >>> len(paths)
    11
    """
    outputs = set(netlist.outputs)
    yielded = 0
    for start in netlist.inputs:
        stack: list[tuple[str, tuple[str, ...]]] = [(start, (start,))]
        while stack:
            net, prefix = stack.pop()
            if net in outputs:
                yield Path(prefix)
                yielded += 1
                if limit is not None and yielded >= limit:
                    return
            # Continue through fanout even from a PO-marked net when it
            # feeds further logic (pseudo-POs of scan conversion do).
            for sink in reversed(netlist.fanout(net)):
                stack.append((sink, prefix + (sink,)))


def count_paths(netlist: Netlist) -> int:
    """Exact number of PI→PO paths, by dynamic programming.

    Counts in topological order, so it stays polynomial even when
    enumeration would blow up.
    """
    outputs = set(netlist.outputs)
    paths_into: dict[str, int] = {net: 1 for net in netlist.inputs}
    total = sum(1 for net in netlist.inputs if net in outputs)
    for gate in netlist.topological_order():
        paths_into[gate.output] = sum(paths_into[s] for s in gate.inputs)
        if gate.output in outputs:
            total += paths_into[gate.output]
    return total

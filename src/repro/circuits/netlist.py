"""Gate-level netlist representation.

The compression paper evaluates on ISCAS-85 circuits and the
combinational cores of ISCAS-89 circuits.  This module provides the
gate-level data structure those benchmarks live in: named nets driven
by primitive gates, with primary inputs and outputs.  Sequential
elements (DFFs) are handled the standard full-scan way — a flip-flop's
output becomes a pseudo primary input and its input a pseudo primary
output — which is exactly what "combinational part of ISCAS-89" means
in the paper.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

__all__ = ["GateType", "Gate", "Netlist", "NetlistError"]


class NetlistError(ValueError):
    """Raised for structurally invalid netlists."""


class GateType(enum.Enum):
    """Primitive gate types of the .bench format."""

    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"

    @property
    def controlling_value(self) -> int | None:
        """The input value that alone determines the output (None for
        XOR-family and single-input gates)."""
        if self in (GateType.AND, GateType.NAND):
            return 0
        if self in (GateType.OR, GateType.NOR):
            return 1
        return None

    @property
    def inverting(self) -> bool:
        """True if the gate complements its 'natural' function."""
        return self in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT)


@dataclass(frozen=True)
class Gate:
    """One gate: an output net computed from input nets."""

    output: str
    gate_type: GateType
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.output:
            raise NetlistError("gate output net must be named")
        if not self.inputs:
            raise NetlistError(f"gate {self.output} has no inputs")
        if self.gate_type in (GateType.NOT, GateType.BUF) and len(self.inputs) != 1:
            raise NetlistError(
                f"{self.gate_type.value} gate {self.output} must have exactly "
                f"one input, got {len(self.inputs)}"
            )
        if (
            self.gate_type in (GateType.XOR, GateType.XNOR)
            and len(self.inputs) < 2
        ):
            raise NetlistError(
                f"{self.gate_type.value} gate {self.output} needs >= 2 inputs"
            )


class Netlist:
    """A combinational netlist: primary inputs, gates, primary outputs.

    Gates are stored by output net name; :meth:`topological_order`
    yields gates so that every gate appears after its drivers.
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        gates: Iterable[Gate],
    ) -> None:
        self.name = name
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        self.gates: dict[str, Gate] = {}
        for gate in gates:
            if gate.output in self.gates:
                raise NetlistError(f"net {gate.output} driven twice")
            if gate.output in self.inputs:
                raise NetlistError(f"primary input {gate.output} driven by a gate")
            self.gates[gate.output] = gate
        self._validate()
        self._order = self._topological_sort()
        self._fanouts = self._build_fanouts()

    # -- construction checks -------------------------------------------

    def _validate(self) -> None:
        if len(set(self.inputs)) != len(self.inputs):
            raise NetlistError("duplicate primary inputs")
        if len(set(self.outputs)) != len(self.outputs):
            raise NetlistError("duplicate primary outputs")
        known = set(self.inputs) | set(self.gates)
        for gate in self.gates.values():
            for net in gate.inputs:
                if net not in known:
                    raise NetlistError(
                        f"gate {gate.output} reads undriven net {net}"
                    )
        for net in self.outputs:
            if net not in known:
                raise NetlistError(f"primary output {net} is undriven")

    def _topological_sort(self) -> tuple[str, ...]:
        order: list[str] = []
        state: dict[str, int] = {}  # 0 = unvisited, 1 = visiting, 2 = done

        def visit(net: str) -> None:
            stack = [(net, iter(self.gates[net].inputs))] if net in self.gates else []
            if net not in self.gates:
                return
            state[net] = 1
            while stack:
                current, iterator = stack[-1]
                advanced = False
                for source in iterator:
                    if source not in self.gates:
                        continue
                    status = state.get(source, 0)
                    if status == 1:
                        raise NetlistError(f"combinational loop through {source}")
                    if status == 0:
                        state[source] = 1
                        stack.append((source, iter(self.gates[source].inputs)))
                        advanced = True
                        break
                if not advanced:
                    state[current] = 2
                    order.append(current)
                    stack.pop()

        for net in self.gates:
            if state.get(net, 0) == 0:
                visit(net)
        return tuple(order)

    def _build_fanouts(self) -> dict[str, tuple[str, ...]]:
        fanouts: dict[str, list[str]] = {net: [] for net in self.all_nets()}
        for gate in self.gates.values():
            for source in gate.inputs:
                fanouts[source].append(gate.output)
        return {net: tuple(sinks) for net, sinks in fanouts.items()}

    # -- queries --------------------------------------------------------

    def all_nets(self) -> tuple[str, ...]:
        """Every net name: primary inputs first, then gate outputs in
        topological order."""
        return self.inputs + self._order

    def topological_order(self) -> tuple[Gate, ...]:
        """Gates ordered so drivers precede their readers."""
        return tuple(self.gates[net] for net in self._order)

    def fanout(self, net: str) -> tuple[str, ...]:
        """Output nets of the gates that read ``net``."""
        return self._fanouts.get(net, ())

    def fanout_cone(self, net: str) -> set[str]:
        """All nets transitively reachable from ``net`` (inclusive)."""
        cone = {net}
        frontier = [net]
        while frontier:
            current = frontier.pop()
            for sink in self.fanout(current):
                if sink not in cone:
                    cone.add(sink)
                    frontier.append(sink)
        return cone

    @property
    def n_gates(self) -> int:
        """Number of gates."""
        return len(self.gates)

    def levels(self) -> dict[str, int]:
        """Logic depth per net (PIs at level 0)."""
        level = {net: 0 for net in self.inputs}
        for gate in self.topological_order():
            level[gate.output] = 1 + max(level[s] for s in gate.inputs)
        return level

    def depth(self) -> int:
        """Maximum logic depth over all nets."""
        levels = self.levels()
        return max(levels.values()) if levels else 0

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)}, gates={self.n_gates})"
        )

"""Reader/writer for the ISCAS-89 ``.bench`` netlist format.

The format the benchmark suites ship in::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G14 = NOT(G0)
    G8 = AND(G14, G6)

DFFs are converted to the full-scan combinational core: the flip-flop
output becomes a pseudo primary input and the flip-flop's data input a
pseudo primary output — the paper's "combinational parts of ISCAS-89
circuits".
"""

from __future__ import annotations

import re
from pathlib import Path

from .netlist import Gate, GateType, Netlist, NetlistError

__all__ = ["parse_bench", "parse_bench_file", "write_bench"]

_INPUT_RE = re.compile(r"^INPUT\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_OUTPUT_RE = re.compile(r"^OUTPUT\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^=\s]+)\s*=\s*([A-Za-z]+)\s*\(\s*([^)]*)\s*\)$"
)

_TYPE_ALIASES = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
}


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` text into a combinational :class:`Netlist`.

    >>> netlist = parse_bench('''
    ...     INPUT(a)
    ...     INPUT(b)
    ...     OUTPUT(y)
    ...     y = NAND(a, b)
    ... ''', name="tiny")
    >>> netlist.n_gates
    1
    """
    inputs: list[str] = []
    outputs: list[str] = []
    gates: list[Gate] = []
    flip_flops: list[tuple[str, str]] = []  # (output net, data-input net)

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        match = _INPUT_RE.match(line)
        if match:
            inputs.append(match.group(1))
            continue
        match = _OUTPUT_RE.match(line)
        if match:
            outputs.append(match.group(1))
            continue
        match = _GATE_RE.match(line)
        if match:
            output_net, type_name, input_list = match.groups()
            input_nets = tuple(
                net.strip() for net in input_list.split(",") if net.strip()
            )
            type_name = type_name.upper()
            if type_name == "DFF":
                if len(input_nets) != 1:
                    raise NetlistError(f"DFF {output_net} must have one input")
                flip_flops.append((output_net, input_nets[0]))
                continue
            if type_name not in _TYPE_ALIASES:
                raise NetlistError(f"unknown gate type {type_name!r} in {line!r}")
            gates.append(
                Gate(
                    output=output_net,
                    gate_type=_TYPE_ALIASES[type_name],
                    inputs=input_nets,
                )
            )
            continue
        raise NetlistError(f"unparsable .bench line: {raw_line!r}")

    # Full-scan conversion: FF outputs -> pseudo-PIs, FF inputs -> pseudo-POs.
    for ff_output, ff_input in flip_flops:
        inputs.append(ff_output)
        if ff_input not in outputs:
            outputs.append(ff_input)
    return Netlist(name=name, inputs=inputs, outputs=outputs, gates=gates)


def parse_bench_file(path: str | Path) -> Netlist:
    """Parse a ``.bench`` file; the netlist is named after the file stem."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(netlist: Netlist) -> str:
    """Serialize a combinational netlist back to ``.bench`` text.

    The output parses back to an equivalent netlist (pseudo-PIs/POs
    from scan conversion are emitted as plain INPUT/OUTPUT lines).
    """
    lines = [f"# {netlist.name}"]
    lines.extend(f"INPUT({net})" for net in netlist.inputs)
    lines.extend(f"OUTPUT({net})" for net in netlist.outputs)
    for gate in netlist.topological_order():
        joined = ", ".join(gate.inputs)
        lines.append(f"{gate.output} = {gate.gate_type.value}({joined})")
    return "\n".join(lines) + "\n"

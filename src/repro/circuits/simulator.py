"""Logic simulation: two-valued and three-valued (01X).

Three-valued simulation is the workhorse of the ATPG stack: test cubes
contain don't-cares, so the simulator must propagate ``X`` pessimally
(an AND with a 0 input is 0 no matter the Xs; with inputs 1 and X it
is X).  A bit-parallel two-valued simulator over numpy boolean arrays
is provided for simulating many fully-specified patterns at once.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..core.trits import DC, ONE, ZERO
from .netlist import Gate, GateType, Netlist

__all__ = ["evaluate_gate3", "simulate3", "simulate_patterns"]


def _and3(values: Sequence[int]) -> int:
    if any(v == ZERO for v in values):
        return ZERO
    if all(v == ONE for v in values):
        return ONE
    return DC


def _or3(values: Sequence[int]) -> int:
    if any(v == ONE for v in values):
        return ONE
    if all(v == ZERO for v in values):
        return ZERO
    return DC


def _xor3(values: Sequence[int]) -> int:
    result = 0
    for value in values:
        if value == DC:
            return DC
        result ^= value
    return result


def _not3(value: int) -> int:
    if value == DC:
        return DC
    return 1 - value


def evaluate_gate3(gate_type: GateType, values: Sequence[int]) -> int:
    """Evaluate one gate over three-valued inputs.

    >>> evaluate_gate3(GateType.AND, (ONE, DC))
    2
    >>> evaluate_gate3(GateType.AND, (ZERO, DC))
    0
    """
    if gate_type is GateType.AND:
        return _and3(values)
    if gate_type is GateType.NAND:
        return _not3(_and3(values))
    if gate_type is GateType.OR:
        return _or3(values)
    if gate_type is GateType.NOR:
        return _not3(_or3(values))
    if gate_type is GateType.XOR:
        return _xor3(values)
    if gate_type is GateType.XNOR:
        return _not3(_xor3(values))
    if gate_type is GateType.NOT:
        return _not3(values[0])
    if gate_type is GateType.BUF:
        return values[0]
    raise ValueError(f"unknown gate type {gate_type}")


def simulate3(
    netlist: Netlist,
    input_values: Mapping[str, int],
    forced: Mapping[str, int] | None = None,
) -> dict[str, int]:
    """Three-valued simulation of one input cube.

    ``input_values`` maps primary inputs to trits (missing inputs
    default to ``X``).  ``forced`` overrides the computed value of
    arbitrary nets *after* evaluation — that is exactly a stuck-at
    fault injection.

    >>> from .bench_parser import parse_bench
    >>> n = parse_bench("INPUT(a)\\nINPUT(b)\\nOUTPUT(y)\\ny = AND(a, b)")
    >>> simulate3(n, {"a": 1})["y"]
    2
    """
    forced = forced or {}
    values: dict[str, int] = {}
    for net in netlist.inputs:
        value = input_values.get(net, DC)
        values[net] = forced.get(net, value)
    for gate in netlist.topological_order():
        computed = evaluate_gate3(
            gate.gate_type, [values[s] for s in gate.inputs]
        )
        values[gate.output] = forced.get(gate.output, computed)
    return values


def _evaluate_gate_bool(gate: Gate, values: dict[str, np.ndarray]) -> np.ndarray:
    operands = [values[s] for s in gate.inputs]
    if gate.gate_type in (GateType.AND, GateType.NAND):
        result = operands[0].copy()
        for operand in operands[1:]:
            result &= operand
        if gate.gate_type is GateType.NAND:
            result = ~result
        return result
    if gate.gate_type in (GateType.OR, GateType.NOR):
        result = operands[0].copy()
        for operand in operands[1:]:
            result |= operand
        if gate.gate_type is GateType.NOR:
            result = ~result
        return result
    if gate.gate_type in (GateType.XOR, GateType.XNOR):
        result = operands[0].copy()
        for operand in operands[1:]:
            result ^= operand
        if gate.gate_type is GateType.XNOR:
            result = ~result
        return result
    if gate.gate_type is GateType.NOT:
        return ~operands[0]
    return operands[0].copy()  # BUF


def simulate_patterns(
    netlist: Netlist, patterns: np.ndarray
) -> dict[str, np.ndarray]:
    """Bit-parallel two-valued simulation of many patterns at once.

    ``patterns`` is a boolean array of shape ``(n_patterns,
    n_inputs)`` with columns in ``netlist.inputs`` order.  Returns the
    boolean waveform of every net, shape ``(n_patterns,)`` each.
    """
    patterns = np.asarray(patterns, dtype=bool)
    if patterns.ndim != 2 or patterns.shape[1] != len(netlist.inputs):
        raise ValueError(
            f"patterns must be (n, {len(netlist.inputs)}), got {patterns.shape}"
        )
    values: dict[str, np.ndarray] = {
        net: np.ascontiguousarray(patterns[:, index])
        for index, net in enumerate(netlist.inputs)
    }
    for gate in netlist.topological_order():
        values[gate.output] = _evaluate_gate_bool(gate, values)
    return values

"""Embedded benchmark circuits.

Two genuine benchmarks small enough to embed verbatim:

* **c17** — the smallest ISCAS-85 circuit (6 NAND gates), the
  canonical ATPG teaching example;
* **s27** — the smallest ISCAS-89 circuit; parsed through the
  full-scan conversion its three flip-flops become pseudo-PIs/POs,
  giving the 7-input/4-output combinational core the paper's test
  sets address.

Larger circuits are supplied by :func:`repro.circuits.generator.
random_netlist` under fixed seeds, registered here so the rest of the
code can request circuits by name.
"""

from __future__ import annotations

from .bench_parser import parse_bench
from .generator import random_netlist
from .netlist import Netlist

__all__ = ["C17_BENCH", "S27_BENCH", "available_circuits", "load_circuit"]

C17_BENCH = """
# c17 — smallest ISCAS-85 benchmark (6 NAND gates)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""

S27_BENCH = """
# s27 — smallest ISCAS-89 benchmark (full-scan conversion applies)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""

# name -> zero-argument factory
_GENERATED = {
    "gen_small": lambda: random_netlist(12, 40, seed=101, name="gen_small"),
    "gen_medium": lambda: random_netlist(32, 220, seed=202, name="gen_medium"),
    "gen_large": lambda: random_netlist(64, 600, seed=303, name="gen_large"),
    "gen_wide": lambda: random_netlist(96, 400, seed=404, name="gen_wide"),
}


def available_circuits() -> list[str]:
    """Names accepted by :func:`load_circuit`."""
    return ["c17", "s27", *sorted(_GENERATED)]


def load_circuit(name: str) -> Netlist:
    """Load an embedded or generated benchmark circuit by name.

    >>> load_circuit("c17").n_gates
    6
    >>> len(load_circuit("s27").inputs)  # 4 PIs + 3 pseudo-PIs
    7
    """
    if name == "c17":
        return parse_bench(C17_BENCH, name="c17")
    if name == "s27":
        return parse_bench(S27_BENCH, name="s27")
    try:
        return _GENERATED[name]()
    except KeyError:
        raise ValueError(
            f"unknown circuit {name!r}; available: {available_circuits()}"
        ) from None

"""Adaptive operator scheduling (automating the paper's suggestion).

The paper closes with "further improvements are possible by fitting
the parameters of the Evolutionary Optimization, such as population
size and operator probabilities."  This module automates the operator
part with *adaptive pursuit*: each operator's selection probability is
pulled toward a winner-take-most target based on the recent reward
(fitness improvement over the parent) its children achieved.

Probabilities never drop below ``floor`` so no operator starves, and
the scheduler degrades gracefully to the static mix when rewards tie.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["AdaptiveOperatorScheduler"]


class AdaptiveOperatorScheduler:
    """Adaptive-pursuit scheduler over a fixed set of operators.

    Parameters
    ----------
    initial_probabilities:
        Starting mix (e.g. the paper's crossover/mutation/inversion/
        copy weights).  Must be non-negative with a positive sum.
    learning_rate:
        Exponential-average factor for per-operator reward estimates.
    pursuit_rate:
        How fast the mix moves toward the current best operator.
    floor:
        Minimum probability of any operator (exploration guarantee).

    >>> scheduler = AdaptiveOperatorScheduler([0.25, 0.25, 0.25, 0.25])
    >>> for _ in range(60):
    ...     scheduler.reward(1, 5.0)   # operator 1 keeps improving
    ...     scheduler.reward(0, 0.0)
    >>> probs = scheduler.probabilities
    >>> probs[1] == max(probs)
    True
    """

    def __init__(
        self,
        initial_probabilities: Sequence[float],
        learning_rate: float = 0.30,
        pursuit_rate: float = 0.20,
        floor: float = 0.05,
    ) -> None:
        probabilities = np.asarray(initial_probabilities, dtype=float)
        if probabilities.ndim != 1 or probabilities.size < 2:
            raise ValueError("need at least two operators")
        if probabilities.min() < 0 or probabilities.sum() <= 0:
            raise ValueError("probabilities must be non-negative, sum > 0")
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0 < pursuit_rate <= 1:
            raise ValueError("pursuit_rate must be in (0, 1]")
        if not 0 <= floor < 1 / probabilities.size:
            raise ValueError("floor must be in [0, 1/n_operators)")
        self._probabilities = probabilities / probabilities.sum()
        self._rewards = np.zeros(probabilities.size)
        self._learning_rate = learning_rate
        self._pursuit_rate = pursuit_rate
        self._floor = floor

    @property
    def n_operators(self) -> int:
        """Number of scheduled operators."""
        return self._probabilities.size

    @property
    def probabilities(self) -> np.ndarray:
        """The current operator mix (copies; always sums to 1)."""
        return self._probabilities.copy()

    @property
    def reward_estimates(self) -> np.ndarray:
        """Smoothed per-operator reward estimates (copies)."""
        return self._rewards.copy()

    def choose(self, rng: np.random.Generator) -> int:
        """Draw an operator index from the current mix."""
        return int(rng.choice(self.n_operators, p=self._probabilities))

    def reward(self, operator: int, improvement: float) -> None:
        """Report the fitness improvement a child achieved.

        ``improvement`` is ``max(0, child_fitness − parent_fitness)``;
        negative values are clamped (operators are not punished beyond
        receiving no credit).
        """
        if not 0 <= operator < self.n_operators:
            raise ValueError(f"operator index {operator} out of range")
        gain = max(0.0, float(improvement))
        self._rewards[operator] += self._learning_rate * (
            gain - self._rewards[operator]
        )
        # Pursue the operator with the best reward estimate.
        best = int(np.argmax(self._rewards))
        n = self.n_operators
        target = np.full(n, self._floor)
        target[best] = 1.0 - self._floor * (n - 1)
        self._probabilities += self._pursuit_rate * (
            target - self._probabilities
        )
        self._probabilities = np.clip(self._probabilities, self._floor, None)
        self._probabilities /= self._probabilities.sum()

"""Self-contained evolutionary-algorithm engine (GAME [33] substitute)."""

from .adaptive import AdaptiveOperatorScheduler
from .engine import (
    DEFAULT_CACHE_SIZE,
    EAResult,
    EvolutionaryEngine,
    GenerationStats,
)
from .genome import TRIT_ALPHABET_SIZE, random_genome, validate_genome
from .multi_objective import (
    MAXIMIZED_OBJECTIVES,
    MOGenerationStats,
    MOIndividual,
    MultiObjectiveEngine,
    MultiObjectiveResult,
    ParetoPoint,
    crowding_distance,
    dominates,
    fast_non_dominated_sort,
    hypervolume,
    minimization_form,
    non_dominated_mask,
)
from .operators import (
    one_point_crossover,
    point_mutation,
    reproduce,
    segment_inversion,
    uniform_crossover,
)
from .selection import Individual, select_parent, tournament_select, truncate
from .termination import (
    AnyOf,
    EvaluationLimit,
    GenerationLimit,
    LoopState,
    StagnationLimit,
    TerminationCondition,
)

__all__ = [
    "AdaptiveOperatorScheduler",
    "DEFAULT_CACHE_SIZE",
    "EAResult",
    "EvolutionaryEngine",
    "GenerationStats",
    "TRIT_ALPHABET_SIZE",
    "random_genome",
    "validate_genome",
    "MAXIMIZED_OBJECTIVES",
    "MOGenerationStats",
    "MOIndividual",
    "MultiObjectiveEngine",
    "MultiObjectiveResult",
    "ParetoPoint",
    "crowding_distance",
    "dominates",
    "fast_non_dominated_sort",
    "hypervolume",
    "minimization_form",
    "non_dominated_mask",
    "one_point_crossover",
    "point_mutation",
    "reproduce",
    "segment_inversion",
    "uniform_crossover",
    "Individual",
    "select_parent",
    "tournament_select",
    "truncate",
    "AnyOf",
    "EvaluationLimit",
    "GenerationLimit",
    "LoopState",
    "StagnationLimit",
    "TerminationCondition",
]

"""Parent selection and survivor selection.

The paper generates children from "randomly selected individuals" and
keeps the ``S`` fittest of the ``S + C`` pool each generation — a
(µ+λ) truncation scheme with uniform parent choice.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Individual", "select_parent", "tournament_select", "truncate"]


@dataclass(frozen=True)
class Individual:
    """A genome with its evaluated fitness and a creation stamp.

    ``birth_order`` makes survivor selection deterministic under ties
    (earlier individuals win), which keeps seeded runs reproducible.
    """

    genome: np.ndarray = field(repr=False)
    fitness: float
    birth_order: int

    def __post_init__(self) -> None:
        self.genome.setflags(write=False)


def select_parent(
    population: Sequence[Individual], rng: np.random.Generator
) -> Individual:
    """Uniform random parent choice (paper Section 3.1)."""
    if not population:
        raise ValueError("population is empty")
    return population[int(rng.integers(0, len(population)))]


def tournament_select(
    population: Sequence[Individual],
    rng: np.random.Generator,
    tournament_size: int = 2,
) -> Individual:
    """Fittest of ``tournament_size`` uniform draws (with replacement).

    A mild selection-pressure alternative to the paper's uniform
    parent choice; exposed through
    ``EAParameters(parent_selection="tournament")``.
    """
    if not population:
        raise ValueError("population is empty")
    if tournament_size < 2:
        raise ValueError("tournament_size must be >= 2")
    draws = [
        population[int(rng.integers(0, len(population)))]
        for _ in range(tournament_size)
    ]
    return min(draws, key=lambda ind: (-ind.fitness, ind.birth_order))


def truncate(pool: Sequence[Individual], survivors: int) -> list[Individual]:
    """Keep the ``survivors`` fittest individuals of the pool.

    Ties are broken by seniority (lower ``birth_order`` first), so a
    child replaces a parent only when strictly fitter.

    >>> a = Individual(np.zeros(1, dtype=np.int8), 1.0, 0)
    >>> b = Individual(np.zeros(1, dtype=np.int8), 1.0, 1)
    >>> truncate([b, a], 1)[0].birth_order
    0
    """
    if survivors < 1:
        raise ValueError("must keep at least one survivor")
    ranked = sorted(pool, key=lambda ind: (-ind.fitness, ind.birth_order))
    return ranked[:survivors]

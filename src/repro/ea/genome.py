"""Genome representation for the MV-search EA.

An individual is the concatenation of ``L`` matching vectors, i.e. a
string of ``K·L`` genes over the trit alphabet ``{0, 1, U}``
(Section 3.1).  Genomes are small numpy ``int8`` arrays; every operator
returns a fresh array, never mutating its input.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TRIT_ALPHABET_SIZE", "random_genome", "validate_genome"]

TRIT_ALPHABET_SIZE = 3


def random_genome(
    length: int,
    rng: np.random.Generator,
    alphabet_size: int = TRIT_ALPHABET_SIZE,
) -> np.ndarray:
    """Draw a uniform random genome of the given length.

    >>> g = random_genome(6, np.random.default_rng(0))
    >>> g.shape, g.dtype.name
    ((6,), 'int8')
    """
    if length < 1:
        raise ValueError("genome length must be >= 1")
    if alphabet_size < 2:
        raise ValueError("alphabet must have at least two symbols")
    return rng.integers(0, alphabet_size, size=length, dtype=np.int8)


def validate_genome(
    genome: np.ndarray, alphabet_size: int = TRIT_ALPHABET_SIZE
) -> np.ndarray:
    """Check dtype/range and return the genome as a contiguous array."""
    array = np.ascontiguousarray(genome, dtype=np.int8)
    if array.ndim != 1:
        raise ValueError("genome must be one-dimensional")
    if array.size == 0:
        raise ValueError("genome must be non-empty")
    if array.min() < 0 or array.max() >= alphabet_size:
        raise ValueError(f"genes must be in [0, {alphabet_size})")
    return array

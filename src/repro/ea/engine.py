"""The evolutionary main loop (paper Figure 1).

::

    Generate random population (S individuals);
    for each individual i in population
        f(i) := compression rate achieved by i's matching vectors;
    repeat {
        Generate C children, using evolutionary operators;
        for each child c
            f(c) := compression rate for c;
        New population := S individuals with best fitness;
    } until (termination condition fulfilled);
    return individual with best fitness;

The engine is domain-agnostic: it maximizes an arbitrary fitness
callable over fixed-length integer genomes.  Domain constraints (e.g.
"one MV must be all-U") are injected as a *repair* callable applied to
every genome before evaluation.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..core.config import EAParameters
from .adaptive import AdaptiveOperatorScheduler
from .genome import TRIT_ALPHABET_SIZE, random_genome, validate_genome
from .operators import (
    point_mutation,
    reproduce,
    segment_inversion,
    uniform_crossover,
)
from .selection import Individual, select_parent, tournament_select, truncate
from .termination import (
    AnyOf,
    EvaluationLimit,
    GenerationLimit,
    LoopState,
    StagnationLimit,
    TerminationCondition,
)

__all__ = ["GenerationStats", "EAResult", "EvolutionaryEngine"]

FitnessFunction = Callable[[np.ndarray], float]
RepairFunction = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class GenerationStats:
    """Per-generation trace record (lets examples print Figure 1 live)."""

    generation: int
    best_fitness: float
    mean_fitness: float
    evaluations: int
    improved: bool


@dataclass(frozen=True)
class EAResult:
    """Outcome of one evolutionary run."""

    best_genome: np.ndarray = field(repr=False)
    best_fitness: float
    generations: int
    evaluations: int
    terminated_by: str
    history: tuple[GenerationStats, ...] = field(repr=False)


class EvolutionaryEngine:
    """Maximize ``fitness`` over trit genomes with the paper's loop.

    Parameters
    ----------
    fitness:
        Callable genome → float; higher is better.
    genome_length:
        Number of genes (``K·L`` for the MV search).
    params:
        :class:`EAParameters`; operator probabilities select which
        operator produces each child.
    seed:
        RNG seed; runs are fully deterministic given a seed.
    repair:
        Optional genome → genome normalization applied to every
        initial and offspring genome before evaluation.
    initial_genomes:
        Optional seed individuals injected into the initial random
        population (e.g. the 9C matching vectors).
    """

    def __init__(
        self,
        fitness: FitnessFunction,
        genome_length: int,
        params: EAParameters | None = None,
        seed: int | None = None,
        repair: RepairFunction | None = None,
        initial_genomes: Sequence[np.ndarray] = (),
        alphabet_size: int = TRIT_ALPHABET_SIZE,
    ) -> None:
        if genome_length < 1:
            raise ValueError("genome_length must be >= 1")
        self._fitness = fitness
        self._genome_length = genome_length
        self._params = params or EAParameters()
        self._rng = np.random.default_rng(seed)
        self._repair = repair
        self._initial_genomes = [validate_genome(g) for g in initial_genomes]
        if any(g.size != genome_length for g in self._initial_genomes):
            raise ValueError("seed genomes must match genome_length")
        self._alphabet_size = alphabet_size
        self._evaluations = 0
        self._birth_counter = 0
        self._scheduler: AdaptiveOperatorScheduler | None = None
        if self._params.adaptive_operators:
            self._scheduler = AdaptiveOperatorScheduler(
                self._operator_weights()
            )

    # -- individual construction -------------------------------------

    def _make_individual(self, genome: np.ndarray) -> Individual:
        if self._repair is not None:
            genome = validate_genome(self._repair(genome), self._alphabet_size)
        fitness = float(self._fitness(genome))
        self._evaluations += 1
        individual = Individual(
            genome=genome, fitness=fitness, birth_order=self._birth_counter
        )
        self._birth_counter += 1
        return individual

    def _initial_population(self) -> list[Individual]:
        population = [
            self._make_individual(genome.copy()) for genome in self._initial_genomes
        ]
        while len(population) < self._params.population_size:
            population.append(
                self._make_individual(
                    random_genome(self._genome_length, self._rng, self._alphabet_size)
                )
            )
        return truncate(population, self._params.population_size)

    # -- offspring ----------------------------------------------------

    def _pick_parent(self, population: list[Individual]) -> Individual:
        if self._params.parent_selection == "tournament":
            return tournament_select(
                population, self._rng, self._params.tournament_size
            )
        return select_parent(population, self._rng)

    def _operator_weights(self) -> np.ndarray:
        params = self._params
        weights = np.asarray(
            [
                params.crossover_probability,
                params.mutation_probability,
                params.inversion_probability,
                params.copy_probability,
            ]
        )
        if weights.sum() <= 0:
            weights = np.asarray([0.0, 1.0, 0.0, 0.0])
        return weights / weights.sum()

    def _spawn_children(self, population: list[Individual]) -> list[Individual]:
        params = self._params
        weights = self._operator_weights()
        children: list[Individual] = []
        while len(children) < params.children_per_generation:
            if self._scheduler is not None:
                operator = self._scheduler.choose(self._rng)
            else:
                operator = int(self._rng.choice(4, p=weights))
            before = len(children)
            if operator == 0:  # crossover: two parents, two children
                parent_a = self._pick_parent(population)
                parent_b = self._pick_parent(population)
                parent_fitness = max(parent_a.fitness, parent_b.fitness)
                genome_one, genome_two = uniform_crossover(
                    parent_a.genome, parent_b.genome, self._rng
                )
                children.append(self._make_individual(genome_one))
                if len(children) < params.children_per_generation:
                    children.append(self._make_individual(genome_two))
            elif operator == 1:
                parent = self._pick_parent(population)
                parent_fitness = parent.fitness
                children.append(
                    self._make_individual(
                        point_mutation(parent.genome, self._rng, self._alphabet_size)
                    )
                )
            elif operator == 2:
                parent = self._pick_parent(population)
                parent_fitness = parent.fitness
                children.append(
                    self._make_individual(segment_inversion(parent.genome, self._rng))
                )
            else:
                parent = self._pick_parent(population)
                parent_fitness = parent.fitness
                children.append(self._make_individual(reproduce(parent.genome)))
            if self._scheduler is not None:
                for child in children[before:]:
                    self._scheduler.reward(
                        operator, child.fitness - parent_fitness
                    )
        return children

    # -- main loop ----------------------------------------------------

    def _termination(self) -> AnyOf:
        conditions: list[TerminationCondition] = [
            StagnationLimit(self._params.stagnation_limit)
        ]
        if self._params.max_evaluations is not None:
            conditions.append(EvaluationLimit(self._params.max_evaluations))
        if self._params.max_generations is not None:
            conditions.append(GenerationLimit(self._params.max_generations))
        return AnyOf(*conditions)

    def run(self) -> EAResult:
        """Execute the loop of Figure 1 and return the fittest solution."""
        self._evaluations = 0
        self._birth_counter = 0
        if self._params.adaptive_operators:
            self._scheduler = AdaptiveOperatorScheduler(
                self._operator_weights()
            )
        population = self._initial_population()
        best = max(population, key=lambda ind: ind.fitness)
        history: list[GenerationStats] = []
        termination = self._termination()
        generation = 0
        stagnant = 0
        while True:
            state = LoopState(
                generation=generation,
                evaluations=self._evaluations,
                generations_without_improvement=stagnant,
                best_fitness=best.fitness,
            )
            if termination.should_stop(state):
                break
            generation += 1
            children = self._spawn_children(population)
            population = truncate(
                population + children, self._params.population_size
            )
            champion = population[0]
            improved = champion.fitness > best.fitness
            if improved:
                best = champion
                stagnant = 0
            else:
                stagnant += 1
            history.append(
                GenerationStats(
                    generation=generation,
                    best_fitness=champion.fitness,
                    mean_fitness=float(
                        np.mean([ind.fitness for ind in population])
                    ),
                    evaluations=self._evaluations,
                    improved=improved,
                )
            )
        fired = termination.fired
        return EAResult(
            best_genome=best.genome,
            best_fitness=best.fitness,
            generations=generation,
            evaluations=self._evaluations,
            terminated_by=fired.describe() if fired else "none",
            history=tuple(history),
        )

"""The evolutionary main loop (paper Figure 1).

::

    Generate random population (S individuals);
    for each individual i in population
        f(i) := compression rate achieved by i's matching vectors;
    repeat {
        Generate C children, using evolutionary operators;
        for each child c
            f(c) := compression rate for c;
        New population := S individuals with best fitness;
    } until (termination condition fulfilled);
    return individual with best fitness;

The engine is domain-agnostic: it maximizes an arbitrary fitness
callable over fixed-length integer genomes.  Domain constraints (e.g.
"one MV must be all-U") are injected as a *repair* callable applied to
every genome before evaluation.

Performance architecture
------------------------
The loop is *generate-then-evaluate*: each generation, the operators
produce all child genomes first (consuming the RNG in exactly the
order the historical per-child loop did, so seeded runs are bit-for-bit
reproducible), and the whole batch is then priced in one call.  When
the fitness object exposes ``evaluate_batch`` (e.g.
:class:`repro.core.fitness.BatchCompressionRateFitness`, whose
covering runs on a pluggable kernel from
:mod:`repro.core.kernels` — the engine itself is kernel-agnostic and
inherits whatever kernel the fitness was configured with), that call
is a handful of numpy kernels over the entire generation; plain
callables are looped transparently.  A genome-hash LRU cache short-circuits
re-pricing of duplicate offspring (common under copy/reproduce and
late-run convergence); hits still count toward ``evaluations`` — the
paper's "generated legal solutions" budget — so cached and uncached
runs terminate identically, and the hit rate is reported on
:class:`EAResult`.  Below the genome memo sits a second cache level
inside the batched fitness itself: per-MV match columns, deduplicated
within a generation and persisted across generations
(:class:`repro.core.fitness.MVMatchCache`) — a genome that misses the
memo usually still shares most of its L matching vectors with its
parent, so the covering kernel prices only the genuinely new rows.
The engine stays agnostic to both levels; it merely snapshots the MV
counters per run and reports them on :class:`EAResult`.  Adaptive
operator scheduling needs each child's fitness before choosing the
next operator, so that mode evaluates incrementally (still through
the caches).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..core.config import EAParameters
from .adaptive import AdaptiveOperatorScheduler
from .genome import TRIT_ALPHABET_SIZE, random_genome, validate_genome
from .operators import (
    point_mutation,
    reproduce,
    segment_inversion,
    uniform_crossover,
)
from .selection import Individual, select_parent, tournament_select, truncate
from .termination import (
    AnyOf,
    EvaluationLimit,
    GenerationLimit,
    LoopState,
    StagnationLimit,
    TerminationCondition,
)

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "GenerationStats",
    "EAResult",
    "EvolutionaryEngine",
]

FitnessFunction = Callable[[np.ndarray], float]
RepairFunction = Callable[[np.ndarray], np.ndarray]

DEFAULT_CACHE_SIZE = 8192  # genomes memoized per run; ~1 KiB each at L·K=768


@dataclass(frozen=True)
class GenerationStats:
    """Per-generation trace record (lets examples print Figure 1 live)."""

    generation: int
    best_fitness: float
    mean_fitness: float
    evaluations: int
    improved: bool


@dataclass(frozen=True)
class EAResult:
    """Outcome of one evolutionary run.

    ``evaluations`` counts every priced individual (the paper's
    "generated legal solutions"); ``cache_hits`` says how many of
    those were served from the genome memo cache instead of being
    re-priced, and ``cache_hit_rate`` is their ratio.

    ``mv_cache_hits``/``mv_cache_misses`` report the second cache
    level below the genome memo: unique MV rows served from (vs priced
    into) the fitness's persistent match-column cache
    (:class:`repro.core.fitness.MVMatchCache`), counted over this run
    only.  All zero when the fitness has no MV cache (plain callables,
    ``mv_cache_size=0``).  ``mv_cache_warm_loaded`` counts entries the
    fitness hydrated from a persisted cache file before its first
    batch (0 on a cold start or with persistence off).

    Every rate here is well-defined at zero activity: a run with no
    lookups reports 0.0, never NaN.
    """

    best_genome: np.ndarray = field(repr=False)
    best_fitness: float
    generations: int
    evaluations: int
    terminated_by: str
    history: tuple[GenerationStats, ...] = field(repr=False)
    cache_hits: int = 0
    cache_hit_rate: float = 0.0
    mv_cache_hits: int = 0
    mv_cache_misses: int = 0
    mv_cache_hit_rate: float = 0.0
    mv_cache_warm_loaded: int = 0


class EvolutionaryEngine:
    """Maximize ``fitness`` over trit genomes with the paper's loop.

    Parameters
    ----------
    fitness:
        Callable genome → float; higher is better.  If the object also
        exposes ``evaluate_batch(matrix) -> array`` (e.g.
        :class:`repro.core.fitness.BatchCompressionRateFitness`), each
        generation is priced in one batched call.
    genome_length:
        Number of genes (``K·L`` for the MV search).
    params:
        :class:`EAParameters`; operator probabilities select which
        operator produces each child.
    seed:
        RNG seed; runs are fully deterministic given a seed.
    repair:
        Optional genome → genome normalization applied to every
        initial and offspring genome before evaluation.
    initial_genomes:
        Optional seed individuals injected into the initial random
        population (e.g. the 9C matching vectors).
    cache_size:
        Capacity of the genome-hash LRU memo cache; ``0``/``None``
        disables memoization.  The cache never changes results, only
        skips re-pricing duplicate genomes.
    """

    def __init__(
        self,
        fitness: FitnessFunction,
        genome_length: int,
        params: EAParameters | None = None,
        seed: int | None = None,
        repair: RepairFunction | None = None,
        initial_genomes: Sequence[np.ndarray] = (),
        alphabet_size: int = TRIT_ALPHABET_SIZE,
        cache_size: int | None = DEFAULT_CACHE_SIZE,
    ) -> None:
        if genome_length < 1:
            raise ValueError("genome_length must be >= 1")
        self._fitness = fitness
        self._batch_fitness = getattr(fitness, "evaluate_batch", None)
        self._genome_length = genome_length
        self._params = params or EAParameters()
        self._rng = np.random.default_rng(seed)
        self._repair = repair
        self._initial_genomes = [validate_genome(g) for g in initial_genomes]
        if any(g.size != genome_length for g in self._initial_genomes):
            raise ValueError("seed genomes must match genome_length")
        self._alphabet_size = alphabet_size
        self._cache_size = int(cache_size or 0)
        if self._cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self._cache: OrderedDict[bytes, float] = OrderedDict()
        self._cache_hits = 0
        self._evaluations = 0
        self._birth_counter = 0
        self._scheduler: AdaptiveOperatorScheduler | None = None
        if self._params.adaptive_operators:
            self._scheduler = AdaptiveOperatorScheduler(
                self._operator_weights()
            )

    # -- pricing ------------------------------------------------------

    def _evaluate_raw(self, genomes: list[np.ndarray]) -> list[float]:
        """Price genomes with one batched fitness call (or a loop)."""
        if self._batch_fitness is not None:
            rates = self._batch_fitness(np.stack(genomes))
            return [float(rate) for rate in rates]
        return [float(self._fitness(genome)) for genome in genomes]

    def _price_genomes(self, genomes: Sequence[np.ndarray]) -> list[Individual]:
        """Repair, memo-check and batch-price genomes, in input order.

        Every genome counts as one evaluation whether or not the memo
        cache served it, so termination budgets see the historical
        counts.  Duplicate genomes — across generations *or* within
        one batch — are priced exactly once.
        """
        if self._repair is None:
            prepared = list(genomes)
        else:
            prepared = [
                validate_genome(self._repair(genome), self._alphabet_size)
                for genome in genomes
            ]
        self._evaluations += len(prepared)

        # One slot per genome; every slot holds a float by the time
        # the Individuals are built below (annotated once — the memo
        # path fills slots out of order, the raw path all at once).
        fitnesses: list[float | None]
        if not self._cache_size:
            fitnesses = list(self._evaluate_raw(prepared))
        else:
            fitnesses = [None] * len(prepared)
            pending: OrderedDict[bytes, list[int]] = OrderedDict()
            for index, genome in enumerate(prepared):
                key = genome.tobytes()
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self._cache_hits += 1
                    fitnesses[index] = cached
                else:
                    if key in pending:  # duplicate inside this batch
                        self._cache_hits += 1
                    pending.setdefault(key, []).append(index)
            if pending:
                misses = [prepared[slots[0]] for slots in pending.values()]
                for (key, slots), value in zip(
                    pending.items(), self._evaluate_raw(misses)
                ):
                    self._cache[key] = value
                    if len(self._cache) > self._cache_size:
                        self._cache.popitem(last=False)
                    for index in slots:
                        fitnesses[index] = value

        individuals = []
        for genome, fitness in zip(prepared, fitnesses):
            individuals.append(
                Individual(
                    genome=genome,
                    fitness=fitness,
                    birth_order=self._birth_counter,
                )
            )
            self._birth_counter += 1
        return individuals

    def _initial_population(self) -> list[Individual]:
        genomes = [genome.copy() for genome in self._initial_genomes]
        while len(genomes) < self._params.population_size:
            genomes.append(
                random_genome(self._genome_length, self._rng, self._alphabet_size)
            )
        return truncate(self._price_genomes(genomes), self._params.population_size)

    # -- offspring ----------------------------------------------------

    def _pick_parent(self, population: list[Individual]) -> Individual:
        if self._params.parent_selection == "tournament":
            return tournament_select(
                population, self._rng, self._params.tournament_size
            )
        return select_parent(population, self._rng)

    def _operator_weights(self) -> np.ndarray:
        params = self._params
        weights = np.asarray(
            [
                params.crossover_probability,
                params.mutation_probability,
                params.inversion_probability,
                params.copy_probability,
            ]
        )
        if weights.sum() <= 0:
            weights = np.asarray([0.0, 1.0, 0.0, 0.0])
        return weights / weights.sum()

    def _apply_operator(
        self, operator: int, population: list[Individual], capacity: int
    ) -> list[np.ndarray]:
        """Produce the raw child genome(s) for one operator draw.

        Consumes the RNG in exactly the order of the historical
        per-child loop, so seeded runs stay bit-for-bit reproducible.
        """
        if operator == 0:  # crossover: two parents, up to two children
            parent_a = self._pick_parent(population)
            parent_b = self._pick_parent(population)
            genome_one, genome_two = uniform_crossover(
                parent_a.genome, parent_b.genome, self._rng
            )
            if capacity > 1:
                return [genome_one, genome_two]
            return [genome_one]
        parent = self._pick_parent(population)
        if operator == 1:
            return [point_mutation(parent.genome, self._rng, self._alphabet_size)]
        if operator == 2:
            return [segment_inversion(parent.genome, self._rng)]
        return [reproduce(parent.genome)]

    def _spawn_children(self, population: list[Individual]) -> list[Individual]:
        """Generate C children and price them in one batched call."""
        params = self._params
        if self._scheduler is not None:
            return self._spawn_children_adaptive(population)
        weights = self._operator_weights()
        genomes: list[np.ndarray] = []
        while len(genomes) < params.children_per_generation:
            operator = int(self._rng.choice(4, p=weights))
            genomes.extend(
                self._apply_operator(
                    operator,
                    population,
                    params.children_per_generation - len(genomes),
                )
            )
        return self._price_genomes(genomes)

    def _spawn_children_adaptive(
        self, population: list[Individual]
    ) -> list[Individual]:
        """Incremental spawning for adaptive operator scheduling.

        The scheduler's reward feedback depends on each child's fitness
        before the next operator is chosen, so this path prices child
        by child (still through the memo cache).
        """
        params = self._params
        children: list[Individual] = []
        while len(children) < params.children_per_generation:
            operator = self._scheduler.choose(self._rng)
            capacity = params.children_per_generation - len(children)
            if operator == 0:
                parent_a = self._pick_parent(population)
                parent_b = self._pick_parent(population)
                parent_fitness = max(parent_a.fitness, parent_b.fitness)
                genomes = list(
                    uniform_crossover(parent_a.genome, parent_b.genome, self._rng)
                )[:capacity]
            else:
                parent = self._pick_parent(population)
                parent_fitness = parent.fitness
                if operator == 1:
                    genomes = [
                        point_mutation(
                            parent.genome, self._rng, self._alphabet_size
                        )
                    ]
                elif operator == 2:
                    genomes = [segment_inversion(parent.genome, self._rng)]
                else:
                    genomes = [reproduce(parent.genome)]
            batch = self._price_genomes(genomes)
            children.extend(batch)
            for child in batch:
                self._scheduler.reward(operator, child.fitness - parent_fitness)
        return children

    def _mv_cache_counters(self) -> tuple[int, int]:
        """(hits, misses) of the fitness's MV match-column cache.

        The engine is fitness-agnostic: objects without
        ``mv_cache_stats`` (plain callables, caches disabled) simply
        report zeros.
        """
        stats = getattr(self._fitness, "mv_cache_stats", None)
        if stats is None:
            return 0, 0
        return stats.hits, stats.misses

    def _mv_cache_warm_loaded(self) -> int:
        """Entries the fitness warm-loaded from a persisted MV cache."""
        stats = getattr(self._fitness, "mv_cache_stats", None)
        if stats is None:
            return 0
        return getattr(stats, "warm_loaded", 0)

    # -- main loop ----------------------------------------------------

    def _termination(self) -> AnyOf:
        conditions: list[TerminationCondition] = [
            StagnationLimit(self._params.stagnation_limit)
        ]
        if self._params.max_evaluations is not None:
            conditions.append(EvaluationLimit(self._params.max_evaluations))
        if self._params.max_generations is not None:
            conditions.append(GenerationLimit(self._params.max_generations))
        return AnyOf(*conditions)

    def run(self) -> EAResult:
        """Execute the loop of Figure 1 and return the fittest solution."""
        self._evaluations = 0
        self._birth_counter = 0
        self._cache = OrderedDict()
        self._cache_hits = 0
        # The MV cache lives on the fitness (it outlives the engine's
        # per-run genome memo by design); snapshot its counters so the
        # result reports this run's delta even if the fitness is reused.
        mv_hits_before, mv_misses_before = self._mv_cache_counters()
        if self._params.adaptive_operators:
            self._scheduler = AdaptiveOperatorScheduler(
                self._operator_weights()
            )
        population = self._initial_population()
        best = max(population, key=lambda ind: ind.fitness)
        history: list[GenerationStats] = []
        termination = self._termination()
        generation = 0
        stagnant = 0
        while True:
            state = LoopState(
                generation=generation,
                evaluations=self._evaluations,
                generations_without_improvement=stagnant,
                best_fitness=best.fitness,
            )
            if termination.should_stop(state):
                break
            generation += 1
            children = self._spawn_children(population)
            population = truncate(
                population + children, self._params.population_size
            )
            champion = population[0]
            improved = champion.fitness > best.fitness
            if improved:
                best = champion
                stagnant = 0
            else:
                stagnant += 1
            history.append(
                GenerationStats(
                    generation=generation,
                    best_fitness=champion.fitness,
                    mean_fitness=float(
                        np.mean([ind.fitness for ind in population])
                    ),
                    evaluations=self._evaluations,
                    improved=improved,
                )
            )
        fired = termination.fired
        mv_hits_after, mv_misses_after = self._mv_cache_counters()
        mv_hits = mv_hits_after - mv_hits_before
        mv_misses = mv_misses_after - mv_misses_before
        mv_lookups = mv_hits + mv_misses
        return EAResult(
            best_genome=best.genome,
            best_fitness=best.fitness,
            generations=generation,
            evaluations=self._evaluations,
            terminated_by=fired.describe() if fired else "none",
            history=tuple(history),
            cache_hits=self._cache_hits,
            cache_hit_rate=(
                self._cache_hits / self._evaluations if self._evaluations else 0.0
            ),
            mv_cache_hits=mv_hits,
            mv_cache_misses=mv_misses,
            mv_cache_hit_rate=mv_hits / mv_lookups if mv_lookups else 0.0,
            mv_cache_warm_loaded=self._mv_cache_warm_loaded(),
        )

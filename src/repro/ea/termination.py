"""Termination conditions for the evolutionary loop.

The paper stops on "limits on the number of generated legal solutions
and on the number of generations in which no fitness improvement was
registered" (Section 3.1); Table 2 uses 500 stagnant generations.
Conditions are small predicate objects over the engine's public
:class:`LoopState`, composable with :class:`AnyOf`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LoopState",
    "TerminationCondition",
    "StagnationLimit",
    "EvaluationLimit",
    "GenerationLimit",
    "AnyOf",
]


@dataclass(frozen=True)
class LoopState:
    """Progress snapshot the engine exposes to termination conditions."""

    generation: int
    evaluations: int
    generations_without_improvement: int
    best_fitness: float


class TerminationCondition:
    """Base predicate; subclasses override :meth:`should_stop`."""

    def should_stop(self, state: LoopState) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable name used in run reports."""
        return type(self).__name__


@dataclass(frozen=True)
class StagnationLimit(TerminationCondition):
    """Stop after ``generations`` consecutive non-improving generations."""

    generations: int

    def __post_init__(self) -> None:
        if self.generations < 1:
            raise ValueError("stagnation limit must be >= 1")

    def should_stop(self, state: LoopState) -> bool:
        return state.generations_without_improvement >= self.generations

    def describe(self) -> str:
        return f"stagnation({self.generations})"


@dataclass(frozen=True)
class EvaluationLimit(TerminationCondition):
    """Stop once ``evaluations`` fitness evaluations have been spent."""

    evaluations: int

    def __post_init__(self) -> None:
        if self.evaluations < 1:
            raise ValueError("evaluation limit must be >= 1")

    def should_stop(self, state: LoopState) -> bool:
        return state.evaluations >= self.evaluations

    def describe(self) -> str:
        return f"evaluations({self.evaluations})"


@dataclass(frozen=True)
class GenerationLimit(TerminationCondition):
    """Stop once ``generations`` generations have been produced."""

    generations: int

    def __post_init__(self) -> None:
        if self.generations < 1:
            raise ValueError("generation limit must be >= 1")

    def should_stop(self, state: LoopState) -> bool:
        return state.generation >= self.generations

    def describe(self) -> str:
        return f"generations({self.generations})"


class AnyOf(TerminationCondition):
    """Stop when any sub-condition fires; reports which one did."""

    def __init__(self, *conditions: TerminationCondition) -> None:
        if not conditions:
            raise ValueError("AnyOf needs at least one condition")
        self._conditions = conditions
        self._fired: TerminationCondition | None = None

    def should_stop(self, state: LoopState) -> bool:
        for condition in self._conditions:
            if condition.should_stop(state):
                self._fired = condition
                return True
        return False

    @property
    def fired(self) -> TerminationCondition | None:
        """The condition that triggered the stop, if any."""
        return self._fired

    def describe(self) -> str:
        inner = ", ".join(c.describe() for c in self._conditions)
        return f"any({inner})"

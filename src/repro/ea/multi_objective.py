"""NSGA-II-style multi-objective EA mode over (rate, area, time).

The paper's EA maximizes compression rate alone, but its own cost
model exposes two more axes: decoder area
(:attr:`repro.core.decoder_hw.DecoderModel.area_units`) and
test-application time (:func:`repro.core.decoder_hw.test_application_cycles`).
:class:`MultiObjectiveEngine` searches all of them at once and returns
a *Pareto front* — the set of solutions no other found solution beats
on every objective simultaneously.

The engine is a selection layer on top of the existing
generate-then-batch-evaluate loop: operators, genome memoization and
the batched fitness pipeline (one covering pass per generation through
:meth:`repro.core.fitness.BatchCompressionRateFitness.evaluate_objectives`,
MV cache and kernels included) are reused unchanged, while survivor
and parent selection follow NSGA-II (Deb et al. 2002):

* **fast non-dominated sort** partitions a pool into fronts — front 0
  is the non-dominated set, front 1 what's non-dominated once front 0
  is removed, and so on;
* **crowding distance** orders solutions *within* a front by how
  isolated they are objective-space-wise (boundary solutions are
  infinitely crowd-distant, so the extremes always survive);
* **environmental selection** fills the next population front by
  front and crowding-truncates the last partial front;
* **crowded binary tournament** picks parents by (rank, crowding).

Everything is deterministic given the seed: every tie anywhere breaks
on ``birth_order`` (creation sequence), fronts and crowding use stable
sorts, and the objective vectors themselves are kernel-/backend-exact
integers (plus the rate, which is bit-identical to the
single-objective path).  Seeded fronts are therefore byte-reproducible
on every backend, job count and kernel — pinned by
``tests/ea/test_multi_objective.py``.  The single-objective
:class:`repro.ea.engine.EvolutionaryEngine` is untouched by this mode.

All comparisons inside this module are **minimization** comparisons;
maximized objectives (the rate) are sign-flipped on the way in and
flipped back on the way out (:data:`MAXIMIZED_OBJECTIVES`).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..core.config import EAParameters
from ..core.fitness import OBJECTIVE_COLUMNS
from .engine import DEFAULT_CACHE_SIZE
from .genome import TRIT_ALPHABET_SIZE, random_genome, validate_genome
from .operators import (
    point_mutation,
    reproduce,
    segment_inversion,
    uniform_crossover,
)
from .termination import (
    AnyOf,
    EvaluationLimit,
    GenerationLimit,
    LoopState,
    StagnationLimit,
    TerminationCondition,
)

__all__ = [
    "MAXIMIZED_OBJECTIVES",
    "MOGenerationStats",
    "MOIndividual",
    "MultiObjectiveEngine",
    "MultiObjectiveResult",
    "ParetoPoint",
    "crowding_distance",
    "dominates",
    "fast_non_dominated_sort",
    "hypervolume",
    "minimization_form",
    "non_dominated_mask",
    "objective_signs",
]

RepairFunction = Callable[[np.ndarray], np.ndarray]

# Objective names that are maximized in their natural form; everything
# else is minimized.  Used to sign-flip into minimization space.
MAXIMIZED_OBJECTIVES = frozenset({"rate"})


def objective_signs(objectives: Sequence[str]) -> np.ndarray:
    """Per-objective sign that maps natural values into minimization form."""
    return np.asarray(
        [-1.0 if name in MAXIMIZED_OBJECTIVES else 1.0 for name in objectives]
    )


def minimization_form(
    values: np.ndarray, objectives: Sequence[str]
) -> np.ndarray:
    """Map natural objective values to minimization space (and back).

    The mapping is its own inverse (signs are ±1), so the same call
    converts in either direction.
    """
    return np.asarray(values, dtype=np.float64) * objective_signs(objectives)


# -- dominance primitives (minimization space) ------------------------


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` Pareto-dominates ``b`` (minimization).

    ``a`` dominates ``b`` when it is no worse on every objective and
    strictly better on at least one.
    """
    a_arr = np.asarray(a, dtype=np.float64)
    b_arr = np.asarray(b, dtype=np.float64)
    return bool((a_arr <= b_arr).all() and (a_arr < b_arr).any())


def non_dominated_mask(objectives: np.ndarray) -> np.ndarray:
    """Boolean mask of rows not dominated by any other row.

    Duplicate rows are all non-dominated (a point cannot dominate its
    equal).  Minimization space.
    """
    obj = np.asarray(objectives, dtype=np.float64)
    n = len(obj)
    mask = np.ones(n, dtype=bool)
    for index in range(n):
        row = obj[index]
        dominated_by = ((obj <= row).all(axis=1)) & ((obj < row).any(axis=1))
        if dominated_by.any():
            mask[index] = False
    return mask


def fast_non_dominated_sort(objectives: np.ndarray) -> list[np.ndarray]:
    """Partition rows into Pareto fronts (Deb's fast sort, minimization).

    Returns a list of index arrays: front 0 first.  Indices within a
    front appear in a deterministic order derived from row order.
    """
    obj = np.asarray(objectives, dtype=np.float64)
    n = len(obj)
    if n == 0:
        return []
    # Pairwise dominance in two vectorized passes: dominated[p, q] is
    # True when row p dominates row q.
    less_equal = (obj[:, None, :] <= obj[None, :, :]).all(axis=2)
    strictly_less = (obj[:, None, :] < obj[None, :, :]).any(axis=2)
    dominated = less_equal & strictly_less
    domination_count = dominated.sum(axis=0)
    fronts: list[np.ndarray] = []
    remaining = domination_count.copy()
    assigned = np.zeros(n, dtype=bool)
    current = np.flatnonzero(remaining == 0)
    while current.size:
        fronts.append(current)
        assigned[current] = True
        remaining = remaining - dominated[current].sum(axis=0)
        current = np.flatnonzero((remaining == 0) & ~assigned)
    return fronts


def crowding_distance(objectives: np.ndarray) -> np.ndarray:
    """Crowding distance of each row *within one front*.

    Boundary rows per objective get ``inf``; interior rows accumulate
    the normalized neighbor gap per objective.  Objectives with zero or
    non-finite span contribute nothing (the latter only occurs for
    fronts of invalid individuals, whose area/time are ``inf``).
    Stable sorts keep results deterministic under duplicate values.
    """
    obj = np.asarray(objectives, dtype=np.float64)
    n_points, n_objectives = obj.shape
    if n_points <= 2:
        return np.full(n_points, np.inf)
    distance = np.zeros(n_points, dtype=np.float64)
    for j in range(n_objectives):
        order = np.argsort(obj[:, j], kind="stable")
        column = obj[order, j]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if not (np.isfinite(column[0]) and np.isfinite(column[-1])):
            continue
        span = column[-1] - column[0]
        if span <= 0:
            continue
        gaps = (column[2:] - column[:-2]) / span
        interior = order[1:-1]
        finite = distance[interior] != np.inf
        distance[interior[finite]] += gaps[finite]
    return distance


def hypervolume(points: np.ndarray, reference: np.ndarray) -> float:
    """Hypervolume dominated by ``points`` up to ``reference`` (minimization).

    The volume of objective space dominated by the front and bounded by
    the reference point — the standard scalar summary of front quality
    (bigger is better).  Points not strictly better than the reference
    on every objective contribute nothing.  Exact recursive slicing
    over the first objective; intended for the small fronts this search
    produces (cost grows steeply with dimension and front size).
    """
    pts = np.asarray(points, dtype=np.float64)
    ref = np.asarray(reference, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != ref.shape[0]:
        raise ValueError("points must be (n, k) with a k-length reference")
    pts = pts[(pts < ref).all(axis=1)]
    if pts.size == 0:
        return 0.0
    pts = pts[non_dominated_mask(pts)]
    return _hypervolume_recursive(pts, ref)


def _hypervolume_recursive(pts: np.ndarray, ref: np.ndarray) -> float:
    if pts.shape[1] == 1:
        return float(ref[0] - pts[:, 0].min())
    order = np.argsort(pts[:, 0], kind="stable")
    pts = pts[order]
    xs = pts[:, 0]
    total = 0.0
    for index in range(len(pts)):
        next_x = xs[index + 1] if index + 1 < len(pts) else float(ref[0])
        width = next_x - xs[index]
        if width <= 0:
            continue
        # Cross-section at x ∈ [xs[index], next_x): every point seen so far.
        projection = pts[: index + 1, 1:]
        projection = projection[non_dominated_mask(projection)]
        total += width * _hypervolume_recursive(projection, ref[1:])
    return float(total)


# -- individuals and results ------------------------------------------


@dataclass(frozen=True)
class MOIndividual:
    """One priced genome with its minimization-form objective vector."""

    genome: np.ndarray = field(repr=False)
    objectives: tuple[float, ...]
    birth_order: int

    def __post_init__(self) -> None:
        self.genome.setflags(write=False)

    @property
    def is_valid(self) -> bool:
        """Whether every objective is finite (the MVs cover all blocks)."""
        return all(math.isfinite(value) for value in self.objectives)


@dataclass(frozen=True)
class ParetoPoint:
    """One front member in *natural* objective values.

    ``values`` aligns with the result's ``objectives`` names: the rate
    is a percentage (higher is better), area is storage bits and time
    is tester cycles (lower is better).
    """

    genome: np.ndarray = field(repr=False)
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        self.genome.setflags(write=False)


@dataclass(frozen=True)
class MOGenerationStats:
    """Per-generation trace record of the multi-objective loop."""

    generation: int
    front_size: int
    archive_size: int
    evaluations: int
    improved: bool


@dataclass(frozen=True)
class MultiObjectiveResult:
    """Outcome of one multi-objective run.

    ``front`` is the final archive — every objective-distinct
    non-dominated point discovered during the run, sorted
    deterministically (lexicographically in minimization space, so the
    best-rate point comes first).  The cache fields mirror
    :class:`repro.ea.engine.EAResult`.
    """

    objectives: tuple[str, ...]
    front: tuple[ParetoPoint, ...]
    generations: int
    evaluations: int
    terminated_by: str
    history: tuple[MOGenerationStats, ...] = field(repr=False)
    cache_hits: int = 0
    cache_hit_rate: float = 0.0
    mv_cache_hits: int = 0
    mv_cache_misses: int = 0
    mv_cache_hit_rate: float = 0.0
    mv_cache_warm_loaded: int = 0


# -- the engine -------------------------------------------------------


class MultiObjectiveEngine:
    """NSGA-II search over trit genomes on named objective columns.

    Parameters mirror :class:`repro.ea.engine.EvolutionaryEngine`; the
    fitness object must expose
    ``evaluate_objectives(matrix) -> (C, 3)`` with columns
    :data:`repro.core.fitness.OBJECTIVE_COLUMNS`, from which
    ``objectives`` selects ≥ 2 named columns.  Parent selection is
    always the crowded binary tournament (the NSGA-II comparator);
    ``params.parent_selection`` is ignored in this mode.
    """

    def __init__(
        self,
        fitness: object,
        genome_length: int,
        objectives: Sequence[str] = OBJECTIVE_COLUMNS,
        params: EAParameters | None = None,
        seed: int | None = None,
        repair: RepairFunction | None = None,
        initial_genomes: Sequence[np.ndarray] = (),
        alphabet_size: int = TRIT_ALPHABET_SIZE,
        cache_size: int | None = DEFAULT_CACHE_SIZE,
    ) -> None:
        if genome_length < 1:
            raise ValueError("genome_length must be >= 1")
        names = tuple(objectives)
        if len(names) < 2:
            raise ValueError("multi-objective mode needs at least 2 objectives")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        unknown = [name for name in names if name not in OBJECTIVE_COLUMNS]
        if unknown:
            raise ValueError(
                f"unknown objectives {unknown}; choose from {OBJECTIVE_COLUMNS}"
            )
        evaluate = getattr(fitness, "evaluate_objectives", None)
        if evaluate is None:
            raise TypeError(
                "fitness must expose evaluate_objectives(matrix) for the "
                "multi-objective mode (see BatchCompressionRateFitness)"
            )
        self._fitness = fitness
        self._evaluate_objectives = evaluate
        self._objectives = names
        self._columns = [OBJECTIVE_COLUMNS.index(name) for name in names]
        self._signs = objective_signs(names)
        self._genome_length = genome_length
        self._params = params or EAParameters()
        self._rng = np.random.default_rng(seed)
        self._repair = repair
        self._initial_genomes = [validate_genome(g) for g in initial_genomes]
        if any(g.size != genome_length for g in self._initial_genomes):
            raise ValueError("seed genomes must match genome_length")
        self._alphabet_size = alphabet_size
        self._cache_size = int(cache_size or 0)
        if self._cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self._cache: OrderedDict[bytes, tuple[float, ...]] = OrderedDict()
        self._cache_hits = 0
        self._evaluations = 0
        self._birth_counter = 0
        self._archive: list[MOIndividual] = []
        # (rank, crowding) arrays aligned with the current population,
        # refreshed by _truncate; the crowded tournament reads them.
        self._rank: np.ndarray = np.empty(0, dtype=np.int64)
        self._crowding: np.ndarray = np.empty(0, dtype=np.float64)

    @property
    def objectives(self) -> tuple[str, ...]:
        """The named objective columns this engine searches."""
        return self._objectives

    # -- pricing ------------------------------------------------------

    def _evaluate_raw(self, genomes: list[np.ndarray]) -> list[tuple[float, ...]]:
        """Batch-price genomes into minimization-form objective tuples."""
        table = np.asarray(self._evaluate_objectives(np.stack(genomes)))
        reduced = table[:, self._columns] * self._signs
        return [tuple(float(value) for value in row) for row in reduced]

    def _price_genomes(self, genomes: Sequence[np.ndarray]) -> list[MOIndividual]:
        """Repair, memo-check and batch-price genomes, in input order.

        Same contract as the single-objective engine's pricing: every
        genome counts as one evaluation whether or not the memo served
        it, and duplicates are priced exactly once.
        """
        if self._repair is None:
            prepared = list(genomes)
        else:
            prepared = [
                validate_genome(self._repair(genome), self._alphabet_size)
                for genome in genomes
            ]
        self._evaluations += len(prepared)

        vectors: list[tuple[float, ...] | None]
        if not self._cache_size:
            vectors = list(self._evaluate_raw(prepared))
        else:
            vectors = [None] * len(prepared)
            pending: OrderedDict[bytes, list[int]] = OrderedDict()
            for index, genome in enumerate(prepared):
                key = genome.tobytes()
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self._cache_hits += 1
                    vectors[index] = cached
                else:
                    if key in pending:  # duplicate inside this batch
                        self._cache_hits += 1
                    pending.setdefault(key, []).append(index)
            if pending:
                misses = [prepared[slots[0]] for slots in pending.values()]
                for (key, slots), value in zip(
                    pending.items(), self._evaluate_raw(misses)
                ):
                    self._cache[key] = value
                    if len(self._cache) > self._cache_size:
                        self._cache.popitem(last=False)
                    for index in slots:
                        vectors[index] = value

        individuals = []
        for genome, vector in zip(prepared, vectors):
            individuals.append(
                MOIndividual(
                    genome=genome,
                    objectives=vector,
                    birth_order=self._birth_counter,
                )
            )
            self._birth_counter += 1
        return individuals

    # -- NSGA-II selection --------------------------------------------

    def _truncate(
        self, pool: list[MOIndividual], capacity: int
    ) -> list[MOIndividual]:
        """Environmental selection: fill by fronts, crowding-truncate.

        Sorting the whole pool by ``(rank, −crowding, birth_order)``
        and keeping the best ``capacity`` is exactly fill-whole-fronts
        plus crowding-truncation of the last partial front.  The
        survivors' (rank, crowding) — recomputed on the survivor set —
        are stored for the crowded parent tournament.
        """
        objectives = np.asarray([ind.objectives for ind in pool])
        rank = np.empty(len(pool), dtype=np.int64)
        crowding = np.empty(len(pool), dtype=np.float64)
        for front_rank, front in enumerate(fast_non_dominated_sort(objectives)):
            rank[front] = front_rank
            crowding[front] = crowding_distance(objectives[front])
        order = sorted(
            range(len(pool)),
            key=lambda i: (rank[i], -crowding[i], pool[i].birth_order),
        )
        survivors = [pool[i] for i in order[:capacity]]

        survivor_objectives = np.asarray([ind.objectives for ind in survivors])
        self._rank = np.empty(len(survivors), dtype=np.int64)
        self._crowding = np.empty(len(survivors), dtype=np.float64)
        for front_rank, front in enumerate(
            fast_non_dominated_sort(survivor_objectives)
        ):
            self._rank[front] = front_rank
            self._crowding[front] = crowding_distance(survivor_objectives[front])
        return survivors

    def _pick_parent(self, population: list[MOIndividual]) -> MOIndividual:
        """Crowded binary tournament: lower rank, then larger crowding."""
        first = int(self._rng.integers(0, len(population)))
        second = int(self._rng.integers(0, len(population)))
        winner = min(
            (first, second),
            key=lambda i: (
                self._rank[i],
                -self._crowding[i],
                population[i].birth_order,
            ),
        )
        return population[winner]

    # -- offspring ----------------------------------------------------

    def _operator_weights(self) -> np.ndarray:
        params = self._params
        weights = np.asarray(
            [
                params.crossover_probability,
                params.mutation_probability,
                params.inversion_probability,
                params.copy_probability,
            ]
        )
        if weights.sum() <= 0:
            weights = np.asarray([0.0, 1.0, 0.0, 0.0])
        return weights / weights.sum()

    def _apply_operator(
        self, operator: int, population: list[MOIndividual], capacity: int
    ) -> list[np.ndarray]:
        """Produce the raw child genome(s) for one operator draw."""
        if operator == 0:  # crossover: two parents, up to two children
            parent_a = self._pick_parent(population)
            parent_b = self._pick_parent(population)
            genome_one, genome_two = uniform_crossover(
                parent_a.genome, parent_b.genome, self._rng
            )
            if capacity > 1:
                return [genome_one, genome_two]
            return [genome_one]
        parent = self._pick_parent(population)
        if operator == 1:
            return [point_mutation(parent.genome, self._rng, self._alphabet_size)]
        if operator == 2:
            return [segment_inversion(parent.genome, self._rng)]
        return [reproduce(parent.genome)]

    def _spawn_children(self, population: list[MOIndividual]) -> list[MOIndividual]:
        """Generate C children and price them in one batched call."""
        params = self._params
        weights = self._operator_weights()
        genomes: list[np.ndarray] = []
        while len(genomes) < params.children_per_generation:
            operator = int(self._rng.choice(4, p=weights))
            genomes.extend(
                self._apply_operator(
                    operator,
                    population,
                    params.children_per_generation - len(genomes),
                )
            )
        return self._price_genomes(genomes)

    # -- archive ------------------------------------------------------

    def _update_archive(self, individuals: Sequence[MOIndividual]) -> bool:
        """Fold new individuals into the all-time non-dominated archive.

        Returns True when any individual entered the archive — the
        improvement signal the stagnation limit watches (a moving
        hypervolume reference would make "improvement" depend on later
        discoveries; archive entry does not).  Invalid individuals and
        objective-duplicates of archived points never enter, so the
        archive is the objective-unique non-dominated set of everything
        valid seen so far; the earliest genome keeps each point.
        """
        improved = False
        for individual in individuals:
            if not individual.is_valid:
                continue
            values = np.asarray(individual.objectives)
            archived = np.asarray([entry.objectives for entry in self._archive])
            if len(self._archive):
                covered = (archived <= values).all(axis=1)
                if covered.any():  # dominated by or equal to an entry
                    continue
                keep = ~((values <= archived).all(axis=1))
                if not keep.all():
                    self._archive = [
                        entry
                        for entry, kept in zip(self._archive, keep)
                        if kept
                    ]
            self._archive.append(individual)
            improved = True
        return improved

    # -- reporting ----------------------------------------------------

    def _mv_cache_counters(self) -> tuple[int, int]:
        stats = getattr(self._fitness, "mv_cache_stats", None)
        if stats is None:
            return 0, 0
        return stats.hits, stats.misses

    def _mv_cache_warm_loaded(self) -> int:
        stats = getattr(self._fitness, "mv_cache_stats", None)
        if stats is None:
            return 0
        return getattr(stats, "warm_loaded", 0)

    def _front(self) -> tuple[ParetoPoint, ...]:
        """The archive as natural-value points, deterministically sorted."""
        ordered = sorted(
            self._archive,
            key=lambda entry: (entry.objectives, entry.birth_order),
        )
        points = []
        for entry in ordered:
            natural = np.asarray(entry.objectives) * self._signs
            points.append(
                ParetoPoint(
                    genome=entry.genome,
                    values=tuple(float(value) for value in natural),
                )
            )
        return tuple(points)

    # -- main loop ----------------------------------------------------

    def _termination(self) -> AnyOf:
        conditions: list[TerminationCondition] = [
            StagnationLimit(self._params.stagnation_limit)
        ]
        if self._params.max_evaluations is not None:
            conditions.append(EvaluationLimit(self._params.max_evaluations))
        if self._params.max_generations is not None:
            conditions.append(GenerationLimit(self._params.max_generations))
        return AnyOf(*conditions)

    def run(self) -> MultiObjectiveResult:
        """Execute the NSGA-II loop and return the Pareto front."""
        self._evaluations = 0
        self._birth_counter = 0
        self._cache = OrderedDict()
        self._cache_hits = 0
        self._archive = []
        mv_hits_before, mv_misses_before = self._mv_cache_counters()
        genomes = [genome.copy() for genome in self._initial_genomes]
        while len(genomes) < self._params.population_size:
            genomes.append(
                random_genome(self._genome_length, self._rng, self._alphabet_size)
            )
        population = self._truncate(
            self._price_genomes(genomes), self._params.population_size
        )
        self._update_archive(population)
        history: list[MOGenerationStats] = []
        termination = self._termination()
        generation = 0
        stagnant = 0
        while True:
            state = LoopState(
                generation=generation,
                evaluations=self._evaluations,
                generations_without_improvement=stagnant,
                best_fitness=float(len(self._archive)),
            )
            if termination.should_stop(state):
                break
            generation += 1
            children = self._spawn_children(population)
            population = self._truncate(
                population + children, self._params.population_size
            )
            improved = self._update_archive(children)
            if improved:
                stagnant = 0
            else:
                stagnant += 1
            history.append(
                MOGenerationStats(
                    generation=generation,
                    front_size=int((self._rank == 0).sum()),
                    archive_size=len(self._archive),
                    evaluations=self._evaluations,
                    improved=improved,
                )
            )
        fired = termination.fired
        mv_hits_after, mv_misses_after = self._mv_cache_counters()
        mv_hits = mv_hits_after - mv_hits_before
        mv_misses = mv_misses_after - mv_misses_before
        mv_lookups = mv_hits + mv_misses
        return MultiObjectiveResult(
            objectives=self._objectives,
            front=self._front(),
            generations=generation,
            evaluations=self._evaluations,
            terminated_by=fired.describe() if fired else "none",
            history=tuple(history),
            cache_hits=self._cache_hits,
            cache_hit_rate=(
                self._cache_hits / self._evaluations if self._evaluations else 0.0
            ),
            mv_cache_hits=mv_hits,
            mv_cache_misses=mv_misses,
            mv_cache_hit_rate=mv_hits / mv_lookups if mv_lookups else 0.0,
            mv_cache_warm_loaded=self._mv_cache_warm_loaded(),
        )

"""Evolutionary operators: crossover, mutation, inversion, copy.

Paper, Section 3.1:

* *crossover* takes two parents and produces two children "by
  exchanging bit positions (genes) of the parents" — implemented as
  uniform crossover (each gene independently from either parent), with
  one-point crossover available as a variant;
* *mutation* "generates one child from one parent by replacing one
  randomly selected gene of a parent by a random value";
* *inversion* "produces a child by reverting the ordering of the genes
  between two random positions of a parent".

All operators are pure: parents are never modified.  Each call draws
from the RNG a fixed number of times in a fixed order and is
vectorized internally (one bulk draw, numpy gene manipulation) — the
batched engine relies on that stability to generate a whole
generation of genomes up front and price them in one fitness call
while staying bit-for-bit reproducible under a seed.
"""

from __future__ import annotations

import numpy as np

from .genome import TRIT_ALPHABET_SIZE

__all__ = [
    "uniform_crossover",
    "one_point_crossover",
    "point_mutation",
    "segment_inversion",
    "reproduce",
]


def uniform_crossover(
    parent_a: np.ndarray, parent_b: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Exchange genes position-wise; each child takes each gene from a
    uniformly chosen parent (complementary choices for the siblings)."""
    if parent_a.shape != parent_b.shape:
        raise ValueError("parents must have equal genome length")
    take_from_a = rng.random(parent_a.size) < 0.5
    child_one = np.where(take_from_a, parent_a, parent_b).astype(np.int8, copy=False)
    child_two = np.where(take_from_a, parent_b, parent_a).astype(np.int8, copy=False)
    return child_one, child_two


def one_point_crossover(
    parent_a: np.ndarray, parent_b: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Classic one-point crossover: swap the tails after a random cut."""
    if parent_a.shape != parent_b.shape:
        raise ValueError("parents must have equal genome length")
    if parent_a.size < 2:
        return parent_a.copy(), parent_b.copy()
    cut = int(rng.integers(1, parent_a.size))
    child_one = np.concatenate([parent_a[:cut], parent_b[cut:]]).astype(
        np.int8, copy=False
    )
    child_two = np.concatenate([parent_b[:cut], parent_a[cut:]]).astype(
        np.int8, copy=False
    )
    return child_one, child_two


def point_mutation(
    parent: np.ndarray,
    rng: np.random.Generator,
    alphabet_size: int = TRIT_ALPHABET_SIZE,
) -> np.ndarray:
    """Replace one randomly selected gene by a random alphabet value."""
    child = parent.copy()
    position = int(rng.integers(0, child.size))
    child[position] = np.int8(rng.integers(0, alphabet_size))
    return child


def segment_inversion(parent: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Reverse the gene order between two random positions (inclusive)."""
    child = parent.copy()
    if child.size < 2:
        return child
    draws = rng.integers(0, child.size, size=2)
    first, second = int(draws.min()), int(draws.max())
    child[first : second + 1] = child[first : second + 1][::-1]
    return child


def reproduce(parent: np.ndarray) -> np.ndarray:
    """Plain reproduction: an identical copy of the parent."""
    return parent.copy()

"""Unit tests for parent and survivor selection."""

import numpy as np
import pytest

from repro.ea.selection import Individual, select_parent, truncate


def make_individual(fitness: float, birth: int) -> Individual:
    return Individual(
        genome=np.zeros(3, dtype=np.int8), fitness=fitness, birth_order=birth
    )


class TestTruncate:
    def test_keeps_best(self):
        pool = [make_individual(f, i) for i, f in enumerate([1.0, 5.0, 3.0])]
        survivors = truncate(pool, 2)
        assert [ind.fitness for ind in survivors] == [5.0, 3.0]

    def test_tie_broken_by_seniority(self):
        old = make_individual(2.0, 0)
        young = make_individual(2.0, 7)
        assert truncate([young, old], 1) == [old]

    def test_keeps_all_if_fewer_than_requested(self):
        pool = [make_individual(1.0, 0)]
        assert len(truncate(pool, 5)) == 1

    def test_zero_survivors_rejected(self):
        with pytest.raises(ValueError):
            truncate([make_individual(1.0, 0)], 0)


class TestSelectParent:
    def test_uniform_choice_covers_population(self):
        rng = np.random.default_rng(0)
        pool = [make_individual(float(i), i) for i in range(5)]
        chosen = {select_parent(pool, rng).birth_order for _ in range(200)}
        assert chosen == {0, 1, 2, 3, 4}

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            select_parent([], np.random.default_rng(0))


class TestIndividual:
    def test_genome_frozen(self):
        individual = make_individual(1.0, 0)
        with pytest.raises(ValueError):
            individual.genome[0] = 1

"""Tests for adaptive operator scheduling."""

import numpy as np
import pytest

from repro.core.config import EAParameters
from repro.ea.adaptive import AdaptiveOperatorScheduler
from repro.ea.engine import EvolutionaryEngine


class TestSchedulerBasics:
    def test_initial_mix_normalized(self):
        scheduler = AdaptiveOperatorScheduler([3.0, 1.0])
        assert scheduler.probabilities.tolist() == [0.75, 0.25]

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveOperatorScheduler([1.0])  # one operator
        with pytest.raises(ValueError):
            AdaptiveOperatorScheduler([-1.0, 2.0])
        with pytest.raises(ValueError):
            AdaptiveOperatorScheduler([0.0, 0.0])
        with pytest.raises(ValueError):
            AdaptiveOperatorScheduler([1, 1], learning_rate=0.0)
        with pytest.raises(ValueError):
            AdaptiveOperatorScheduler([1, 1], floor=0.5)

    def test_reward_index_checked(self):
        scheduler = AdaptiveOperatorScheduler([1, 1])
        with pytest.raises(ValueError):
            scheduler.reward(2, 1.0)

    def test_pursuit_moves_toward_winner(self):
        scheduler = AdaptiveOperatorScheduler([0.25, 0.25, 0.25, 0.25])
        for _ in range(50):
            scheduler.reward(2, 10.0)
            scheduler.reward(0, 0.0)
        probabilities = scheduler.probabilities
        assert probabilities[2] == max(probabilities)
        assert probabilities[2] > 0.5

    def test_floor_never_violated(self):
        scheduler = AdaptiveOperatorScheduler(
            [0.25, 0.25, 0.25, 0.25], floor=0.05
        )
        for _ in range(200):
            scheduler.reward(0, 100.0)
        assert scheduler.probabilities.min() >= 0.05 - 1e-12

    def test_probabilities_always_sum_to_one(self):
        rng = np.random.default_rng(0)
        scheduler = AdaptiveOperatorScheduler([1, 1, 1, 1])
        for _ in range(100):
            scheduler.reward(int(rng.integers(0, 4)), float(rng.random()))
            assert scheduler.probabilities.sum() == pytest.approx(1.0)

    def test_negative_improvement_clamped(self):
        scheduler = AdaptiveOperatorScheduler([1, 1])
        scheduler.reward(0, -50.0)
        assert scheduler.reward_estimates[0] == 0.0

    def test_choose_respects_distribution(self):
        rng = np.random.default_rng(1)
        scheduler = AdaptiveOperatorScheduler([1, 1, 1, 1])
        for _ in range(50):
            scheduler.reward(3, 5.0)
        draws = [scheduler.choose(rng) for _ in range(300)]
        assert draws.count(3) > 150


class TestEngineWithAdaptiveOperators:
    @staticmethod
    def count_ones(genome: np.ndarray) -> float:
        return float((genome == 1).sum())

    def test_solves_onemax(self):
        params = EAParameters(
            adaptive_operators=True,
            stagnation_limit=30,
            max_evaluations=2500,
        )
        engine = EvolutionaryEngine(
            fitness=self.count_ones, genome_length=24, params=params, seed=3
        )
        assert engine.run().best_fitness >= 20

    def test_deterministic_under_seed(self):
        params = EAParameters(
            adaptive_operators=True,
            stagnation_limit=10,
            max_evaluations=400,
        )

        def run_once():
            engine = EvolutionaryEngine(
                fitness=self.count_ones,
                genome_length=16,
                params=params,
                seed=8,
            )
            return engine.run().best_fitness

        assert run_once() == run_once()

    def test_repeated_run_calls_reset_scheduler(self):
        params = EAParameters(
            adaptive_operators=True,
            stagnation_limit=10,
            max_evaluations=300,
        )
        engine = EvolutionaryEngine(
            fitness=self.count_ones, genome_length=16, params=params, seed=8
        )
        first = engine.run().best_fitness
        second = engine.run().best_fitness
        # Fresh scheduler each run: the search is re-seeded identically
        # in fitness terms (RNG state advances, values may differ, but
        # both runs complete and return valid fitness).
        assert first >= 0 and second >= 0

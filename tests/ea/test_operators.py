"""Unit and property tests for the evolutionary operators."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ea.operators import (
    one_point_crossover,
    point_mutation,
    reproduce,
    segment_inversion,
    uniform_crossover,
)

genomes = st.lists(st.integers(0, 2), min_size=2, max_size=50).map(
    lambda xs: np.asarray(xs, dtype=np.int8)
)


def paired_genomes():
    return st.integers(2, 50).flatmap(
        lambda n: st.tuples(
            st.lists(st.integers(0, 2), min_size=n, max_size=n),
            st.lists(st.integers(0, 2), min_size=n, max_size=n),
        ).map(
            lambda ab: (
                np.asarray(ab[0], dtype=np.int8),
                np.asarray(ab[1], dtype=np.int8),
            )
        )
    )


class TestUniformCrossover:
    @given(paired_genomes(), st.integers(0, 2**31 - 1))
    def test_children_take_genes_from_parents_complementarily(self, parents, seed):
        parent_a, parent_b = parents
        rng = np.random.default_rng(seed)
        child_one, child_two = uniform_crossover(parent_a, parent_b, rng)
        for position in range(parent_a.size):
            pair = {int(child_one[position]), int(child_two[position])}
            assert pair == {int(parent_a[position]), int(parent_b[position])}

    def test_parents_unchanged(self):
        rng = np.random.default_rng(0)
        parent_a = np.zeros(10, dtype=np.int8)
        parent_b = np.ones(10, dtype=np.int8)
        uniform_crossover(parent_a, parent_b, rng)
        assert (parent_a == 0).all() and (parent_b == 1).all()

    def test_length_mismatch_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            uniform_crossover(
                np.zeros(3, dtype=np.int8), np.zeros(4, dtype=np.int8), rng
            )

    def test_actually_mixes(self):
        rng = np.random.default_rng(1)
        parent_a = np.zeros(100, dtype=np.int8)
        parent_b = np.ones(100, dtype=np.int8)
        child_one, _ = uniform_crossover(parent_a, parent_b, rng)
        assert 0 < child_one.sum() < 100


class TestOnePointCrossover:
    @given(paired_genomes(), st.integers(0, 2**31 - 1))
    def test_children_are_prefix_suffix_swaps(self, parents, seed):
        parent_a, parent_b = parents
        rng = np.random.default_rng(seed)
        child_one, child_two = one_point_crossover(parent_a, parent_b, rng)
        # There must exist a cut making children = A[:c]+B[c:], B[:c]+A[c:].
        found = False
        for cut in range(1, parent_a.size):
            if (
                (child_one[:cut] == parent_a[:cut]).all()
                and (child_one[cut:] == parent_b[cut:]).all()
                and (child_two[:cut] == parent_b[:cut]).all()
                and (child_two[cut:] == parent_a[cut:]).all()
            ):
                found = True
                break
        assert found


class TestPointMutation:
    @given(genomes, st.integers(0, 2**31 - 1))
    def test_at_most_one_gene_changes(self, genome, seed):
        rng = np.random.default_rng(seed)
        child = point_mutation(genome, rng)
        assert (child != genome).sum() <= 1

    @given(genomes, st.integers(0, 2**31 - 1))
    def test_values_stay_in_alphabet(self, genome, seed):
        rng = np.random.default_rng(seed)
        child = point_mutation(genome, rng)
        assert child.min() >= 0 and child.max() <= 2

    def test_parent_unchanged(self):
        genome = np.zeros(5, dtype=np.int8)
        point_mutation(genome, np.random.default_rng(0))
        assert (genome == 0).all()


class TestSegmentInversion:
    @given(genomes, st.integers(0, 2**31 - 1))
    def test_multiset_of_genes_preserved(self, genome, seed):
        rng = np.random.default_rng(seed)
        child = segment_inversion(genome, rng)
        assert sorted(child.tolist()) == sorted(genome.tolist())

    @given(genomes, st.integers(0, 2**31 - 1))
    def test_prefix_and_suffix_untouched(self, genome, seed):
        """Outside some window [i, j] the child equals the parent."""
        rng = np.random.default_rng(seed)
        child = segment_inversion(genome, rng)
        differing = np.nonzero(child != genome)[0]
        if differing.size:
            low, high = differing.min(), differing.max()
            assert (child[low : high + 1] == genome[low : high + 1][::-1]).all()

    def test_single_gene_genome(self):
        genome = np.asarray([1], dtype=np.int8)
        child = segment_inversion(genome, np.random.default_rng(0))
        assert child.tolist() == [1]


class TestReproduce:
    def test_identical_copy(self):
        genome = np.asarray([0, 1, 2], dtype=np.int8)
        child = reproduce(genome)
        assert (child == genome).all()
        assert child is not genome

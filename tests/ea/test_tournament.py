"""Tests for tournament parent selection (EA extension)."""

import numpy as np
import pytest

from repro.core.config import EAParameters
from repro.ea.engine import EvolutionaryEngine
from repro.ea.selection import Individual, tournament_select


def make_individual(fitness: float, birth: int) -> Individual:
    return Individual(
        genome=np.zeros(3, dtype=np.int8), fitness=fitness, birth_order=birth
    )


class TestTournamentSelect:
    def test_prefers_fitter(self):
        rng = np.random.default_rng(0)
        weak = make_individual(1.0, 0)
        strong = make_individual(9.0, 1)
        wins = sum(
            tournament_select([weak, strong], rng, 2) is strong
            for _ in range(300)
        )
        # Strong wins every tournament it enters: P(win) = 3/4.
        assert wins > 200

    def test_tournament_of_population_size_one(self):
        rng = np.random.default_rng(0)
        only = make_individual(1.0, 0)
        assert tournament_select([only], rng, 2) is only

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            tournament_select([], np.random.default_rng(0), 2)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            tournament_select(
                [make_individual(1.0, 0)], np.random.default_rng(0), 1
            )


class TestEngineWithTournament:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            EAParameters(parent_selection="lottery")
        with pytest.raises(ValueError):
            EAParameters(parent_selection="tournament", tournament_size=1)

    def test_tournament_engine_solves_onemax(self):
        def count_ones(genome: np.ndarray) -> float:
            return float((genome == 1).sum())

        params = EAParameters(
            parent_selection="tournament",
            tournament_size=3,
            stagnation_limit=30,
            max_evaluations=2000,
        )
        engine = EvolutionaryEngine(
            fitness=count_ones, genome_length=24, params=params, seed=1
        )
        result = engine.run()
        assert result.best_fitness >= 20

    def test_deterministic_under_seed(self):
        def count_ones(genome: np.ndarray) -> float:
            return float((genome == 1).sum())

        params = EAParameters(
            parent_selection="tournament",
            stagnation_limit=10,
            max_evaluations=300,
        )
        results = [
            EvolutionaryEngine(
                fitness=count_ones, genome_length=16, params=params, seed=4
            )
            .run()
            .best_fitness
            for _ in range(2)
        ]
        assert results[0] == results[1]
